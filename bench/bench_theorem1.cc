// Copyright (c) hdc authors. Apache-2.0 license.
//
// Theorem 1 summary table: for every (dataset, optimal algorithm) pair of
// the evaluation, the measured query cost side by side with the proven
// worst-case envelope and the trivial n/k floor. This is the "measured vs
// theory" artifact referenced by EXPERIMENTS.md.
//
//   numeric      cost <= 20 * d * n/k                       (Lemma 2)
//   categorical  cost <= Sigma U_i + (n/k) Sigma min{U_i, n/k}  (Lemma 4)
//   mixed        sum of the two parts                       (Lemma 9)
#include <algorithm>
#include <cmath>
#include <memory>

#include "core/crawlers.h"
#include "gen/adult_gen.h"
#include "gen/nsf_gen.h"
#include "gen/yahoo_gen.h"
#include "harness.h"

namespace hdc {
namespace bench {
namespace {

/// Theorem 1's bound for the optimal algorithm on this space (with the
/// proof's alpha = 20 for numeric attributes).
double Theorem1Bound(const Schema& schema, uint64_t n, uint64_t k) {
  const double n_over_k =
      std::ceil(static_cast<double>(n) / static_cast<double>(k));
  const double num_numeric = static_cast<double>(schema.num_numeric());
  double bound = 20.0 * num_numeric * n_over_k;

  const size_t cat = schema.num_categorical();
  if (cat == 1) {
    bound += static_cast<double>(
        schema.domain_size(schema.categorical_indices()[0]));
  } else if (cat > 1) {
    for (size_t attr : schema.categorical_indices()) {
      const double u = static_cast<double>(schema.domain_size(attr));
      bound += u + n_over_k * std::min(u, n_over_k);
    }
  }
  return bound;
}

void Row(FigureTable* table, const std::string& name,
         std::shared_ptr<const Dataset> data, uint64_t k) {
  auto crawler = MakeOptimalCrawler(*data->schema());
  RunStats stats = RunCrawl(crawler.get(), data, k);
  HDC_CHECK(stats.ok);
  const double bound = Theorem1Bound(*data->schema(), data->size(), k);
  const uint64_t floor = data->size() / k;
  table->AddRow(
      {name, crawler->name(), std::to_string(k),
       std::to_string(data->size()), std::to_string(floor),
       std::to_string(stats.queries), TablePrinter::Cell(bound, 0),
       TablePrinter::Cell(static_cast<double>(stats.queries) / bound, 3)});
}

void Run() {
  Banner("Theorem 1 summary",
         "Measured cost of the optimal algorithm vs the proven worst-case "
         "envelope (numeric alpha = 20) and the trivial n/k floor. "
         "Expected: measured << bound, measured/bound well under 1");
  FigureTable table(
      "Theorem 1: measured vs bound (k = 256)", "theorem1",
      {"dataset", "algorithm", "k", "n", "n/k floor", "measured",
       "Theorem 1 bound", "measured/bound"});

  Row(&table, "Adult-numeric",
      std::make_shared<const Dataset>(GenerateAdultNumeric()), 256);
  Row(&table, "NSF", std::make_shared<const Dataset>(GenerateNsf()), 256);
  Row(&table, "Yahoo", std::make_shared<const Dataset>(GenerateYahoo()),
      256);
  Row(&table, "Adult", std::make_shared<const Dataset>(GenerateAdult()),
      256);
  table.Emit();
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
