// Copyright (c) hdc authors. Apache-2.0 license.
//
// Theorem 2 made visible: on the hard instances of Section 4 the optimal
// algorithms' measured cost sits within a small constant factor of the
// proven lower bounds — i.e. the upper bounds of Theorem 1 cannot be
// improved by more than a constant.
//
//   numeric (Figure 7):     any algorithm needs >= d*m queries;
//                           rank-shrink is O(d * n/k) = O(d*m) here.
//   categorical (Figure 8): Omega(d*U^2) in the Theorem 4 regime;
//                           slice-cover is <= d*U + 2*d*U^2 here.
#include <memory>

#include "core/rank_shrink.h"
#include "core/slice_cover.h"
#include "gen/hard_instances.h"
#include "harness.h"

namespace hdc {
namespace bench {
namespace {

void NumericLowerBounds() {
  FigureTable table(
      "Theorem 3 instances: rank-shrink vs the d*m lower bound",
      "lower_bound_numeric",
      {"k", "d", "m", "n", "lower bound", "rank-shrink", "ratio"});
  struct Params {
    uint64_t k;
    size_t d;
    uint64_t m;
  };
  for (const Params& p : {Params{8, 2, 50}, Params{8, 4, 50},
                          Params{16, 4, 100}, Params{64, 6, 100},
                          Params{256, 8, 40}}) {
    HardInstance inst = MakeHardNumericInstance(p.k, p.d, p.m);
    auto data = std::make_shared<const Dataset>(std::move(inst.dataset));
    RankShrink crawler;
    RunStats stats = RunCrawl(&crawler, data, p.k);
    HDC_CHECK(stats.ok);
    HDC_CHECK(stats.queries >= inst.lower_bound);
    table.AddRow({std::to_string(p.k), std::to_string(p.d),
                  std::to_string(p.m), std::to_string(data->size()),
                  std::to_string(inst.lower_bound),
                  std::to_string(stats.queries),
                  TablePrinter::Cell(static_cast<double>(stats.queries) /
                                         static_cast<double>(inst.lower_bound),
                                     2)});
  }
  table.Emit();
}

void CategoricalLowerBounds() {
  FigureTable table(
      "Theorem 4 instances: slice-cover vs the d*U^2 reference bound",
      "lower_bound_categorical",
      {"k", "U", "d", "n", "in regime", "d*U^2", "slice-cover", "lazy",
       "ratio"});
  struct Params {
    uint64_t k;
    uint64_t U;
  };
  for (const Params& p :
       {Params{16, 3}, Params{20, 4}, Params{20, 5}, Params{24, 6},
        Params{32, 8}}) {
    HardInstance inst = MakeHardCategoricalInstance(p.k, p.U);
    auto data = std::make_shared<const Dataset>(std::move(inst.dataset));
    SliceCoverCrawler eager(false), lazy(true);
    RunStats e = RunCrawl(&eager, data, p.k);
    RunStats l = RunCrawl(&lazy, data, p.k);
    HDC_CHECK(e.ok && l.ok);
    const uint64_t d = 2 * p.k;
    table.AddRow(
        {std::to_string(p.k), std::to_string(p.U), std::to_string(d),
         std::to_string(data->size()),
         HardCategoricalBoundApplies(p.k, p.U) ? "yes" : "no",
         std::to_string(inst.lower_bound), std::to_string(e.queries),
         std::to_string(l.queries),
         TablePrinter::Cell(static_cast<double>(e.queries) /
                                static_cast<double>(inst.lower_bound),
                            2)});
  }
  table.Emit();
}

void Run() {
  Banner("Lower bounds (Theorems 3 & 4)",
         "Measured cost of the optimal algorithms on the Section 4 hard "
         "instances, against the proven query lower bounds. Expected: "
         "small constant ratios");
  NumericLowerBounds();
  CategoricalLowerBounds();
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
