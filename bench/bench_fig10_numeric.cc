// Copyright (c) hdc authors. Apache-2.0 license.
//
// Figure 10 reproduction: query cost of the numeric algorithms
// (binary-shrink vs rank-shrink) on Adult-numeric.
//   (a) cost vs k in {64..1024}, d = 6
//   (b) cost vs d in {3..6}, k = 256, keeping the d attributes with the
//       most distinct values
//   (c) cost vs dataset size (20%..100% Bernoulli samples), k = 256, d = 6
//
// Paper shape to reproduce: rank-shrink wins everywhere; its cost is
// inversely linear in k (halves as k doubles), nearly flat in d (3-way
// splits are rare on Adult-numeric), and linear in n.
#include <memory>

#include "core/binary_shrink.h"
#include "core/rank_shrink.h"
#include "gen/adult_gen.h"
#include "harness.h"
#include "util/random.h"

namespace hdc {
namespace bench {
namespace {

void FigureA(const std::shared_ptr<const Dataset>& adult_numeric) {
  FigureTable table("Figure 10a: cost vs k (Adult-numeric, d=6)", "fig10a",
                    {"k", "binary-shrink", "rank-shrink"});
  for (uint64_t k : {64, 128, 256, 512, 1024}) {
    BinaryShrink binary;
    RankShrink rank;
    RunStats b = RunCrawl(&binary, adult_numeric, k);
    RunStats r = RunCrawl(&rank, adult_numeric, k);
    table.AddRow({std::to_string(k), std::to_string(b.queries),
                  std::to_string(r.queries)});
  }
  table.Emit();
}

void FigureB(const std::shared_ptr<const Dataset>& adult_numeric) {
  FigureTable table("Figure 10b: cost vs d (Adult-numeric, k=256)", "fig10b",
                    {"d", "binary-shrink", "rank-shrink"});
  const uint64_t k = 256;
  for (size_t d : {3, 4, 5, 6}) {
    // Section 6: keep the d attributes with the most distinct values
    // (FNALWGT first, then CAP-GAIN, CAP-LOSS, WRK-HR, AGE, EDU-NUM).
    auto projected = std::make_shared<Dataset>(
        adult_numeric->Project(adult_numeric->TopDistinctAttributes(d)));
    BinaryShrink binary;
    RankShrink rank;
    RunStats b = RunCrawl(&binary, projected, k);
    RunStats r = RunCrawl(&rank, projected, k);
    table.AddRow({std::to_string(d), std::to_string(b.queries),
                  std::to_string(r.queries)});
  }
  table.Emit();
}

void FigureC(const std::shared_ptr<const Dataset>& adult_numeric) {
  FigureTable table("Figure 10c: cost vs n (Adult-numeric, k=256, d=6)",
                    "fig10c", {"sample", "n", "binary-shrink", "rank-shrink"});
  const uint64_t k = 256;
  for (int pct : {20, 40, 60, 80, 100}) {
    Rng rng(4242 + pct);
    auto sample = std::make_shared<Dataset>(
        pct == 100 ? *adult_numeric
                   : adult_numeric->BernoulliSample(pct / 100.0, &rng));
    BinaryShrink binary;
    RankShrink rank;
    RunStats b = RunCrawl(&binary, sample, k);
    RunStats r = RunCrawl(&rank, sample, k);
    table.AddRow({std::to_string(pct) + "%", std::to_string(sample->size()),
                  std::to_string(b.queries), std::to_string(r.queries)});
  }
  table.Emit();
}

void Run() {
  Banner("Figure 10",
         "Numeric crawlers on Adult-numeric (45,222 tuples, 6 attributes). "
         "Expected shape: rank-shrink < binary-shrink; cost ~ n/k; ~flat "
         "in d");
  auto adult_numeric =
      std::make_shared<const Dataset>(GenerateAdultNumeric());
  FigureA(adult_numeric);
  FigureB(adult_numeric);
  FigureC(adult_numeric);
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
