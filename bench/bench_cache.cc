// Copyright (c) hdc authors. Apache-2.0 license.
//
// Answer-cache / delta re-crawl bench: how many server queries does it cost
// to bring a finished extraction back in sync after the hidden database
// mutates? For each mutation rate the same post-mutation state is crawled
// twice — from scratch (cache=full) and incrementally through the seeded
// answer cache (cache=delta) — and both extractions are verified equal
// before any number is printed. The CSV is cache-tagged so the regression
// gate compares full rows only against full baselines and delta rows only
// against delta baselines (tools/check_bench_regression.py groups by the
// `cache` column); the same script enforces the headline claim on the
// current run: at the 1% row, delta must bill at least 10x fewer queries
// than full. Query/region counts are deterministic (seeded) and gated
// exactly; wall clocks only warn.
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/delta_crawl.h"
#include "gen/synthetic.h"
#include "harness.h"
#include "server/mutating_server.h"
#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace bench {
namespace {

constexpr size_t kRows = 10000;
constexpr uint64_t kK = 20;
constexpr Value kValueRange = 100000;

std::shared_ptr<const Dataset> BenchData() {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {6};
  gen.num_numeric = 2;
  gen.n = kRows;
  gen.value_range = kValueRange;
  gen.zipf_s = 0.0;
  gen.seed = 31;
  return std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));
}

Tuple RandomTuple(const SchemaPtr& schema, Rng* rng) {
  std::vector<Value> values(schema->num_attributes());
  for (size_t i = 0; i < values.size(); ++i) {
    if (schema->IsCategorical(i)) {
      values[i] =
          rng->UniformInt(1, static_cast<Value>(schema->domain_size(i)));
    } else {
      values[i] = rng->UniformInt(0, kValueRange - 1);
    }
  }
  return Tuple(std::move(values));
}

/// A burst touching ~`changed` rows: 40% deletes, 40% inserts, 20%
/// value-jitter updates (numeric attributes nudged in place, so an update
/// stays near its old rectangle — the "edited listing" case, vs. the
/// delete+insert pair a cross-space move costs).
std::vector<Mutation> MakeBurst(const MutatingLocalServer& server,
                                size_t changed, Rng* rng) {
  const auto rows = server.Rows();
  const SchemaPtr& schema = server.schema();
  std::vector<Mutation> burst;
  burst.reserve(changed);
  for (size_t i = 0; i < changed; ++i) {
    const double dice = static_cast<double>(i % 5);
    if (dice < 2) {  // delete
      const auto& victim = rows[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(rows.size()) - 1))];
      burst.push_back(Mutation::Delete(victim.first));
    } else if (dice < 4) {  // insert
      burst.push_back(Mutation::Insert(RandomTuple(schema, rng)));
    } else {  // jitter update
      const auto& victim = rows[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(rows.size()) - 1))];
      std::vector<Value> values;
      for (size_t a = 0; a < schema->num_attributes(); ++a) {
        Value v = victim.second[a];
        if (schema->IsNumeric(a)) {
          v = std::min<Value>(kValueRange - 1,
                              std::max<Value>(0, v + rng->UniformInt(-50, 50)));
        }
        values.push_back(v);
      }
      burst.push_back(Mutation::Update(victim.first, Tuple(std::move(values))));
    }
  }
  // A delete may name an id another entry of the burst already deleted;
  // Apply validates the whole burst, so drop duplicate victims here.
  std::vector<Mutation> deduped;
  std::vector<uint64_t> dead;
  for (Mutation& m : burst) {
    if (m.kind != Mutation::Kind::kInsert) {
      bool seen = false;
      for (uint64_t id : dead) seen = seen || id == m.stable_id;
      if (seen) continue;
      dead.push_back(m.stable_id);
    }
    deduped.push_back(std::move(m));
  }
  return deduped;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Checks the two post-mutation extractions agree row-for-row; a delta
/// crawl that diverges from the from-scratch crawl must not print numbers.
void CheckSameExtraction(const CrawlRecord& full, const CrawlRecord& delta) {
  const CrawlDelta diff = DiffRecords(full, delta);
  HDC_CHECK_MSG(diff.empty(),
                "delta crawl extraction diverged from the full re-crawl");
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  using namespace hdc;
  using namespace hdc::bench;

  Banner("cache",
         "delta re-crawl vs full re-crawl of a mutated hidden database: "
         "10000 mixed rows, k=20, mutation bursts at 0% / 0.1% / 1% / 10% "
         "of rows; billed = misses + changed-content revalidations");

  auto data = BenchData();

  FigureTable table("Answer cache: re-crawl cost after mutation",
                    "bench_cache",
                    {"cache", "rate", "changed", "billed queries",
                     "cheap revalidations", "regions", "extracted",
                     "wall seconds"});

  const std::vector<std::pair<std::string, double>> rates = {
      {"0", 0.0}, {"0.001", 0.001}, {"0.01", 0.01}, {"0.1", 0.1}};

  for (const auto& [rate_label, rate] : rates) {
    MutatingLocalServer server(data, kK);

    // Prior extraction: the crawl whose record the delta pass reuses.
    CrawlRecord prior;
    HDC_CHECK_OK(BuildCrawlRecord(&server, &prior));

    const size_t changed = static_cast<size_t>(
        rate * static_cast<double>(kRows));
    if (changed > 0) {
      Rng rng(0xca5e + static_cast<uint64_t>(changed));
      HDC_CHECK_OK(server.Apply(MakeBurst(server, changed, &rng)));
    }

    // Full re-crawl of the post-mutation state, from scratch.
    DeltaCrawlStats full_stats;
    CrawlRecord full_record;
    const auto full_start = std::chrono::steady_clock::now();
    HDC_CHECK_OK(BuildCrawlRecord(&server, &full_record, &full_stats));
    const double full_wall = Seconds(full_start);

    // Delta re-crawl of the same state through the seeded cache.
    DeltaCrawlStats delta_stats;
    CrawlRecord delta_record;
    CrawlDelta delta;
    const auto delta_start = std::chrono::steady_clock::now();
    HDC_CHECK_OK(
        DeltaCrawl(&server, prior, &delta_record, &delta, &delta_stats));
    const double delta_wall = Seconds(delta_start);

    CheckSameExtraction(full_record, delta_record);
    // The emitted delta must be exactly the full re-crawl diff.
    const CrawlDelta reference = DiffRecords(prior, full_record);
    HDC_CHECK_MSG(reference.inserted.size() == delta.inserted.size() &&
                      reference.deleted.size() == delta.deleted.size() &&
                      reference.updated.size() == delta.updated.size(),
                  "emitted delta diverged from the full re-crawl diff");

    table.AddRow({"full", rate_label, std::to_string(changed),
                  std::to_string(full_stats.billed_queries),
                  std::to_string(full_stats.cheap_revalidations),
                  std::to_string(full_record.regions.size()),
                  std::to_string(full_record.TupleCount()),
                  std::to_string(full_wall)});
    table.AddRow({"delta", rate_label, std::to_string(changed),
                  std::to_string(delta_stats.billed_queries),
                  std::to_string(delta_stats.cheap_revalidations),
                  std::to_string(delta_record.regions.size()),
                  std::to_string(delta_record.TupleCount()),
                  std::to_string(delta_wall)});
  }

  table.Emit();
  return 0;
}
