// Copyright (c) hdc authors. Apache-2.0 license.
//
// Figure 12 reproduction: query cost of the hybrid algorithm on the two
// mixed datasets (Yahoo, Adult) as k grows from 64 to 1024.
//
// Paper shape to reproduce: cost falls roughly inversely with k, and the
// Yahoo row at k = 64 is *absent* — the dataset contains more than 64
// identical tuples, so Problem 1 is unsolvable there (Section 1.1); the
// bench prints "n/a (unsolvable)" where the paper leaves a gap.
#include <memory>

#include "core/hybrid.h"
#include "gen/adult_gen.h"
#include "gen/yahoo_gen.h"
#include "harness.h"

namespace hdc {
namespace bench {
namespace {

std::string HybridCell(const std::shared_ptr<const Dataset>& data,
                       uint64_t k) {
  if (data->MaxPointMultiplicity() > k) {
    return "n/a (unsolvable)";
  }
  HybridCrawler crawler;
  RunStats stats = RunCrawl(&crawler, data, k);
  return std::to_string(stats.queries);
}

void Run() {
  Banner("Figure 12",
         "Hybrid crawler on Yahoo (69,768 tuples) and Adult (45,222 "
         "tuples). Expected: cost ~ inverse in k; Yahoo infeasible at "
         "k = 64 (a listing with > 64 identical tuples)");
  auto yahoo = std::make_shared<const Dataset>(GenerateYahoo());
  auto adult = std::make_shared<const Dataset>(GenerateAdult());

  FigureTable table("Figure 12: hybrid cost vs k", "fig12",
                    {"k", "Yahoo", "Adult"});
  for (uint64_t k : {64, 128, 256, 512, 1024}) {
    table.AddRow({std::to_string(k), HybridCell(yahoo, k),
                  HybridCell(adult, k)});
  }
  table.Emit();
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
