// Copyright (c) hdc authors. Apache-2.0 license.
//
// Server-ranking robustness (DESIGN.md ablation): the paper's experiments
// use random per-tuple priorities; a real site ranks by price, recency,
// etc. The worst-case guarantees are policy-independent — this bench
// measures how much the *practical* cost moves across policies.
//
// Expected: modest variation (the algorithms' splits depend on which k
// tuples come back, not on luck), never a blow-up.
#include <memory>

#include "core/rank_shrink.h"
#include "core/slice_cover.h"
#include "gen/adult_gen.h"
#include "gen/nsf_gen.h"
#include "harness.h"
#include "server/local_server.h"

namespace hdc {
namespace bench {
namespace {

uint64_t CostUnder(Crawler* crawler, std::shared_ptr<const Dataset> data,
                   uint64_t k, std::unique_ptr<RankingPolicy> policy) {
  LocalServer server(std::move(data), k, std::move(policy));
  CrawlResult result = crawler->Crawl(&server);
  HDC_CHECK_MSG(result.status.ok(), "policy bench crawl failed");
  return result.queries_issued;
}

void Run() {
  Banner("Ablation: server ranking policies",
         "Crawl cost under different overflow-ranking policies (k=256). "
         "Expected: small spread, no blow-ups");
  const uint64_t k = 256;
  auto adult = std::make_shared<const Dataset>(GenerateAdultNumeric());
  auto nsf = std::make_shared<const Dataset>(GenerateNsf());

  struct PolicyCase {
    std::string label;
    std::function<std::unique_ptr<RankingPolicy>()> make;
  };
  std::vector<PolicyCase> policies = {
      {"random (seed 1)", [] { return MakeRandomPriorityPolicy(1); }},
      {"random (seed 2)", [] { return MakeRandomPriorityPolicy(2); }},
      {"oldest-first", [] { return MakeIdOrderPolicy(true); }},
      {"newest-first", [] { return MakeIdOrderPolicy(false); }},
      {"by-attr-0 asc", [] { return MakeByAttributePolicy(0, true); }},
      {"by-attr-0 desc", [] { return MakeByAttributePolicy(0, false); }},
  };

  FigureTable table("Ranking-policy ablation (k=256)", "ablation_policies",
                    {"policy", "rank-shrink on Adult-numeric",
                     "lazy-slice-cover on NSF"});
  for (const PolicyCase& p : policies) {
    RankShrink rank;
    SliceCoverCrawler lazy(true);
    uint64_t rank_cost = CostUnder(&rank, adult, k, p.make());
    uint64_t lazy_cost = CostUnder(&lazy, nsf, k, p.make());
    table.AddRow({p.label, std::to_string(rank_cost),
                  std::to_string(lazy_cost)});
  }
  table.Emit();
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
