// Copyright (c) hdc authors. Apache-2.0 license.
//
// Crawl-planner bench: what does predicate pushdown save on the paper's
// Yahoo! Autos simulacrum? A selective conjunctive filter (HDC_CHECK'd to
// <= 10% selectivity) is answered three ways with the same crawler and the
// same ranking seed:
//
//   plan=filter    crawl the whole database, filter in memory — the
//                  pre-planner pipeline; bills the full-crawl cost.
//   plan=pushdown  compile the filter into a CrawlPlan: root rectangle
//                  seeds the frontier, the pruning oracle rejects
//                  disjoint regions, the residual gates collection.
//   plan=subspace  crawl a database containing *only* the satisfying
//                  tuples, full-space seed — the cost of the satisfying
//                  subspace as if it were the whole database; the
//                  planner's natural floor-of-merit.
//
// Every run's extraction is verified (exact multiset) before any number is
// printed. Billed query counts are deterministic, so the regression gate
// (tools/check_bench_regression.py) compares them exactly per plan group
// and enforces the headline claims on the current run: pushdown must bill
// no more than the subspace crawl, and at least 3x fewer queries than
// crawl-then-filter.
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/crawl_plan.h"
#include "core/crawlers.h"
#include "gen/yahoo_gen.h"
#include "harness.h"
#include "server/local_server.h"
#include "server/ranking.h"
#include "util/macros.h"

namespace hdc {
namespace bench {
namespace {

constexpr uint64_t kK = 256;  // Yahoo needs k >= 128 (heavy listing)
constexpr uint64_t kPolicySeed = 0x5eed;

// The headline predicate: single-owner coupes of recent vintage — two
// pinned categoricals plus a numeric range, ~3.4% of the listings.
// Attributes: Owner(2), Body-style(7), Make(85), Mileage, Year, Price.
CrawlPredicate HeadlinePredicate() {
  CrawlPredicate p;
  p.AddIn(0, {1});            // single-owner listings
  p.AddIn(1, {2});            // one body style
  p.AddRange(4, 2008, 2012);  // recent model years
  return p;
}

struct MeasuredRun {
  uint64_t queries = 0;
  uint64_t extracted = 0;
  double wall_seconds = 0.0;
};

MeasuredRun Measure(std::shared_ptr<const Dataset> dataset,
                    const CrawlOptions& options, const Dataset& expect) {
  LocalServer server(dataset, kK, MakeRandomPriorityPolicy(kPolicySeed));
  HybridCrawler crawler;
  auto start = std::chrono::steady_clock::now();
  CrawlResult result = crawler.Crawl(&server, options);
  auto end = std::chrono::steady_clock::now();
  HDC_CHECK_MSG(result.status.ok(), "bench crawl failed");
  HDC_CHECK_MSG(Dataset::MultisetEquals(result.extracted, expect),
                "bench crawl did not extract the expected multiset");
  MeasuredRun run;
  run.queries = result.queries_issued;
  run.extracted = result.extracted.size();
  run.wall_seconds = std::chrono::duration<double>(end - start).count();
  return run;
}

}  // namespace

int Main() {
  Banner("planner",
         "predicate pushdown vs crawl-then-filter vs subspace-only crawl "
         "(Yahoo! Autos simulacrum, k = 256)");

  auto yahoo = std::make_shared<const Dataset>(GenerateYahoo());

  CrawlPlan plan;
  Status compiled =
      CompileCrawlPlan(yahoo->schema(), HeadlinePredicate(), &plan);
  HDC_CHECK_MSG(compiled.ok(), "predicate failed to compile");

  Dataset satisfying(yahoo->schema());
  for (const Tuple& t : yahoo->tuples()) {
    if (plan.Matches(t)) satisfying.Add(t);
  }
  const double selectivity =
      static_cast<double>(satisfying.size()) / yahoo->size();
  HDC_CHECK_MSG(selectivity > 0.0 && selectivity <= 0.10,
                "headline predicate must select at most 10% of the data");

  // plan=filter: the whole database, filtered after the fact.
  CrawlOptions plain;
  MeasuredRun filter = Measure(yahoo, plain, *yahoo);

  // plan=pushdown: same database, planner engaged.
  CrawlOptions pushed;
  pushed.plan = &plan;
  MeasuredRun pushdown = Measure(yahoo, pushed, satisfying);

  // plan=subspace: only the satisfying tuples exist.
  auto subspace_data = std::make_shared<const Dataset>(satisfying);
  MeasuredRun subspace = Measure(subspace_data, plain, satisfying);

  // The claims the regression gate re-checks from the CSV.
  HDC_CHECK_MSG(pushdown.queries <= subspace.queries,
                "pushdown billed more than the subspace-only crawl");
  HDC_CHECK_MSG(pushdown.queries * 3 <= filter.queries,
                "pushdown is not 3x cheaper than crawl-then-filter");

  FigureTable table(
      "Planner pushdown (hybrid crawler, Yahoo, selectivity " +
          std::to_string(selectivity) + ")",
      "bench_planner",
      {"plan", "algorithm", "selectivity", "billed queries", "extracted",
       "wall_seconds"});
  auto row = [&](const std::string& mode, const MeasuredRun& run) {
    table.AddRow({mode, "hybrid", std::to_string(selectivity),
                  std::to_string(run.queries), std::to_string(run.extracted),
                  std::to_string(run.wall_seconds)});
  };
  row("filter", filter);
  row("pushdown", pushdown);
  row("subspace", subspace);
  table.Emit();
  return 0;
}

}  // namespace bench
}  // namespace hdc

int main() { return hdc::bench::Main(); }
