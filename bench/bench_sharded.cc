// Copyright (c) hdc authors. Apache-2.0 license.
//
// Sharded backend bench: the same deterministic workload driven through the
// scatter-gather ShardedServer at 1, 2 and 4 shards, then at connection
// scale — 64 concurrent scatter-gather clients, each dialing every shard's
// epoll endpoint, so the 4-shard row holds 256 live sessions at once. The
// CSV is shard-tagged (the `shards` column) so the regression gate compares
// 4-shard wall-times only against 4-shard baselines
// (tools/check_bench_regression.py groups rows by shards). Query and tuple
// counts are deterministic and gated exactly; wall clocks only warn.
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "harness.h"
#include "net/remote_server.h"
#include "net/service_endpoint.h"
#include "server/crawl_service.h"
#include "server/sharding.h"
#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace bench {
namespace {

constexpr size_t kWorkload = 256;       // queries in the fixed script
constexpr size_t kClients = 64;         // concurrent scatter-gather clients
constexpr size_t kQueriesPerClient = 8; // each client's slice of the script

std::shared_ptr<const Dataset> BenchData() {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {8, 40};
  gen.num_numeric = 1;
  gen.n = 10000;
  gen.value_range = 10000;
  gen.seed = 29;
  return std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));
}

/// The fixed workload: kWorkload mixed queries, seeded.
std::vector<Query> Workload(const SchemaPtr& schema) {
  Rng rng(23);
  std::vector<Query> queries;
  queries.reserve(kWorkload);
  for (size_t i = 0; i < kWorkload; ++i) {
    Query q = Query::FullSpace(schema);
    if (rng.Bernoulli(0.5)) {
      q = q.WithCategoricalEquals(
          0, rng.UniformInt(1, static_cast<Value>(schema->domain_size(0))));
    }
    if (rng.Bernoulli(0.7)) {
      const Value lo = rng.UniformInt(0, 8000);
      q = q.WithNumericRange(2, lo, lo + 1500);
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Issues `workload` in rounds of `batch`; returns {answered, tuples, wall}.
struct DriveStats {
  uint64_t answered = 0;
  uint64_t tuples = 0;
  double seconds = 0.0;
};

DriveStats Drive(HiddenDbServer* server, size_t batch,
                 const std::vector<Query>& workload) {
  DriveStats stats;
  std::vector<Response> responses;
  const auto start = std::chrono::steady_clock::now();
  for (size_t at = 0; at < workload.size(); at += batch) {
    const size_t n = std::min(batch, workload.size() - at);
    const std::vector<Query> round(workload.begin() + at,
                                   workload.begin() + at + n);
    HDC_CHECK_OK(server->IssueBatch(round, &responses));
    stats.answered += responses.size();
    for (const Response& r : responses) stats.tuples += r.size();
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  using namespace hdc;
  using namespace hdc::bench;

  Banner("sharded",
         "scatter-gather over 1/2/4 shards: 256 mixed queries in-process, "
         "then 64 concurrent clients dialing every shard's epoll endpoint "
         "(4-shard row = 256 live sessions)");

  auto data = BenchData();
  const uint64_t k = std::max<uint64_t>(500, data->MaxPointMultiplicity());
  const std::vector<Query> workload = Workload(data->schema());

  FigureTable table("Sharded scatter-gather", "bench_sharded",
                    {"shards", "mode", "sessions", "queries", "tuples",
                     "wall seconds"});

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardPlanOptions plan_options;
    plan_options.num_shards = shards;
    ShardPlan plan =
        ShardPlan::Partition(data, k, nullptr, plan_options);

    // --- one scatter-gather conversation over in-process shard indexes ---
    {
      auto sharded = ShardedServer::OverPlan(plan);
      DriveStats stats = Drive(sharded.get(), /*batch=*/16, workload);
      table.AddRow({std::to_string(shards), "scatter-gather", "1",
                    std::to_string(stats.answered),
                    std::to_string(stats.tuples),
                    std::to_string(stats.seconds)});
    }

    // --- connection scale: kClients concurrent clients, each dialing every
    // shard's live endpoint (kClients * shards concurrent sessions) ---
    std::vector<std::unique_ptr<CrawlService>> services;
    std::vector<std::unique_ptr<net::ServiceEndpoint>> endpoints;
    for (size_t s = 0; s < plan.num_shards(); ++s) {
      services.push_back(
          std::make_unique<CrawlService>(plan.BuildShardIndex(s)));
      endpoints.push_back(
          std::make_unique<net::ServiceEndpoint>(services.back().get()));
      HDC_CHECK_OK(endpoints.back()->Start());
    }

    // Connect every client's shard fan-out up front so all sessions are
    // live simultaneously, then drive them concurrently.
    std::vector<std::unique_ptr<ShardedServer>> clients;
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      std::vector<ShardBackend> backends;
      for (size_t s = 0; s < plan.num_shards(); ++s) {
        net::RemoteServerOptions remote;
        remote.label =
            "bench-" + std::to_string(c) + "-" + std::to_string(s);
        std::unique_ptr<net::RemoteServer> client;
        HDC_CHECK_OK(net::RemoteServer::Connect(
            "127.0.0.1", endpoints[s]->port(), remote, &client));
        ShardBackend backend;
        backend.server = std::move(client);
        backend.global_ids = plan.shard_global_ids(s);
        backends.push_back(std::move(backend));
      }
      clients.push_back(std::make_unique<ShardedServer>(
          std::move(backends), plan.shared_global_priorities()));
    }

    std::vector<DriveStats> per_client(kClients);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        const size_t at = (c * kQueriesPerClient) % kWorkload;
        const std::vector<Query> slice(
            workload.begin() + at,
            workload.begin() + at + kQueriesPerClient);
        per_client[c] = Drive(clients[c].get(), /*batch=*/4, slice);
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    uint64_t answered = 0, tuples = 0;
    for (const DriveStats& stats : per_client) {
      answered += stats.answered;
      tuples += stats.tuples;
    }
    table.AddRow({std::to_string(shards), "endpoint-scale",
                  std::to_string(kClients * shards),
                  std::to_string(answered), std::to_string(tuples),
                  std::to_string(wall)});

    clients.clear();
    for (auto& endpoint : endpoints) endpoint->Stop();
  }

  table.Emit();
  return 0;
}
