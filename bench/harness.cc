// Copyright (c) hdc authors. Apache-2.0 license.
#include "harness.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "server/local_server.h"
#include "server/ranking.h"
#include "util/csv_writer.h"
#include "util/macros.h"

namespace hdc {
namespace bench {

RunStats RunCrawl(Crawler* crawler, std::shared_ptr<const Dataset> dataset,
                  uint64_t k, uint64_t policy_seed, bool record_trace,
                  std::vector<TraceEntry>* trace_out) {
  LocalServer server(dataset, k, MakeRandomPriorityPolicy(policy_seed));
  CrawlOptions options;
  options.record_trace = record_trace;

  auto start = std::chrono::steady_clock::now();
  CrawlResult result = crawler->Crawl(&server, options);
  auto end = std::chrono::steady_clock::now();

  RunStats stats;
  stats.queries = result.queries_issued;
  stats.ok = result.status.ok();
  stats.status = result.status.ToString();
  stats.wall_seconds = std::chrono::duration<double>(end - start).count();
  stats.extracted = result.extracted.size();

  if (result.status.ok()) {
    HDC_CHECK_MSG(Dataset::MultisetEquals(result.extracted, *dataset),
                  "bench crawl did not extract the exact multiset");
  }
  if (trace_out != nullptr) *trace_out = std::move(result.trace);
  return stats;
}

void EmitTable(const TablePrinter& table, const std::string& stem,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  table.Print(std::cout);
  std::cout << std::endl;

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) return;  // CSV mirroring is best-effort
  CsvWriter csv("bench_results/" + stem + ".csv");
  if (!csv.status().ok()) return;
  csv.WriteRow(headers);
  for (const auto& row : rows) csv.WriteRow(row);
  csv.Close();
}

FigureTable::FigureTable(std::string title, std::string csv_stem,
                         std::vector<std::string> headers)
    : title_(std::move(title)),
      csv_stem_(std::move(csv_stem)),
      headers_(std::move(headers)) {}

void FigureTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void FigureTable::Emit() {
  TablePrinter table(title_, headers_);
  for (const auto& row : rows_) table.AddRow(row);
  EmitTable(table, csv_stem_, headers_, rows_);
}

void Banner(const std::string& figure, const std::string& description) {
  std::cout << "########################################################\n"
            << "# " << figure << "\n"
            << "# " << description << "\n"
            << "########################################################\n\n";
}

}  // namespace bench
}  // namespace hdc
