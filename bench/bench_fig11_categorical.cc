// Copyright (c) hdc authors. Apache-2.0 license.
//
// Figure 11 reproduction: query cost of the categorical algorithms (DFS,
// slice-cover, lazy-slice-cover) on NSF.
//   (a) cost vs k in {64..1024}, d = 9     (paper plot is log-scale)
//   (b) cost vs d in {5..9}, k = 256, keeping the d attributes with the
//       most distinct values
//   (c) cost vs dataset size (20%..100%), k = 256, d = 9
//
// Paper shape to reproduce: lazy-slice-cover is the clear winner
// everywhere; eager slice-cover is the *worst* on real-ish data because it
// pays the full Sigma U_i ~ 34k preprocessing queries up front (optimality
// is a worst-case statement, not a per-instance one).
#include <memory>

#include "core/dfs_crawler.h"
#include "core/slice_cover.h"
#include "gen/nsf_gen.h"
#include "harness.h"
#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace bench {
namespace {

std::vector<std::string> Row(const std::string& head,
                             const std::shared_ptr<const Dataset>& data,
                             uint64_t k) {
  DfsCrawler dfs;
  SliceCoverCrawler eager(false), lazy(true);
  RunStats d = RunCrawl(&dfs, data, k);
  RunStats e = RunCrawl(&eager, data, k);
  RunStats l = RunCrawl(&lazy, data, k);
  HDC_CHECK_MSG(d.ok && e.ok && l.ok, "Figure 11 crawl did not complete");
  return {head, std::to_string(d.queries), std::to_string(e.queries),
          std::to_string(l.queries)};
}

void FigureA(const std::shared_ptr<const Dataset>& nsf) {
  FigureTable table("Figure 11a: cost vs k (NSF, d=9)", "fig11a",
                    {"k", "DFS", "slice-cover", "lazy-slice-cover"});
  for (uint64_t k : {64, 128, 256, 512, 1024}) {
    table.AddRow(Row(std::to_string(k), nsf, k));
  }
  table.Emit();
}

void FigureB(const std::shared_ptr<const Dataset>& nsf) {
  FigureTable table("Figure 11b: cost vs d (NSF, k=256)", "fig11b",
                    {"d", "DFS", "slice-cover", "lazy-slice-cover"});
  const uint64_t k = 256;
  for (size_t d : {5, 6, 7, 8, 9}) {
    auto projected = std::make_shared<Dataset>(
        nsf->Project(nsf->TopDistinctAttributes(d)));
    table.AddRow(Row(std::to_string(d), projected, k));
  }
  table.Emit();
}

void FigureC(const std::shared_ptr<const Dataset>& nsf) {
  FigureTable table("Figure 11c: cost vs n (NSF, k=256, d=9)", "fig11c",
                    {"sample", "n", "DFS", "slice-cover", "lazy-slice-cover"});
  const uint64_t k = 256;
  for (int pct : {20, 40, 60, 80, 100}) {
    Rng rng(1111 + pct);
    auto sample = std::make_shared<Dataset>(
        pct == 100 ? *nsf : nsf->BernoulliSample(pct / 100.0, &rng));
    auto row = Row(std::to_string(pct) + "%", sample, k);
    row.insert(row.begin() + 1, std::to_string(sample->size()));
    table.AddRow(row);
  }
  table.Emit();
}

void Run() {
  Banner("Figure 11",
         "Categorical crawlers on NSF (47,816 tuples, 9 attributes, "
         "Sigma U_i = 34,077). Expected: lazy-slice-cover wins at every "
         "k; eager slice-cover pinned near Sigma U_i regardless of k; "
         "DFS ~ 1/k");
  auto nsf = std::make_shared<const Dataset>(GenerateNsf());
  FigureA(nsf);
  FigureB(nsf);
  FigureC(nsf);
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
