// Copyright (c) hdc authors. Apache-2.0 license.
//
// Transport round-trip bench: the same deterministic query workload driven
// through the in-process stack and through the RemoteServer loopback
// transport at several batch sizes. The CSV is transport-tagged (the
// `transport` column) so the nightly regression gate compares loopback
// wall-times only against loopback baselines and in-process only against
// in-process — mixing them would make every wall-time comparison
// meaningless (tools/check_bench_regression.py groups rows by transport).
// The query counts are deterministic and gated exactly, like every other
// bench.
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "gen/synthetic.h"
#include "harness.h"
#include "net/remote_server.h"
#include "net/service_endpoint.h"
#include "server/crawl_service.h"
#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace bench {
namespace {

std::shared_ptr<const Dataset> BenchData() {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {8, 40};
  gen.num_numeric = 1;
  gen.n = 20000;
  gen.value_range = 10000;
  gen.seed = 13;
  return std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));
}

/// The fixed workload: 256 mixed queries, seeded.
std::vector<Query> Workload(const SchemaPtr& schema) {
  Rng rng(17);
  std::vector<Query> queries;
  queries.reserve(256);
  for (size_t i = 0; i < 256; ++i) {
    Query q = Query::FullSpace(schema);
    if (rng.Bernoulli(0.5)) {
      q = q.WithCategoricalEquals(
          0, rng.UniformInt(1, static_cast<Value>(schema->domain_size(0))));
    }
    if (rng.Bernoulli(0.7)) {
      const Value lo = rng.UniformInt(0, 8000);
      q = q.WithNumericRange(2, lo, lo + 1500);
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Issues the workload in rounds of `batch` against `server`; returns
/// {queries answered, wall seconds}.
std::pair<uint64_t, double> Drive(HiddenDbServer* server, size_t batch,
                                  const std::vector<Query>& workload) {
  uint64_t answered = 0;
  std::vector<Response> responses;
  const auto start = std::chrono::steady_clock::now();
  for (size_t at = 0; at < workload.size(); at += batch) {
    const size_t n = std::min(batch, workload.size() - at);
    const std::vector<Query> round(workload.begin() + at,
                                   workload.begin() + at + n);
    HDC_CHECK_OK(server->IssueBatch(round, &responses));
    answered += responses.size();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {answered, seconds};
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  using namespace hdc;
  using namespace hdc::bench;

  Banner("transport",
         "in-process vs loopback wire: 256 mixed queries, k = 1000, "
         "batch sizes 1/16/64");

  auto data = BenchData();
  const uint64_t k = std::max<uint64_t>(1000, data->MaxPointMultiplicity());
  const std::vector<Query> workload = Workload(data->schema());

  FigureTable table("Transport round-trips", "transport_roundtrip",
                    {"transport", "batch size", "queries", "wall seconds"});

  CrawlServiceOptions service_options;
  service_options.max_parallelism = 4;
  CrawlService service(data, k, nullptr, service_options);

  for (size_t batch : {size_t{1}, size_t{16}, size_t{64}}) {
    auto session = service.CreateSession();
    auto [answered, seconds] = Drive(session.get(), batch, workload);
    table.AddRow({"in-process", std::to_string(batch),
                  std::to_string(answered), std::to_string(seconds)});
  }

  net::ServiceEndpoint endpoint(&service);
  HDC_CHECK_OK(endpoint.Start());
  for (size_t batch : {size_t{1}, size_t{16}, size_t{64}}) {
    std::unique_ptr<net::RemoteServer> client;
    HDC_CHECK_OK(net::RemoteServer::Connect("127.0.0.1", endpoint.port(), {},
                                            &client));
    auto [answered, seconds] = Drive(client.get(), batch, workload);
    table.AddRow({"loopback", std::to_string(batch),
                  std::to_string(answered), std::to_string(seconds)});
  }
  endpoint.Stop();

  table.Emit();
  return 0;
}
