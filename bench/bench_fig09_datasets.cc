// Copyright (c) hdc authors. Apache-2.0 license.
//
// Figure 9 reproduction: the attribute/domain-size inventory of the three
// evaluation datasets, regenerated from the simulacra plus measured
// statistics (cardinality, distinct counts, max point multiplicity). The
// paper's table lists the schema; this bench proves the generated data
// matches it.
#include <iostream>
#include <string>

#include "data/dataset.h"
#include "gen/adult_gen.h"
#include "gen/nsf_gen.h"
#include "gen/yahoo_gen.h"
#include "harness.h"

namespace hdc {
namespace bench {
namespace {

void DescribeDataset(const std::string& name, const Dataset& dataset) {
  FigureTable table(
      "Figure 9 (" + name + "): n = " + std::to_string(dataset.size()) +
          ", max point multiplicity = " +
          std::to_string(dataset.MaxPointMultiplicity()),
      "fig09_" + name,
      {"attribute", "kind", "domain", "observed distinct", "min", "max"});

  auto stats = dataset.ComputeAttributeStats();
  for (size_t a = 0; a < stats.size(); ++a) {
    const AttributeSpec& spec = dataset.schema()->attribute(a);
    table.AddRow({spec.name, AttributeKindName(spec.kind),
                  spec.is_categorical() ? std::to_string(spec.domain_size)
                                        : std::string("num"),
                  std::to_string(stats[a].distinct_values),
                  std::to_string(stats[a].min_value),
                  std::to_string(stats[a].max_value)});
  }
  table.Emit();
}

void Run() {
  Banner("Figure 9", "Attributes and domain sizes of the deployed datasets "
                     "(paper: Yahoo 69,768 / NSF 47,816 / Adult 45,222)");
  DescribeDataset("Yahoo", GenerateYahoo());
  DescribeDataset("NSF", GenerateNsf());
  DescribeDataset("Adult", GenerateAdult());
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
