// Copyright (c) hdc authors. Apache-2.0 license.
//
// Shared plumbing for the figure-reproduction benches. Every bench binary
// prints an aligned table whose rows mirror one figure of the paper's
// evaluation (Section 6) and appends the same series to a CSV under
// ./bench_results/ for external plotting.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/crawler.h"
#include "data/dataset.h"
#include "util/table_printer.h"

namespace hdc {
namespace bench {

/// Outcome of one measured crawl.
struct RunStats {
  uint64_t queries = 0;
  bool ok = false;
  std::string status;
  double wall_seconds = 0.0;
  uint64_t extracted = 0;
};

/// Crawls `dataset` with `crawler` against a LocalServer with result limit
/// `k` and the paper's random-priority ranking (fixed seed for
/// reproducibility). Verifies the extraction is the exact multiset when the
/// crawl completes; aborts the bench on a mismatch — a wrong reproduction
/// must not print plausible numbers.
RunStats RunCrawl(Crawler* crawler, std::shared_ptr<const Dataset> dataset,
                  uint64_t k, uint64_t policy_seed = 0x5eed,
                  bool record_trace = false,
                  std::vector<TraceEntry>* trace_out = nullptr);

/// Writes `table` to stdout and mirrors it to bench_results/<stem>.csv.
void EmitTable(const TablePrinter& table, const std::string& stem,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows);

/// Convenience wrapper that keeps rows in one place.
class FigureTable {
 public:
  FigureTable(std::string title, std::string csv_stem,
              std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Prints the table and writes the CSV.
  void Emit();

 private:
  std::string title_;
  std::string csv_stem_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard bench banner (figure id + setup recap).
void Banner(const std::string& figure, const std::string& description);

}  // namespace bench
}  // namespace hdc
