// Copyright (c) hdc authors. Apache-2.0 license.
//
// Figure 13 reproduction: output progressiveness of the hybrid crawler at
// k = 256 — the percentage of tuples already retrieved as a function of the
// percentage of queries already issued, sampled at every decile.
//
// Paper shape to reproduce: both curves hug the diagonal ("linear
// progressiveness"), so a crawl interrupted after x% of its queries has
// retrieved roughly x% of the database.
#include <memory>
#include <vector>

#include "core/hybrid.h"
#include "gen/adult_gen.h"
#include "gen/yahoo_gen.h"
#include "harness.h"

namespace hdc {
namespace bench {
namespace {

/// Percent of rows seen at each decile of the query budget.
std::vector<double> ProgressDeciles(const std::shared_ptr<const Dataset>& data,
                                    uint64_t k) {
  HybridCrawler crawler;
  std::vector<TraceEntry> trace;
  RunStats stats =
      RunCrawl(&crawler, data, k, 0x5eed, /*record_trace=*/true, &trace);
  HDC_CHECK(stats.ok);
  HDC_CHECK(!trace.empty());

  std::vector<double> out;
  const double n = static_cast<double>(data->size());
  for (int decile = 1; decile <= 10; ++decile) {
    size_t idx = trace.size() * decile / 10;
    if (idx > 0) --idx;
    out.push_back(100.0 * static_cast<double>(trace[idx].rows_seen) / n);
  }
  return out;
}

void Run() {
  Banner("Figure 13",
         "Output progressiveness of hybrid (k=256): % of tuples retrieved "
         "vs % of queries issued. Expected: near-diagonal curves for both "
         "datasets");
  const uint64_t k = 256;
  auto yahoo = std::make_shared<const Dataset>(GenerateYahoo());
  auto adult = std::make_shared<const Dataset>(GenerateAdult());

  std::vector<double> yahoo_curve = ProgressDeciles(yahoo, k);
  std::vector<double> adult_curve = ProgressDeciles(adult, k);

  FigureTable table("Figure 13: progressiveness of hybrid (k=256)", "fig13",
                    {"% queries", "Yahoo % tuples", "Adult % tuples"});
  for (int decile = 1; decile <= 10; ++decile) {
    table.AddRow({std::to_string(decile * 10) + "%",
                  TablePrinter::Cell(yahoo_curve[decile - 1], 1),
                  TablePrinter::Cell(adult_curve[decile - 1], 1)});
  }
  table.Emit();
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
