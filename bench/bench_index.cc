// Copyright (c) hdc authors. Apache-2.0 license.
//
// LocalIndex raw-speed microbench: wall time per predicate shape for each
// evaluation engine (scan oracle / legacy single-driver / bitmap). The
// dataset is a fixed synthetic 1M-row instance (override with --rows):
//
//   Make  : categorical, 16 values, uniform  — straddles the array/bitset
//                                              container cutover at 1M rows
//   Brand : categorical, 64 values, uniform  — array containers
//   Model : categorical, 256 values, uniform — sparse array containers
//   Type  : categorical, 8 values, uniform   — dense bitset containers
//   Price : numeric, uniform random in [0, rows)   — zone maps useless
//   Listed: numeric, equal to the row id           — perfectly clustered,
//                                                    the zone-map showcase
//
// Every engine answers the identical deterministic query script, so the
// non-time CSV columns (tuples, overflows) double as a cross-engine
// equivalence check and pin the bench under tools/check_bench_regression.py.
// The nightly gate additionally enforces the headline ratio: bitmap must
// beat legacy by >= 4x wall time on the selective multi-predicate shape.
//
// Each shape's script is timed --repeats times and the minimum wall is
// reported: the minimum is the least-noise estimator of the true cost on a
// shared machine, and the engine-vs-engine ratio the gate checks needs it.
//
//   ./bench_index [--rows N] [--queries Q] [--repeats R]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "server/local_server.h"
#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace bench {
namespace {

constexpr uint64_t kTopK = 100;

std::shared_ptr<const Dataset> BuildDataset(size_t rows) {
  SchemaPtr schema = Schema::Make(
      {AttributeSpec::Categorical("Make", 16),
       AttributeSpec::Categorical("Brand", 64),
       AttributeSpec::Categorical("Model", 256),
       AttributeSpec::Categorical("Type", 8),
       AttributeSpec::NumericBounded("Price", 0,
                                     static_cast<Value>(rows) - 1),
       AttributeSpec::NumericBounded("Listed", 0,
                                     static_cast<Value>(rows) - 1)});
  auto data = std::make_shared<Dataset>(schema);
  Rng rng(0xb17);
  for (size_t i = 0; i < rows; ++i) {
    data->AddUnchecked(Tuple{rng.UniformInt(1, 16), rng.UniformInt(1, 64),
                             rng.UniformInt(1, 256), rng.UniformInt(1, 8),
                             rng.UniformInt(0, static_cast<Value>(rows) - 1),
                             static_cast<Value>(i)});
  }
  return data;
}

struct Shape {
  std::string name;
  std::vector<Query> queries;
};

std::vector<Shape> BuildShapes(const SchemaPtr& schema, size_t rows,
                               size_t queries_per_shape) {
  const Value n = static_cast<Value>(rows);
  const Query full = Query::FullSpace(schema);
  std::vector<Shape> shapes;
  for (const char* name :
       {"cat-1pred", "conjunction-selective", "conjunction-3way",
        "range-narrow-clustered", "range-wide-random", "all-wildcard",
        "topk-overflow-heavy"}) {
    shapes.push_back({name, {}});
  }
  for (size_t i = 0; i < queries_per_shape; ++i) {
    const Value v = static_cast<Value>(i);
    // One moderately selective equality (~rows/64 matches, overflowing).
    shapes[0].queries.push_back(
        full.WithCategoricalEquals(1, 1 + (v * 7) % 64));
    // The headline shape: two dense predicates whose containers are both
    // bitsets at 1M rows, so the bitmap engine folds the conjunction with
    // word-wide ANDs while legacy walks ~60k driver ids one binary search
    // at a time. This row carries the >= 4x nightly ratio gate.
    shapes[1].queries.push_back(full.WithCategoricalEquals(0, 1 + v % 16)
                                    .WithCategoricalEquals(3,
                                                           1 + (v * 3) % 8));
    // Three-way narrow conjunction: each predicate passes thousands of
    // rows, the conjunction a handful. The driver is small, so this is
    // legacy's best case — the bitmap engine must win on intersection
    // speed alone.
    shapes[2].queries.push_back(full.WithCategoricalEquals(0, 1 + v % 16)
                                    .WithCategoricalEquals(1, 1 + (v * 5) % 64)
                                    .WithCategoricalEquals(2,
                                                           1 + (v * 11) % 256));
    // Narrow band on the clustered column: zone maps skip all but one or
    // two blocks.
    const Value start = (v * 97911) % (n > 1000 ? n - 1000 : 1);
    shapes[3].queries.push_back(
        full.WithNumericRange(5, start, start + 999));
    // Half the table via the random column: a huge overflowing range.
    shapes[4].queries.push_back(
        full.WithNumericRange(4, n / 4, (3 * n) / 4));
    // The whole space: pure top-k selection over every row.
    shapes[5].queries.push_back(full);
    // Category x wide range: big overflow with a two-predicate
    // intersection.
    shapes[6].queries.push_back(
        full.WithCategoricalEquals(0, 1 + v % 16)
            .WithNumericRange(4, 0, n / 2));
  }
  return shapes;
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main(int argc, char** argv) {
  using namespace hdc;
  using namespace hdc::bench;

  size_t rows = 1'000'000;
  size_t queries_per_shape = 12;
  size_t repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries_per_shape =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--rows N] [--queries Q] [--repeats R]\n",
                   argv[0]);
      return 2;
    }
  }
  HDC_CHECK(rows >= 1000);
  HDC_CHECK(repeats >= 1);

  Banner("bench_index",
         "LocalIndex wall time by predicate shape and evaluation engine");
  std::printf("building %zu-row dataset...\n", rows);
  auto dataset = BuildDataset(rows);
  const std::vector<Shape> shapes =
      BuildShapes(dataset->schema(), rows, queries_per_shape);

  FigureTable table(
      "LocalIndex microbench (k = " + std::to_string(kTopK) + ", " +
          std::to_string(queries_per_shape) + " queries/shape)",
      "bench_index",
      {"engine", "shape", "rows", "queries", "k", "tuples", "overflows",
       "wall_seconds", "qps_wall"});

  for (IndexEngine engine :
       {IndexEngine::kScan, IndexEngine::kLegacy, IndexEngine::kBitmap}) {
    LocalServerOptions options;
    options.engine = engine;
    const auto build_start = std::chrono::steady_clock::now();
    LocalServer server(dataset, kTopK, nullptr, options);
    const double build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      build_start)
            .count();
    const IndexBuildStats& stats = server.index()->build_stats();
    std::printf(
        "engine %-6s built in %.2fs (%llu array + %llu bitset containers, "
        "%llu zone-map blocks)\n",
        IndexEngineName(engine), build_seconds,
        static_cast<unsigned long long>(stats.array_containers),
        static_cast<unsigned long long>(stats.bitset_containers),
        static_cast<unsigned long long>(stats.zone_map_blocks));

    for (const Shape& shape : shapes) {
      uint64_t tuples = 0;
      uint64_t overflows = 0;
      Response response;
      double wall = 0.0;
      for (size_t rep = 0; rep < repeats; ++rep) {
        tuples = 0;
        overflows = 0;
        const auto start = std::chrono::steady_clock::now();
        for (const Query& query : shape.queries) {
          HDC_CHECK_OK(server.Issue(query, &response));
          tuples += response.size();
          overflows += response.overflow ? 1 : 0;
        }
        const double rep_wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (rep == 0 || rep_wall < wall) wall = rep_wall;
      }
      char wall_cell[32], qps_cell[32];
      std::snprintf(wall_cell, sizeof(wall_cell), "%.6f", wall);
      std::snprintf(qps_cell, sizeof(qps_cell), "%.1f",
                    wall > 0 ? static_cast<double>(shape.queries.size()) / wall
                             : 0.0);
      table.AddRow({IndexEngineName(engine), shape.name,
                    std::to_string(rows),
                    std::to_string(shape.queries.size()),
                    std::to_string(kTopK), std::to_string(tuples),
                    std::to_string(overflows), wall_cell, qps_cell});
    }
  }

  table.Emit();
  return 0;
}
