// Copyright (c) hdc authors. Apache-2.0 license.
//
// Attribute-order sensitivity (DESIGN.md ablation): the categorical
// crawlers consume attributes in schema order; Section 6 fixes the order
// per dataset but never studies it. This bench crawls NSF under three
// orderings:
//   paper        — Figure 9 order (small domains first),
//   widest-first — largest domains first,
//   narrow-first — smallest domains first (same as paper for NSF).
//
// Expected: lazy-slice-cover wants narrow attributes first — putting the
// widest attribute (PI-name, 29,042 values) at level 1 forces it to issue
// a slice per root child, i.e. the whole U_1 up front. DFS moves the other
// way: a wide-but-thin first level resolves almost every child immediately.
// The Figure 9 order (narrow first) is the right choice for the optimal
// algorithm, which is presumably why the paper uses it.
#include <algorithm>
#include <memory>
#include <numeric>

#include "core/dfs_crawler.h"
#include "core/slice_cover.h"
#include "gen/nsf_gen.h"
#include "harness.h"

namespace hdc {
namespace bench {
namespace {

std::shared_ptr<const Dataset> Reorder(const Dataset& base,
                                       bool widest_first) {
  auto stats = base.ComputeAttributeStats();
  std::vector<size_t> order(stats.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const uint64_t ua = base.schema()->domain_size(a);
    const uint64_t ub = base.schema()->domain_size(b);
    return widest_first ? ua > ub : ua < ub;
  });
  return std::make_shared<const Dataset>(base.Project(order));
}

void Run() {
  Banner("Ablation: attribute ordering",
         "NSF under different attribute orders (k=256). Expected: "
         "lazy-slice-cover wants narrow domains first (widest-first costs "
         "~U_1 slices up front); DFS moves the opposite way");
  Dataset nsf = GenerateNsf();
  const uint64_t k = 256;

  struct Variant {
    std::string label;
    std::shared_ptr<const Dataset> data;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper (Figure 9)",
                      std::make_shared<const Dataset>(nsf)});
  variants.push_back({"widest-first", Reorder(nsf, /*widest_first=*/true)});
  variants.push_back({"narrowest-first",
                      Reorder(nsf, /*widest_first=*/false)});

  FigureTable table("Attribute-order ablation (NSF, k=256)",
                    "ablation_order", {"order", "DFS", "lazy-slice-cover"});
  for (const Variant& v : variants) {
    DfsCrawler dfs;
    SliceCoverCrawler lazy(true);
    RunStats d = RunCrawl(&dfs, v.data, k);
    RunStats l = RunCrawl(&lazy, v.data, k);
    table.AddRow({v.label, std::to_string(d.queries),
                  std::to_string(l.queries)});
  }
  table.Emit();
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
