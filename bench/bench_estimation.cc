// Copyright (c) hdc authors. Apache-2.0 license.
//
// Crawl vs sample (the paper's Section 1.4 positioning): lazy-slice-cover
// extracts NSF *exactly*; the random-walk size estimator ([9]-style naive
// uniform drill-down) spends a fraction of the queries for an approximate
// cardinality. This bench puts numbers on that trade-off.
//
// Expected: the naive sampler is much cheaper per walk but converges
// painfully on a sparse, skewed space — most walks hit empty cells while a
// rare walk carries a huge inverse-probability weight (heavy-tailed
// variance; reducing it is exactly the contribution of the weighted
// samplers in the related work). Meanwhile the *exact* crawl costs only a
// few thousand queries — the paper's argument that crawling has become
// practical.
#include <cmath>
#include <memory>

#include "core/size_estimator.h"
#include "core/slice_cover.h"
#include "gen/nsf_gen.h"
#include "harness.h"
#include "server/local_server.h"
#include "server/ranking.h"

namespace hdc {
namespace bench {
namespace {

void Run() {
  Banner("Crawl vs sample (Section 1.4)",
         "Exact extraction (lazy-slice-cover) vs unbiased size estimation "
         "by random drill-down on NSF (k=256)");
  auto nsf = std::make_shared<const Dataset>(GenerateNsf());
  const uint64_t k = 256;
  const double n = static_cast<double>(nsf->size());

  SliceCoverCrawler lazy(true);
  RunStats crawl = RunCrawl(&lazy, nsf, k);
  HDC_CHECK(crawl.ok);

  FigureTable table("NSF: exact crawl vs size estimation", "estimation",
                    {"method", "queries", "size reported", "error"});
  table.AddRow({"lazy-slice-cover (exact)", std::to_string(crawl.queries),
                std::to_string(nsf->size()), "0.0%"});

  for (uint64_t walks : {25u, 100u, 400u, 1600u}) {
    LocalServer server(nsf, k, MakeRandomPriorityPolicy(0x5eed));
    SizeEstimate estimate;
    HDC_CHECK_OK(EstimateDatabaseSize(&server, walks, 2012, &estimate));
    const double err = 100.0 * std::abs(estimate.estimate - n) / n;
    table.AddRow({"estimate (" + std::to_string(walks) + " walks)",
                  std::to_string(estimate.queries),
                  TablePrinter::Cell(estimate.estimate, 0),
                  TablePrinter::Cell(err, 1) + "%"});
  }
  table.Emit();
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
