// Copyright (c) hdc authors. Apache-2.0 license.
//
// Ablation of rank-shrink's two constants (DESIGN.md, "ablation benches"):
//   - split rank fraction (paper: 1/2) — where in the sorted response the
//     split value is taken;
//   - 3-way threshold fraction (paper: 1/4) — how many duplicates of the
//     split value trigger the slab isolation.
// Measured on a duplicate-heavy numeric dataset (where 3-way splits
// matter) and on near-duplicate-free Adult-numeric (where they do not).
//
// Expected: (1/2, 1/4) at or near the minimum on duplicate-heavy data; a
// threshold of 0 (always 3-way) clearly worse; on Adult-numeric the knobs
// barely matter because Case 2 almost never fires.
#include <memory>

#include "core/rank_shrink.h"
#include "gen/adult_gen.h"
#include "gen/synthetic.h"
#include "harness.h"

namespace hdc {
namespace bench {
namespace {

uint64_t CostWith(const std::shared_ptr<const Dataset>& data, uint64_t k,
                  double rank_fraction, double three_way_fraction) {
  RankShrinkOptions options;
  options.rank_fraction = rank_fraction;
  options.three_way_fraction = three_way_fraction;
  RankShrink crawler(options);
  RunStats stats = RunCrawl(&crawler, data, k);
  HDC_CHECK(stats.ok);
  return stats.queries;
}

void SweepOn(const std::string& label,
             const std::shared_ptr<const Dataset>& data, uint64_t k) {
  FigureTable table(
      "rank-shrink ablation on " + label + " (k=" + std::to_string(k) + ")",
      "ablation_split_" + label,
      {"rank fraction", "3way=0 (always)", "3way=1/8", "3way=1/4 (paper)",
       "3way=1/2"});
  for (double rank_fraction : {0.25, 0.5, 0.75}) {
    std::vector<std::string> row = {TablePrinter::Cell(rank_fraction, 2)};
    for (double three_way : {0.0, 0.125, 0.25, 0.5}) {
      row.push_back(std::to_string(CostWith(data, k, rank_fraction,
                                            three_way)));
    }
    table.AddRow(row);
  }
  table.Emit();
}

void StrategySweep(const std::string& label,
                   const std::shared_ptr<const Dataset>& data, uint64_t k) {
  FigureTable table("split-attribute strategy on " + label +
                        " (k=" + std::to_string(k) + ")",
                    "ablation_strategy_" + label,
                    {"strategy", "queries"});
  for (auto [name, strategy] :
       {std::pair<const char*, SplitAttributeStrategy>{
            "first-non-exhausted (paper)",
            SplitAttributeStrategy::kFirstNonExhausted},
        {"most-distinct-values (adaptive)",
         SplitAttributeStrategy::kMostDistinctValues}}) {
    RankShrinkOptions options;
    options.attribute_strategy = strategy;
    RankShrink crawler(options);
    RunStats stats = RunCrawl(&crawler, data, k);
    HDC_CHECK(stats.ok);
    table.AddRow({name, std::to_string(stats.queries)});
  }
  table.Emit();
}

void Run() {
  Banner("Ablation: rank-shrink split constants",
         "Sweeping the split-rank fraction (paper 1/2) and the 3-way "
         "duplicate threshold (paper 1/4)");

  // Duplicate-heavy synthetic data: skewed values + whole-point copies.
  SyntheticNumericOptions gen;
  gen.d = 3;
  gen.n = 30000;
  gen.value_range = 500;
  gen.value_skew = 1.0;
  gen.duplicate_prob = 0.2;
  gen.duplicate_pool = 16;
  gen.seed = 99;
  auto heavy =
      std::make_shared<const Dataset>(GenerateSyntheticNumeric(gen));
  const uint64_t k_heavy =
      std::max<uint64_t>(512, heavy->MaxPointMultiplicity());
  SweepOn("duplicate-heavy", heavy, k_heavy);

  auto adult = std::make_shared<const Dataset>(GenerateAdultNumeric());
  SweepOn("Adult-numeric", adult, 256);

  // Split-attribute strategy (an hdc extension; the paper always splits
  // the first non-exhausted attribute).
  StrategySweep("Adult-numeric", adult, 256);
  StrategySweep("duplicate-heavy", heavy, k_heavy);
}

}  // namespace
}  // namespace bench
}  // namespace hdc

int main() {
  hdc::bench::Run();
  return 0;
}
