// Copyright (c) hdc authors. Apache-2.0 license.
//
// google-benchmark microbenchmarks of the hidden-database server substrate.
// The evaluation's cost metric is queries, not seconds — but the substrate
// must be fast enough that full-figure reproductions run in seconds, and
// the indexed evaluator must beat the scan evaluator by a wide margin.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gen/nsf_gen.h"
#include "gen/yahoo_gen.h"
#include "net/remote_server.h"
#include "net/service_endpoint.h"
#include "server/crawl_service.h"
#include "server/local_server.h"
#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace {

std::shared_ptr<const Dataset> YahooData() {
  static auto data = std::make_shared<const Dataset>(GenerateYahoo());
  return data;
}

std::shared_ptr<const Dataset> NsfData() {
  static auto data = std::make_shared<const Dataset>(GenerateNsf());
  return data;
}

/// Random mixed query against Yahoo (make pinned half the time, a price
/// band most of the time).
Query RandomYahooQuery(Rng* rng, const SchemaPtr& schema) {
  Query q = Query::FullSpace(schema);
  if (rng->Bernoulli(0.5)) {
    q = q.WithCategoricalEquals(2, rng->UniformInt(1, 85));
  }
  if (rng->Bernoulli(0.7)) {
    Value lo = rng->UniformInt(200, 150000);
    q = q.WithNumericRange(5, lo, lo + 20000);
  }
  return q;
}

void BM_YahooIndexedQuery(benchmark::State& state) {
  auto data = YahooData();
  LocalServer server(data, 1000);
  Rng rng(7);
  Response response;
  for (auto _ : state) {
    Query q = RandomYahooQuery(&rng, data->schema());
    benchmark::DoNotOptimize(server.Issue(q, &response));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_YahooIndexedQuery);

void BM_YahooScanQuery(benchmark::State& state) {
  auto data = YahooData();
  LocalServerOptions options;
  options.engine = IndexEngine::kScan;
  LocalServer server(data, 1000, nullptr, options);
  Rng rng(7);
  Response response;
  for (auto _ : state) {
    Query q = RandomYahooQuery(&rng, data->schema());
    benchmark::DoNotOptimize(server.Issue(q, &response));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_YahooScanQuery);

void BM_NsfSliceQuery(benchmark::State& state) {
  auto data = NsfData();
  LocalServer server(data, 1000);
  Rng rng(9);
  Response response;
  const size_t attr = static_cast<size_t>(state.range(0));
  const Value domain =
      static_cast<Value>(data->schema()->domain_size(attr));
  for (auto _ : state) {
    Query q = Query::FullSpace(data->schema())
                  .WithCategoricalEquals(attr, rng.UniformInt(1, domain));
    benchmark::DoNotOptimize(server.Issue(q, &response));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
// Attr 0 = Amnt (5 values, heavy slices), attr 8 = PI-name (29,042 values,
// thin slices).
BENCHMARK(BM_NsfSliceQuery)->Arg(0)->Arg(5)->Arg(8);

/// Batched-throughput benchmark: one IssueBatch call per iteration,
/// batch size = range(0), LocalServer worker pool = range(1). The
/// {B, 1} rows are the sequential baseline; {B, P > 1} rows show the
/// wall-time win the batched contract unlocks on the same workload.
void BM_YahooBatchedIssue(benchmark::State& state) {
  auto data = YahooData();
  LocalServerOptions options;
  options.max_parallelism = static_cast<unsigned>(state.range(1));
  LocalServer server(data, 1000, nullptr, options);
  Rng rng(7);
  const size_t batch_size = static_cast<size_t>(state.range(0));
  std::vector<Query> batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    batch.push_back(RandomYahooQuery(&rng, data->schema()));
  }
  std::vector<Response> responses;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.IssueBatch(batch, &responses));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * batch_size));
}
BENCHMARK(BM_YahooBatchedIssue)
    ->ArgsProduct({{16, 64, 256}, {1, 2, 4, 8}})
    ->UseRealTime();

/// Contended multi-session scenario: one *wide* session flooding the
/// shared pool with large batches while several *narrow* tenants issue
/// small ones, all at once over one CrawlService. range(0) = the narrow
/// sessions' scheduling weight, range(1) = the wide session's lane cap
/// (0 = uncapped) — {1, 0} is the unfair baseline, {4, 1} the admission
/// config a service would run. Reported counters are the fairness story:
/// the narrow sessions' worst lane queue wait vs the wide session's, and
/// how often every narrow tenant finished while the wide crawl was still
/// running (narrow_first = 1.0 means always).
void BM_ContendedMultiSession(benchmark::State& state) {
  auto data = YahooData();
  const unsigned narrow_weight = static_cast<unsigned>(state.range(0));
  const unsigned wide_cap = static_cast<unsigned>(state.range(1));
  constexpr unsigned kNarrowSessions = 3;
  constexpr size_t kWideBatch = 256, kWideRounds = 16;
  constexpr size_t kNarrowBatch = 4, kNarrowRounds = 64;

  CrawlServiceOptions service_options;
  service_options.max_parallelism = 4;
  double narrow_wait_max = 0, wide_wait_max = 0;
  uint64_t narrow_first = 0, total_queries = 0;
  for (auto _ : state) {
    CrawlService service(data, 1000, nullptr, service_options);
    std::atomic<bool> wide_running{true};
    std::atomic<unsigned> narrow_finished_early{0};
    double iteration_narrow_max = 0, iteration_wide_max = 0;

    auto run_session = [&](unsigned weight, unsigned cap, size_t batch,
                           size_t rounds, uint64_t seed, double* wait_max,
                           bool narrow) {
      SessionOptions options;
      options.weight = weight;
      options.max_lane_parallelism = cap;
      auto session = service.CreateSession(options);
      Rng rng(seed);
      std::vector<Query> queries;
      queries.reserve(batch);
      std::vector<Response> responses;
      for (size_t r = 0; r < rounds; ++r) {
        queries.clear();
        for (size_t i = 0; i < batch; ++i) {
          queries.push_back(RandomYahooQuery(&rng, data->schema()));
        }
        benchmark::DoNotOptimize(session->IssueBatch(queries, &responses));
      }
      if (narrow && wide_running.load()) ++narrow_finished_early;
      *wait_max = session->lane_stats().queue_wait_max_seconds;
    };

    std::vector<std::thread> threads;
    std::vector<double> narrow_waits(kNarrowSessions, 0);
    threads.emplace_back([&] {
      run_session(1, wide_cap, kWideBatch, kWideRounds, 7, &iteration_wide_max,
                  false);
      wide_running.store(false);
    });
    for (unsigned i = 0; i < kNarrowSessions; ++i) {
      threads.emplace_back([&, i] {
        run_session(narrow_weight, 0, kNarrowBatch, kNarrowRounds, 100 + i,
                    &narrow_waits[i], true);
      });
    }
    for (std::thread& t : threads) t.join();

    for (double w : narrow_waits) {
      iteration_narrow_max = std::max(iteration_narrow_max, w);
    }
    narrow_wait_max = std::max(narrow_wait_max, iteration_narrow_max);
    wide_wait_max = std::max(wide_wait_max, iteration_wide_max);
    if (narrow_finished_early.load() == kNarrowSessions) ++narrow_first;
    total_queries += service.MetricsSnapshot().queries_served;
  }
  state.counters["narrow_wait_max_s"] = narrow_wait_max;
  state.counters["wide_wait_max_s"] = wide_wait_max;
  state.counters["narrow_first"] =
      static_cast<double>(narrow_first) /
      static_cast<double>(std::max<uint64_t>(1, state.iterations()));
  state.SetItemsProcessed(static_cast<int64_t>(total_queries));
}
BENCHMARK(BM_ContendedMultiSession)
    ->Args({1, 0})
    ->Args({4, 1})
    ->UseRealTime();

/// Remote batched throughput: the BM_YahooBatchedIssue workload pushed
/// through the loopback wire (ServiceEndpoint + RemoteServer). range(0) =
/// batch size, range(1) = service parallelism. Comparing a {B, P} row here
/// against its in-process twin above isolates the wire cost per round —
/// and shows how batching amortizes it (the whole point of pipelining an
/// IssueBatch over one connection).
void BM_RemoteBatchedIssue(benchmark::State& state) {
  auto data = YahooData();
  CrawlServiceOptions service_options;
  service_options.max_parallelism = static_cast<unsigned>(state.range(1));
  CrawlService service(data, 1000, nullptr, service_options);
  net::ServiceEndpoint endpoint(&service);
  HDC_CHECK_OK(endpoint.Start());
  std::unique_ptr<net::RemoteServer> client;
  HDC_CHECK_OK(
      net::RemoteServer::Connect("127.0.0.1", endpoint.port(), {}, &client));

  Rng rng(7);
  const size_t batch_size = static_cast<size_t>(state.range(0));
  std::vector<Query> batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    batch.push_back(RandomYahooQuery(&rng, data->schema()));
  }
  std::vector<Response> responses;
  for (auto _ : state) {
    // A silently failing transport must not be benchmarked as served
    // queries.
    HDC_CHECK_OK(client->IssueBatch(batch, &responses));
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * batch_size));
  endpoint.Stop();
}
BENCHMARK(BM_RemoteBatchedIssue)
    ->ArgsProduct({{16, 64, 256}, {1, 4}})
    ->UseRealTime();

void BM_ServerConstruction(benchmark::State& state) {
  auto data = YahooData();
  for (auto _ : state) {
    LocalServer server(data, 1000);
    benchmark::DoNotOptimize(&server);
  }
}
BENCHMARK(BM_ServerConstruction);

}  // namespace
}  // namespace hdc

BENCHMARK_MAIN();
