// Copyright (c) hdc authors. Apache-2.0 license.
//
// google-benchmark microbenchmarks of the hidden-database server substrate.
// The evaluation's cost metric is queries, not seconds — but the substrate
// must be fast enough that full-figure reproductions run in seconds, and
// the indexed evaluator must beat the scan evaluator by a wide margin.
#include <benchmark/benchmark.h>

#include <memory>

#include "gen/nsf_gen.h"
#include "gen/yahoo_gen.h"
#include "server/local_server.h"
#include "util/random.h"

namespace hdc {
namespace {

std::shared_ptr<const Dataset> YahooData() {
  static auto data = std::make_shared<const Dataset>(GenerateYahoo());
  return data;
}

std::shared_ptr<const Dataset> NsfData() {
  static auto data = std::make_shared<const Dataset>(GenerateNsf());
  return data;
}

/// Random mixed query against Yahoo (make pinned half the time, a price
/// band most of the time).
Query RandomYahooQuery(Rng* rng, const SchemaPtr& schema) {
  Query q = Query::FullSpace(schema);
  if (rng->Bernoulli(0.5)) {
    q = q.WithCategoricalEquals(2, rng->UniformInt(1, 85));
  }
  if (rng->Bernoulli(0.7)) {
    Value lo = rng->UniformInt(200, 150000);
    q = q.WithNumericRange(5, lo, lo + 20000);
  }
  return q;
}

void BM_YahooIndexedQuery(benchmark::State& state) {
  auto data = YahooData();
  LocalServer server(data, 1000);
  Rng rng(7);
  Response response;
  for (auto _ : state) {
    Query q = RandomYahooQuery(&rng, data->schema());
    benchmark::DoNotOptimize(server.Issue(q, &response));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_YahooIndexedQuery);

void BM_YahooScanQuery(benchmark::State& state) {
  auto data = YahooData();
  LocalServerOptions options;
  options.use_index = false;
  LocalServer server(data, 1000, nullptr, options);
  Rng rng(7);
  Response response;
  for (auto _ : state) {
    Query q = RandomYahooQuery(&rng, data->schema());
    benchmark::DoNotOptimize(server.Issue(q, &response));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_YahooScanQuery);

void BM_NsfSliceQuery(benchmark::State& state) {
  auto data = NsfData();
  LocalServer server(data, 1000);
  Rng rng(9);
  Response response;
  const size_t attr = static_cast<size_t>(state.range(0));
  const Value domain =
      static_cast<Value>(data->schema()->domain_size(attr));
  for (auto _ : state) {
    Query q = Query::FullSpace(data->schema())
                  .WithCategoricalEquals(attr, rng.UniformInt(1, domain));
    benchmark::DoNotOptimize(server.Issue(q, &response));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
// Attr 0 = Amnt (5 values, heavy slices), attr 8 = PI-name (29,042 values,
// thin slices).
BENCHMARK(BM_NsfSliceQuery)->Arg(0)->Arg(5)->Arg(8);

/// Batched-throughput benchmark: one IssueBatch call per iteration,
/// batch size = range(0), LocalServer worker pool = range(1). The
/// {B, 1} rows are the sequential baseline; {B, P > 1} rows show the
/// wall-time win the batched contract unlocks on the same workload.
void BM_YahooBatchedIssue(benchmark::State& state) {
  auto data = YahooData();
  LocalServerOptions options;
  options.max_parallelism = static_cast<unsigned>(state.range(1));
  LocalServer server(data, 1000, nullptr, options);
  Rng rng(7);
  const size_t batch_size = static_cast<size_t>(state.range(0));
  std::vector<Query> batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    batch.push_back(RandomYahooQuery(&rng, data->schema()));
  }
  std::vector<Response> responses;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.IssueBatch(batch, &responses));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * batch_size));
}
BENCHMARK(BM_YahooBatchedIssue)
    ->ArgsProduct({{16, 64, 256}, {1, 2, 4, 8}})
    ->UseRealTime();

void BM_ServerConstruction(benchmark::State& state) {
  auto data = YahooData();
  for (auto _ : state) {
    LocalServer server(data, 1000);
    benchmark::DoNotOptimize(&server);
  }
}
BENCHMARK(BM_ServerConstruction);

}  // namespace
}  // namespace hdc

BENCHMARK_MAIN();
