// Copyright (c) hdc authors. Apache-2.0 license.
//
// Quickstart: crawl a hidden database in ~30 lines.
//
// A "hidden database" answers form queries with at most k tuples plus an
// overflow signal. This example stands up an in-memory one over a small
// mixed dataset (2 categorical + 1 numeric attribute), lets the library
// pick the optimal algorithm for the space (Theorem 1's case analysis),
// and extracts every tuple.
//
//   $ ./quickstart
#include <cstdio>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/local_server.h"

int main() {
  using namespace hdc;

  // 1. A hidden database: 5,000 tuples over (Category x Brand x Price).
  SyntheticMixedOptions gen;
  gen.domain_sizes = {6, 40};  // Category(6), Brand(40)
  gen.num_numeric = 1;         // Price
  gen.n = 5000;
  gen.value_range = 10000;
  gen.seed = 7;
  auto dataset = std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));

  // 2. The server: returns at most k = 50 tuples per query.
  LocalServer server(dataset, /*k=*/50);
  std::printf("hidden database: n = %zu tuples over [%s]\n", dataset->size(),
              dataset->schema()->ToString().c_str());
  const IndexBuildStats& stats = server.index()->build_stats();
  std::printf("index engine   : %s (%llu array + %llu bitset containers, "
              "%llu zone-map blocks)\n",
              IndexEngineName(server.index()->engine()),
              static_cast<unsigned long long>(stats.array_containers),
              static_cast<unsigned long long>(stats.bitset_containers),
              static_cast<unsigned long long>(stats.zone_map_blocks));

  // 3. Crawl with the optimal algorithm for this space (here: hybrid).
  auto crawler = MakeOptimalCrawler(*dataset->schema());
  CrawlResult result = crawler->Crawl(&server);
  if (!result.status.ok()) {
    std::printf("crawl failed: %s\n", result.status.ToString().c_str());
    return 1;
  }

  // 4. The entire bag has been extracted.
  std::printf("algorithm        : %s\n", crawler->name().c_str());
  std::printf("queries issued   : %llu (ideal floor n/k = %zu)\n",
              static_cast<unsigned long long>(result.queries_issued),
              dataset->size() / 50);
  std::printf("tuples extracted : %zu (exact multiset: %s)\n",
              result.extracted.size(),
              Dataset::MultisetEquals(result.extracted, *dataset) ? "yes"
                                                                  : "NO");
  return 0;
}
