// Copyright (c) hdc authors. Apache-2.0 license.
//
// Scenario: archiving a government award-search portal (the paper's NSF
// dataset) — an all-categorical interface with nine attributes whose
// domains range from 5 to 29,042 values.
//
// Demonstrates: why naive strategies fail (the point-enumeration space has
// ~10^19 cells), what the DFS baseline costs, how lazy-slice-cover's slice
// table collapses the cost, and the Section 1.3 dependency heuristic
// (skipping queries that cannot match any real award).
//
//   $ ./crawl_nsf_awards
#include <cstdio>

#include "core/dependency.h"
#include "core/dfs_crawler.h"
#include "core/slice_cover.h"
#include "gen/nsf_gen.h"
#include "server/local_server.h"

int main() {
  using namespace hdc;

  auto awards = std::make_shared<const Dataset>(GenerateNsf());
  const SchemaPtr& schema = awards->schema();

  double cells = 1.0;
  for (size_t a = 0; a < schema->num_attributes(); ++a) {
    cells *= static_cast<double>(schema->domain_size(a));
  }
  std::printf("award portal: %zu awards, %zu categorical attributes\n",
              awards->size(), schema->num_attributes());
  std::printf("naive point enumeration would need ~%.2e queries\n\n", cells);

  const uint64_t k = 256;

  LocalServer dfs_server(awards, k);
  DfsCrawler dfs;
  CrawlResult dfs_result = dfs.Crawl(&dfs_server);
  std::printf("DFS baseline        : %8llu queries (complete: %s)\n",
              static_cast<unsigned long long>(dfs_result.queries_issued),
              dfs_result.status.ok() ? "yes" : "no");

  LocalServer lazy_server(awards, k);
  SliceCoverCrawler lazy(/*lazy=*/true);
  CrawlResult lazy_result = lazy.Crawl(&lazy_server);
  std::printf("lazy-slice-cover    : %8llu queries (complete: %s)\n",
              static_cast<unsigned long long>(lazy_result.queries_issued),
              lazy_result.status.ok() ? "yes" : "no");
  std::printf("speedup over DFS    : %8.1fx\n\n",
              static_cast<double>(dfs_result.queries_issued) /
                  static_cast<double>(lazy_result.queries_issued));

  // Section 1.3's heuristic: knowledge of attribute dependencies lets the
  // crawler skip queries that cannot match any award. Mine sound rules from
  // the portal's domain knowledge — here, every (funding bucket, field) and
  // (instrument, field) combination that never occurs.
  std::vector<ForbiddenPairOracle::ForbiddenPair> rules;
  for (const auto& [attr_a, attr_b] :
       std::vector<std::pair<size_t, size_t>>{{0, 2}, {1, 2}}) {
    const uint64_t ua = schema->domain_size(attr_a);
    const uint64_t ub = schema->domain_size(attr_b);
    std::vector<bool> present(ua * ub, false);
    for (const Tuple& t : awards->tuples()) {
      present[static_cast<size_t>(t[attr_a] - 1) * ub +
              static_cast<size_t>(t[attr_b] - 1)] = true;
    }
    for (Value va = 1; va <= static_cast<Value>(ua); ++va) {
      for (Value vb = 1; vb <= static_cast<Value>(ub); ++vb) {
        if (!present[static_cast<size_t>(va - 1) * ub +
                     static_cast<size_t>(vb - 1)]) {
          rules.push_back({attr_a, va, attr_b, vb});
        }
      }
    }
  }
  ForbiddenPairOracle oracle(std::move(rules));
  std::printf("mined %zu sound dependency rules\n", oracle.num_pairs());

  CrawlOptions options;
  options.oracle = &oracle;
  LocalServer oracle_server(awards, k);
  SliceCoverCrawler lazy_with_oracle(/*lazy=*/true);
  CrawlResult oracle_result = lazy_with_oracle.Crawl(&oracle_server, options);
  std::printf(
      "with dependency rules: %7llu queries (complete: %s, exact: %s)\n",
      static_cast<unsigned long long>(oracle_result.queries_issued),
      oracle_result.status.ok() ? "yes" : "no",
      Dataset::MultisetEquals(oracle_result.extracted, *awards) ? "yes"
                                                                : "NO");

  // Archive the extraction.
  const char* out_path = "nsf_awards_extracted.csv";
  if (lazy_result.extracted.SaveCsv(out_path).ok()) {
    std::printf("\nextraction archived to %s\n", out_path);
  }
  return 0;
}
