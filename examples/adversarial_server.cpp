// Copyright (c) hdc authors. Apache-2.0 license.
//
// Scenario: the server picks which k tuples an overflowing query returns —
// and the crawler has no say in it. Real sites rank by price, recency or
// an opaque relevance score; the paper's guarantee (and this library's
// property tests) is that extraction stays complete under *any* fixed
// ranking.
//
// This example crawls the same dataset under five adversarially different
// rankings and shows the extraction is exact every time, with only mild
// cost variation — and that for the categorical algorithms the cost is
// *identical*, because their decisions depend only on overflow bits, never
// on which tuples came back.
//
//   $ ./adversarial_server
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "core/rank_shrink.h"
#include "core/slice_cover.h"
#include "gen/synthetic.h"
#include "server/local_server.h"

int main() {
  using namespace hdc;

  SyntheticNumericOptions num_gen;
  num_gen.d = 3;
  num_gen.n = 20000;
  num_gen.value_range = 5000;
  num_gen.seed = 17;
  auto numeric_data =
      std::make_shared<const Dataset>(GenerateSyntheticNumeric(num_gen));

  SyntheticCategoricalOptions cat_gen;
  cat_gen.domain_sizes = {8, 16, 32};
  cat_gen.n = 20000;
  // Mild skew: the most popular point must stay under k copies, or Problem
  // 1 is unsolvable by definition (Section 1.1).
  cat_gen.zipf_s = 0.4;
  cat_gen.seed = 18;
  auto categorical_data = std::make_shared<const Dataset>(
      GenerateSyntheticCategorical(cat_gen));

  struct PolicyCase {
    const char* label;
    std::function<std::unique_ptr<RankingPolicy>()> make;
  };
  const std::vector<PolicyCase> policies = {
      {"random priorities ", [] { return MakeRandomPriorityPolicy(1); }},
      {"oldest rows first ", [] { return MakeIdOrderPolicy(true); }},
      {"newest rows first ", [] { return MakeIdOrderPolicy(false); }},
      {"attr0 ascending   ", [] { return MakeByAttributePolicy(0, true); }},
      {"attr0 descending  ", [] { return MakeByAttributePolicy(0, false); }},
  };

  const uint64_t k = 64;
  std::printf("k = %llu; numeric n = %zu; categorical n = %zu\n\n",
              static_cast<unsigned long long>(k), numeric_data->size(),
              categorical_data->size());
  std::printf("%-19s %18s %22s\n", "server ranking", "rank-shrink cost",
              "lazy-slice-cover cost");

  bool all_exact = true;
  for (const PolicyCase& p : policies) {
    LocalServer numeric_server(numeric_data, k, p.make());
    RankShrink rank_shrink;
    CrawlResult nr = rank_shrink.Crawl(&numeric_server);
    all_exact &= nr.status.ok() &&
                 Dataset::MultisetEquals(nr.extracted, *numeric_data);

    LocalServer categorical_server(categorical_data, k, p.make());
    SliceCoverCrawler lazy(/*lazy=*/true);
    CrawlResult cr = lazy.Crawl(&categorical_server);
    all_exact &= cr.status.ok() &&
                 Dataset::MultisetEquals(cr.extracted, *categorical_data);

    std::printf("%-19s %18llu %22llu\n", p.label,
                static_cast<unsigned long long>(nr.queries_issued),
                static_cast<unsigned long long>(cr.queries_issued));
  }

  std::printf("\nexact multiset under every ranking: %s\n",
              all_exact ? "yes" : "NO");
  std::printf("note the categorical costs are identical by design: "
              "slice-cover branches on overflow signals only.\n");
  return all_exact ? 0 : 1;
}
