// Copyright (c) hdc authors. Apache-2.0 license.
//
// Daily quota per process run: extract a hidden database that only grants
// N top-k queries per day, surviving both the daily cutoff and outright
// crashes, without ever re-billing a completed round.
//
// Each invocation is one "day": a fresh process, a fresh ServerSession with
// a fresh daily budget. Three durability pieces cooperate:
//
//   * the write-ahead frontier log (core/frontier_log.h) commits a durable
//     delta at every round boundary — a SIGKILL mid-day loses at most the
//     round in flight, never a billed-and-committed one;
//   * the session checkpoint (core/session_checkpoint.h) composes the
//     service-side budget header with the crawl state at the graceful
//     daily cutoff; resuming with restore_budget off is exactly the
//     "new day, new quota" pattern;
//   * the extraction streams through a CrawlSink into a CSV (materialize
//     off, constant memory); on resume the file is truncated to the log's
//     collected watermark, so uncommitted tail rows are dropped together
//     with their uncommitted rounds.
//
// Modes:
//   $ ./daily_quota
//       self-contained demo: loops day-runs in process until the crawl
//       completes, then verifies the CSV against the source dataset and
//       the cumulative bill against an uninterrupted reference run.
//   $ ./daily_quota --state-dir DIR [--quota N] [--crash-after-commits C]
//       one day per invocation (the CI-nightly shape). Exit codes:
//       0 = extraction complete and verified, 2 = quota exhausted
//       (progress saved; run again "tomorrow"), 3 = deliberate crash after
//       C commits (the kill-resume drill), 1 = failure.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/crawl_sink.h"
#include "core/crawlers.h"
#include "core/frontier_log.h"
#include "core/session_checkpoint.h"
#include "gen/synthetic.h"
#include "server/crawl_service.h"

namespace {

using namespace hdc;

// The hidden database is deterministic, so every process run (and the
// verification) sees the same ground truth.
std::shared_ptr<const Dataset> MakeHiddenDatabase() {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {6, 4};
  gen.num_numeric = 1;
  gen.n = 2000;
  gen.value_range = 5000;
  gen.seed = 47;
  return std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));
}

std::string CsvLine(const Tuple& t) {
  std::string line;
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) line += ',';
    line += std::to_string(t[i]);
  }
  return line;
}

// Keeps the first `keep` rows of the extraction CSV — the frontier log's
// collected watermark. Rows past it belong to rounds whose commit never
// landed; the resumed crawl will re-extract them.
bool TruncateCsvToWatermark(const std::string& path, uint64_t keep) {
  std::ifstream in(path);
  if (!in.good()) return keep == 0;
  std::string rebuilt, line;
  uint64_t kept = 0;
  while (kept < keep && std::getline(in, line)) {
    rebuilt += line;
    rebuilt += '\n';
    ++kept;
  }
  if (kept < keep) {
    std::printf("error: CSV holds %llu rows but the log committed %llu\n",
                static_cast<unsigned long long>(kept),
                static_cast<unsigned long long>(keep));
    return false;
  }
  return WriteFileDurably(path, rebuilt).ok();
}

bool VerifyCsv(const std::string& path, const Dataset& truth) {
  Dataset extracted(truth.schema());
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::vector<Value> values;
    std::istringstream fields(line);
    std::string field;
    while (std::getline(fields, field, ',')) {
      values.push_back(std::strtoll(field.c_str(), nullptr, 10));
    }
    extracted.Add(Tuple(std::move(values)));
  }
  return Dataset::MultisetEquals(extracted, truth);
}

// One day: resume whatever state survives in `state_dir`, spend at most
// `quota` queries, and either finish (0), hit the cutoff (2), or — when
// `crash_after_commits` > 0 — die mid-crawl without unwinding (3).
int RunDay(const std::string& state_dir, uint64_t quota,
           uint64_t crash_after_commits) {
  const std::string log_path = state_dir + "/frontier.log";
  const std::string ckpt_path = state_dir + "/session.ckpt";
  const std::string csv_path = state_dir + "/extraction.csv";

  auto data = MakeHiddenDatabase();
  CrawlService service(data, /*k=*/25);
  SessionOptions session_options;
  session_options.label = "daily-quota crawl";
  session_options.max_queries = quota;
  auto session = service.CreateSession(session_options);

  // Recover: the frontier log is authoritative (it commits every round);
  // the session checkpoint only exists after a *graceful* cutoff and its
  // budget header is deliberately ignored — today has today's quota.
  std::shared_ptr<CrawlState> state;
  Status replay = ReplayFrontierLog(log_path, session->schema(), &state);
  if (!replay.ok() && replay.code() != Status::Code::kNotFound) {
    std::printf("frontier log replay failed: %s\n",
                replay.ToString().c_str());
    return 1;
  }
  if (state == nullptr) {
    SessionResumeOptions new_day;
    new_day.restore_budget = false;
    Status load =
        LoadSessionCheckpointFile(ckpt_path, session.get(), &state, new_day);
    if (!load.ok() && load.code() != Status::Code::kNotFound) {
      std::printf("session checkpoint load failed: %s\n",
                  load.ToString().c_str());
      return 1;
    }
  }
  const uint64_t watermark = state != nullptr ? state->tuples_collected : 0;
  if (!TruncateCsvToWatermark(csv_path, watermark)) return 1;

  // Stream rows straight to the CSV; flushing per row keeps the file ahead
  // of (never behind) every durable commit, so the watermark truncation
  // above can always make the pair consistent after a kill.
  std::ofstream csv(csv_path, std::ios::app);
  CallbackSink sink([&csv](const Tuple& t) {
    csv << CsvLine(t) << '\n';
    csv.flush();
  });

  uint64_t commits_today = 0;
  FrontierLogOptions log_options;
  log_options.on_commit = [&](uint64_t) {
    if (crash_after_commits > 0 && ++commits_today >= crash_after_commits) {
      std::printf("simulated crash after %llu commits\n",
                  static_cast<unsigned long long>(commits_today));
      _exit(3);  // no destructors, no flushes: the SIGKILL drill
    }
  };
  std::unique_ptr<FrontierLogWriter> log;
  Status opened = FrontierLogWriter::Open(log_path, log_options, &log);
  if (!opened.ok()) {
    std::printf("cannot open frontier log: %s\n", opened.ToString().c_str());
    return 1;
  }

  HybridCrawler crawler;
  CrawlOptions options;
  options.materialize = false;  // constant memory: the CSV is the bag
  options.sink = &sink;
  options.frontier_log = log.get();
  CrawlResult result = state == nullptr
                           ? crawler.Crawl(session.get(), options)
                           : crawler.Resume(session.get(), state, options);

  if (result.status.IsResourceExhausted()) {
    Status saved = SaveSessionCheckpointFile(*session, *result.resume_state,
                                             ckpt_path);
    if (!saved.ok()) {
      std::printf("checkpoint save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("daily quota of %llu spent: %llu rows so far, "
                "%llu cumulative queries; run again tomorrow\n",
                static_cast<unsigned long long>(quota),
                static_cast<unsigned long long>(
                    result.resume_state->tuples_collected),
                static_cast<unsigned long long>(result.queries_issued));
    return 2;
  }
  if (!result.status.ok()) {
    std::printf("crawl failed: %s\n", result.status.ToString().c_str());
    return 1;
  }

  // Complete: verify the streamed CSV against the source and the
  // cumulative bill against an uninterrupted single-session run.
  csv.flush();
  if (!VerifyCsv(csv_path, *data)) {
    std::printf("FAIL: extraction CSV does not match the database\n");
    return 1;
  }
  auto ref_session = service.CreateSession();
  HybridCrawler ref_crawler;
  CrawlResult reference = ref_crawler.Crawl(ref_session.get());
  if (!reference.status.ok() ||
      reference.queries_issued != result.queries_issued) {
    std::printf("FAIL: cumulative bill %llu != uninterrupted reference "
                "%llu\n",
                static_cast<unsigned long long>(result.queries_issued),
                static_cast<unsigned long long>(reference.queries_issued));
    return 1;
  }
  std::printf("complete: %llu rows extracted for %llu queries — identical "
              "bill and bag to the uninterrupted run\n",
              static_cast<unsigned long long>(result.tuples_collected),
              static_cast<unsigned long long>(result.queries_issued));
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string state_dir;
  uint64_t quota = 150;
  uint64_t crash_after_commits = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--state-dir" && i + 1 < argc) {
      state_dir = argv[++i];
    } else if (arg == "--quota" && i + 1 < argc) {
      quota = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--crash-after-commits" && i + 1 < argc) {
      crash_after_commits = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::printf("usage: %s [--state-dir DIR] [--quota N] "
                  "[--crash-after-commits C]\n",
                  argv[0]);
      return 1;
    }
  }

  if (!state_dir.empty()) {
    std::filesystem::create_directories(state_dir);
    return RunDay(state_dir, quota, crash_after_commits);
  }

  // Self-contained demo: loop the day-runs in one process.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hdc_daily_quota_demo")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  int days = 0;
  int code = 2;
  while (code == 2) {
    if (++days > 200) {
      std::printf("FAIL: crawl did not complete in 200 days\n");
      return 1;
    }
    std::printf("--- day %d ---\n", days);
    code = RunDay(dir, quota, /*crash_after_commits=*/0);
  }
  if (code == 0 && days < 2) {
    std::printf("FAIL: quota never interrupted the crawl (demo too easy)\n");
    return 1;
  }
  return code;
}
