// Copyright (c) hdc authors. Apache-2.0 license.
//
// Delta crawl: keep an extracted copy of a mutating hidden database fresh
// without paying for a full re-crawl.
//
// The first crawl records the resolved rectangle cover plus a content hash
// per answer. When the database mutates (here: a scripted burst of inserts,
// deletes and updates), the delta crawl replays the recorded rectangles
// through an answer cache — unchanged regions cost a cheap revalidation or
// nothing at all, only changed regions are re-descended — and emits the
// exact insert/delete/update sets. The example verifies both claims: the
// refreshed extraction equals the server's rows, and the delta equals the
// diff of the two crawl records. Exits non-zero on any mismatch, so it
// doubles as a smoke test.
//
//   $ ./delta_crawl
#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "core/delta_crawl.h"
#include "gen/synthetic.h"
#include "server/mutating_server.h"

int main() {
  using namespace hdc;

  // 1. A mutating hidden database: 2,000 tuples over (Category x 2 prices),
  //    answering at most k = 25 per query and bumping db_version per burst.
  SyntheticMixedOptions gen;
  gen.domain_sizes = {5};
  gen.num_numeric = 2;
  gen.n = 2000;
  gen.value_range = 20000;
  gen.seed = 19;
  auto dataset = std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));
  MutatingLocalServer server(dataset, /*k=*/25);

  // 2. The initial full crawl resolves the whole space into a rectangle
  //    cover and records a content hash per answered rectangle.
  CrawlRecord prior;
  DeltaCrawlStats full_stats;
  Status status = BuildCrawlRecord(&server, &prior, &full_stats);
  if (!status.ok()) {
    std::printf("full crawl failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("full crawl : %llu billed queries, %zu regions, %llu tuples "
              "(db_version %llu)\n",
              static_cast<unsigned long long>(full_stats.billed_queries),
              prior.regions.size(),
              static_cast<unsigned long long>(prior.TupleCount()),
              static_cast<unsigned long long>(prior.db_version));

  // 3. The database moves: a burst of inserts, deletes and one update.
  std::vector<Mutation> burst;
  for (Value v = 0; v < 10; ++v) {
    // Categorical domains are 1-based: values 1..5.
    burst.push_back(Mutation::Insert(Tuple({1 + v % 5, v * 1801, v * 977})));
  }
  for (uint64_t id = 100; id < 110; ++id) {
    burst.push_back(Mutation::Delete(id));
  }
  burst.push_back(Mutation::Update(7, Tuple({2, 19500, 42})));
  status = server.Apply(burst);
  if (!status.ok()) {
    std::printf("mutation burst rejected: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("mutated    : +10 inserts, -10 deletes, 1 update "
              "(db_version %llu)\n",
              static_cast<unsigned long long>(server.db_version()));

  // 4. Delta crawl: replay the recorded rectangles, descend only into the
  //    regions whose content actually changed.
  CrawlRecord updated;
  CrawlDelta delta;
  DeltaCrawlStats delta_stats;
  status = DeltaCrawl(&server, prior, &updated, &delta, &delta_stats);
  if (!status.ok()) {
    std::printf("delta crawl failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("delta crawl: %llu billed queries, %llu cheap revalidations, "
              "%llu hits, %llu passes\n",
              static_cast<unsigned long long>(delta_stats.billed_queries),
              static_cast<unsigned long long>(delta_stats.cheap_revalidations),
              static_cast<unsigned long long>(delta_stats.cache_hits),
              static_cast<unsigned long long>(delta_stats.passes));
  std::printf("delta      : %zu inserted, %zu deleted, %zu updated\n",
              delta.inserted.size(), delta.deleted.size(),
              delta.updated.size());

  // 5. Verify: the refreshed extraction is exactly the server's rows...
  auto extraction = updated.Extraction();
  std::sort(extraction.begin(), extraction.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const auto rows = server.Rows();
  bool rows_match = extraction.size() == rows.size();
  for (size_t i = 0; rows_match && i < rows.size(); ++i) {
    rows_match = extraction[i].first == rows[i].first &&
                 extraction[i].second == rows[i].second;
  }
  // ...and the emitted delta is exactly the diff of the two records.
  const CrawlDelta reference = DiffRecords(prior, updated);
  const bool delta_match = delta.inserted.size() == reference.inserted.size() &&
                           delta.deleted.size() == reference.deleted.size() &&
                           delta.updated.size() == reference.updated.size();
  std::printf("verified   : extraction matches server rows: %s, delta "
              "matches record diff: %s\n",
              rows_match ? "yes" : "NO", delta_match ? "yes" : "NO");
  if (!rows_match || !delta_match) return 1;
  if (delta_stats.billed_queries >= full_stats.billed_queries) {
    std::printf("delta crawl was not cheaper than a full re-crawl\n");
    return 1;
  }
  return 0;
}
