// Copyright (c) hdc authors. Apache-2.0 license.
//
// Scenario: the payoff of crawling. The paper's opening claim is that
// extracting a hidden database "enables virtually any form of processing
// on the database's content" — analyses the site's own top-k form could
// never answer. This example crawls the used-car marketplace once and then
// runs a market report locally: per-body-style price statistics, a mileage
// histogram, price quantiles, and the best deals under constraints —
// zero further server queries.
//
//   $ ./market_report
#include <cstdio>

#include "analytics/aggregates.h"
#include "core/hybrid.h"
#include "gen/yahoo_gen.h"
#include "server/local_server.h"

int main() {
  using namespace hdc;

  auto inventory = std::make_shared<const Dataset>(GenerateYahoo());
  const uint64_t k = 256;
  LocalServer site(inventory, k);

  HybridCrawler crawler;
  CrawlResult crawl = crawler.Crawl(&site);
  if (!crawl.status.ok()) {
    std::printf("crawl failed: %s\n", crawl.status.ToString().c_str());
    return 1;
  }
  const Dataset& cars = crawl.extracted;
  std::printf("crawled %zu listings in %llu queries; report below costs 0 "
              "further queries\n\n",
              cars.size(),
              static_cast<unsigned long long>(crawl.queries_issued));

  // Attribute indices (Figure 9 order): Owner 0, Body-style 1, Make 2,
  // Mileage 3, Year 4, Price 5.
  const Query all = Query::FullSpace(cars.schema());

  std::printf("-- average price by body style ------------------------\n");
  for (const GroupedRow& row :
       GroupBy(cars, all, 1, AggregateSpec::Avg(5))) {
    std::printf("  body-style %lld: %7.0f USD over %llu listings\n",
                static_cast<long long>(row.group), row.agg.value,
                static_cast<unsigned long long>(row.agg.rows));
  }

  std::printf("\n-- price quantiles (all listings) ---------------------\n");
  for (double q : {0.1, 0.5, 0.9}) {
    auto value = Quantile(cars, all, 5, q);
    std::printf("  p%.0f: %lld USD\n", q * 100,
                static_cast<long long>(value.value_or(0)));
  }

  std::printf("\n-- mileage histogram ----------------------------------\n");
  for (const HistogramBin& bin : Histogram(cars, all, 3, 6)) {
    std::printf("  %6lld..%6lld mi: %6llu  ",
                static_cast<long long>(bin.lo),
                static_cast<long long>(bin.hi),
                static_cast<unsigned long long>(bin.count));
    for (uint64_t i = 0; i < bin.count / 1500; ++i) std::printf("#");
    std::printf("\n");
  }

  // A buyer's query the form could not rank globally: the 3 cheapest
  // single-owner cars from 2008 or newer with under 60k miles.
  std::printf("\n-- best deals: owner=1, year>=2008, mileage<=60000 ----\n");
  Query deals = all.WithCategoricalEquals(0, 1)
                    .WithNumericRange(4, 2008, 2012)
                    .WithNumericRange(3, 0, 60000);
  for (const Tuple& t : TopBy(cars, deals, 5, 3, /*ascending=*/true)) {
    std::printf("  make %2lld, body %lld, year %lld, %6lld mi — %6lld USD\n",
                static_cast<long long>(t[2]), static_cast<long long>(t[1]),
                static_cast<long long>(t[4]), static_cast<long long>(t[3]),
                static_cast<long long>(t[5]));
  }

  // Cross-check one aggregate against the live site: the server can
  // confirm a COUNT via CountMatches... but a *user* of the form cannot —
  // an overflowing query reveals only "more than k". That asymmetry is the
  // paper's point.
  AggregateResult suvs =
      Aggregate(cars, all.WithCategoricalEquals(1, 2),
                AggregateSpec::Count());
  std::printf("\nbody-style 2 listings: %llu — the form would only say "
              "\"more than %llu\"\n",
              static_cast<unsigned long long>(suvs.rows),
              static_cast<unsigned long long>(k));
  return 0;
}
