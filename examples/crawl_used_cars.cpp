// Copyright (c) hdc authors. Apache-2.0 license.
//
// Scenario: crawling a used-car marketplace (the paper's Yahoo! Autos
// motivation, Figure 1) under real-world operating constraints:
//   - the site caps every result page at k = 256 listings;
//   - the crawler's IP is limited to 500 queries per "day";
//   - the crawl must therefore checkpoint when the daily quota runs out
//     and resume the next day, losing nothing.
//
// Demonstrates: the hybrid algorithm, BudgetServer, resume states, the
// progressiveness of partial crawls (Figure 13's property: interrupt at
// x% of queries, hold ~x% of the data) and the politeness model.
//
//   $ ./crawl_used_cars
#include <cstdio>

#include "core/hybrid.h"
#include "gen/yahoo_gen.h"
#include "server/decorators.h"
#include "server/local_server.h"
#include "server/politeness.h"

int main() {
  using namespace hdc;

  auto inventory = std::make_shared<const Dataset>(GenerateYahoo());
  std::printf("marketplace inventory: %zu listings over [%s]\n\n",
              inventory->size(), inventory->schema()->ToString().c_str());

  const uint64_t k = 256;
  const uint64_t daily_quota = 500;
  LocalServer site(inventory, k);
  BudgetServer quota(&site, daily_quota);

  HybridCrawler crawler;
  int day = 1;
  CrawlResult result = crawler.Crawl(&quota);
  while (result.status.IsResourceExhausted()) {
    std::printf(
        "day %2d: quota of %llu queries spent; %llu listings retrieved so "
        "far (%.1f%%) -- checkpointing until tomorrow\n",
        day, static_cast<unsigned long long>(daily_quota),
        static_cast<unsigned long long>(result.extracted.size()),
        100.0 * static_cast<double>(result.extracted.size()) /
            static_cast<double>(inventory->size()));
    quota.Refill(daily_quota);
    ++day;
    result = crawler.Resume(&quota, result.resume_state);
  }

  if (!result.status.ok()) {
    std::printf("crawl failed: %s\n", result.status.ToString().c_str());
    return 1;
  }

  std::printf(
      "\nday %2d: crawl complete. %llu queries total, %zu listings, exact "
      "multiset: %s\n",
      day, static_cast<unsigned long long>(result.queries_issued),
      result.extracted.size(),
      Dataset::MultisetEquals(result.extracted, *inventory) ? "yes" : "NO");

  // What would this cost against the real site?
  PolitenessModel model;
  model.queries_per_day = daily_quota;
  model.per_query_latency_ms = 2000;  // stay friendly: 1 query / 2s
  auto estimate = model.EstimateDuration(result.queries_issued);
  std::printf(
      "at %llu queries/day and 2s/query, the real crawl would take %.1f "
      "days (%.1f hours of request latency)\n",
      static_cast<unsigned long long>(daily_quota), estimate.days_total,
      estimate.hours_latency_bound);

  // The paper's headline observation (Section 1.2): with k = 1000-ish
  // limits, a few hundred queries suffice for ~70k tuples.
  LocalServer generous(inventory, 1024);
  HybridCrawler again;
  CrawlResult big_k = again.Crawl(&generous);
  std::printf(
      "with the site's real page size k = 1024: only %llu queries for all "
      "%zu listings\n",
      static_cast<unsigned long long>(big_k.queries_issued),
      big_k.extracted.size());
  return 0;
}
