// Copyright (c) hdc authors. Apache-2.0 license.
//
// Remote crawling end to end: a hidden-database service behind a real TCP
// socket, and a crawler extracting it from another process.
//
// Three modes:
//
//   $ ./remote_crawl serve [port]
//       Stands up the service (CrawlService + ServiceEndpoint) on the
//       given port (default: ephemeral) and serves until killed. Prints
//       the bound port on the first line, so a script can capture it.
//
//   $ ./remote_crawl crawl <host> <port>
//       Connects a RemoteServer, crawls the whole database with the
//       optimal algorithm — adaptive (latency-aware) batching, polite
//       pacing between rounds — and prints the session accounting.
//
//   $ ./remote_crawl serve-sharded <shard> <num_shards> [port]
//       Serves ONE shard of the hash-partitioned plan over the same
//       database. Start num_shards of these (separate processes), then
//       point crawl-sharded at all of them.
//
//   $ ./remote_crawl crawl-sharded <host> <port> [port...]
//       Scatter-gather client: one RemoteServer per shard endpoint,
//       merged by a ShardedServer, crawled with the optimal algorithm
//       and verified against the source dataset — the sharded answers
//       must be byte-identical to a single-index serve.
//
//   $ ./remote_crawl
//       Both halves in one process over loopback, with verification
//       against the source dataset. This is the tier-1 smoke mode; the
//       nightly CI job runs the split server-process/client-process form
//       (plain and sharded).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "net/remote_server.h"
#include "net/service_endpoint.h"
#include "server/crawl_service.h"
#include "server/sharding.h"

namespace {

using namespace hdc;

/// The serve and crawl halves may live in different processes, so both
/// sides rebuild the same database from the same seed.
std::shared_ptr<const Dataset> ServiceDataset() {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {6, 25};  // Category(6), Brand(25)
  gen.num_numeric = 1;         // Price
  gen.n = 4000;
  gen.value_range = 8000;
  gen.seed = 11;
  return std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));
}

uint64_t ServiceK(const Dataset& dataset) {
  const uint64_t k = 50;
  return std::max(k, dataset.MaxPointMultiplicity());
}

int Serve(uint16_t port) {
  auto dataset = ServiceDataset();
  CrawlServiceOptions service_options;
  service_options.max_parallelism = 4;
  CrawlService service(dataset, ServiceK(*dataset), nullptr,
                       service_options);

  net::ServiceEndpointOptions endpoint_options;
  endpoint_options.port = port;
  net::ServiceEndpoint endpoint(&service, endpoint_options);
  Status s = endpoint.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "serve: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%u\n", static_cast<unsigned>(endpoint.port()));
  std::printf("serving %zu tuples (k = %llu) on 127.0.0.1:%u — kill to "
              "stop\n",
              dataset->size(),
              static_cast<unsigned long long>(service.k()),
              static_cast<unsigned>(endpoint.port()));
  std::fflush(stdout);
  while (true) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

// Both sides of the sharded split rebuild the same plan from the same
// seed, so shard membership and the global ranking agree across
// processes without any wire-level coordination.

int ServeShard(size_t shard, size_t num_shards, uint16_t port) {
  auto dataset = ServiceDataset();
  const uint64_t k = ServiceK(*dataset);
  ShardPlanOptions plan_options;
  plan_options.num_shards = num_shards;
  ShardPlan plan =
      ShardPlan::Partition(dataset, k, nullptr, plan_options);
  if (shard >= plan.num_shards()) {
    std::fprintf(stderr, "serve-sharded: shard %zu out of range (%zu)\n",
                 shard, plan.num_shards());
    return 2;
  }

  CrawlService service(plan.BuildShardIndex(shard));
  net::ServiceEndpointOptions endpoint_options;
  endpoint_options.port = port;
  net::ServiceEndpoint endpoint(&service, endpoint_options);
  Status s = endpoint.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "serve-sharded: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%u\n", static_cast<unsigned>(endpoint.port()));
  std::printf("serving shard %zu/%zu (%zu of %zu tuples, k = %llu) on "
              "127.0.0.1:%u — kill to stop\n",
              shard, plan.num_shards(), plan.shard_dataset(shard)->size(),
              dataset->size(), static_cast<unsigned long long>(service.k()),
              static_cast<unsigned>(endpoint.port()));
  std::fflush(stdout);
  while (true) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

int CrawlSharded(const std::string& host,
                 const std::vector<uint16_t>& ports, bool verify) {
  auto dataset = ServiceDataset();
  ShardPlanOptions plan_options;
  plan_options.num_shards = ports.size();
  ShardPlan plan = ShardPlan::Partition(dataset, ServiceK(*dataset),
                                        nullptr, plan_options);

  std::vector<ShardBackend> backends;
  std::vector<net::RemoteServer*> shard_clients;
  for (size_t s = 0; s < ports.size(); ++s) {
    net::RemoteServerOptions options;
    options.label = "remote-crawl-shard-" + std::to_string(s);
    options.politeness.min_round_delay = std::chrono::milliseconds(1);
    options.politeness.max_jitter = std::chrono::milliseconds(1);
    std::unique_ptr<net::RemoteServer> client;
    Status status = net::RemoteServer::Connect(host, ports[s], options,
                                               &client);
    if (!status.ok()) {
      std::fprintf(stderr, "connect shard %zu: %s\n", s,
                   status.ToString().c_str());
      return 1;
    }
    shard_clients.push_back(client.get());
    ShardBackend backend;
    backend.server = std::move(client);
    backend.global_ids = plan.shard_global_ids(s);
    backends.push_back(std::move(backend));
  }
  ShardedServer sharded(std::move(backends),
                        plan.shared_global_priorities());
  std::printf("connected %zu shard backends, k = %llu, schema [%s]\n",
              ports.size(),
              static_cast<unsigned long long>(sharded.k()),
              sharded.schema()->ToString().c_str());

  auto crawler = MakeOptimalCrawler(*sharded.schema());
  CrawlOptions crawl_options;
  crawl_options.batch_size = 0;  // auto: reacts to the slowest shard
  const auto start = std::chrono::steady_clock::now();
  CrawlResult result = crawler->Crawl(&sharded, crawl_options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!result.status.ok()) {
    std::fprintf(stderr, "crawl: %s\n", result.status.ToString().c_str());
    return 1;
  }

  std::printf("algorithm         : %s\n", crawler->name().c_str());
  std::printf("tuples extracted  : %zu\n", result.extracted.size());
  std::printf("queries (client)  : %llu\n",
              static_cast<unsigned long long>(result.queries_issued));
  std::printf("merged overflows  : %llu\n",
              static_cast<unsigned long long>(sharded.merged_overflows()));
  uint64_t server_total = 0;
  for (size_t s = 0; s < shard_clients.size(); ++s) {
    net::StatsMessage stats;
    if (!shard_clients[s]->FetchStats(&stats).ok()) {
      stats = net::StatsMessage{};
    }
    server_total += stats.queries_served;
    std::printf("shard %zu (server)  : %llu queries\n", s,
                static_cast<unsigned long long>(stats.queries_served));
  }
  std::printf("wall time         : %.2f s\n", seconds);

  if (verify) {
    const bool exact = Dataset::MultisetEquals(result.extracted, *dataset);
    std::printf("verification      : %s\n",
                exact ? "exact multiset" : "MISMATCH");
    if (!exact) return 1;
    // Every member of every wire round reaches every shard exactly once.
    if (server_total != result.queries_issued * ports.size()) {
      std::printf("accounting        : MISMATCH (client %llu * %zu shards "
                  "!= server %llu)\n",
                  static_cast<unsigned long long>(result.queries_issued),
                  ports.size(),
                  static_cast<unsigned long long>(server_total));
      return 1;
    }
  }
  return 0;
}

int Crawl(const std::string& host, uint16_t port, bool verify) {
  net::RemoteServerOptions options;
  options.label = "remote-crawl-example";
  // Polite pacing: at least 1ms (+ up to 1ms jitter) between wire rounds.
  // Real deployments would use seconds; the example demonstrates the
  // mechanism without slowing CI down.
  options.politeness.min_round_delay = std::chrono::milliseconds(1);
  options.politeness.max_jitter = std::chrono::milliseconds(1);

  std::unique_ptr<net::RemoteServer> server;
  Status s = net::RemoteServer::Connect(host, port, options, &server);
  if (!s.ok()) {
    std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("connected: session %llu, k = %llu, schema [%s]\n",
              static_cast<unsigned long long>(server->session_id()),
              static_cast<unsigned long long>(server->k()),
              server->schema()->ToString().c_str());

  auto crawler = MakeOptimalCrawler(*server->schema());
  CrawlOptions crawl_options;
  crawl_options.batch_size = 0;  // auto: latency-aware adaptive rounds
  const auto start = std::chrono::steady_clock::now();
  CrawlResult result = crawler->Crawl(server.get(), crawl_options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!result.status.ok()) {
    std::fprintf(stderr, "crawl: %s\n", result.status.ToString().c_str());
    return 1;
  }

  net::StatsMessage stats;
  if (!server->FetchStats(&stats).ok()) stats = net::StatsMessage{};
  std::printf("algorithm         : %s\n", crawler->name().c_str());
  std::printf("tuples extracted  : %zu\n", result.extracted.size());
  std::printf("queries (client)  : %llu\n",
              static_cast<unsigned long long>(result.queries_issued));
  std::printf("queries (server)  : %llu\n",
              static_cast<unsigned long long>(stats.queries_served));
  std::printf("politeness waits  : %llu rounds, %.1f ms total\n",
              static_cast<unsigned long long>(
                  server->politeness().rounds()),
              std::chrono::duration<double, std::milli>(
                  server->politeness().total_waited())
                  .count());
  std::printf("reconnects        : %llu\n",
              static_cast<unsigned long long>(server->reconnects()));
  std::printf("wall time         : %.2f s\n", seconds);

  if (verify) {
    auto dataset = ServiceDataset();
    const bool exact = Dataset::MultisetEquals(result.extracted, *dataset);
    std::printf("verification      : %s\n",
                exact ? "exact multiset" : "MISMATCH");
    if (!exact) return 1;
    if (result.queries_issued != stats.queries_served) {
      std::printf("accounting        : MISMATCH (client %llu != server "
                  "%llu)\n",
                  static_cast<unsigned long long>(result.queries_issued),
                  static_cast<unsigned long long>(stats.queries_served));
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "serve") {
    const uint16_t port =
        argc >= 3 ? static_cast<uint16_t>(std::atoi(argv[2])) : 0;
    return Serve(port);
  }
  if (argc >= 4 && std::string(argv[1]) == "crawl") {
    return Crawl(argv[2], static_cast<uint16_t>(std::atoi(argv[3])),
                 /*verify=*/false);
  }
  if (argc >= 4 && std::string(argv[1]) == "serve-sharded") {
    const size_t shard = static_cast<size_t>(std::atoi(argv[2]));
    const size_t num_shards = static_cast<size_t>(std::atoi(argv[3]));
    const uint16_t port =
        argc >= 5 ? static_cast<uint16_t>(std::atoi(argv[4])) : 0;
    if (num_shards == 0) {
      std::fprintf(stderr, "serve-sharded: num_shards must be >= 1\n");
      return 2;
    }
    return ServeShard(shard, num_shards, port);
  }
  if (argc >= 4 && std::string(argv[1]) == "crawl-sharded") {
    std::vector<uint16_t> ports;
    for (int i = 3; i < argc; ++i) {
      ports.push_back(static_cast<uint16_t>(std::atoi(argv[i])));
    }
    return CrawlSharded(argv[2], ports, /*verify=*/true);
  }
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s                 # in-process smoke\n"
                 "       %s serve [port]    # server process\n"
                 "       %s crawl <host> <port>\n"
                 "       %s serve-sharded <shard> <num_shards> [port]\n"
                 "       %s crawl-sharded <host> <port> [port...]\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }

  // In-process smoke: both halves over loopback, verified.
  auto dataset = ServiceDataset();
  CrawlServiceOptions service_options;
  service_options.max_parallelism = 4;
  CrawlService service(dataset, ServiceK(*dataset), nullptr,
                       service_options);
  net::ServiceEndpoint endpoint(&service);
  Status s = endpoint.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "endpoint: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("loopback service on port %u\n",
              static_cast<unsigned>(endpoint.port()));
  const int rc = Crawl("127.0.0.1", endpoint.port(), /*verify=*/true);
  endpoint.Stop();
  return rc;
}
