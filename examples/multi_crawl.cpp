// Copyright (c) hdc authors. Apache-2.0 license.
//
// Multi-crawl service: N crawls, one server process.
//
// The paper's setup is one crawler conversing with one server. A service
// deployment inverts that: one process holds the read-only index and many
// users crawl it concurrently, each with their own algorithm, query
// budget, and audit log. This example stands up a CrawlService over a
// numeric dataset, then runs a deliberately *contended* scenario — one
// wide full-space crawl next to narrower and metered tenants, all drawing
// on the same worker pool — and shows (a) that every session's query bill
// is its own, and (b) the service-operator view: the MetricsSnapshot
// stream of sessions active, pool occupancy, queries/s, and per-session
// queue wait that the fair per-lane scheduler keeps bounded.
//
//   $ ./multi_crawl
#include <cstdio>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/crawlers.h"
#include "core/multi_crawl.h"
#include "gen/synthetic.h"
#include "server/crawl_service.h"

namespace {

void PrintSnapshot(const hdc::CrawlServiceMetrics& m) {
  std::printf(
      "  [metrics] sessions %llu/%llu active, pool %u/%u busy, "
      "%llu queries (%.0f q/s)\n",
      static_cast<unsigned long long>(m.sessions_active),
      static_cast<unsigned long long>(m.sessions_created), m.pool_busy,
      m.pool_threads, static_cast<unsigned long long>(m.queries_served),
      m.queries_per_second);
  for (const hdc::SessionMetrics& s : m.sessions) {
    std::printf(
        "  [metrics]   %-28s weight=%u queries=%-6llu batches=%-5llu "
        "wait total=%.3fms max=%.3fms\n",
        s.label.c_str(), s.weight,
        static_cast<unsigned long long>(s.queries_served),
        static_cast<unsigned long long>(s.batches_submitted),
        s.queue_wait_total_seconds * 1e3, s.queue_wait_max_seconds * 1e3);
  }
}

}  // namespace

int main() {
  using namespace hdc;

  // 1. A hidden database: 20,000 tuples over 3 bounded numeric attributes.
  SyntheticNumericOptions gen;
  gen.d = 3;
  gen.n = 20000;
  gen.value_range = 2000;
  gen.seed = 11;
  auto dataset =
      std::make_shared<const Dataset>(GenerateSyntheticNumeric(gen));

  // 2. One service: a shared immutable index (k = 100) plus a worker pool
  //    all sessions draw from, dealt fairly across per-session lanes.
  CrawlServiceOptions service_options;
  service_options.max_parallelism = 4;
  CrawlService service(dataset, /*k=*/100, nullptr, service_options);
  std::printf("service: n = %zu over [%s], %u evaluation lanes\n\n",
              dataset->size(), dataset->schema()->ToString().c_str(),
              service.max_parallelism());

  // 3. The contended scenario: four concurrent crawls — a wide full-space
  //    crawl flooding the pool with large batches, a narrowed tenant slice
  //    (attribute 0 restricted to the lower half) given twice the
  //    scheduling weight, an audited archiver, and a metered guest. The
  //    wide session is capped to one pool worker so it cannot monopolize
  //    the service however big its batches are.
  std::ostringstream audit;
  std::vector<AttributeSpec> narrowed_attrs;
  for (size_t i = 0; i < dataset->schema()->num_attributes(); ++i) {
    narrowed_attrs.push_back(dataset->schema()->attribute(i));
  }
  narrowed_attrs[0].hi = gen.value_range / 2;
  SchemaPtr narrowed = Schema::Make(std::move(narrowed_attrs));

  std::vector<MultiCrawlJob> jobs(4);
  jobs[0].label = "wide/rank-shrink";
  jobs[0].crawler = std::make_shared<RankShrink>();
  jobs[0].crawl.batch_size = 0;  // auto: frontier width x service lanes
  jobs[0].session.max_lane_parallelism = 1;  // admission cap

  jobs[1].label = "archiver/binary-shrink";
  jobs[1].crawler = std::make_shared<BinaryShrink>();
  jobs[1].crawl.batch_size = 8;
  jobs[1].session.query_log = &audit;  // full audit transcript

  jobs[2].label = "metered/hybrid";
  jobs[2].crawler = std::make_shared<HybridCrawler>();
  jobs[2].session.max_queries = 150;  // server-side quota: will interrupt

  jobs[3].label = "tenant/rank-shrink-narrowed";
  jobs[3].crawler = std::make_shared<RankShrink>();
  jobs[3].session.schema_override = narrowed;
  jobs[3].session.weight = 2;  // twice the scheduling share

  // Stream a few live snapshots while the jobs run (one service-operator
  // line per sample), then print the final state.
  std::mutex print_mutex;
  MultiCrawlOptions run_options;
  run_options.metrics_period = std::chrono::milliseconds(10);
  run_options.on_metrics = [&](const CrawlServiceMetrics& m) {
    std::lock_guard<std::mutex> lock(print_mutex);
    PrintSnapshot(m);
  };
  std::vector<MultiCrawlOutcome> outcomes =
      RunMultiCrawl(&service, jobs, run_options);

  // 4. Per-session accounting: each crawl paid for exactly its own
  //    conversation, and its lane's queue wait stayed bounded.
  std::printf("\n");
  for (const MultiCrawlOutcome& out : outcomes) {
    std::printf(
        "%-30s %-40s queries=%-6llu extracted=%-6zu max wait=%.3fms\n",
        out.label.c_str(),
        out.result.status.ok() ? "complete"
                               : out.result.status.ToString().c_str(),
        static_cast<unsigned long long>(out.session_queries),
        out.result.extracted.size(), out.queue_wait_max_seconds * 1e3);
  }
  std::printf("\naudit transcript of '%s': %llu lines\n",
              outcomes[1].label.c_str(),
              static_cast<unsigned long long>(outcomes[1].session_queries));
  std::printf("sessions served: %llu\n",
              static_cast<unsigned long long>(service.sessions_created()));
  return 0;
}
