// Copyright (c) hdc authors. Apache-2.0 license.
//
// Multi-crawl service: N crawls, one server process.
//
// The paper's setup is one crawler conversing with one server. A service
// deployment inverts that: one process holds the read-only index and many
// users crawl it concurrently, each with their own algorithm, query
// budget, and audit log. This example stands up a CrawlService over a
// numeric dataset, then runs four sessions at once — three algorithms, a
// server-side quota, and a narrowed schema view — and shows that every
// session's query bill is its own.
//
//   $ ./multi_crawl
#include <cstdio>
#include <sstream>

#include "core/crawlers.h"
#include "core/multi_crawl.h"
#include "gen/synthetic.h"
#include "server/crawl_service.h"

int main() {
  using namespace hdc;

  // 1. A hidden database: 20,000 tuples over 3 bounded numeric attributes.
  SyntheticNumericOptions gen;
  gen.d = 3;
  gen.n = 20000;
  gen.value_range = 2000;
  gen.seed = 11;
  auto dataset =
      std::make_shared<const Dataset>(GenerateSyntheticNumeric(gen));

  // 2. One service: a shared immutable index (k = 100) plus a worker pool
  //    all sessions draw from.
  CrawlServiceOptions service_options;
  service_options.max_parallelism = 4;
  CrawlService service(dataset, /*k=*/100, nullptr, service_options);
  std::printf("service: n = %zu over [%s], %u evaluation lanes\n\n",
              dataset->size(), dataset->schema()->ToString().c_str(),
              service.max_parallelism());

  // 3. Four concurrent crawls: different algorithms, budgets, batch
  //    shapes, and one narrowed view of the data space (attribute 0
  //    restricted to the lower half — e.g. a tenant's slice).
  std::ostringstream audit;
  std::vector<AttributeSpec> narrowed_attrs;
  for (size_t i = 0; i < dataset->schema()->num_attributes(); ++i) {
    narrowed_attrs.push_back(dataset->schema()->attribute(i));
  }
  narrowed_attrs[0].hi = gen.value_range / 2;
  SchemaPtr narrowed = Schema::Make(std::move(narrowed_attrs));

  std::vector<MultiCrawlJob> jobs(4);
  jobs[0].label = "analyst/rank-shrink";
  jobs[0].crawler = std::make_shared<RankShrink>();
  jobs[0].crawl.batch_size = 0;  // auto: frontier width x service lanes

  jobs[1].label = "archiver/binary-shrink";
  jobs[1].crawler = std::make_shared<BinaryShrink>();
  jobs[1].crawl.batch_size = 8;
  jobs[1].session.query_log = &audit;  // full audit transcript

  jobs[2].label = "metered/hybrid";
  jobs[2].crawler = std::make_shared<HybridCrawler>();
  jobs[2].session.max_queries = 150;  // server-side quota: will interrupt

  jobs[3].label = "tenant/rank-shrink-narrowed";
  jobs[3].crawler = std::make_shared<RankShrink>();
  jobs[3].session.schema_override = narrowed;

  std::vector<MultiCrawlOutcome> outcomes = RunMultiCrawl(&service, jobs);

  // 4. Per-session accounting: each crawl paid for exactly its own
  //    conversation.
  for (const MultiCrawlOutcome& out : outcomes) {
    std::printf("%-30s %-50s queries=%-6llu extracted=%zu\n",
                out.label.c_str(),
                out.result.status.ok() ? "complete"
                                       : out.result.status.ToString().c_str(),
                static_cast<unsigned long long>(out.session_queries),
                out.result.extracted.size());
  }
  std::printf("\naudit transcript of '%s': %llu lines\n",
              outcomes[1].label.c_str(),
              static_cast<unsigned long long>(outcomes[1].session_queries));
  std::printf("sessions served: %llu\n",
              static_cast<unsigned long long>(service.sessions_created()));
  return 0;
}
