// Copyright (c) hdc authors. Apache-2.0 license.
//
// hdc_crawl — command-line hidden-database crawler.
//
// Crawl one of the built-in paper workloads, or any CSV-backed hidden
// database, with any of the six algorithms; meter the crawl with a query
// budget; persist a checkpoint when the budget runs out and resume from it
// on the next invocation (a cron-able crawler).
//
//   # one-shot: crawl the Yahoo workload with the optimal algorithm
//   $ ./hdc_crawl --dataset=yahoo --k=256 --out=yahoo.csv
//
//   # budgeted + durable: run this daily until it reports "complete"
//   $ ./hdc_crawl --dataset=nsf --k=256 --budget=2000
//                 --checkpoint=nsf.ckpt --out=nsf.csv
//
//   # your own data behind a top-k form
//   $ ./hdc_crawl --csv=inventory.csv
//                 --schema="Make:cat:85, Price:num:200:200000" --k=100
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "core/checkpoint.h"
#include "core/crawlers.h"
#include "data/csv_reader.h"
#include "gen/adult_gen.h"
#include "gen/nsf_gen.h"
#include "gen/yahoo_gen.h"
#include "server/local_server.h"

namespace {

using namespace hdc;

struct Flags {
  std::string dataset;
  std::string csv;
  std::string schema_spec;
  std::string algo = "auto";
  std::string checkpoint;
  std::string out;
  uint64_t k = 256;
  uint64_t budget = UINT64_MAX;
  uint64_t seed = 0x5eed;
  uint64_t batch = 1;
  uint64_t parallel = 1;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "usage: hdc_crawl [--dataset=yahoo|nsf|adult|adult-numeric]\n"
      "                 [--csv=PATH --schema=SPEC]\n"
      "                 [--algo=auto|rank-shrink|binary-shrink|dfs|\n"
      "                         slice-cover|lazy-slice-cover|hybrid]\n"
      "                 [--k=N] [--budget=N] [--checkpoint=PATH]\n"
      "                 [--out=PATH] [--seed=N]\n"
      "                 [--batch=N] [--parallel=N]\n"
      "\n"
      "--batch issues up to N independent frontier items per server round\n"
      "trip (1 = the paper's sequential conversation; the query count is\n"
      "identical either way). --parallel lets the simulated server answer\n"
      "a batch with up to N worker threads.\n"
      "SPEC example: \"Make:cat:85, Price:num:200:200000, Mileage:num\"\n"
      "exit codes: 0 = crawl complete, 2 = budget exhausted (resumable),\n"
      "            1 = error\n");
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      flags->help = true;
    } else if (ParseFlag(arg, "dataset", &flags->dataset) ||
               ParseFlag(arg, "csv", &flags->csv) ||
               ParseFlag(arg, "schema", &flags->schema_spec) ||
               ParseFlag(arg, "algo", &flags->algo) ||
               ParseFlag(arg, "checkpoint", &flags->checkpoint) ||
               ParseFlag(arg, "out", &flags->out)) {
    } else if (ParseFlag(arg, "k", &value)) {
      flags->k = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "budget", &value)) {
      flags->budget = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "seed", &value)) {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "batch", &value)) {
      flags->batch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "parallel", &value)) {
      flags->parallel = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

Status BuildDataset(const Flags& flags, std::shared_ptr<Dataset>* out) {
  if (!flags.csv.empty()) {
    if (flags.schema_spec.empty()) {
      return Status::InvalidArgument("--csv requires --schema");
    }
    SchemaPtr schema;
    HDC_RETURN_IF_ERROR(ParseSchemaSpec(flags.schema_spec, &schema));
    auto dataset = std::make_shared<Dataset>(schema);
    HDC_RETURN_IF_ERROR(LoadCsv(flags.csv, schema, dataset.get()));
    *out = std::move(dataset);
    return Status::OK();
  }
  if (flags.dataset == "yahoo") {
    *out = std::make_shared<Dataset>(GenerateYahoo());
  } else if (flags.dataset == "nsf") {
    *out = std::make_shared<Dataset>(GenerateNsf());
  } else if (flags.dataset == "adult") {
    *out = std::make_shared<Dataset>(GenerateAdult());
  } else if (flags.dataset == "adult-numeric") {
    *out = std::make_shared<Dataset>(GenerateAdultNumeric());
  } else {
    return Status::InvalidArgument("pick --dataset or --csv (see --help)");
  }
  return Status::OK();
}

std::unique_ptr<Crawler> BuildCrawler(const std::string& algo,
                                      const Schema& schema) {
  if (algo == "auto") return MakeOptimalCrawler(schema);
  if (algo == "rank-shrink") return std::make_unique<RankShrink>();
  if (algo == "binary-shrink") return std::make_unique<BinaryShrink>();
  if (algo == "dfs") return std::make_unique<DfsCrawler>();
  if (algo == "slice-cover") {
    return std::make_unique<SliceCoverCrawler>(false);
  }
  if (algo == "lazy-slice-cover") {
    return std::make_unique<SliceCoverCrawler>(true);
  }
  if (algo == "hybrid") return std::make_unique<HybridCrawler>();
  return nullptr;
}

int Run(const Flags& flags) {
  std::shared_ptr<Dataset> dataset;
  Status s = BuildDataset(flags, &dataset);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("hidden database: n = %zu over [%s]\n", dataset->size(),
              dataset->schema()->ToString().c_str());

  LocalServerOptions server_options;
  server_options.max_parallelism =
      static_cast<unsigned>(flags.parallel > 0 ? flags.parallel : 1);
  LocalServer server(dataset, flags.k, MakeRandomPriorityPolicy(flags.seed),
                     server_options);
  if (!server.IsCrawlable()) {
    std::fprintf(stderr,
                 "error: a point holds more than k = %llu tuples; Problem 1 "
                 "is unsolvable (raise --k)\n",
                 static_cast<unsigned long long>(flags.k));
    return 1;
  }

  std::unique_ptr<Crawler> crawler =
      BuildCrawler(flags.algo, *dataset->schema());
  if (crawler == nullptr) {
    std::fprintf(stderr, "error: unknown --algo=%s\n", flags.algo.c_str());
    return 1;
  }
  std::printf("algorithm: %s, k = %llu\n", crawler->name().c_str(),
              static_cast<unsigned long long>(flags.k));

  CrawlOptions options;
  options.max_queries = flags.budget;
  options.batch_size =
      static_cast<uint32_t>(flags.batch > 0 ? flags.batch : 1);
  if (options.batch_size > 1) {
    std::printf("batched conversation: up to %u queries per round trip, "
                "server parallelism %u\n",
                options.batch_size, server_options.max_parallelism);
  }

  CrawlResult result(dataset->schema());
  const bool have_checkpoint =
      !flags.checkpoint.empty() && std::filesystem::exists(flags.checkpoint);
  if (have_checkpoint) {
    std::shared_ptr<CrawlState> state;
    s = LoadCheckpointFile(flags.checkpoint, dataset->schema(), &state);
    if (!s.ok()) {
      std::fprintf(stderr, "error loading checkpoint: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("resuming from %s (%llu queries already spent)\n",
                flags.checkpoint.c_str(),
                static_cast<unsigned long long>(state->queries_issued));
    result = crawler->Resume(&server, state, options);
  } else {
    result = crawler->Crawl(&server, options);
  }

  std::printf("queries issued (total): %llu\n",
              static_cast<unsigned long long>(result.queries_issued));
  std::printf("tuples extracted      : %zu / %zu\n", result.extracted.size(),
              dataset->size());

  if (result.status.IsResourceExhausted()) {
    if (flags.checkpoint.empty()) {
      std::fprintf(stderr,
                   "budget exhausted and no --checkpoint given; progress "
                   "lost\n");
      return 1;
    }
    s = SaveCheckpointFile(*result.resume_state, *dataset->schema(),
                           flags.checkpoint);
    if (!s.ok()) {
      std::fprintf(stderr, "error saving checkpoint: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("budget exhausted; checkpoint saved to %s — rerun to "
                "continue\n",
                flags.checkpoint.c_str());
    return 2;
  }
  if (!result.status.ok()) {
    std::fprintf(stderr, "crawl failed: %s\n",
                 result.status.ToString().c_str());
    return 1;
  }

  const bool exact = Dataset::MultisetEquals(result.extracted, *dataset);
  std::printf("crawl complete; exact multiset: %s\n", exact ? "yes" : "NO");
  if (!flags.checkpoint.empty() &&
      std::filesystem::exists(flags.checkpoint)) {
    std::filesystem::remove(flags.checkpoint);
    std::printf("checkpoint %s removed\n", flags.checkpoint.c_str());
  }
  if (!flags.out.empty()) {
    s = result.extracted.SaveCsv(flags.out);
    if (!s.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", flags.out.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("extraction written to %s\n", flags.out.c_str());
  }
  return exact ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage();
    return 1;
  }
  if (flags.help) {
    PrintUsage();
    return 0;
  }
  return Run(flags);
}
