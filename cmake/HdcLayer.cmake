# Defines hdc_add_layer(), the single way a layer library is declared, and
# enforces the one-direction dependency DAG at configure time: a layer may
# link only layers that appear strictly before it in HDC_LAYER_ORDER, and
# its sources may #include only from itself and its declared DEPS. Either
# violation is a FATAL_ERROR, so an upward edge cannot survive
# `cmake -B build` — even one introduced by a lone #include, which a static
# archive would otherwise absorb silently (symbols only resolve at
# executable link time, where all layers are present anyway).

set(HDC_LAYER_ORDER
    hdc_util
    hdc_data
    hdc_query
    hdc_server
    hdc_net
    hdc_gen
    hdc_core
    hdc_analytics)

# hdc_add_layer(<name> SOURCES <src>... [DEPS <lower layer>...])
#
# Declares src/<layer>/ as a STATIC library with the src/ tree as its PUBLIC
# include root, linked PUBLIC against the named lower layers only.
function(hdc_add_layer name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})

  list(FIND HDC_LAYER_ORDER ${name} layer_index)
  if(layer_index EQUAL -1)
    message(FATAL_ERROR
      "hdc_add_layer: '${name}' is not a known layer; add it to "
      "HDC_LAYER_ORDER in cmake/HdcLayer.cmake at its DAG position")
  endif()

  foreach(dep IN LISTS ARG_DEPS)
    list(FIND HDC_LAYER_ORDER ${dep} dep_index)
    if(dep_index EQUAL -1)
      message(FATAL_ERROR
        "hdc_add_layer: '${name}' links '${dep}', which is not a layer")
    endif()
    if(dep_index GREATER_EQUAL layer_index)
      message(FATAL_ERROR
        "hdc_add_layer: DAG violation — '${name}' may only link layers "
        "strictly below it, but links '${dep}' "
        "(${dep_index} >= ${layer_index} in HDC_LAYER_ORDER)")
    endif()
  endforeach()

  # Usage-level check: every project include in this layer's headers and
  # sources must resolve to the layer itself or a declared (lower) DEP. The
  # shared src/ include root would otherwise let an upward #include compile
  # unnoticed.
  file(GLOB_RECURSE layer_files CONFIGURE_DEPENDS
       ${CMAKE_CURRENT_SOURCE_DIR}/*.h ${CMAKE_CURRENT_SOURCE_DIR}/*.hpp
       ${CMAKE_CURRENT_SOURCE_DIR}/*.cc ${CMAKE_CURRENT_SOURCE_DIR}/*.cpp)
  foreach(src_file IN LISTS layer_files)
    file(STRINGS ${src_file} include_lines REGEX "^#include \"")
    foreach(line IN LISTS include_lines)
      string(REGEX REPLACE "^#include \"([^/\"]+)/.*$" "\\1" inc_dir "${line}")
      if(inc_dir STREQUAL "${line}")
        continue()  # no directory component, e.g. #include "harness.h"
      endif()
      set(inc_layer hdc_${inc_dir})
      if(NOT inc_layer STREQUAL name AND NOT inc_layer IN_LIST ARG_DEPS)
        message(FATAL_ERROR
          "hdc_add_layer: DAG violation — ${src_file} includes "
          "\"${inc_dir}/...\" but '${name}' does not declare '${inc_layer}' "
          "in DEPS (and may not, unless it is strictly lower)")
      endif()
    endforeach()
  endforeach()

  add_library(${name} STATIC ${ARG_SOURCES})
  target_include_directories(${name} PUBLIC ${PROJECT_SOURCE_DIR}/src)
  target_compile_features(${name} PUBLIC cxx_std_17)
  if(ARG_DEPS)
    target_link_libraries(${name} PUBLIC ${ARG_DEPS})
  endif()
endfunction()
