// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/crawler.h"

#include "core/crawl_context.h"
#include "core/crawl_plan.h"
#include "core/frontier_log.h"
#include "util/macros.h"

namespace hdc {

CrawlResult Crawler::Crawl(HiddenDbServer* server,
                           const CrawlOptions& options) {
  HDC_CHECK(server != nullptr);
  CrawlResult bad(server->schema());
  bad.status = ValidateSchema(*server->schema());
  if (!bad.status.ok()) return bad;
  if (options.plan != nullptr &&
      !(*options.plan->schema() == *server->schema())) {
    bad.status = Status::InvalidArgument(
        "crawl plan was compiled against a different schema");
    return bad;
  }
  return RunAndPackage(server, MakeInitialState(server, options), options);
}

CrawlResult Crawler::Resume(HiddenDbServer* server,
                            std::shared_ptr<CrawlState> state,
                            const CrawlOptions& options) {
  HDC_CHECK(server != nullptr);
  CrawlResult bad(server->schema());
  if (state == nullptr) {
    bad.status = Status::InvalidArgument("resume requires a state");
    return bad;
  }
  if (state->algorithm() != name()) {
    bad.status = Status::InvalidArgument(
        "state produced by algorithm '" + state->algorithm() +
        "' cannot be resumed by '" + name() + "'");
    return bad;
  }
  return RunAndPackage(server, std::move(state), options);
}

CrawlResult Crawler::RunAndPackage(HiddenDbServer* server,
                                   std::shared_ptr<CrawlState> state,
                                   const CrawlOptions& options) {
  CrawlContext ctx(server, state.get(), options);
  if (!ctx.stopped()) Run(&ctx, state.get());

  CrawlResult result(server->schema());
  result.queries_issued = state->queries_issued;
  result.rows_seen = state->seen_rows.size();
  result.tuples_collected = state->tuples_collected;
  result.trace = state->trace;
  result.extracted = state->extracted;
  if (options.frontier_log != nullptr && state->fatal.ok()) {
    // Final commit: the run ended at a consistent point (crawlers re-push
    // in-flight work before stopping), so the log captures it durably —
    // completion included.
    Status committed = options.frontier_log->Commit(*state);
    if (!committed.ok() && !ctx.stopped()) {
      result.status = std::move(committed);
      result.resume_state = std::move(state);
      return result;
    }
  }
  if (!state->fatal.ok()) {
    result.status = state->fatal;
  } else if (state->Finished()) {
    result.status = Status::OK();
  } else {
    // Interrupted but resumable — by the internal budget, an external
    // BudgetServer, or a transient server failure.
    result.status = !ctx.interrupt().ok()
                        ? ctx.interrupt()
                        : Status::ResourceExhausted(
                              "query budget exhausted after " +
                              std::to_string(state->queries_issued) +
                              " queries; resumable");
    result.resume_state = std::move(state);
  }
  return result;
}

}  // namespace hdc
