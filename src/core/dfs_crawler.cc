// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/dfs_crawler.h"

#include <ostream>
#include <sstream>

#include "core/checkpoint.h"

#include "core/crawl_context.h"
#include "core/crawl_plan.h"
#include "util/macros.h"

namespace hdc {

Status DfsCrawler::ValidateSchema(const Schema& schema) const {
  if (!schema.all_categorical()) {
    return Status::InvalidArgument(
        "DFS handles all-categorical data spaces only");
  }
  return Status::OK();
}

std::shared_ptr<CrawlState> DfsCrawler::MakeInitialState(
    HiddenDbServer* server, const CrawlOptions& options) const {
  auto state = std::make_shared<DfsState>(server->schema());
  state->frontier.push_back(
      DfsState::Node{options.plan != nullptr
                         ? options.plan->root()
                         : Query::FullSpace(server->schema()),
                     0});
  return state;
}

void DfsCrawler::Run(CrawlContext* ctx, CrawlState* state) const {
  auto* st = static_cast<DfsState*>(state);
  const Schema& schema = *st->extracted.schema();
  const uint32_t d = static_cast<uint32_t>(schema.num_attributes());

  std::vector<DfsState::Node> round;
  std::vector<Query> queries;
  std::vector<Response> responses;
  while (!st->frontier.empty()) {
    // Tree nodes on the frontier cover disjoint regions — batch up to
    // `batch` sibling probes per server round trip.
    const size_t batch = ctx->RoundSize(st->frontier.size());
    round.clear();
    queries.clear();
    while (!st->frontier.empty() && round.size() < batch) {
      round.push_back(std::move(st->frontier.back()));
      st->frontier.pop_back();
      queries.push_back(round.back().q);
    }
    const std::vector<CrawlContext::Outcome> outcomes =
        ctx->IssueBatch(queries, &responses);

    for (size_t i = 0; i < round.size(); ++i) {
      DfsState::Node& node = round[i];
      switch (outcomes[i]) {
        case CrawlContext::Outcome::kStop:
          for (size_t j = round.size(); j-- > i;) {
            st->frontier.push_back(std::move(round[j]));
          }
          return;
        case CrawlContext::Outcome::kPrunedEmpty:
          continue;
        case CrawlContext::Outcome::kResolved:
          // Pruning rule: the whole subtree of node is covered by this
          // response.
          ctx->CollectResponse(responses[i]);
          continue;
        case CrawlContext::Outcome::kOverflow:
          break;
      }

      if (node.level == d) {
        ctx->SetFatal(Status::Unsolvable("point " + node.q.ToString() +
                                         " holds more than k tuples"));
        return;
      }
      const size_t attr = node.level;
      if (node.q.IsPinned(attr)) {
        // A plan root may pre-pin expansion attributes; the node already
        // covers exactly one value there, so descend without fanning out.
        st->frontier.push_back(DfsState::Node{node.q, node.level + 1});
        continue;
      }
      const Value domain = static_cast<Value>(schema.domain_size(attr));
      // Push in descending value order so children pop in 1..U order.
      for (Value c = domain; c >= 1; --c) {
        st->frontier.push_back(
            DfsState::Node{node.q.WithCategoricalEquals(attr, c),
                           node.level + 1});
      }
    }
  }
}


void DfsState::EncodeFrontier(std::ostream* out) const {
  for (const Node& node : frontier) {
    *out << "node " << node.level << ' ';
    EncodeQueryTokens(node.q, out);
    *out << '\n';
  }
}

Status DfsState::DecodeFrontier(CheckpointReader* in) {
  frontier.clear();
  const SchemaPtr& schema = extracted.schema();
  std::string line;
  while (true) {
    HDC_RETURN_IF_ERROR(in->Next(&line));
    if (line == "frontier-end") return Status::OK();
    std::istringstream tokens(line);
    std::string tag;
    uint32_t level = 0;
    if (!(tokens >> tag >> level) || tag != "node") {
      return in->Error("malformed dfs frontier line: " + line);
    }
    if (level > schema->num_attributes()) {
      return in->Error("dfs level out of range");
    }
    Query q = Query::FullSpace(schema);
    Status s = DecodeQueryTokens(&tokens, schema, &q);
    if (!s.ok()) return in->Error(s.message());
    frontier.push_back(Node{std::move(q), level});
  }
}

}  // namespace hdc
