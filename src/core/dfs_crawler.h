// Copyright (c) hdc authors. Apache-2.0 license.
//
// DFS (paper, Section 3.1): the baseline categorical crawler — a pruned
// depth-first traversal of the data-space tree. Each node's query pins a
// prefix of the categorical attributes; a resolved node's subtree is pruned,
// an overflowing node is expanded into one child per value of the next
// attribute. This is the crawling outline of Jin et al. [15] and the
// comparison baseline of Figure 11.
#pragma once

#include <vector>

#include "core/crawler.h"
#include "query/query.h"

namespace hdc {

class DfsState : public CrawlState {
 public:
  using CrawlState::CrawlState;
  bool Finished() const override { return frontier.empty(); }
  std::string algorithm() const override { return "dfs"; }
  void EncodeFrontier(std::ostream* out) const override;
  Status DecodeFrontier(CheckpointReader* in) override;

  struct Node {
    Query q;
    uint32_t level;  // number of pinned prefix attributes
  };
  std::vector<Node> frontier;
};

class DfsCrawler : public Crawler {
 public:
  std::string name() const override { return "dfs"; }

  /// Requires an all-categorical schema.
  Status ValidateSchema(const Schema& schema) const override;

 protected:
  std::shared_ptr<CrawlState> MakeInitialState(
      HiddenDbServer* server, const CrawlOptions& options) const override;
  void Run(CrawlContext* ctx, CrawlState* state) const override;
};

}  // namespace hdc
