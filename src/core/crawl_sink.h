// Copyright (c) hdc authors. Apache-2.0 license.
//
// Streaming extraction. Instead of accumulating every tuple in the
// CrawlState's in-memory bag, a crawl can hand each confirmed tuple to a
// CrawlSink the moment its region resolves (the progressiveness property
// Figure 13 measures). Combined with CrawlOptions::materialize == false,
// a million-row extraction runs in constant memory: tuples flow straight
// through the sink and only counters remain in the state.
//
// Contract: Append is called once per confirmed tuple, in confirmation
// order, from the crawling thread. Duplicates are never delivered (each
// resolved region is collected exactly once, and regions are pairwise
// disjoint). A resumed crawl re-delivers nothing that a *committed*
// frontier-log round already delivered — consumers that persist output
// should truncate to the log's collected watermark before resuming (see
// core/frontier_log.h).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>

#include "data/tuple.h"
#include "util/thread_annotations.h"

namespace hdc {

/// Consumer of confirmed tuples.
class CrawlSink {
 public:
  virtual ~CrawlSink() = default;

  /// Receives one confirmed tuple. Called from the crawling thread; may
  /// block (backpressure propagates into the crawl).
  virtual void Append(const Tuple& tuple) = 0;
};

/// Adapts a plain function.
class CallbackSink : public CrawlSink {
 public:
  explicit CallbackSink(std::function<void(const Tuple&)> fn)
      : fn_(std::move(fn)) {}
  void Append(const Tuple& tuple) override { fn_(tuple); }

 private:
  std::function<void(const Tuple&)> fn_;
};

/// Bounded hand-off queue between the crawling thread (producer) and one or
/// more consumer threads. Append blocks while the queue is full — the crawl
/// is paced by its consumer instead of buffering unboundedly.
class BoundedQueueSink : public CrawlSink {
 public:
  explicit BoundedQueueSink(size_t capacity);

  /// Producer side; blocks while full. Must not be called after Close.
  void Append(const Tuple& tuple) override;

  /// Producer is done; consumers drain the remainder and then see false.
  void Close();

  /// Consumer side: blocks until a tuple or closure. Returns false only
  /// when the sink is closed *and* drained.
  bool Pop(Tuple* out);

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<Tuple> queue_ HDC_GUARDED_BY(mu_);
  bool closed_ HDC_GUARDED_BY(mu_) = false;
};

}  // namespace hdc
