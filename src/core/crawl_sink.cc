// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/crawl_sink.h"

#include "util/macros.h"

namespace hdc {

BoundedQueueSink::BoundedQueueSink(size_t capacity) : capacity_(capacity) {
  HDC_CHECK(capacity > 0);
}

void BoundedQueueSink::Append(const Tuple& tuple) {
  MutexLock lock(&mu_);
  while (queue_.size() >= capacity_ && !closed_) {
    not_full_.Wait(&mu_);
  }
  HDC_CHECK_MSG(!closed_, "Append after Close");
  queue_.push_back(tuple);
  not_empty_.NotifyOne();
}

void BoundedQueueSink::Close() {
  MutexLock lock(&mu_);
  closed_ = true;
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
}

bool BoundedQueueSink::Pop(Tuple* out) {
  MutexLock lock(&mu_);
  while (queue_.empty() && !closed_) {
    not_empty_.Wait(&mu_);
  }
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  not_full_.NotifyOne();
  return true;
}

}  // namespace hdc
