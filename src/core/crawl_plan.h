// Copyright (c) hdc authors. Apache-2.0 license.
//
// Predicate pushdown for crawls ("crawl what you need"). A conjunctive
// filter over the data space — numeric ranges plus categorical IN-sets — is
// compiled into a CrawlPlan:
//
//   * an initial crawl *rectangle* (`root()`): the tightest axis-parallel
//     query covering every satisfying tuple. Crawlers seed their frontier
//     with it instead of the full space, so the descent starts inside the
//     satisfying subspace;
//   * a sound pruning test (`MayContainTuples`): regions provably disjoint
//     from the predicate are treated as resolved-and-empty without spending
//     a query — exactly the DependencyOracle contract, which is why a plan
//     *is* one;
//   * a residual tuple filter (`Matches`): constraints the rectangle cannot
//     express (an IN-set with 2+ values on an unpinned attribute) are
//     applied as each response is collected, so the extraction equals
//     D ∩ predicate exactly.
//
// Soundness argument: the rectangle contains every satisfying tuple by
// construction (it is the product of per-attribute hulls), and the pruning
// test only rejects a query when some attribute's extent is disjoint from
// the predicate's allowed values on that attribute — such a region cannot
// contain a satisfying tuple. Pruning therefore never loses results, and
// Theorem 1's upper bounds still hold (pruning only removes queries).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/dependency.h"
#include "data/schema.h"
#include "data/tuple.h"
#include "query/query.h"
#include "util/status.h"

namespace hdc {

/// A conjunction of per-attribute constraints. Multiple constraints on one
/// attribute intersect. Attributes without constraints are unrestricted.
struct CrawlPredicate {
  struct NumericRange {
    size_t attr = 0;
    Value lo = kNumericMin;
    Value hi = kNumericMax;
  };
  struct CategoricalIn {
    size_t attr = 0;
    std::vector<Value> values;  // allowed values; must be non-empty
  };

  std::vector<NumericRange> ranges;
  std::vector<CategoricalIn> in_sets;

  CrawlPredicate& AddRange(size_t attr, Value lo, Value hi) {
    ranges.push_back(NumericRange{attr, lo, hi});
    return *this;
  }
  CrawlPredicate& AddIn(size_t attr, std::vector<Value> values) {
    in_sets.push_back(CategoricalIn{attr, std::move(values)});
    return *this;
  }

  /// The rectangle predicate implied by a filter query: every non-wildcard
  /// numeric extent becomes a range, every pinned categorical a singleton
  /// IN-set. (A query cannot express multi-value IN-sets, so the result
  /// never has a residual.)
  static CrawlPredicate FromQuery(const Query& filter);
};

/// Compiled form of a CrawlPredicate against one schema. Immutable after
/// compilation; usable concurrently from any number of crawls.
class CrawlPlan : public DependencyOracle {
 public:
  CrawlPlan() = default;

  /// Seed rectangle covering every satisfying tuple. When the predicate is
  /// unsatisfiable (`empty()`), this is the full space and MayContainTuples
  /// rejects everything — the crawl terminates with zero queries. Only
  /// valid on a compiled plan.
  const Query& root() const { return *root_; }

  const SchemaPtr& schema() const { return schema_; }

  /// True when no tuple can satisfy the predicate (e.g. an IN-set whose
  /// values all fall outside the attribute's domain).
  bool empty() const { return empty_; }

  /// True when the predicate is not fully captured by the rectangle (some
  /// multi-value IN-set) so collected tuples still need Matches().
  bool has_residual() const { return residual_; }

  /// Sound pruning test (DependencyOracle): false only when no satisfying
  /// tuple can fall inside `query`.
  bool MayContainTuples(const Query& query) const override;

  /// Exact predicate evaluation on one tuple.
  bool Matches(const Tuple& tuple) const;

 private:
  friend Status CompileCrawlPlan(const SchemaPtr& schema,
                                 const CrawlPredicate& predicate,
                                 CrawlPlan* out);

  SchemaPtr schema_;
  std::optional<Query> root_;
  bool empty_ = false;
  bool residual_ = false;
  /// Per-attribute allowed interval (the rectangle hull).
  std::vector<AttrInterval> box_;
  /// Per-attribute allowed-value bitmap, index 1..domain; empty vector =
  /// attribute unconstrained beyond box_.
  std::vector<std::vector<bool>> allowed_;
};

/// Compiles `predicate` against `schema`. Typed errors for out-of-schema
/// attribute indices, kind mismatches (range on a categorical, IN-set on a
/// numeric) and empty IN-set lists; an unsatisfiable-but-well-formed
/// predicate compiles into an empty() plan, not an error.
Status CompileCrawlPlan(const SchemaPtr& schema,
                        const CrawlPredicate& predicate, CrawlPlan* out);

/// Convenience: compile the rectangle predicate implied by a filter query
/// (the analytics pushdown path — see analytics/crawl_pushdown.h).
Status CompileQueryPlan(const Query& filter, CrawlPlan* out);

}  // namespace hdc
