// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/size_estimator.h"

#include <cmath>
#include <vector>

#include "query/query.h"
#include "util/macros.h"
#include "util/random.h"

namespace hdc {

Status EstimateDatabaseSize(HiddenDbServer* server, uint64_t num_walks,
                            uint64_t seed, SizeEstimate* out) {
  HDC_CHECK(server != nullptr && out != nullptr);
  const SchemaPtr& schema = server->schema();
  if (!schema->all_categorical()) {
    return Status::NotSupported(
        "size estimation drills down categorical attributes only; project "
        "the space or crawl instead");
  }
  if (num_walks == 0) {
    return Status::InvalidArgument("need at least one walk");
  }
  *out = SizeEstimate{};
  Rng rng(seed);

  // If the root resolves, the answer is exact and free of variance.
  const Query root = Query::FullSpace(schema);
  Response response;
  HDC_RETURN_IF_ERROR(server->Issue(root, &response));
  ++out->queries;
  if (response.resolved()) {
    out->estimate = static_cast<double>(response.size());
    out->exact = true;
    out->walks = 1;
    return Status::OK();
  }

  const size_t d = schema->num_attributes();
  std::vector<double> samples;
  samples.reserve(num_walks);
  for (uint64_t w = 0; w < num_walks; ++w) {
    Query q = root;
    double multiplier = 1.0;
    double sample = 0.0;
    for (size_t level = 0; level < d; ++level) {
      const uint64_t domain = schema->domain_size(level);
      const Value c =
          static_cast<Value>(rng.UniformU64(domain)) + 1;
      q = q.WithCategoricalEquals(level, c);
      multiplier *= static_cast<double>(domain);

      HDC_RETURN_IF_ERROR(server->Issue(q, &response));
      ++out->queries;
      if (response.resolved()) {
        sample = multiplier * static_cast<double>(response.size());
        break;
      }
      // A point query cannot overflow on a solvable instance, so the walk
      // always terminates inside the loop.
      HDC_CHECK_MSG(level + 1 < d, "point query overflowed: instance has a "
                                   "point with more than k tuples");
    }
    samples.push_back(sample);
  }

  double sum = 0.0;
  for (double s : samples) sum += s;
  const double mean = sum / static_cast<double>(samples.size());
  double variance = 0.0;
  for (double s : samples) variance += (s - mean) * (s - mean);
  out->estimate = mean;
  out->walks = samples.size();
  if (samples.size() > 1) {
    variance /= static_cast<double>(samples.size() - 1);
    out->standard_error =
        std::sqrt(variance / static_cast<double>(samples.size()));
  }
  return Status::OK();
}

}  // namespace hdc
