// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/binary_shrink.h"
#include "core/dfs_crawler.h"
#include "core/rank_shrink.h"
#include "core/slice_engine.h"
#include "data/csv_reader.h"
#include "util/macros.h"

namespace hdc {
namespace {

constexpr const char* kMagic = "hdc-checkpoint";
constexpr int kVersion = 2;

}  // namespace

Status CheckpointReader::Next(std::string* line) {
  if (!TryNext(line)) {
    return Status::InvalidArgument(
        "line " + std::to_string(line_number_ + 1) +
        ": checkpoint truncated (unexpected end of input)");
  }
  return Status::OK();
}

bool CheckpointReader::TryNext(std::string* line) {
  if (!std::getline(*in_, *line)) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  ++line_number_;
  return true;
}

Status CheckpointReader::Error(const std::string& message) const {
  return Status::InvalidArgument("line " + std::to_string(line_number_) +
                                 ": " + message);
}

Status ExpectTagged(const std::string& line, const std::string& tag,
                    std::string* rest) {
  if (line.rfind(tag + " ", 0) != 0) {
    return Status::InvalidArgument("expected '" + tag + " ...', got '" +
                                   line + "'");
  }
  *rest = line.substr(tag.size() + 1);
  return Status::OK();
}

Status ParseUint64Token(const std::string& s, uint64_t* out) {
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (s.empty() || ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("malformed count '" + s + "'");
  }
  *out = v;
  return Status::OK();
}

Status MakeCrawlStateForAlgorithm(const std::string& algorithm,
                                  const SchemaPtr& schema,
                                  std::shared_ptr<CrawlState>* out) {
  if (algorithm == "binary-shrink") {
    *out = std::make_shared<BinaryShrinkState>(schema);
  } else if (algorithm == "rank-shrink") {
    *out = std::make_shared<RankShrinkState>(schema);
  } else if (algorithm == "dfs") {
    *out = std::make_shared<DfsState>(schema);
  } else if (algorithm == "slice-cover" || algorithm == "lazy-slice-cover" ||
             algorithm == "hybrid") {
    // The eager flag is restored by DecodeFrontier.
    *out = std::make_shared<SliceEngineState>(schema, algorithm,
                                              /*eager=*/false);
  } else {
    return Status::InvalidArgument("unknown algorithm '" + algorithm + "'");
  }
  return Status::OK();
}

Status WriteFileDurably(const std::string& path,
                        const std::string& contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open for writing: " + tmp);
  }
  size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      ::close(fd);
      return Status::Internal("write failed: " + tmp);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("fsync failed: " + tmp);
  }
  if (::close(fd) != 0) return Status::Internal("close failed: " + tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  // Persist the rename itself: fsync the containing directory (best-effort
  // on filesystems that reject directory fds).
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

void EncodeQueryTokens(const Query& q, std::ostream* out) {
  for (size_t i = 0; i < q.num_attributes(); ++i) {
    if (i > 0) *out << ' ';
    *out << q.lo(i) << ' ' << q.hi(i);
  }
}

Status DecodeQueryTokens(std::istream* in, const SchemaPtr& schema,
                         Query* out) {
  Query q = Query::FullSpace(schema);
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    Value lo, hi;
    if (!(*in >> lo >> hi)) {
      return Status::InvalidArgument("malformed query extents");
    }
    if (schema->IsCategorical(i)) {
      const Value domain = static_cast<Value>(schema->domain_size(i));
      if (lo == hi) {
        if (lo < 1 || lo > domain) {
          return Status::InvalidArgument("categorical value out of domain");
        }
        q = q.WithCategoricalEquals(i, lo);
      } else if (lo != 1 || hi != domain) {
        return Status::InvalidArgument(
            "categorical extent must be pinned or the full domain");
      }
    } else {
      if (lo > hi) return Status::InvalidArgument("extent out of order");
      q = q.WithNumericRange(i, lo, hi);
    }
  }
  *out = std::move(q);
  return Status::OK();
}

void EncodeTupleTokens(const Tuple& t, std::ostream* out) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) *out << ' ';
    *out << t[i];
  }
}

Status DecodeTupleTokens(std::istream* in, size_t arity, Tuple* out) {
  std::vector<Value> values(arity);
  for (auto& v : values) {
    if (!(*in >> v)) return Status::InvalidArgument("malformed tuple");
  }
  *out = Tuple(std::move(values));
  return Status::OK();
}

Status DecodeQueryStackFrontier(CheckpointReader* in, const SchemaPtr& schema,
                                std::vector<Query>* frontier) {
  frontier->clear();
  std::string line;
  while (true) {
    HDC_RETURN_IF_ERROR(in->Next(&line));
    if (line == "frontier-end") return Status::OK();
    std::string rest;
    if (Status s = ExpectTagged(line, "q", &rest); !s.ok()) {
      return in->Error(s.message());
    }
    std::istringstream tokens(rest);
    Query q = Query::FullSpace(schema);
    if (Status s = DecodeQueryTokens(&tokens, schema, &q); !s.ok()) {
      return in->Error(s.message());
    }
    frontier->push_back(std::move(q));
  }
}

Status SaveCheckpoint(const CrawlState& state, const Schema& schema,
                      std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  if (!state.fatal.ok()) {
    return Status::FailedPrecondition(
        "refusing to checkpoint a failed crawl: " + state.fatal.ToString());
  }
  if (!(*state.extracted.schema() == schema)) {
    return Status::InvalidArgument("state does not belong to this schema");
  }

  *out << kMagic << ' ' << kVersion << '\n';
  *out << "algorithm " << state.algorithm() << '\n';
  *out << "schema " << FormatSchemaSpec(schema) << '\n';
  *out << "queries " << state.queries_issued << '\n';

  *out << "seen " << state.seen_rows.size();
  for (uint64_t id : state.seen_rows) *out << ' ' << id;
  *out << '\n';

  *out << "extracted " << state.extracted.size() << '\n';
  for (const Tuple& t : state.extracted.tuples()) {
    EncodeTupleTokens(t, out);
    *out << '\n';
  }
  *out << "collected " << state.tuples_collected << '\n';

  *out << "frontier-begin\n";
  state.EncodeFrontier(out);
  *out << "frontier-end\n";
  if (!*out) return Status::Internal("checkpoint write failed");
  return Status::OK();
}

Status SaveCheckpointFile(const CrawlState& state, const Schema& schema,
                          const std::string& path) {
  std::ostringstream out;
  HDC_RETURN_IF_ERROR(SaveCheckpoint(state, schema, &out));
  return WriteFileDurably(path, out.str());
}

Status LoadCheckpoint(std::istream* in, SchemaPtr schema,
                      std::shared_ptr<CrawlState>* out) {
  if (in == nullptr || schema == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  CheckpointReader reader(in);
  std::string line, rest;

  HDC_RETURN_IF_ERROR(reader.Next(&line));
  int version = 0;
  {
    std::istringstream header(line);
    std::string magic;
    header >> magic >> version;
    if (magic != kMagic) {
      return reader.Error("not an hdc checkpoint");
    }
    if (version < 1 || version > kVersion) {
      return Status::NotSupported("unsupported checkpoint version " +
                                  std::to_string(version));
    }
  }

  HDC_RETURN_IF_ERROR(reader.Next(&line));
  if (Status s = ExpectTagged(line, "algorithm", &rest); !s.ok()) {
    return reader.Error(s.message());
  }
  const std::string algorithm = rest;

  HDC_RETURN_IF_ERROR(reader.Next(&line));
  if (Status s = ExpectTagged(line, "schema", &rest); !s.ok()) {
    return reader.Error(s.message());
  }
  if (version < 2 && rest.find('\\') != std::string::npos) {
    // Version 1 predates token escaping: a backslash in its schema spec
    // could be either a literal character or an (impossible then) escape.
    // Refuse to guess.
    return reader.Error(
        "ambiguous legacy checkpoint: version-1 schema spec contains a "
        "backslash, which predates token escaping — re-save the checkpoint "
        "with a current build");
  }
  if (rest != FormatSchemaSpec(*schema)) {
    // Not the exact schema — accept a *compatible* recorded one (same
    // attributes, kinds and categorical domains; numeric bounds may
    // differ). This is the session-resume case: a crawl checkpointed under
    // a narrowed schema_override (e.g. bounds tightened by domain
    // discovery) must be restorable when the caller only holds the
    // service's full schema. The state is rebuilt against the *recorded*
    // schema — the frontier's extents and the partial extraction only make
    // sense in the space the crawl actually ran in.
    SchemaPtr recorded;
    Status parsed = ParseSchemaSpec(rest, &recorded);
    if (!parsed.ok() || !recorded->CompatibleWith(*schema)) {
      return reader.Error(
          "checkpoint was taken against an incompatible schema: " + rest);
    }
    schema = std::move(recorded);
  }

  std::shared_ptr<CrawlState> state;
  if (Status s = MakeCrawlStateForAlgorithm(algorithm, schema, &state);
      !s.ok()) {
    return reader.Error(s.message());
  }

  HDC_RETURN_IF_ERROR(reader.Next(&line));
  if (Status s = ExpectTagged(line, "queries", &rest); !s.ok()) {
    return reader.Error(s.message());
  }
  if (Status s = ParseUint64Token(rest, &state->queries_issued); !s.ok()) {
    return reader.Error(s.message());
  }

  HDC_RETURN_IF_ERROR(reader.Next(&line));
  if (Status s = ExpectTagged(line, "seen", &rest); !s.ok()) {
    return reader.Error(s.message());
  }
  {
    std::istringstream tokens(rest);
    uint64_t count = 0;
    if (!(tokens >> count)) {
      return reader.Error("malformed seen line");
    }
    state->seen_rows.reserve(count * 2);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id;
      if (!(tokens >> id)) {
        return reader.Error("seen line truncated: expected " +
                            std::to_string(count) + " row ids");
      }
      state->seen_rows.insert(id);
    }
  }

  HDC_RETURN_IF_ERROR(reader.Next(&line));
  if (Status s = ExpectTagged(line, "extracted", &rest); !s.ok()) {
    return reader.Error(s.message());
  }
  uint64_t extracted_count = 0;
  if (Status s = ParseUint64Token(rest, &extracted_count); !s.ok()) {
    return reader.Error(s.message());
  }
  const size_t arity = schema->num_attributes();
  for (uint64_t i = 0; i < extracted_count; ++i) {
    HDC_RETURN_IF_ERROR(reader.Next(&line));
    std::istringstream tokens(line);
    Tuple t;
    if (Status s = DecodeTupleTokens(&tokens, arity, &t); !s.ok()) {
      return reader.Error("tuple " + std::to_string(i + 1) + " of " +
                          std::to_string(extracted_count) + ": " +
                          s.message());
    }
    state->extracted.AddUnchecked(std::move(t));
  }
  HDC_RETURN_IF_ERROR(state->extracted.Validate());
  state->tuples_collected = extracted_count;

  HDC_RETURN_IF_ERROR(reader.Next(&line));
  if (version >= 2) {
    if (Status s = ExpectTagged(line, "collected", &rest); !s.ok()) {
      return reader.Error(s.message());
    }
    if (Status s = ParseUint64Token(rest, &state->tuples_collected);
        !s.ok()) {
      return reader.Error(s.message());
    }
    HDC_RETURN_IF_ERROR(reader.Next(&line));
  }
  if (line != "frontier-begin") {
    return reader.Error("expected frontier-begin, got '" + line + "'");
  }
  HDC_RETURN_IF_ERROR(state->DecodeFrontier(&reader));

  *out = std::move(state);
  return Status::OK();
}

Status LoadCheckpointFile(const std::string& path, SchemaPtr schema,
                          std::shared_ptr<CrawlState>* out) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  return LoadCheckpoint(&in, std::move(schema), out);
}

}  // namespace hdc
