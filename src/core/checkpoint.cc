// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/checkpoint.h"

#include <fstream>
#include <sstream>

#include "core/binary_shrink.h"
#include "core/dfs_crawler.h"
#include "core/rank_shrink.h"
#include "core/slice_engine.h"
#include "data/csv_reader.h"
#include "util/macros.h"

namespace hdc {
namespace {

constexpr const char* kMagic = "hdc-checkpoint";
constexpr int kVersion = 1;

/// Reads the next line; errors out at EOF.
Status NextLine(std::istream* in, std::string* line) {
  if (!std::getline(*in, *line)) {
    return Status::InvalidArgument("checkpoint truncated");
  }
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return Status::OK();
}

/// Returns the rest of `line` after a "tag " prefix, or an error.
Status ExpectTagged(const std::string& line, const std::string& tag,
                    std::string* rest) {
  if (line.rfind(tag + " ", 0) != 0) {
    return Status::InvalidArgument("expected '" + tag + " ...', got '" +
                                   line + "'");
  }
  *rest = line.substr(tag.size() + 1);
  return Status::OK();
}

std::shared_ptr<CrawlState> MakeEmptyState(const std::string& algorithm,
                                           const SchemaPtr& schema) {
  if (algorithm == "binary-shrink") {
    return std::make_shared<BinaryShrinkState>(schema);
  }
  if (algorithm == "rank-shrink") {
    return std::make_shared<RankShrinkState>(schema);
  }
  if (algorithm == "dfs") {
    return std::make_shared<DfsState>(schema);
  }
  if (algorithm == "slice-cover" || algorithm == "lazy-slice-cover" ||
      algorithm == "hybrid") {
    // The eager flag is restored by DecodeFrontier.
    return std::make_shared<SliceEngineState>(schema, algorithm,
                                              /*eager=*/false);
  }
  return nullptr;
}

}  // namespace

void EncodeQueryTokens(const Query& q, std::ostream* out) {
  for (size_t i = 0; i < q.num_attributes(); ++i) {
    if (i > 0) *out << ' ';
    *out << q.lo(i) << ' ' << q.hi(i);
  }
}

Status DecodeQueryTokens(std::istream* in, const SchemaPtr& schema,
                         Query* out) {
  Query q = Query::FullSpace(schema);
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    Value lo, hi;
    if (!(*in >> lo >> hi)) {
      return Status::InvalidArgument("malformed query extents");
    }
    if (schema->IsCategorical(i)) {
      const Value domain = static_cast<Value>(schema->domain_size(i));
      if (lo == hi) {
        if (lo < 1 || lo > domain) {
          return Status::InvalidArgument("categorical value out of domain");
        }
        q = q.WithCategoricalEquals(i, lo);
      } else if (lo != 1 || hi != domain) {
        return Status::InvalidArgument(
            "categorical extent must be pinned or the full domain");
      }
    } else {
      if (lo > hi) return Status::InvalidArgument("extent out of order");
      q = q.WithNumericRange(i, lo, hi);
    }
  }
  *out = std::move(q);
  return Status::OK();
}

void EncodeTupleTokens(const Tuple& t, std::ostream* out) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) *out << ' ';
    *out << t[i];
  }
}

Status DecodeTupleTokens(std::istream* in, size_t arity, Tuple* out) {
  std::vector<Value> values(arity);
  for (auto& v : values) {
    if (!(*in >> v)) return Status::InvalidArgument("malformed tuple");
  }
  *out = Tuple(std::move(values));
  return Status::OK();
}

Status DecodeQueryStackFrontier(std::istream* in, const SchemaPtr& schema,
                                std::vector<Query>* frontier) {
  frontier->clear();
  std::string line;
  while (true) {
    HDC_RETURN_IF_ERROR(NextLine(in, &line));
    if (line == "frontier-end") return Status::OK();
    std::string rest;
    HDC_RETURN_IF_ERROR(ExpectTagged(line, "q", &rest));
    std::istringstream tokens(rest);
    Query q = Query::FullSpace(schema);
    HDC_RETURN_IF_ERROR(DecodeQueryTokens(&tokens, schema, &q));
    frontier->push_back(std::move(q));
  }
}

Status SaveCheckpoint(const CrawlState& state, const Schema& schema,
                      std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  if (!state.fatal.ok()) {
    return Status::FailedPrecondition(
        "refusing to checkpoint a failed crawl: " + state.fatal.ToString());
  }
  if (!(*state.extracted.schema() == schema)) {
    return Status::InvalidArgument("state does not belong to this schema");
  }

  *out << kMagic << ' ' << kVersion << '\n';
  *out << "algorithm " << state.algorithm() << '\n';
  *out << "schema " << FormatSchemaSpec(schema) << '\n';
  *out << "queries " << state.queries_issued << '\n';

  *out << "seen " << state.seen_rows.size();
  for (uint64_t id : state.seen_rows) *out << ' ' << id;
  *out << '\n';

  *out << "extracted " << state.extracted.size() << '\n';
  for (const Tuple& t : state.extracted.tuples()) {
    EncodeTupleTokens(t, out);
    *out << '\n';
  }

  *out << "frontier-begin\n";
  state.EncodeFrontier(out);
  *out << "frontier-end\n";
  if (!*out) return Status::Internal("checkpoint write failed");
  return Status::OK();
}

Status SaveCheckpointFile(const CrawlState& state, const Schema& schema,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  HDC_RETURN_IF_ERROR(SaveCheckpoint(state, schema, &out));
  out.close();
  if (!out) return Status::Internal("checkpoint close failed");
  return Status::OK();
}

Status LoadCheckpoint(std::istream* in, SchemaPtr schema,
                      std::shared_ptr<CrawlState>* out) {
  if (in == nullptr || schema == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  std::string line, rest;

  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kMagic) {
      return Status::InvalidArgument("not an hdc checkpoint");
    }
    if (version != kVersion) {
      return Status::NotSupported("unsupported checkpoint version " +
                                  std::to_string(version));
    }
  }

  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  HDC_RETURN_IF_ERROR(ExpectTagged(line, "algorithm", &rest));
  const std::string algorithm = rest;

  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  HDC_RETURN_IF_ERROR(ExpectTagged(line, "schema", &rest));
  if (rest != FormatSchemaSpec(*schema)) {
    // Not the exact schema — accept a *compatible* recorded one (same
    // attributes, kinds and categorical domains; numeric bounds may
    // differ). This is the session-resume case: a crawl checkpointed under
    // a narrowed schema_override (e.g. bounds tightened by domain
    // discovery) must be restorable when the caller only holds the
    // service's full schema. The state is rebuilt against the *recorded*
    // schema — the frontier's extents and the partial extraction only make
    // sense in the space the crawl actually ran in.
    SchemaPtr recorded;
    Status parsed = ParseSchemaSpec(rest, &recorded);
    if (!parsed.ok() || !recorded->CompatibleWith(*schema)) {
      return Status::InvalidArgument(
          "checkpoint was taken against an incompatible schema: " + rest);
    }
    schema = std::move(recorded);
  }

  std::shared_ptr<CrawlState> state = MakeEmptyState(algorithm, schema);
  if (state == nullptr) {
    return Status::InvalidArgument("unknown algorithm '" + algorithm + "'");
  }

  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  HDC_RETURN_IF_ERROR(ExpectTagged(line, "queries", &rest));
  state->queries_issued = std::stoull(rest);

  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  HDC_RETURN_IF_ERROR(ExpectTagged(line, "seen", &rest));
  {
    std::istringstream tokens(rest);
    uint64_t count = 0;
    if (!(tokens >> count)) {
      return Status::InvalidArgument("malformed seen line");
    }
    state->seen_rows.reserve(count * 2);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id;
      if (!(tokens >> id)) {
        return Status::InvalidArgument("malformed seen line");
      }
      state->seen_rows.insert(id);
    }
  }

  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  HDC_RETURN_IF_ERROR(ExpectTagged(line, "extracted", &rest));
  const uint64_t extracted_count = std::stoull(rest);
  const size_t arity = schema->num_attributes();
  for (uint64_t i = 0; i < extracted_count; ++i) {
    HDC_RETURN_IF_ERROR(NextLine(in, &line));
    std::istringstream tokens(line);
    Tuple t;
    HDC_RETURN_IF_ERROR(DecodeTupleTokens(&tokens, arity, &t));
    state->extracted.AddUnchecked(std::move(t));
  }
  HDC_RETURN_IF_ERROR(state->extracted.Validate());

  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  if (line != "frontier-begin") {
    return Status::InvalidArgument("expected frontier-begin, got '" + line +
                                   "'");
  }
  HDC_RETURN_IF_ERROR(state->DecodeFrontier(in));

  *out = std::move(state);
  return Status::OK();
}

Status LoadCheckpointFile(const std::string& path, SchemaPtr schema,
                          std::shared_ptr<CrawlState>* out) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  return LoadCheckpoint(&in, std::move(schema), out);
}

}  // namespace hdc
