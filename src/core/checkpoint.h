// Copyright (c) hdc authors. Apache-2.0 license.
//
// Durable crawl checkpoints. A crawl interrupted by a query budget holds a
// resumable CrawlState (core/crawler.h); this module persists that state to
// a line-oriented text file so the crawl can continue *in a different
// process* — e.g. a cron job spending one day's quota per run.
//
// Format (version 2):
//   hdc-checkpoint 2
//   algorithm <name>
//   schema <spec>                  # data/csv_reader.h spec syntax
//   queries <cumulative count>
//   seen <count> <row id>...
//   extracted <count>
//   <v1> <v2> ... one line per extracted tuple
//   collected <cumulative count>   # tuples delivered, incl. non-materialized
//   frontier-begin
//   ...algorithm-specific lines (CrawlState::EncodeFrontier)...
//   frontier-end
//
// Version 1 files (no `collected` line, schema names unescaped) still load;
// a v1 schema spec containing a backslash is rejected as ambiguous rather
// than guessed at, because it predates the util/string_escape.h convention.
//
// Every decode error is typed and names the 1-based line it occurred on, and
// the output state is never assigned on failure — a truncated file can not
// produce a partially-populated CrawlState.
//
// The per-query trace is not persisted (it is a measurement aid, not crawl
// state); a resumed crawl's trace starts at the resumption point.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/crawler.h"
#include "query/query.h"

namespace hdc {

/// Line reader that tracks 1-based line numbers so decode errors can name
/// the exact line. Shared by the checkpoint loader, every per-algorithm
/// frontier codec, and the frontier-log replayer.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::istream* in) : in_(in) {}

  /// Reads the next line, stripping a trailing CR. EOF is a typed error
  /// naming the missing line: inside a checkpoint, running out of input is
  /// always truncation.
  Status Next(std::string* line);

  /// Like Next but EOF is an expected outcome: returns false at end of
  /// input, true when a line was read.
  bool TryNext(std::string* line);

  /// Number of the last line returned (0 before the first read).
  uint64_t line_number() const { return line_number_; }

  /// InvalidArgument prefixed with "line <n>: " for the last line read.
  Status Error(const std::string& message) const;

 private:
  std::istream* in_;
  uint64_t line_number_ = 0;
};

/// Serializes `state` (validating it against `schema`).
Status SaveCheckpoint(const CrawlState& state, const Schema& schema,
                      std::ostream* out);

/// Crash-atomic file variant: the serialized checkpoint is written to a
/// temp file in the target's directory, fsync'd, then renamed over the
/// target — a crash mid-save always leaves either the old checkpoint or the
/// new one, never a torn file.
Status SaveCheckpointFile(const CrawlState& state, const Schema& schema,
                          const std::string& path);

/// Restores a checkpoint produced by SaveCheckpoint. `schema` must match
/// the recorded one exactly, or be *compatible* with it (same attributes,
/// kinds and categorical domains — numeric bounds may differ, see
/// Schema::CompatibleWith). The compatible case covers resuming a crawl
/// checkpointed under a narrowed session schema_override when the caller
/// holds only the service's full schema: the restored state is then bound
/// to the checkpoint's *recorded* schema, the space the crawl actually ran
/// in, so resume it against a session presenting that same view.
Status LoadCheckpoint(std::istream* in, SchemaPtr schema,
                      std::shared_ptr<CrawlState>* out);
Status LoadCheckpointFile(const std::string& path, SchemaPtr schema,
                          std::shared_ptr<CrawlState>* out);

// --- helpers shared by the per-algorithm frontier codecs ---------------

/// Writes the 2d extent values of `q` as space-separated tokens (no
/// newline).
void EncodeQueryTokens(const Query& q, std::ostream* out);

/// Reads 2d extent values from `in` into a query over `schema`.
Status DecodeQueryTokens(std::istream* in, const SchemaPtr& schema,
                         Query* out);

/// Writes one tuple's values as space-separated tokens (no newline).
void EncodeTupleTokens(const Tuple& t, std::ostream* out);

/// Reads `arity` values from `in`.
Status DecodeTupleTokens(std::istream* in, size_t arity, Tuple* out);

/// Decodes a frontier section consisting of "q <extents>" lines followed by
/// "frontier-end" — the codec shared by binary-shrink and rank-shrink.
Status DecodeQueryStackFrontier(CheckpointReader* in, const SchemaPtr& schema,
                                std::vector<Query>* frontier);

// --- building blocks shared with the frontier log (core/frontier_log.h) --

/// Returns the rest of `line` after a "tag " prefix, or an error.
Status ExpectTagged(const std::string& line, const std::string& tag,
                    std::string* rest);

/// Strict full-match decimal parse; a typed error on anything else (the
/// loader never throws on garbage counts).
Status ParseUint64Token(const std::string& s, uint64_t* out);

/// Fresh zero-progress CrawlState of the named crawler family, or an
/// InvalidArgument for an unknown algorithm. Used wherever serialized crawl
/// state is rebuilt (checkpoint load, frontier-log replay).
Status MakeCrawlStateForAlgorithm(const std::string& algorithm,
                                  const SchemaPtr& schema,
                                  std::shared_ptr<CrawlState>* out);

/// Writes `contents` to `path` crash-atomically: temp file in the same
/// directory, fsync, rename over the target, fsync the directory.
Status WriteFileDurably(const std::string& path, const std::string& contents);

}  // namespace hdc
