// Copyright (c) hdc authors. Apache-2.0 license.
//
// Durable crawl checkpoints. A crawl interrupted by a query budget holds a
// resumable CrawlState (core/crawler.h); this module persists that state to
// a line-oriented text file so the crawl can continue *in a different
// process* — e.g. a cron job spending one day's quota per run.
//
// Format (version 1):
//   hdc-checkpoint 1
//   algorithm <name>
//   schema <spec>                  # data/csv_reader.h spec syntax
//   queries <cumulative count>
//   seen <count> <row id>...
//   extracted <count>
//   <v1> <v2> ... one line per extracted tuple
//   frontier-begin
//   ...algorithm-specific lines (CrawlState::EncodeFrontier)...
//   frontier-end
//
// The per-query trace is not persisted (it is a measurement aid, not crawl
// state); a resumed crawl's trace starts at the resumption point.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/crawler.h"
#include "query/query.h"

namespace hdc {

/// Serializes `state` (validating it against `schema`).
Status SaveCheckpoint(const CrawlState& state, const Schema& schema,
                      std::ostream* out);
Status SaveCheckpointFile(const CrawlState& state, const Schema& schema,
                          const std::string& path);

/// Restores a checkpoint produced by SaveCheckpoint. `schema` must match
/// the recorded one exactly, or be *compatible* with it (same attributes,
/// kinds and categorical domains — numeric bounds may differ, see
/// Schema::CompatibleWith). The compatible case covers resuming a crawl
/// checkpointed under a narrowed session schema_override when the caller
/// holds only the service's full schema: the restored state is then bound
/// to the checkpoint's *recorded* schema, the space the crawl actually ran
/// in, so resume it against a session presenting that same view.
Status LoadCheckpoint(std::istream* in, SchemaPtr schema,
                      std::shared_ptr<CrawlState>* out);
Status LoadCheckpointFile(const std::string& path, SchemaPtr schema,
                          std::shared_ptr<CrawlState>* out);

// --- helpers shared by the per-algorithm frontier codecs ---------------

/// Writes the 2d extent values of `q` as space-separated tokens (no
/// newline).
void EncodeQueryTokens(const Query& q, std::ostream* out);

/// Reads 2d extent values from `in` into a query over `schema`.
Status DecodeQueryTokens(std::istream* in, const SchemaPtr& schema,
                         Query* out);

/// Writes one tuple's values as space-separated tokens (no newline).
void EncodeTupleTokens(const Tuple& t, std::ostream* out);

/// Reads `arity` values from `in`.
Status DecodeTupleTokens(std::istream* in, size_t arity, Tuple* out);

/// Decodes a frontier section consisting of "q <extents>" lines followed by
/// "frontier-end" — the codec shared by binary-shrink and rank-shrink.
Status DecodeQueryStackFrontier(std::istream* in, const SchemaPtr& schema,
                                std::vector<Query>* frontier);

}  // namespace hdc
