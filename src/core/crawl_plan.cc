// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/crawl_plan.h"

#include <algorithm>

namespace hdc {

CrawlPredicate CrawlPredicate::FromQuery(const Query& filter) {
  CrawlPredicate pred;
  const SchemaPtr& schema = filter.schema();
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    if (schema->IsCategorical(i)) {
      if (filter.IsPinned(i)) pred.AddIn(i, {filter.lo(i)});
    } else {
      const AttributeSpec& spec = schema->attribute(i);
      if (filter.lo(i) > spec.lo || filter.hi(i) < spec.hi) {
        pred.AddRange(i, filter.lo(i), filter.hi(i));
      }
    }
  }
  return pred;
}

bool CrawlPlan::MayContainTuples(const Query& query) const {
  if (empty_) return false;
  for (size_t i = 0; i < box_.size(); ++i) {
    if (query.hi(i) < box_[i].lo || query.lo(i) > box_[i].hi) return false;
    if (!allowed_[i].empty() && query.IsPinned(i)) {
      const Value v = query.lo(i);
      if (v < 1 || static_cast<size_t>(v) >= allowed_[i].size() ||
          !allowed_[i][static_cast<size_t>(v)]) {
        return false;
      }
    }
  }
  return true;
}

bool CrawlPlan::Matches(const Tuple& tuple) const {
  if (empty_) return false;
  for (size_t i = 0; i < box_.size(); ++i) {
    const Value v = tuple[i];
    if (!box_[i].Contains(v)) return false;
    if (!allowed_[i].empty() &&
        (v < 1 || static_cast<size_t>(v) >= allowed_[i].size() ||
         !allowed_[i][static_cast<size_t>(v)])) {
      return false;
    }
  }
  return true;
}

Status CompileCrawlPlan(const SchemaPtr& schema,
                        const CrawlPredicate& predicate, CrawlPlan* out) {
  if (schema == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  CrawlPlan plan;
  plan.schema_ = schema;
  const size_t d = schema->num_attributes();

  // Start from the schema's own hull, then intersect constraints in.
  plan.box_.resize(d);
  plan.allowed_.resize(d);
  for (size_t i = 0; i < d; ++i) {
    const AttributeSpec& spec = schema->attribute(i);
    if (spec.is_categorical()) {
      plan.box_[i] = AttrInterval{1, static_cast<Value>(spec.domain_size)};
    } else {
      plan.box_[i] = AttrInterval{spec.lo, spec.hi};
    }
  }

  for (const CrawlPredicate::NumericRange& r : predicate.ranges) {
    if (r.attr >= d) {
      return Status::InvalidArgument("range on attribute " +
                                     std::to_string(r.attr) +
                                     " outside the schema");
    }
    if (schema->IsCategorical(r.attr)) {
      return Status::InvalidArgument(
          "range constraint on categorical attribute " +
          schema->attribute(r.attr).name +
          " (use an IN-set; categorical queries are pinned-or-wildcard)");
    }
    AttrInterval& box = plan.box_[r.attr];
    box.lo = std::max(box.lo, r.lo);
    box.hi = std::min(box.hi, r.hi);
    if (box.lo > box.hi) plan.empty_ = true;
  }

  for (const CrawlPredicate::CategoricalIn& s : predicate.in_sets) {
    if (s.attr >= d) {
      return Status::InvalidArgument("IN-set on attribute " +
                                     std::to_string(s.attr) +
                                     " outside the schema");
    }
    if (!schema->IsCategorical(s.attr)) {
      return Status::InvalidArgument(
          "IN-set constraint on numeric attribute " +
          schema->attribute(s.attr).name + " (use a range)");
    }
    if (s.values.empty()) {
      return Status::InvalidArgument("empty IN-set on attribute " +
                                     schema->attribute(s.attr).name);
    }
    const size_t domain = schema->domain_size(s.attr);
    std::vector<bool> set(domain + 1, false);
    for (Value v : s.values) {
      // Out-of-domain values cannot match anything; dropping them keeps the
      // conjunction exact.
      if (v >= 1 && static_cast<size_t>(v) <= domain) {
        set[static_cast<size_t>(v)] = true;
      }
    }
    std::vector<bool>& allowed = plan.allowed_[s.attr];
    if (allowed.empty()) {
      allowed = std::move(set);
    } else {
      for (size_t v = 1; v <= domain; ++v) {
        allowed[v] = allowed[v] && set[v];
      }
    }
  }

  // Normalize the IN-sets: a full-domain set is no constraint, a singleton
  // pins the rectangle, an empty intersection kills the plan.
  plan.root_ = Query::FullSpace(schema);
  for (size_t i = 0; i < d; ++i) {
    std::vector<bool>& allowed = plan.allowed_[i];
    if (!allowed.empty()) {
      size_t count = 0;
      Value only = 0;
      for (size_t v = 1; v < allowed.size(); ++v) {
        if (allowed[v]) {
          ++count;
          only = static_cast<Value>(v);
        }
      }
      if (count == 0) {
        plan.empty_ = true;
      } else if (count == 1) {
        plan.box_[i] = AttrInterval{only, only};
        allowed.clear();
        if (!plan.empty_) {
          plan.root_ = plan.root_->WithCategoricalEquals(i, only);
        }
        continue;
      } else if (count == allowed.size() - 1) {
        allowed.clear();
      } else {
        plan.residual_ = true;
      }
    }
    if (plan.empty_ || schema->IsCategorical(i)) continue;
    const AttributeSpec& spec = schema->attribute(i);
    if (plan.box_[i].lo > spec.lo || plan.box_[i].hi < spec.hi) {
      plan.root_ =
          plan.root_->WithNumericRange(i, plan.box_[i].lo, plan.box_[i].hi);
    }
  }

  *out = std::move(plan);
  return Status::OK();
}

Status CompileQueryPlan(const Query& filter, CrawlPlan* out) {
  return CompileCrawlPlan(filter.schema(), CrawlPredicate::FromQuery(filter),
                          out);
}

}  // namespace hdc
