// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/rank_shrink.h"

#include <algorithm>
#include <ostream>
#include <cmath>

#include "core/checkpoint.h"
#include "core/crawl_context.h"
#include "core/crawl_plan.h"
#include "util/macros.h"

namespace hdc {

RankShrink::RankShrink(RankShrinkOptions options) : options_(options) {
  HDC_CHECK(options_.rank_fraction > 0.0 && options_.rank_fraction <= 1.0);
  HDC_CHECK(options_.three_way_fraction >= 0.0 &&
            options_.three_way_fraction < 1.0);
}

Status RankShrink::ValidateSchema(const Schema& schema) const {
  if (!schema.all_numeric()) {
    return Status::InvalidArgument(
        "rank-shrink handles all-numeric data spaces only (use hybrid for "
        "mixed spaces)");
  }
  return Status::OK();
}

std::optional<size_t> ChooseSplitAttribute(
    const Query& q, const std::vector<ReturnedTuple>& returned,
    const RankShrinkOptions& options) {
  const Schema& schema = *q.schema();
  if (options.attribute_strategy ==
      SplitAttributeStrategy::kFirstNonExhausted) {
    for (size_t i = 0; i < q.num_attributes(); ++i) {
      if (!q.IsPinned(i) && schema.IsNumeric(i)) return i;
    }
    return std::nullopt;
  }

  // kMostDistinctValues: count distinct response values per free attribute.
  std::optional<size_t> best;
  size_t best_distinct = 0;
  std::vector<Value> values;
  values.reserve(returned.size());
  for (size_t i = 0; i < q.num_attributes(); ++i) {
    if (q.IsPinned(i) || !schema.IsNumeric(i)) continue;
    values.clear();
    for (const ReturnedTuple& rt : returned) values.push_back(rt.tuple[i]);
    std::sort(values.begin(), values.end());
    const size_t distinct = static_cast<size_t>(
        std::unique(values.begin(), values.end()) - values.begin());
    if (!best.has_value() || distinct > best_distinct) {
      best = i;
      best_distinct = distinct;
    }
  }
  return best;
}

void RankShrinkExpand(const Query& q, size_t attr,
                      const std::vector<ReturnedTuple>& returned, uint64_t k,
                      const RankShrinkOptions& options,
                      std::vector<Query>* frontier) {
  HDC_CHECK(frontier != nullptr);
  HDC_CHECK_MSG(!returned.empty(), "an overflowing response holds k tuples");
  HDC_CHECK(q.schema()->IsNumeric(attr));

  std::vector<Value> values;
  values.reserve(returned.size());
  for (const ReturnedTuple& rt : returned) values.push_back(rt.tuple[attr]);
  std::sort(values.begin(), values.end());

  // o = the (k * rank_fraction)-th tuple in ascending order (k/2 in the
  // paper); x is its value, c its multiplicity within the response.
  size_t rank = static_cast<size_t>(
      std::floor(static_cast<double>(k) * options.rank_fraction));
  rank = std::clamp<size_t>(rank, 1, values.size());
  const Value x = values[rank - 1];
  const size_t c = static_cast<size_t>(
      std::upper_bound(values.begin(), values.end(), x) -
      std::lower_bound(values.begin(), values.end(), x));

  const AttrInterval& ext = q.extent(attr);
  const bool few_duplicates =
      static_cast<double>(c) <=
      static_cast<double>(k) * options.three_way_fraction;

  // Case 1 (c <= k/4): 2-way split at x; both halves receive >= k/4 of the
  // response. The paper shows x > lo always holds here (otherwise every
  // value below x would be missing and c >= k/2); the guard keeps the split
  // legal under ablated fractions too.
  if (few_duplicates && x > ext.lo) {
    TwoWaySplitResult halves = TwoWaySplit(q, attr, x);
    frontier->push_back(std::move(halves.right));
    frontier->push_back(std::move(halves.left));
    return;
  }

  // Case 2: 3-way split; the middle slab [x, x] exhausts `attr` and becomes
  // a (d-1)-dimensional sub-problem (a resolvable point in 1-d).
  ThreeWaySplitResult parts = ThreeWaySplit(q, attr, x);
  if (parts.right.has_value()) frontier->push_back(std::move(*parts.right));
  frontier->push_back(std::move(parts.mid));
  if (parts.left.has_value()) frontier->push_back(std::move(*parts.left));
}

std::shared_ptr<CrawlState> RankShrink::MakeInitialState(
    HiddenDbServer* server, const CrawlOptions& options) const {
  auto state = std::make_shared<RankShrinkState>(server->schema());
  state->frontier.push_back(options.plan != nullptr
                                ? options.plan->root()
                                : Query::FullSpace(server->schema()));
  return state;
}

void RankShrink::Run(CrawlContext* ctx, CrawlState* state) const {
  auto* st = static_cast<RankShrinkState*>(state);
  std::vector<Query> round;
  std::vector<Response> responses;
  while (!st->frontier.empty()) {
    // Child rectangles of distinct splits are pairwise disjoint, so up to
    // `batch` of them ride one server round trip.
    const size_t batch = ctx->RoundSize(st->frontier.size());
    round.clear();
    while (!st->frontier.empty() && round.size() < batch) {
      round.push_back(std::move(st->frontier.back()));
      st->frontier.pop_back();
    }
    const std::vector<CrawlContext::Outcome> outcomes =
        ctx->IssueBatch(round, &responses);

    for (size_t i = 0; i < round.size(); ++i) {
      switch (outcomes[i]) {
        case CrawlContext::Outcome::kStop:
          for (size_t j = round.size(); j-- > i;) {
            st->frontier.push_back(std::move(round[j]));
          }
          return;
        case CrawlContext::Outcome::kPrunedEmpty:
          continue;
        case CrawlContext::Outcome::kResolved:
          ctx->CollectResponse(responses[i]);
          continue;
        case CrawlContext::Outcome::kOverflow:
          break;
      }

      const Query& q = round[i];
      auto attr = ChooseSplitAttribute(q, responses[i].tuples, options_);
      if (!attr.has_value()) {
        ctx->SetFatal(Status::Unsolvable("point " + q.ToString() +
                                         " holds more than k tuples"));
        return;
      }
      RankShrinkExpand(q, *attr, responses[i].tuples, ctx->k(), options_,
                       &st->frontier);
    }
  }
}


void RankShrinkState::EncodeFrontier(std::ostream* out) const {
  for (const Query& q : frontier) {
    *out << "q ";
    EncodeQueryTokens(q, out);
    *out << '\n';
  }
}

Status RankShrinkState::DecodeFrontier(CheckpointReader* in) {
  return DecodeQueryStackFrontier(in, extracted.schema(), &frontier);
}

}  // namespace hdc
