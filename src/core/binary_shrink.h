// Copyright (c) hdc authors. Apache-2.0 license.
//
// binary-shrink (paper, Section 2.1): the baseline numeric crawler. Runs a
// rectangle; if it overflows, 2-way splits it at the midpoint of the extent
// of a non-exhausted attribute and recurses. Its cost depends on the domain
// sizes of the attributes (unbounded in general), which is exactly the
// weakness rank-shrink removes.
#pragma once

#include <vector>

#include "core/crawler.h"
#include "query/query.h"

namespace hdc {

class BinaryShrinkState : public CrawlState {
 public:
  using CrawlState::CrawlState;
  bool Finished() const override { return frontier.empty(); }
  std::string algorithm() const override { return "binary-shrink"; }
  void EncodeFrontier(std::ostream* out) const override;
  Status DecodeFrontier(CheckpointReader* in) override;

  /// LIFO stack of pending rectangles.
  std::vector<Query> frontier;
};

class BinaryShrink : public Crawler {
 public:
  std::string name() const override { return "binary-shrink"; }

  /// Requires an all-numeric schema with *bounded* attribute domains —
  /// midpoint splitting cannot start from an infinite extent.
  Status ValidateSchema(const Schema& schema) const override;

 protected:
  std::shared_ptr<CrawlState> MakeInitialState(
      HiddenDbServer* server, const CrawlOptions& options) const override;
  void Run(CrawlContext* ctx, CrawlState* state) const override;
};

}  // namespace hdc
