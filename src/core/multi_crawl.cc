// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/multi_crawl.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/macros.h"

namespace hdc {

std::vector<MultiCrawlOutcome> RunMultiCrawl(
    CrawlService* service, const std::vector<MultiCrawlJob>& jobs,
    unsigned max_concurrent) {
  HDC_CHECK(service != nullptr);
  for (const MultiCrawlJob& job : jobs) {
    HDC_CHECK_MSG(job.crawler != nullptr, "every job needs a crawler");
  }

  std::vector<MultiCrawlOutcome> outcomes;
  outcomes.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    outcomes.emplace_back(service->schema());
  }
  if (jobs.empty()) return outcomes;

  // Each lane claims jobs off the shared cursor until none remain. A lane
  // owns one job at a time: session and crawl state are lane-local, and
  // each lane writes only its claimed outcome slots — the only shared
  // mutable state between lanes is the service's (thread-safe) pool.
  std::atomic<size_t> cursor{0};
  auto lane = [&] {
    for (;;) {
      const size_t i = cursor.fetch_add(1);
      if (i >= jobs.size()) return;
      const MultiCrawlJob& job = jobs[i];
      std::unique_ptr<ServerSession> session =
          service->CreateSession(job.session);
      MultiCrawlOutcome& out = outcomes[i];
      out.label = job.label.empty() ? job.crawler->name() : job.label;
      out.result = job.crawler->Crawl(session.get(), job.crawl);
      out.session_queries = session->queries_served();
      out.session_tuples = session->tuples_returned();
      out.session_overflows = session->overflow_count();
    }
  };

  const size_t lanes = std::min<size_t>(
      jobs.size(), max_concurrent > 0 ? max_concurrent : jobs.size());
  if (lanes <= 1) {
    lane();
    return outcomes;
  }
  std::vector<std::thread> threads;
  threads.reserve(lanes);
  for (size_t t = 0; t < lanes; ++t) threads.emplace_back(lane);
  for (std::thread& t : threads) t.join();
  return outcomes;
}

}  // namespace hdc
