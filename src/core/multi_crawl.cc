// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/multi_crawl.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/macros.h"
#include "util/thread_annotations.h"

namespace hdc {

std::vector<MultiCrawlOutcome> RunMultiCrawl(
    CrawlService* service, const std::vector<MultiCrawlJob>& jobs,
    const MultiCrawlOptions& options) {
  HDC_CHECK(service != nullptr);
  for (const MultiCrawlJob& job : jobs) {
    HDC_CHECK_MSG(job.crawler != nullptr, "every job needs a crawler");
  }

  std::vector<MultiCrawlOutcome> outcomes;
  outcomes.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    outcomes.emplace_back(service->schema());
  }
  if (jobs.empty()) return outcomes;

  // Each lane claims jobs off the shared cursor until none remain. A lane
  // owns one job at a time: session and crawl state are lane-local, and
  // each lane writes only its claimed outcome slots — the only shared
  // mutable state between lanes is the service's (thread-safe) pool.
  std::atomic<size_t> cursor{0};
  auto lane = [&] {
    for (;;) {
      const size_t i = cursor.fetch_add(1);
      if (i >= jobs.size()) return;
      const MultiCrawlJob& job = jobs[i];
      MultiCrawlOutcome& out = outcomes[i];
      out.label = job.label.empty() ? job.crawler->name() : job.label;
      // The job's display label doubles as the session label (unless the
      // caller picked one), so metrics snapshots name the tenants.
      SessionOptions session_options = job.session;
      if (session_options.label.empty()) session_options.label = out.label;
      std::unique_ptr<ServerSession> session =
          service->CreateSession(std::move(session_options));
      out.result = job.crawler->Crawl(session.get(), job.crawl);
      out.session_queries = session->queries_served();
      out.session_tuples = session->tuples_returned();
      out.session_overflows = session->overflow_count();
      const WorkerPool::LaneStats stats = session->lane_stats();
      out.session_batches = stats.loops_submitted;
      out.queue_wait_total_seconds = stats.queue_wait_total_seconds;
      out.queue_wait_max_seconds = stats.queue_wait_max_seconds;
    }
  };

  // The monitor samples service metrics on its own thread while the jobs
  // run; `done` (guarded by monitor_mutex — locals cannot carry the
  // annotation) + the cv bound how long it outlives the last job.
  std::thread monitor;
  Mutex monitor_mutex;
  CondVar monitor_cv;
  bool done = false;
  if (options.on_metrics) {
    monitor = std::thread([&] {
      monitor_mutex.Lock();
      while (!done) {
        monitor_cv.WaitFor(&monitor_mutex, options.metrics_period);
        if (done) break;
        monitor_mutex.Unlock();
        options.on_metrics(service->MetricsSnapshot());
        monitor_mutex.Lock();
      }
      monitor_mutex.Unlock();
    });
  }

  const size_t lanes = std::min<size_t>(
      jobs.size(),
      options.max_concurrent > 0 ? options.max_concurrent : jobs.size());
  if (lanes <= 1) {
    lane();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(lanes);
    for (size_t t = 0; t < lanes; ++t) threads.emplace_back(lane);
    for (std::thread& t : threads) t.join();
  }

  if (monitor.joinable()) {
    {
      MutexLock lock(&monitor_mutex);
      done = true;
    }
    monitor_cv.NotifyAll();
    monitor.join();
    // One final snapshot after every job (and its session) has wound down.
    options.on_metrics(service->MetricsSnapshot());
  }
  return outcomes;
}

std::vector<MultiCrawlOutcome> RunMultiCrawl(
    CrawlService* service, const std::vector<MultiCrawlJob>& jobs,
    unsigned max_concurrent) {
  MultiCrawlOptions options;
  options.max_concurrent = max_concurrent;
  return RunMultiCrawl(service, jobs, options);
}

}  // namespace hdc
