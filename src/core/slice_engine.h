// Copyright (c) hdc authors. Apache-2.0 license.
//
// Shared engine behind slice-cover, lazy-slice-cover (paper, Section 3.2)
// and hybrid (Section 5).
//
// A *slice query* pins exactly one categorical attribute and is wildcard
// everywhere else. The engine keeps a lookup table of slice responses:
// resolved slices store their full bag, overflowing slices store only a bit
// ("we remember nothing but a bit"). extended-DFS then walks the data-space
// tree over the categorical attributes:
//   - the root is never issued: its children are enumerated directly;
//   - a child whose refining slice resolved is answered locally by
//     filtering the slice's cached bag (no query);
//   - a child whose slice overflowed is visited: its own query is issued
//     (except at level 1, where the node query *is* the slice query) and,
//     on overflow, expanded one level further;
//   - a node with every categorical attribute pinned is the root of a
//     numeric sub-problem and is handed to rank-shrink (Section 5). With no
//     numeric attributes that sub-problem is a single point query, which
//     degenerates to exactly Section 3.2's behaviour.
//
// Eager mode issues all Sigma U_i slice queries up-front (slice-cover);
// lazy mode issues each slice on first need and memoizes
// (lazy-slice-cover), which never costs more (Section 3.2, "Heuristic").
#pragma once

#include <cstdint>
#include <vector>

#include "core/crawler.h"
#include "core/rank_shrink.h"
#include "query/query.h"
#include "server/response.h"

namespace hdc {

/// One row of the slice lookup table.
struct SliceEntry {
  enum class State : uint8_t { kUnknown, kResolved, kOverflow };
  State state = State::kUnknown;
  /// Full result bag; only populated when state == kResolved.
  std::vector<ReturnedTuple> bag;
};

/// Order in which the extended-DFS consumes the categorical attributes.
/// The paper fixes the schema order (Section 6); the ablation bench shows
/// the optimal algorithms want narrow domains first — a wide first
/// attribute forces U_1 slice queries before anything can be pruned.
enum class CategoricalOrder {
  kSchemaOrder,     // the paper's setup
  kNarrowestFirst,  // ascending domain size (ties by schema position)
  kWidestFirst,     // descending domain size — the stress case
};

class SliceEngineState : public CrawlState {
 public:
  /// `algorithm` is the owning crawler's name ("slice-cover",
  /// "lazy-slice-cover" or "hybrid"); `eager` selects the preprocessing
  /// phase; `cat_order` lists the categorical attribute indices in
  /// traversal order (empty = schema order).
  SliceEngineState(SchemaPtr schema, std::string algorithm, bool eager,
                   std::vector<size_t> cat_order = {});

  bool Finished() const override {
    return preprocessing_done && frontier.empty();
  }
  std::string algorithm() const override { return algorithm_; }
  void EncodeFrontier(std::ostream* out) const override;
  Status DecodeFrontier(CheckpointReader* in) override;

  /// The rectangle the crawl covers: the full space, or a plan's pushdown
  /// root (core/crawl_plan.h). Slice queries and the tree root are scoped
  /// to it, so the engine never descends outside the satisfying subspace.
  Query root;

  /// Categorical attribute indices in traversal order; tree level L pins
  /// cat_order[0..L-1].
  std::vector<size_t> cat_order;

  /// slices[p][v]: entry for the slice query pinning attribute
  /// cat_order[p] to value v. Index 0 of the inner vector is unused
  /// (values are 1-based).
  std::vector<std::vector<SliceEntry>> slices;

  /// Eager preprocessing cursor (so a budget stop mid-preprocessing
  /// resumes where it left off).
  bool eager = false;
  bool preprocessing_done = false;
  size_t pre_cat_pos = 0;
  Value pre_value = 1;

  /// Work frontier of the extended-DFS. kNode items are data-space-tree
  /// nodes (level = number of pinned categorical attributes); kRank items
  /// are rank-shrink rectangles under a fully-pinned categorical point.
  struct Item {
    enum class Kind : uint8_t { kNode, kRank };
    Kind kind;
    Query q;
    uint32_t level;
  };
  std::vector<Item> frontier;

 private:
  std::string algorithm_;
};

struct SliceEngineOptions {
  bool eager = false;
  RankShrinkOptions rank;
  CategoricalOrder order = CategoricalOrder::kSchemaOrder;
};

/// Resolves a CategoricalOrder into the concrete attribute-index order.
std::vector<size_t> ResolveCategoricalOrder(const Schema& schema,
                                            CategoricalOrder order);

/// Creates the initial state: the frontier holds the tree root (or, with no
/// categorical attributes, a single rank-shrink rectangle covering D).
/// `root` scopes the crawl to a sub-rectangle (predicate pushdown); null
/// means the full space.
std::shared_ptr<SliceEngineState> MakeSliceEngineState(
    const SchemaPtr& schema, const std::string& algorithm, bool eager,
    CategoricalOrder order = CategoricalOrder::kSchemaOrder,
    const Query* root = nullptr);

/// Drains the state against the context until finished or stopped.
void SliceEngineRun(CrawlContext* ctx, SliceEngineState* st,
                    const SliceEngineOptions& options);

}  // namespace hdc
