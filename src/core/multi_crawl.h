// Copyright (c) hdc authors. Apache-2.0 license.
//
// Multi-crawl driver: runs N independent crawls — different algorithms,
// budgets, batch shapes, and schema views — concurrently over one
// CrawlService. Each job gets its own ServerSession (its own statistics,
// budget, audit log) while all of them evaluate against the service's
// shared immutable index and worker pool; the paper's query-cost
// accounting therefore stays exact per crawl even when many run at once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/crawler.h"
#include "server/crawl_service.h"

namespace hdc {

/// One crawl to run: the algorithm, its run options, and the metering of
/// the session it runs in.
struct MultiCrawlJob {
  /// Display name for the outcome; defaults to the crawler's name.
  std::string label;

  /// The algorithm. Jobs must not share one crawler instance with
  /// different concurrent mutable state; give each job its own (Crawler
  /// itself is stateless across Crawl calls, all run state lives in the
  /// CrawlState).
  std::shared_ptr<Crawler> crawler;

  /// Per-run options (budget for this run, batch size, trace, oracle).
  CrawlOptions crawl;

  /// Per-session metering (server-side budget, audit log, schema view).
  SessionOptions session;
};

/// What one job produced, plus the session's server-side view of the same
/// conversation.
struct MultiCrawlOutcome {
  /// CrawlResult is not default-constructible (its Dataset needs a
  /// schema); outcomes start from the service's schema.
  explicit MultiCrawlOutcome(SchemaPtr schema)
      : result(std::move(schema)) {}

  std::string label;
  CrawlResult result;

  /// Session accounting: queries answered / tuples shipped / overflows for
  /// this crawl alone.
  uint64_t session_queries = 0;
  uint64_t session_tuples = 0;
  uint64_t session_overflows = 0;
};

/// Runs every job over `service`, up to `max_concurrent` at a time (0
/// means all at once), each on its own thread with its own session.
/// `outcomes[i]` corresponds to `jobs[i]`. Jobs must carry a non-null
/// crawler. The call blocks until every job has finished (complete,
/// fatal, or out of budget — an exhausted job's resume state is in its
/// outcome as usual).
std::vector<MultiCrawlOutcome> RunMultiCrawl(
    CrawlService* service, const std::vector<MultiCrawlJob>& jobs,
    unsigned max_concurrent = 0);

}  // namespace hdc
