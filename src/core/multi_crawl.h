// Copyright (c) hdc authors. Apache-2.0 license.
//
// Multi-crawl driver: runs N independent crawls — different algorithms,
// budgets, batch shapes, and schema views — concurrently over one
// CrawlService. Each job gets its own ServerSession (its own statistics,
// budget, audit log, scheduling lane) while all of them evaluate against
// the service's shared immutable index and worker pool; the paper's
// query-cost accounting therefore stays exact per crawl even when many
// run at once, and the service's fair scheduler keeps any one job from
// starving the rest. The driver can also stream CrawlServiceMetrics
// snapshots to a callback while the jobs run — the service-operator view
// (sessions active, pool occupancy, queries/s, per-session queue wait).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/crawler.h"
#include "server/crawl_service.h"

namespace hdc {

/// One crawl to run: the algorithm, its run options, and the metering of
/// the session it runs in.
struct MultiCrawlJob {
  /// Display name for the outcome; defaults to the crawler's name.
  std::string label;

  /// The algorithm. Jobs must not share one crawler instance with
  /// different concurrent mutable state; give each job its own (Crawler
  /// itself is stateless across Crawl calls, all run state lives in the
  /// CrawlState).
  std::shared_ptr<Crawler> crawler;

  /// Per-run options (budget for this run, batch size, trace, oracle).
  CrawlOptions crawl;

  /// Per-session metering and admission (server-side budget, audit log,
  /// schema view, scheduling weight / lane cap).
  SessionOptions session;
};

/// What one job produced, plus the session's server-side view of the same
/// conversation.
struct MultiCrawlOutcome {
  /// CrawlResult is not default-constructible (its Dataset needs a
  /// schema); outcomes start from the service's schema.
  explicit MultiCrawlOutcome(SchemaPtr schema)
      : result(std::move(schema)) {}

  std::string label;
  CrawlResult result;

  /// Session accounting: queries answered / tuples shipped / overflows for
  /// this crawl alone.
  uint64_t session_queries = 0;
  uint64_t session_tuples = 0;
  uint64_t session_overflows = 0;

  /// Scheduling accounting of the job's pool lane: batches fanned out and
  /// how long they queued before the pool first served them (all zero on
  /// a single-lane service).
  uint64_t session_batches = 0;
  double queue_wait_total_seconds = 0;
  double queue_wait_max_seconds = 0;
};

/// Driver knobs for RunMultiCrawl.
struct MultiCrawlOptions {
  /// Jobs running at once; 0 means all at once.
  unsigned max_concurrent = 0;

  /// When set, invoked with a fresh CrawlService::MetricsSnapshot() every
  /// `metrics_period` while jobs run, and once more after the last job
  /// finished. Runs on a dedicated monitor thread — the callback must be
  /// thread-safe with respect to the caller's own state.
  std::function<void(const CrawlServiceMetrics&)> on_metrics;
  std::chrono::milliseconds metrics_period{100};
};

/// Runs every job over `service`, each on its own thread with its own
/// session. `outcomes[i]` corresponds to `jobs[i]`. Jobs must carry a
/// non-null crawler. The call blocks until every job has finished
/// (complete, fatal, or out of budget — an exhausted job's resume state is
/// in its outcome as usual).
std::vector<MultiCrawlOutcome> RunMultiCrawl(
    CrawlService* service, const std::vector<MultiCrawlJob>& jobs,
    const MultiCrawlOptions& options);

/// Convenience overload: up to `max_concurrent` jobs at a time (0 means
/// all at once), no metrics streaming.
std::vector<MultiCrawlOutcome> RunMultiCrawl(
    CrawlService* service, const std::vector<MultiCrawlJob>& jobs,
    unsigned max_concurrent = 0);

}  // namespace hdc
