// Copyright (c) hdc authors. Apache-2.0 license.
//
// Latency-aware adaptive batch sizing — the feedback half of
// CrawlOptions::batch_size == 0 ("auto").
//
// Against an in-process server, auto sizing is the deterministic rule from
// PR 3: round = min(frontier width, batch_parallelism). Against a remote
// transport (HiddenDbServer::load_hint().latency_feedback), every round
// pays a fixed wire cost on top of per-query evaluation, so the right
// round size depends on *observed* behaviour, not declared parallelism:
//
//  - rounds finishing well under the target round-trip budget are too
//    small — the fixed latency dominates; grow (double) the round so more
//    queries amortize it;
//  - rounds blowing past the budget are too big — halve, so an interrupt
//    (quota, politeness window, operator stop) never strands more than
//    ~target seconds of in-flight work;
//  - a round that spent a large fraction of its round-trip *queued behind
//    other tenants* (the PR 4 per-lane queue-wait signal, piggybacked on
//    batch replies) means the server is congested: back off first,
//    whatever the latency says — a polite crawler sheds load before
//    optimizing its own throughput.
//
// The sizer only ever changes how many frontier items share a wire round —
// query count, answers and extraction are invariant (the PR 2 batching
// contract), so growth/shrink decisions need no correctness argument, only
// a performance one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "server/server.h"

namespace hdc {

struct AdaptiveBatchOptions {
  /// Round-trip wall-clock budget a round should roughly fill. Rounds
  /// under half of it double the limit; rounds over twice it halve it.
  double target_round_seconds = 0.25;

  /// Back off when the server-side queue wait of the last round exceeds
  /// this fraction of its round-trip time.
  double congestion_fraction = 0.5;

  /// Hard ceiling on the adaptive round limit.
  size_t max_round = 1024;
};

/// Tracks observed rounds and maintains the current round-size limit.
/// Single-conversation (one per CrawlContext); not thread-safe.
class AdaptiveBatchSizer {
 public:
  /// `base_parallelism` seeds the limit (clamped to >= 1): the declared
  /// server parallelism is the best first guess before any round is
  /// observed.
  AdaptiveBatchSizer(const AdaptiveBatchOptions& options,
                     unsigned base_parallelism);

  /// Records one completed wire round: `round_size` members, observed
  /// `rtt_seconds` wall clock, and the server's *cumulative* queue-wait
  /// reading after the round (ServerLoadHint::queue_wait_total_seconds;
  /// successive readings are diffed internally). Updates the limit.
  void RecordRound(size_t round_size, double rtt_seconds,
                   double queue_wait_total_seconds);

  /// Load-hint form: against a sharded backend (server/sharding.h) the
  /// hint carries one cumulative queue wait per shard, and the congestion
  /// signal is the *maximum* per-shard delta — a scattered round is as
  /// slow as its slowest shard, so one congested shard among idle ones
  /// must back the round size off even though the summed wait looks mild.
  /// Falls back to the aggregate reading for unsharded hints.
  void RecordRound(size_t round_size, double rtt_seconds,
                   const ServerLoadHint& hint);

  /// Current limit on how many frontier items the next round may carry.
  size_t limit() const { return limit_; }

  // --- introspection for tests and metrics ------------------------------
  uint64_t rounds_recorded() const { return rounds_recorded_; }
  uint64_t grow_events() const { return grow_events_; }
  uint64_t shrink_events() const { return shrink_events_; }
  uint64_t congestion_backoffs() const { return congestion_backoffs_; }

 private:
  /// The shared decision core, fed the last round's queue-wait *delta*.
  void RecordDelta(size_t round_size, double rtt_seconds, double wait_delta);

  /// Cumulative-reading diff with the reconnect rule: a reading smaller
  /// than the previous one re-seeds (fresh session) instead of clamping.
  static double DiffReading(double reading, double* last);

  AdaptiveBatchOptions options_;
  size_t limit_;
  double last_queue_wait_total_ = 0;
  /// Previous per-shard readings (sharded conversations only).
  std::vector<double> last_shard_waits_;
  uint64_t rounds_recorded_ = 0;
  uint64_t grow_events_ = 0;
  uint64_t shrink_events_ = 0;
  uint64_t congestion_backoffs_ = 0;
};

}  // namespace hdc
