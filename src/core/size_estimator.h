// Copyright (c) hdc authors. Apache-2.0 license.
//
// Sampling-based size estimation — the *alternative* to crawling discussed
// in the paper's related work (Section 1.4, Dasgupta et al. [9]): instead
// of extracting everything, estimate |D| from a handful of random
// drill-downs. Included so the crawl-vs-sample trade-off can be measured
// (bench_estimation): sampling is orders of magnitude cheaper but
// approximate and supports only aggregates, while crawling enables
// "virtually any form of processing" exactly.
//
// The estimator performs random walks down the categorical data-space tree
// (Section 3.1): from the root, repeatedly pin the next attribute to a
// uniformly random domain value until the query resolves with m tuples;
// the walk's estimate is m * (product of the domain sizes descended
// through). The first-resolved nodes along all paths form a cut that
// partitions D, so the estimator is unbiased: E[estimate] = |D|.
#pragma once

#include <cstdint>

#include "server/server.h"
#include "util/status.h"

namespace hdc {

struct SizeEstimate {
  /// Mean of the per-walk unbiased estimates.
  double estimate = 0.0;
  /// Standard error of the mean (0 when fewer than 2 walks).
  double standard_error = 0.0;
  /// Total queries spent.
  uint64_t queries = 0;
  uint64_t walks = 0;
  /// True when the root query resolved: `estimate` is exact.
  bool exact = false;
};

/// Runs `num_walks` random drill-downs against an all-categorical server.
/// Returns NotSupported for spaces with numeric attributes (a numeric
/// subspace cannot be descended by value enumeration).
Status EstimateDatabaseSize(HiddenDbServer* server, uint64_t num_walks,
                            uint64_t seed, SizeEstimate* out);

}  // namespace hdc
