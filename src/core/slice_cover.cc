// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/slice_cover.h"

#include "core/crawl_plan.h"

namespace hdc {

Status SliceCoverCrawler::ValidateSchema(const Schema& schema) const {
  if (!schema.all_categorical()) {
    return Status::InvalidArgument(
        std::string(lazy_ ? "lazy-slice-cover" : "slice-cover") +
        " handles all-categorical data spaces only (use hybrid for mixed)");
  }
  return Status::OK();
}

std::shared_ptr<CrawlState> SliceCoverCrawler::MakeInitialState(
    HiddenDbServer* server, const CrawlOptions& options) const {
  return MakeSliceEngineState(
      server->schema(), name(), /*eager=*/!lazy_, order_,
      options.plan != nullptr ? &options.plan->root() : nullptr);
}

void SliceCoverCrawler::Run(CrawlContext* ctx, CrawlState* state) const {
  SliceEngineOptions options;
  options.eager = !lazy_;
  options.order = order_;
  SliceEngineRun(ctx, static_cast<SliceEngineState*>(state), options);
}

}  // namespace hdc
