// Copyright (c) hdc authors. Apache-2.0 license.
//
// slice-cover and lazy-slice-cover (paper, Section 3.2): the optimal
// categorical crawlers. Cost at most
//     Sigma_i U_i + (n/k) * Sigma_i min{U_i, n/k}     (d > 1)
//     U_1                                             (d = 1)
// which Theorem 4 proves optimal up to constants. The lazy variant skips
// the preprocessing phase and issues slice queries on first need; it never
// costs more and is the paper's practical winner (Figure 11).
#pragma once

#include "core/crawler.h"
#include "core/slice_engine.h"

namespace hdc {

class SliceCoverCrawler : public Crawler {
 public:
  /// `lazy` selects lazy-slice-cover (no preprocessing phase); `order`
  /// picks the attribute traversal order (the paper uses schema order).
  explicit SliceCoverCrawler(
      bool lazy, CategoricalOrder order = CategoricalOrder::kSchemaOrder)
      : lazy_(lazy), order_(order) {}

  std::string name() const override {
    return lazy_ ? "lazy-slice-cover" : "slice-cover";
  }

  /// Requires an all-categorical schema (use HybridCrawler for mixed).
  Status ValidateSchema(const Schema& schema) const override;

  bool lazy() const { return lazy_; }

 protected:
  std::shared_ptr<CrawlState> MakeInitialState(
      HiddenDbServer* server, const CrawlOptions& options) const override;
  void Run(CrawlContext* ctx, CrawlState* state) const override;

 private:
  bool lazy_;
  CategoricalOrder order_;
};

}  // namespace hdc
