// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/domain_discovery.h"

#include "query/query.h"
#include "util/macros.h"

namespace hdc {
namespace {

/// Issues `query` and reports whether any tuple satisfies it (an
/// overflowing response trivially does; a resolved one iff non-empty).
Status RegionNonEmpty(HiddenDbServer* server, const Query& query,
                      uint64_t* queries, bool* non_empty) {
  Response response;
  HDC_RETURN_IF_ERROR(server->Issue(query, &response));
  ++*queries;
  *non_empty = response.overflow || !response.tuples.empty();
  return Status::OK();
}

/// Largest x in (lo_known_nonempty, hi_known_empty) such that
/// [x, +inf) is non-empty on `attr` — i.e. the observed maximum.
Status BinarySearchMax(HiddenDbServer* server, size_t attr, Value lo,
                       Value hi, uint64_t* queries, Value* out) {
  const Query full = Query::FullSpace(server->schema());
  while (lo + 1 < hi) {
    const Value mid = lo + (hi - lo) / 2;
    bool non_empty = false;
    HDC_RETURN_IF_ERROR(RegionNonEmpty(
        server, full.WithNumericRange(attr, mid, kNumericMax), queries,
        &non_empty));
    if (non_empty) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  *out = lo;
  return Status::OK();
}

Status BinarySearchMin(HiddenDbServer* server, size_t attr, Value lo,
                       Value hi, uint64_t* queries, Value* out) {
  // Invariant: (-inf, lo] empty, (-inf, hi] non-empty.
  const Query full = Query::FullSpace(server->schema());
  while (lo + 1 < hi) {
    const Value mid = lo + (hi - lo) / 2;
    bool non_empty = false;
    HDC_RETURN_IF_ERROR(RegionNonEmpty(
        server, full.WithNumericRange(attr, kNumericMin, mid), queries,
        &non_empty));
    if (non_empty) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  *out = hi;
  return Status::OK();
}

}  // namespace

Status DiscoverNumericBounds(HiddenDbServer* server, size_t attr,
                             DiscoveredBounds* out) {
  HDC_CHECK(server != nullptr && out != nullptr);
  const SchemaPtr& schema = server->schema();
  if (attr >= schema->num_attributes() || !schema->IsNumeric(attr)) {
    return Status::InvalidArgument("attribute is not numeric");
  }
  *out = DiscoveredBounds{};

  // A witness: any response to the full query carries attr values that
  // bracket the search.
  const Query full = Query::FullSpace(schema);
  Response response;
  HDC_RETURN_IF_ERROR(server->Issue(full, &response));
  ++out->queries;
  if (response.resolved() && response.tuples.empty()) {
    out->empty = true;
    return Status::OK();
  }
  Value witness_lo = response.tuples.front().tuple[attr];
  Value witness_hi = witness_lo;
  for (const ReturnedTuple& rt : response.tuples) {
    witness_lo = std::min(witness_lo, rt.tuple[attr]);
    witness_hi = std::max(witness_hi, rt.tuple[attr]);
  }

  // --- maximum: exponential climb from the witness, then binary search ---
  {
    Value lo = witness_hi;  // [lo, +inf) known non-empty
    Value hi = kNumericMax;
    Value step = 1;
    while (true) {
      if (lo > kNumericMax - step) {
        // The remaining range is the sentinel bound itself.
        break;
      }
      const Value probe = lo + step;
      bool non_empty = false;
      HDC_RETURN_IF_ERROR(RegionNonEmpty(
          server, full.WithNumericRange(attr, probe, kNumericMax),
          &out->queries, &non_empty));
      if (non_empty) {
        lo = probe;
        step = step > kNumericMax / 2 ? step : step * 2;
      } else {
        hi = probe;
        break;
      }
    }
    HDC_RETURN_IF_ERROR(
        BinarySearchMax(server, attr, lo, hi, &out->queries, &out->hi));
  }

  // --- minimum: mirrored ---
  {
    Value hi = witness_lo;  // (-inf, hi] known non-empty
    Value lo = kNumericMin;
    Value step = 1;
    while (true) {
      if (hi < kNumericMin + step) break;
      const Value probe = hi - step;
      bool non_empty = false;
      HDC_RETURN_IF_ERROR(RegionNonEmpty(
          server, full.WithNumericRange(attr, kNumericMin, probe),
          &out->queries, &non_empty));
      if (non_empty) {
        hi = probe;
        step = step > kNumericMax / 2 ? step : step * 2;
      } else {
        lo = probe;
        break;
      }
    }
    HDC_RETURN_IF_ERROR(
        BinarySearchMin(server, attr, lo, hi, &out->queries, &out->lo));
  }

  return Status::OK();
}

Status DiscoverBoundedSchema(HiddenDbServer* server, SchemaPtr* out,
                             uint64_t* total_queries) {
  HDC_CHECK(server != nullptr && out != nullptr);
  const SchemaPtr& schema = server->schema();
  uint64_t queries = 0;
  std::vector<AttributeSpec> attrs;
  attrs.reserve(schema->num_attributes());
  for (size_t a = 0; a < schema->num_attributes(); ++a) {
    AttributeSpec spec = schema->attribute(a);
    if (spec.is_numeric()) {
      DiscoveredBounds bounds;
      HDC_RETURN_IF_ERROR(DiscoverNumericBounds(server, a, &bounds));
      queries += bounds.queries;
      if (bounds.empty) {
        spec.lo = 0;
        spec.hi = 0;
      } else {
        spec.lo = bounds.lo;
        spec.hi = bounds.hi;
      }
    }
    attrs.push_back(std::move(spec));
  }
  if (total_queries != nullptr) *total_queries = queries;
  *out = Schema::Make(std::move(attrs));
  return Status::OK();
}

}  // namespace hdc
