// Copyright (c) hdc authors. Apache-2.0 license.
//
// Session-scoped checkpointing: one file that snapshots *budget state with
// crawl state*. The service layer writes/reads only its own small header
// (ServerSession::SaveCheckpoint / ResumeFrom — server/crawl_service.h);
// this layer composes that header with the crawl checkpoint format
// (core/checkpoint.h) and the durable-write protocol, so a metered crawl
// against a CrawlService can be stopped — or killed — and picked up later
// with both halves consistent:
//
//   hdc-session-checkpoint 1
//   label <escaped>
//   budget <remaining | unlimited>
//   hdc-checkpoint 2
//   ... (crawl payload)
//
// The daily-quota pattern (examples/daily_quota.cpp): resume with
// SessionResumeOptions::restore_budget = false, so each process run keeps
// the fresh quota its session was minted with instead of inheriting
// yesterday's remainder.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/checkpoint.h"
#include "core/crawler.h"
#include "server/crawl_service.h"
#include "util/status.h"

namespace hdc {

struct SessionResumeOptions {
  /// Restore the session's query budget to the checkpointed remainder.
  /// Turn off to keep the resuming session's own allotment (a fresh daily
  /// quota per process run).
  bool restore_budget = true;
};

/// Writes the session header followed by the crawl checkpoint. The state
/// must belong to the session's (possibly overridden) schema.
Status SaveSessionCheckpoint(const ServerSession& session,
                             const CrawlState& state, std::ostream* out);

/// SaveSessionCheckpoint into `path`, crash-atomically (temp file + fsync +
/// rename — WriteFileDurably).
Status SaveSessionCheckpointFile(const ServerSession& session,
                                 const CrawlState& state,
                                 const std::string& path);

/// Restores the session half (budget, per `options`) and then the crawl
/// half. On any error `*out` is untouched; budget restoration errors are
/// typed (see ServerSession::ResumeFrom).
Status LoadSessionCheckpoint(std::istream* in, ServerSession* session,
                             std::shared_ptr<CrawlState>* out,
                             const SessionResumeOptions& options = {});

/// LoadSessionCheckpoint from `path`; NotFound when the file is missing.
Status LoadSessionCheckpointFile(const std::string& path,
                                 ServerSession* session,
                                 std::shared_ptr<CrawlState>* out,
                                 const SessionResumeOptions& options = {});

}  // namespace hdc
