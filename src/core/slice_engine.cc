// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/slice_engine.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

#include "core/checkpoint.h"

#include "core/crawl_context.h"
#include "util/macros.h"

namespace hdc {
namespace {

/// The slice query pinning attribute cat_order[cat_pos] to value v, scoped
/// to the crawl's root rectangle (the full space unless a plan pushed a
/// sub-rectangle down).
Query MakeSliceQuery(const SliceEngineState& st, size_t cat_pos, Value v) {
  return st.root.WithCategoricalEquals(st.cat_order[cat_pos], v);
}

/// Records an answered slice query into the lookup table.
void RecordSlice(SliceEngineState* st, size_t cat_pos, Value v,
                 CrawlContext::Outcome outcome, Response* response) {
  SliceEntry& entry = st->slices[cat_pos][static_cast<size_t>(v)];
  switch (outcome) {
    case CrawlContext::Outcome::kPrunedEmpty:
      entry.state = SliceEntry::State::kResolved;
      break;
    case CrawlContext::Outcome::kResolved:
      entry.state = SliceEntry::State::kResolved;
      entry.bag = std::move(response->tuples);
      break;
    case CrawlContext::Outcome::kOverflow:
      // Remember nothing but a bit (Section 3.2).
      entry.state = SliceEntry::State::kOverflow;
      break;
    case CrawlContext::Outcome::kStop:
      break;  // entry stays unknown; the work item is re-pushed
  }
}

/// Eager preprocessing: issue every slice query of every categorical
/// attribute, up to `batch` per server round trip. Returns false when
/// interrupted (the cursor stays at the first unanswered slice).
bool RunPreprocessing(CrawlContext* ctx, SliceEngineState* st) {
  const SchemaPtr& schema = st->extracted.schema();
  const auto& cat = st->cat_order;
  struct PlannedSlice {
    size_t pos;
    Value value;
  };
  std::vector<PlannedSlice> planned;
  std::vector<Query> queries;
  std::vector<Response> responses;
  while (true) {
    // Walk the cursor forward, collecting up to `batch` unknown slices
    // (already-known entries — e.g. restored from a checkpoint — cost
    // nothing, exactly as in the sequential conversation). Preprocessing
    // has no frontier; auto sizing fills the server's lanes outright.
    const size_t batch =
        ctx->RoundSize(std::numeric_limits<size_t>::max());
    planned.clear();
    queries.clear();
    size_t pos = st->pre_cat_pos;
    Value v = st->pre_value;
    while (pos < cat.size() && planned.size() < batch) {
      const Value domain = static_cast<Value>(schema->domain_size(cat[pos]));
      if (v > domain) {
        ++pos;
        v = 1;
        continue;
      }
      if (st->slices[pos][static_cast<size_t>(v)].state ==
          SliceEntry::State::kUnknown) {
        planned.push_back(PlannedSlice{pos, v});
        queries.push_back(MakeSliceQuery(*st, pos, v));
      }
      ++v;
    }
    if (planned.empty()) {
      st->pre_cat_pos = cat.size();
      st->pre_value = 1;
      st->preprocessing_done = true;
      return true;
    }

    const std::vector<CrawlContext::Outcome> outcomes =
        ctx->IssueBatch(queries, &responses);
    for (size_t i = 0; i < planned.size(); ++i) {
      if (outcomes[i] == CrawlContext::Outcome::kStop) return false;
      RecordSlice(st, planned[i].pos, planned[i].value, outcomes[i],
                  &responses[i]);
      // Advance the resume cursor past the answered slice.
      st->pre_cat_pos = planned[i].pos;
      st->pre_value = planned[i].value + 1;
    }
  }
}

}  // namespace

SliceEngineState::SliceEngineState(SchemaPtr schema, std::string algorithm,
                                   bool eager_mode,
                                   std::vector<size_t> order)
    : CrawlState(std::move(schema)),
      root(Query::FullSpace(extracted.schema())),
      cat_order(std::move(order)),
      eager(eager_mode),
      algorithm_(std::move(algorithm)) {
  const SchemaPtr& s = extracted.schema();
  if (cat_order.empty()) cat_order = s->categorical_indices();
  HDC_CHECK(cat_order.size() == s->num_categorical());
  slices.resize(cat_order.size());
  for (size_t p = 0; p < cat_order.size(); ++p) {
    HDC_CHECK(s->IsCategorical(cat_order[p]));
    slices[p].resize(s->domain_size(cat_order[p]) + 1);
  }
  preprocessing_done = !eager;
}

std::vector<size_t> ResolveCategoricalOrder(const Schema& schema,
                                            CategoricalOrder order) {
  std::vector<size_t> cat = schema.categorical_indices();
  if (order == CategoricalOrder::kSchemaOrder) return cat;
  std::stable_sort(cat.begin(), cat.end(), [&](size_t a, size_t b) {
    return order == CategoricalOrder::kNarrowestFirst
               ? schema.domain_size(a) < schema.domain_size(b)
               : schema.domain_size(a) > schema.domain_size(b);
  });
  return cat;
}

std::shared_ptr<SliceEngineState> MakeSliceEngineState(
    const SchemaPtr& schema, const std::string& algorithm, bool eager,
    CategoricalOrder order, const Query* root) {
  auto st = std::make_shared<SliceEngineState>(
      schema, algorithm, eager, ResolveCategoricalOrder(*schema, order));
  if (root != nullptr) st->root = *root;
  Query seed = st->root;
  if (schema->num_categorical() == 0) {
    // Pure numeric space: the whole crawl is one rank-shrink instance.
    st->frontier.push_back(SliceEngineState::Item{
        SliceEngineState::Item::Kind::kRank, std::move(seed), 0});
  } else {
    st->frontier.push_back(SliceEngineState::Item{
        SliceEngineState::Item::Kind::kNode, std::move(seed), 0});
  }
  return st;
}

void SliceEngineRun(CrawlContext* ctx, SliceEngineState* st,
                    const SliceEngineOptions& options) {
  const SchemaPtr& schema = st->extracted.schema();
  const auto& cat = st->cat_order;
  const uint32_t cat_count = static_cast<uint32_t>(cat.size());

  if (st->eager && !st->preprocessing_done) {
    if (!RunPreprocessing(ctx, st)) return;
  }

  // Every frontier step needs at most one query; a node whose slice lookup
  // was just issued re-enters the frontier and continues next round. That
  // keeps rounds batchable while the batch == 1 conversation stays exactly
  // the sequential one.
  struct Pending {
    enum class Kind : uint8_t { kSliceLookup, kNodeProbe, kRankProbe };
    SliceEngineState::Item item;
    Kind kind;
    size_t slice_pos = 0;  // kSliceLookup only
    Value slice_value = 0;
  };

  // Expands `item` (a node whose region overflowed) one categorical level.
  auto expand_node = [&](const SliceEngineState::Item& item) {
    const size_t next_attr = cat[item.level];
    if (item.q.IsPinned(next_attr)) {
      // The crawl root (a plan's pushdown rectangle) pre-pins this
      // attribute: the node already covers exactly one value, descend
      // without fanning out.
      st->frontier.push_back(SliceEngineState::Item{
          SliceEngineState::Item::Kind::kNode, item.q, item.level + 1});
      return;
    }
    const Value domain = static_cast<Value>(schema->domain_size(next_attr));
    for (Value c = domain; c >= 1; --c) {
      st->frontier.push_back(SliceEngineState::Item{
          SliceEngineState::Item::Kind::kNode,
          item.q.WithCategoricalEquals(next_attr, c), item.level + 1});
    }
  };

  std::vector<Pending> pendings;
  std::vector<SliceEngineState::Item> parked;
  std::vector<Query> queries;
  std::vector<Response> responses;
  while (!st->frontier.empty()) {
    // --- Plan a round: pop items, act on the query-free ones immediately,
    // gather up to `batch` single-query steps. -------------------------
    const size_t batch = ctx->RoundSize(st->frontier.size());
    pendings.clear();
    parked.clear();
    while (!st->frontier.empty() && pendings.size() < batch) {
      SliceEngineState::Item item = std::move(st->frontier.back());
      st->frontier.pop_back();

      if (item.kind == SliceEngineState::Item::Kind::kRank) {
        pendings.push_back(
            Pending{std::move(item), Pending::Kind::kRankProbe, 0, 0});
        continue;
      }

      const uint32_t level = item.level;
      if (level == 0) {
        // The root query is never issued: enumerate its children directly
        // (their slice lookups decide everything the root's status could).
        expand_node(item);
        continue;
      }

      // The node was created by refining its parent with the slice
      // (cat[level-1] = v); that slice decides whether it can be answered
      // locally.
      const size_t pos = level - 1;
      const Value v = item.q.lo(cat[pos]);
      const SliceEntry& slice = st->slices[pos][static_cast<size_t>(v)];
      if (slice.state == SliceEntry::State::kUnknown) {
        const bool already_planned =
            std::any_of(pendings.begin(), pendings.end(),
                        [&](const Pending& p) {
                          return p.kind == Pending::Kind::kSliceLookup &&
                                 p.slice_pos == pos && p.slice_value == v;
                        });
        if (already_planned) {
          // A sibling branch in this very round already asks for the same
          // slice: don't spend a duplicate query — park the item until the
          // round is planned; it finds the recorded entry next round.
          parked.push_back(std::move(item));
          continue;
        }
        pendings.push_back(
            Pending{std::move(item), Pending::Kind::kSliceLookup, pos, v});
        continue;
      }
      if (slice.state == SliceEntry::State::kResolved) {
        // Local answer: the slice's bag is authoritative for this node's
        // region; filter it by the node query. No server query spent.
        ctx->CollectFiltered(slice.bag, item.q);
        continue;
      }

      // Slice overflowed.
      if (level == cat_count) {
        // Every categorical attribute is pinned: hand the numeric subspace
        // to rank-shrink (which will issue this very rectangle as its first
        // query).
        st->frontier.push_back(SliceEngineState::Item{
            SliceEngineState::Item::Kind::kRank, std::move(item.q), 0});
        continue;
      }
      if (level == 1) {
        // The node query *is* the slice query, which overflowed — expand
        // without spending a query.
        expand_node(item);
        continue;
      }
      pendings.push_back(
          Pending{std::move(item), Pending::Kind::kNodeProbe, 0, 0});
    }
    // Parked items re-enter the frontier now that the round is fixed (a
    // park implies a same-slice lookup is pending, so the round is never
    // empty because of parking).
    for (size_t j = parked.size(); j-- > 0;) {
      st->frontier.push_back(std::move(parked[j]));
    }
    if (pendings.empty()) continue;

    // --- Issue the round as one batch. --------------------------------
    queries.clear();
    queries.reserve(pendings.size());
    for (const Pending& p : pendings) {
      queries.push_back(p.kind == Pending::Kind::kSliceLookup
                            ? MakeSliceQuery(*st, p.slice_pos, p.slice_value)
                            : p.item.q);
    }
    const std::vector<CrawlContext::Outcome> outcomes =
        ctx->IssueBatch(queries, &responses);

    // --- Apply responses in issue order. ------------------------------
    for (size_t i = 0; i < pendings.size(); ++i) {
      Pending& p = pendings[i];
      if (outcomes[i] == CrawlContext::Outcome::kStop) {
        // Unanswered members go back in reverse so the stack order is as
        // if they had never been popped.
        for (size_t j = pendings.size(); j-- > i;) {
          st->frontier.push_back(std::move(pendings[j].item));
        }
        return;
      }

      switch (p.kind) {
        case Pending::Kind::kSliceLookup:
          RecordSlice(st, p.slice_pos, p.slice_value, outcomes[i],
                      &responses[i]);
          // The node continues against the now-known slice next round.
          st->frontier.push_back(std::move(p.item));
          break;

        case Pending::Kind::kNodeProbe:
          switch (outcomes[i]) {
            case CrawlContext::Outcome::kPrunedEmpty:
              break;
            case CrawlContext::Outcome::kResolved:
              ctx->CollectResponse(responses[i]);
              break;
            case CrawlContext::Outcome::kOverflow:
              expand_node(p.item);
              break;
            case CrawlContext::Outcome::kStop:
              break;  // handled above
          }
          break;

        case Pending::Kind::kRankProbe: {
          // Numeric sub-problem under a fully-pinned categorical point (or
          // the whole space when cat_count == 0). With no numeric
          // attributes the rectangle is a point: resolved collects it,
          // overflow is fatal.
          if (outcomes[i] == CrawlContext::Outcome::kPrunedEmpty) break;
          if (outcomes[i] == CrawlContext::Outcome::kResolved) {
            ctx->CollectResponse(responses[i]);
            break;
          }
          auto attr =
              ChooseSplitAttribute(p.item.q, responses[i].tuples,
                                   options.rank);
          if (!attr.has_value()) {
            HDC_CHECK_MSG(
                p.item.q.IsPoint(),
                "free categorical attribute at the rank-shrink phase");
            ctx->SetFatal(Status::Unsolvable("point " + p.item.q.ToString() +
                                             " holds more than k tuples"));
            return;
          }
          std::vector<Query> expanded;
          RankShrinkExpand(p.item.q, *attr, responses[i].tuples, ctx->k(),
                           options.rank, &expanded);
          for (auto& q : expanded) {
            st->frontier.push_back(SliceEngineState::Item{
                SliceEngineState::Item::Kind::kRank, std::move(q), 0});
          }
          break;
        }
      }
    }
  }
}


void SliceEngineState::EncodeFrontier(std::ostream* out) const {
  *out << "root ";
  EncodeQueryTokens(root, out);
  *out << '\n';
  *out << "catorder";
  for (size_t attr : cat_order) *out << ' ' << attr;
  *out << '\n';
  *out << "eager " << (eager ? 1 : 0) << '\n';
  *out << "predone " << (preprocessing_done ? 1 : 0) << '\n';
  *out << "precursor " << pre_cat_pos << ' ' << pre_value << '\n';

  for (size_t pos = 0; pos < slices.size(); ++pos) {
    for (size_t v = 1; v < slices[pos].size(); ++v) {
      const SliceEntry& entry = slices[pos][v];
      if (entry.state == SliceEntry::State::kUnknown) continue;
      if (entry.state == SliceEntry::State::kOverflow) {
        *out << "slice " << pos << ' ' << v << " O\n";
      } else {
        *out << "slice " << pos << ' ' << v << " R " << entry.bag.size()
             << '\n';
        for (const ReturnedTuple& rt : entry.bag) {
          *out << "bag " << rt.hidden_id << ' ';
          EncodeTupleTokens(rt.tuple, out);
          *out << '\n';
        }
      }
    }
  }

  for (const Item& item : frontier) {
    *out << "item "
         << (item.kind == Item::Kind::kNode ? "node" : "rank") << ' '
         << item.level << ' ';
    EncodeQueryTokens(item.q, out);
    *out << '\n';
  }
}

Status SliceEngineState::DecodeFrontier(CheckpointReader* in) {
  const SchemaPtr& schema = extracted.schema();
  const size_t arity = schema->num_attributes();
  frontier.clear();
  root = Query::FullSpace(schema);

  std::string line, tag;
  HDC_RETURN_IF_ERROR(in->Next(&line));
  {
    // Version-1 checkpoints have no root line (the crawl always covered the
    // full space); their first line is catorder.
    std::string rest;
    if (ExpectTagged(line, "root", &rest).ok()) {
      std::istringstream tokens(rest);
      Query q = Query::FullSpace(schema);
      Status s = DecodeQueryTokens(&tokens, schema, &q);
      if (!s.ok()) return in->Error(s.message());
      root = std::move(q);
      HDC_RETURN_IF_ERROR(in->Next(&line));
    }
  }
  {
    std::istringstream tokens(line);
    if (!(tokens >> tag) || tag != "catorder") {
      return in->Error("expected catorder line, got: " + line);
    }
    std::vector<size_t> order;
    size_t attr;
    while (tokens >> attr) order.push_back(attr);
    if (order.size() != schema->num_categorical()) {
      return in->Error("catorder has wrong arity");
    }
    for (size_t a : order) {
      if (a >= schema->num_attributes() || !schema->IsCategorical(a)) {
        return in->Error("catorder lists a bad attribute");
      }
    }
    cat_order = std::move(order);
    slices.assign(cat_order.size(), {});
    for (size_t p = 0; p < cat_order.size(); ++p) {
      slices[p].resize(schema->domain_size(cat_order[p]) + 1);
    }
  }
  HDC_RETURN_IF_ERROR(in->Next(&line));
  {
    std::istringstream tokens(line);
    int flag = 0;
    if (!(tokens >> tag >> flag) || tag != "eager") {
      return in->Error("expected eager line, got: " + line);
    }
    eager = flag != 0;
  }
  HDC_RETURN_IF_ERROR(in->Next(&line));
  {
    std::istringstream tokens(line);
    int flag = 0;
    if (!(tokens >> tag >> flag) || tag != "predone") {
      return in->Error("expected predone line, got: " + line);
    }
    preprocessing_done = flag != 0;
  }
  HDC_RETURN_IF_ERROR(in->Next(&line));
  {
    std::istringstream tokens(line);
    if (!(tokens >> tag >> pre_cat_pos >> pre_value) || tag != "precursor") {
      return in->Error("expected precursor line, got: " + line);
    }
    if (pre_cat_pos > slices.size()) {
      return in->Error("preprocessing cursor out of range");
    }
  }

  while (true) {
    HDC_RETURN_IF_ERROR(in->Next(&line));
    if (line == "frontier-end") return Status::OK();
    std::istringstream tokens(line);
    if (!(tokens >> tag)) {
      return in->Error("malformed slice-state line: " + line);
    }
    if (tag == "slice") {
      size_t pos = 0, value = 0;
      std::string state_code;
      if (!(tokens >> pos >> value >> state_code) || pos >= slices.size() ||
          value == 0 || value >= slices[pos].size()) {
        return in->Error("malformed slice line: " + line);
      }
      SliceEntry& entry = slices[pos][value];
      if (state_code == "O") {
        entry.state = SliceEntry::State::kOverflow;
      } else if (state_code == "R") {
        size_t count = 0;
        if (!(tokens >> count)) {
          return in->Error("malformed slice line: " + line);
        }
        entry.state = SliceEntry::State::kResolved;
        entry.bag.clear();
        entry.bag.reserve(count);
        for (size_t i = 0; i < count; ++i) {
          HDC_RETURN_IF_ERROR(in->Next(&line));
          std::istringstream bag_tokens(line);
          std::string bag_tag;
          uint64_t hidden_id = 0;
          if (!(bag_tokens >> bag_tag >> hidden_id) || bag_tag != "bag") {
            return in->Error("malformed bag line: " + line);
          }
          Tuple t;
          Status s = DecodeTupleTokens(&bag_tokens, arity, &t);
          if (!s.ok()) return in->Error(s.message());
          entry.bag.push_back(ReturnedTuple{std::move(t), hidden_id});
        }
      } else {
        return in->Error("unknown slice state: " + line);
      }
    } else if (tag == "item") {
      std::string kind;
      uint32_t level = 0;
      if (!(tokens >> kind >> level)) {
        return in->Error("malformed item line: " + line);
      }
      Query q = Query::FullSpace(schema);
      Status s = DecodeQueryTokens(&tokens, schema, &q);
      if (!s.ok()) return in->Error(s.message());
      if (kind != "node" && kind != "rank") {
        return in->Error("unknown item kind: " + line);
      }
      Item item{kind == "node" ? Item::Kind::kNode : Item::Kind::kRank,
                std::move(q), level};
      if (item.kind == Item::Kind::kNode &&
          level > schema->num_categorical()) {
        return in->Error("item level out of range");
      }
      frontier.push_back(std::move(item));
    } else {
      return in->Error("unknown slice-state line: " + line);
    }
  }
}

}  // namespace hdc
