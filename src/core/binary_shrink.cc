// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/binary_shrink.h"

#include <ostream>

#include "core/checkpoint.h"
#include "core/crawl_context.h"
#include "core/crawl_plan.h"
#include "util/macros.h"

namespace hdc {

Status BinaryShrink::ValidateSchema(const Schema& schema) const {
  if (!schema.all_numeric()) {
    return Status::InvalidArgument(
        "binary-shrink handles all-numeric data spaces only");
  }
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    const AttributeSpec& spec = schema.attribute(i);
    if (spec.lo <= kNumericMin || spec.hi >= kNumericMax) {
      return Status::InvalidArgument(
          "binary-shrink needs bounded numeric domains (attribute " +
          spec.name + " is unbounded); use rank-shrink instead");
    }
  }
  return Status::OK();
}

std::shared_ptr<CrawlState> BinaryShrink::MakeInitialState(
    HiddenDbServer* server, const CrawlOptions& options) const {
  auto state = std::make_shared<BinaryShrinkState>(server->schema());
  state->frontier.push_back(options.plan != nullptr
                                ? options.plan->root()
                                : Query::FullSpace(server->schema()));
  return state;
}

void BinaryShrink::Run(CrawlContext* ctx, CrawlState* state) const {
  auto* st = static_cast<BinaryShrinkState*>(state);
  std::vector<Query> round;
  std::vector<Response> responses;
  while (!st->frontier.empty()) {
    // Sibling rectangles on the frontier are independent: drain up to
    // `batch` of them into one server round trip.
    const size_t batch = ctx->RoundSize(st->frontier.size());
    round.clear();
    while (!st->frontier.empty() && round.size() < batch) {
      round.push_back(std::move(st->frontier.back()));
      st->frontier.pop_back();
    }
    const std::vector<CrawlContext::Outcome> outcomes =
        ctx->IssueBatch(round, &responses);

    for (size_t i = 0; i < round.size(); ++i) {
      switch (outcomes[i]) {
        case CrawlContext::Outcome::kStop:
          // Unanswered members go back in reverse so the stack order is
          // exactly as if they had never been popped.
          for (size_t j = round.size(); j-- > i;) {
            st->frontier.push_back(std::move(round[j]));
          }
          return;
        case CrawlContext::Outcome::kPrunedEmpty:
          continue;
        case CrawlContext::Outcome::kResolved:
          ctx->CollectResponse(responses[i]);
          continue;
        case CrawlContext::Outcome::kOverflow:
          break;
      }

      const Query& q = round[i];
      auto attr = q.FirstNonPinnedAttribute();
      if (!attr.has_value()) {
        ctx->SetFatal(Status::Unsolvable("point " + q.ToString() +
                                         " holds more than k tuples"));
        return;
      }
      const AttrInterval& ext = q.extent(*attr);
      // Midpoint split: x = ceil((lo + hi) / 2); lo < x <= hi always holds
      // for a non-pinned extent, so both halves are non-empty.
      const Value x = ext.lo + (ext.hi - ext.lo + 1) / 2;
      TwoWaySplitResult halves = TwoWaySplit(q, *attr, x);
      st->frontier.push_back(std::move(halves.right));
      st->frontier.push_back(std::move(halves.left));
    }
  }
}


void BinaryShrinkState::EncodeFrontier(std::ostream* out) const {
  for (const Query& q : frontier) {
    *out << "q ";
    EncodeQueryTokens(q, out);
    *out << '\n';
  }
}

Status BinaryShrinkState::DecodeFrontier(CheckpointReader* in) {
  return DecodeQueryStackFrontier(in, extracted.schema(), &frontier);
}

}  // namespace hdc
