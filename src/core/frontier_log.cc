// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/frontier_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <utility>

#include "core/checkpoint.h"
#include "util/macros.h"

namespace hdc {
namespace {

constexpr const char* kLogMagic = "hdc-frontier-log";
constexpr int kLogVersion = 1;

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::vector<std::string> EncodeFrontierLines(const CrawlState& state) {
  std::ostringstream out;
  state.EncodeFrontier(&out);
  return SplitLines(out.str());
}

}  // namespace

FrontierLogWriter::FrontierLogWriter(std::string path,
                                     FrontierLogOptions options)
    : path_(std::move(path)), options_(std::move(options)) {}

FrontierLogWriter::~FrontierLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status FrontierLogWriter::Open(const std::string& path,
                               FrontierLogOptions options,
                               std::unique_ptr<FrontierLogWriter>* out) {
  if (path.empty() || out == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  out->reset(new FrontierLogWriter(path, std::move(options)));
  return Status::OK();
}

void FrontierLogWriter::NoteSeen(uint64_t row_id) {
  pending_seen_.push_back(row_id);
}

void FrontierLogWriter::NoteTuple(const Tuple& tuple) {
  std::ostringstream line;
  EncodeTupleTokens(tuple, &line);
  pending_tuples_.push_back(line.str());
}

Status FrontierLogWriter::WriteSnapshot(
    const CrawlState& state, std::vector<std::string> frontier_lines) {
  std::ostringstream out;
  out << kLogMagic << ' ' << kLogVersion << '\n';
  out << "snapshot-begin\n";
  HDC_RETURN_IF_ERROR(
      SaveCheckpoint(state, *state.extracted.schema(), &out));
  out << "snapshot-end\n";
  const std::string contents = out.str();
  HDC_RETURN_IF_ERROR(WriteFileDurably(path_, contents));

  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::Internal("cannot reopen frontier log for append: " +
                            path_);
  }
  bytes_ = contents.size();
  have_snapshot_ = true;
  ++seq_;
  last_queries_ = state.queries_issued;
  last_collected_ = state.tuples_collected;
  last_frontier_ = std::move(frontier_lines);
  return Status::OK();
}

Status FrontierLogWriter::AppendDurably(const std::string& record) {
  if (fd_ < 0) return Status::Internal("frontier log is not open: " + path_);
  size_t off = 0;
  while (off < record.size()) {
    const ssize_t n =
        ::write(fd_, record.data() + off, record.size() - off);
    if (n < 0) return Status::Internal("frontier log write failed: " + path_);
    off += static_cast<size_t>(n);
  }
  if (options_.sync && ::fsync(fd_) != 0) {
    return Status::Internal("frontier log fsync failed: " + path_);
  }
  bytes_ += record.size();
  return Status::OK();
}

Status FrontierLogWriter::Commit(const CrawlState& state) {
  // A failed crawl is not a resume point; leave the last good commit.
  if (!state.fatal.ok()) return Status::OK();

  std::vector<std::string> frontier = EncodeFrontierLines(state);
  const bool dirty = !have_snapshot_ ||
                     state.queries_issued != last_queries_ ||
                     state.tuples_collected != last_collected_ ||
                     !pending_seen_.empty() || !pending_tuples_.empty() ||
                     frontier != last_frontier_;
  if (!dirty) return Status::OK();

  if (!have_snapshot_ || bytes_ >= options_.rotate_bytes) {
    HDC_RETURN_IF_ERROR(WriteSnapshot(state, std::move(frontier)));
  } else {
    ++seq_;
    std::ostringstream rec;
    rec << "round " << seq_ << '\n';
    rec << "queries " << state.queries_issued << '\n';
    rec << "collected " << state.tuples_collected << '\n';
    rec << "seen " << pending_seen_.size();
    for (uint64_t id : pending_seen_) rec << ' ' << id;
    rec << '\n';
    rec << "tuples " << pending_tuples_.size() << '\n';
    for (const std::string& line : pending_tuples_) rec << line << '\n';
    size_t keep = 0;
    while (keep < frontier.size() && keep < last_frontier_.size() &&
           frontier[keep] == last_frontier_[keep]) {
      ++keep;
    }
    rec << "frontier keep " << keep << " add " << (frontier.size() - keep)
        << '\n';
    for (size_t i = keep; i < frontier.size(); ++i) {
      rec << frontier[i] << '\n';
    }
    rec << "commit " << seq_ << '\n';
    HDC_RETURN_IF_ERROR(AppendDurably(rec.str()));
    last_queries_ = state.queries_issued;
    last_collected_ = state.tuples_collected;
    last_frontier_ = std::move(frontier);
  }
  pending_seen_.clear();
  pending_tuples_.clear();
  if (options_.on_commit) options_.on_commit(seq_);
  return Status::OK();
}

namespace {

/// The snapshot's checkpoint payload, exploded into the parts a round
/// record can modify. Tuples and frontier stay raw lines — replay is a line
/// edit, full validation happens once at the end via LoadCheckpoint.
struct ReplayImage {
  std::string algorithm;
  std::string schema_spec;
  uint64_t queries = 0;
  uint64_t collected = 0;
  std::vector<uint64_t> seen_ids;
  std::vector<std::string> tuple_lines;
  std::vector<std::string> frontier_lines;
};

Status ParseSnapshot(CheckpointReader* in, ReplayImage* image) {
  std::string line, rest;

  HDC_RETURN_IF_ERROR(in->Next(&line));
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != "hdc-checkpoint" || version < 1) {
      return in->Error("snapshot is not an hdc checkpoint");
    }
  }

  HDC_RETURN_IF_ERROR(in->Next(&line));
  if (Status s = ExpectTagged(line, "algorithm", &image->algorithm);
      !s.ok()) {
    return in->Error(s.message());
  }
  HDC_RETURN_IF_ERROR(in->Next(&line));
  if (Status s = ExpectTagged(line, "schema", &image->schema_spec); !s.ok()) {
    return in->Error(s.message());
  }
  HDC_RETURN_IF_ERROR(in->Next(&line));
  if (Status s = ExpectTagged(line, "queries", &rest); !s.ok()) {
    return in->Error(s.message());
  }
  if (Status s = ParseUint64Token(rest, &image->queries); !s.ok()) {
    return in->Error(s.message());
  }

  HDC_RETURN_IF_ERROR(in->Next(&line));
  if (Status s = ExpectTagged(line, "seen", &rest); !s.ok()) {
    return in->Error(s.message());
  }
  {
    std::istringstream tokens(rest);
    uint64_t count = 0;
    if (!(tokens >> count)) return in->Error("malformed seen line");
    image->seen_ids.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id = 0;
      if (!(tokens >> id)) return in->Error("seen line truncated");
      image->seen_ids.push_back(id);
    }
  }

  HDC_RETURN_IF_ERROR(in->Next(&line));
  if (Status s = ExpectTagged(line, "extracted", &rest); !s.ok()) {
    return in->Error(s.message());
  }
  uint64_t tuple_count = 0;
  if (Status s = ParseUint64Token(rest, &tuple_count); !s.ok()) {
    return in->Error(s.message());
  }
  image->tuple_lines.reserve(tuple_count);
  for (uint64_t i = 0; i < tuple_count; ++i) {
    HDC_RETURN_IF_ERROR(in->Next(&line));
    image->tuple_lines.push_back(line);
  }

  HDC_RETURN_IF_ERROR(in->Next(&line));
  if (Status s = ExpectTagged(line, "collected", &rest); !s.ok()) {
    return in->Error(s.message());
  }
  if (Status s = ParseUint64Token(rest, &image->collected); !s.ok()) {
    return in->Error(s.message());
  }

  HDC_RETURN_IF_ERROR(in->Next(&line));
  if (line != "frontier-begin") {
    return in->Error("expected frontier-begin, got '" + line + "'");
  }
  while (true) {
    HDC_RETURN_IF_ERROR(in->Next(&line));
    if (line == "frontier-end") break;
    image->frontier_lines.push_back(line);
  }
  HDC_RETURN_IF_ERROR(in->Next(&line));
  if (line != "snapshot-end") {
    return in->Error("expected snapshot-end, got '" + line + "'");
  }
  return Status::OK();
}

/// Applies one round record to `image`. Returns OK with *applied=true on a
/// complete record; OK with *applied=false on a torn tail (EOF or partial
/// write after the last durable commit); an error only for corruption in a
/// region that a prior commit made durable — which cannot happen from a
/// crash, only from external damage. To keep those apart, the record is
/// staged and only folded into `image` when its commit line checks out.
Status ApplyRound(CheckpointReader* in, ReplayImage* image, uint64_t* seq,
                  bool* applied) {
  *applied = false;
  std::string line, rest;
  if (!in->TryNext(&line)) return Status::OK();  // clean end of log

  if (Status s = ExpectTagged(line, "round", &rest); !s.ok()) {
    return Status::OK();  // torn tail
  }
  uint64_t round_seq = 0;
  if (!ParseUint64Token(rest, &round_seq).ok()) return Status::OK();

  uint64_t queries = 0, collected = 0;
  if (!in->TryNext(&line) || !ExpectTagged(line, "queries", &rest).ok() ||
      !ParseUint64Token(rest, &queries).ok()) {
    return Status::OK();
  }
  if (!in->TryNext(&line) || !ExpectTagged(line, "collected", &rest).ok() ||
      !ParseUint64Token(rest, &collected).ok()) {
    return Status::OK();
  }

  std::vector<uint64_t> seen;
  if (!in->TryNext(&line) || !ExpectTagged(line, "seen", &rest).ok()) {
    return Status::OK();
  }
  {
    std::istringstream tokens(rest);
    uint64_t count = 0;
    if (!(tokens >> count)) return Status::OK();
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id = 0;
      if (!(tokens >> id)) return Status::OK();
      seen.push_back(id);
    }
  }

  std::vector<std::string> tuples;
  if (!in->TryNext(&line) || !ExpectTagged(line, "tuples", &rest).ok()) {
    return Status::OK();
  }
  uint64_t tuple_count = 0;
  if (!ParseUint64Token(rest, &tuple_count).ok()) return Status::OK();
  for (uint64_t i = 0; i < tuple_count; ++i) {
    if (!in->TryNext(&line)) return Status::OK();
    tuples.push_back(line);
  }

  if (!in->TryNext(&line)) return Status::OK();
  uint64_t keep = 0, add = 0;
  {
    std::istringstream tokens(line);
    std::string tag, keep_word, add_word;
    if (!(tokens >> tag >> keep_word >> keep >> add_word >> add) ||
        tag != "frontier" || keep_word != "keep" || add_word != "add" ||
        keep > image->frontier_lines.size()) {
      return Status::OK();
    }
  }
  std::vector<std::string> added;
  for (uint64_t i = 0; i < add; ++i) {
    if (!in->TryNext(&line)) return Status::OK();
    added.push_back(line);
  }

  if (!in->TryNext(&line) ||
      line != "commit " + std::to_string(round_seq)) {
    return Status::OK();  // record never became durable
  }

  image->queries = queries;
  image->collected = collected;
  for (uint64_t id : seen) image->seen_ids.push_back(id);
  for (std::string& t : tuples) image->tuple_lines.push_back(std::move(t));
  image->frontier_lines.resize(keep);
  for (std::string& f : added) {
    image->frontier_lines.push_back(std::move(f));
  }
  *seq = round_seq;
  *applied = true;
  return Status::OK();
}

}  // namespace

Status ReplayFrontierLog(const std::string& path, SchemaPtr schema,
                         std::shared_ptr<CrawlState>* out) {
  if (schema == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("no frontier log at " + path);
  }
  CheckpointReader reader(&in);

  std::string line;
  HDC_RETURN_IF_ERROR(reader.Next(&line));
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kLogMagic) {
      return reader.Error("not an hdc frontier log");
    }
    if (version != kLogVersion) {
      return Status::NotSupported("unsupported frontier log version " +
                                  std::to_string(version));
    }
  }
  HDC_RETURN_IF_ERROR(reader.Next(&line));
  if (line != "snapshot-begin") {
    return reader.Error("expected snapshot-begin, got '" + line + "'");
  }

  ReplayImage image;
  HDC_RETURN_IF_ERROR(ParseSnapshot(&reader, &image));

  uint64_t seq = 0;
  while (true) {
    bool applied = false;
    HDC_RETURN_IF_ERROR(ApplyRound(&reader, &image, &seq, &applied));
    if (!applied) break;
  }

  // Reassemble a checkpoint and run it through the full validation path.
  std::ostringstream text;
  text << "hdc-checkpoint 2\n";
  text << "algorithm " << image.algorithm << '\n';
  text << "schema " << image.schema_spec << '\n';
  text << "queries " << image.queries << '\n';
  text << "seen " << image.seen_ids.size();
  for (uint64_t id : image.seen_ids) text << ' ' << id;
  text << '\n';
  text << "extracted " << image.tuple_lines.size() << '\n';
  for (const std::string& t : image.tuple_lines) text << t << '\n';
  text << "collected " << image.collected << '\n';
  text << "frontier-begin\n";
  for (const std::string& f : image.frontier_lines) text << f << '\n';
  text << "frontier-end\n";

  std::istringstream replayed(text.str());
  if (Status s = LoadCheckpoint(&replayed, std::move(schema), out);
      !s.ok()) {
    return Status::InvalidArgument("frontier log replay of " + path + ": " +
                                   s.message());
  }
  return Status::OK();
}

}  // namespace hdc
