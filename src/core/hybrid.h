// Copyright (c) hdc authors. Apache-2.0 license.
//
// hybrid (paper, Section 5): the crawler for mixed data spaces. Runs
// (lazy-)slice-cover over the categorical attributes — numeric predicates
// pinned to their full extent — and, at each reached categorical point
// p_CAT, runs rank-shrink over the numeric subspace D_NUM(p_CAT). Cost
// (Lemma 9, cat > 1):
//     (n/k) Sigma_{i<=cat} min{U_i, n/k} + Sigma_{i<=cat} U_i
//         + O((d - cat) n/k),
// and U_1 + O(d n/k) when cat = 1. Degenerates gracefully: cat = 0 is pure
// rank-shrink, no numeric attributes is pure (lazy-)slice-cover.
#pragma once

#include "core/crawler.h"
#include "core/slice_engine.h"

namespace hdc {

struct HybridOptions {
  /// Use the lazy slice table (the paper's hybrid builds on
  /// lazy-slice-cover; eager is provided for ablation).
  bool lazy = true;
  /// Tuning of the numeric phase.
  RankShrinkOptions rank;
  /// Traversal order of the categorical attributes.
  CategoricalOrder categorical_order = CategoricalOrder::kSchemaOrder;
};

class HybridCrawler : public Crawler {
 public:
  explicit HybridCrawler(HybridOptions options = {});

  std::string name() const override { return "hybrid"; }

  /// Accepts any data space.
  Status ValidateSchema(const Schema& schema) const override;

  const HybridOptions& options() const { return options_; }

 protected:
  std::shared_ptr<CrawlState> MakeInitialState(
      HiddenDbServer* server, const CrawlOptions& options) const override;
  void Run(CrawlContext* ctx, CrawlState* state) const override;

 private:
  HybridOptions options_;
};

}  // namespace hdc
