// Copyright (c) hdc authors. Apache-2.0 license.
//
// Umbrella header for the paper's algorithms plus a factory that picks the
// right optimal algorithm for a data space (Theorem 1's case analysis).
#pragma once

#include <memory>

#include "core/binary_shrink.h"
#include "core/crawler.h"
#include "core/dfs_crawler.h"
#include "core/hybrid.h"
#include "core/rank_shrink.h"
#include "core/slice_cover.h"

namespace hdc {

/// Returns the asymptotically optimal crawler for `schema`:
///  - all numeric      -> rank-shrink            (Theorem 1, bullet 1)
///  - all categorical  -> lazy-slice-cover       (bullets 2-3)
///  - mixed            -> hybrid                 (bullets 4-5)
inline std::unique_ptr<Crawler> MakeOptimalCrawler(const Schema& schema) {
  if (schema.all_numeric()) return std::make_unique<RankShrink>();
  if (schema.all_categorical()) {
    return std::make_unique<SliceCoverCrawler>(/*lazy=*/true);
  }
  return std::make_unique<HybridCrawler>();
}

}  // namespace hdc
