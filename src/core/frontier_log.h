// Copyright (c) hdc authors. Apache-2.0 license.
//
// Write-ahead frontier log: crash-safe durability for long crawls.
//
// A checkpoint file (core/checkpoint.h) is a full snapshot — fine to write
// every few minutes, far too expensive to write every round. The frontier
// log generalizes it into an append-only WAL: one durable *delta* per round
// boundary, with periodic snapshot compaction. A process SIGKILLed mid-crawl
// replays the log and resumes from the last committed round.
//
// On-disk format (text, one record per round):
//
//   hdc-frontier-log 1
//   snapshot-begin
//   <full checkpoint payload — see core/checkpoint.h>
//   snapshot-end
//   round <seq>
//   queries <cumulative>
//   collected <cumulative>
//   seen <m> <row ids newly seen since the previous commit>
//   tuples <m>
//   <m tuple lines>
//   frontier keep <K> add <M>
//   <M frontier lines>
//   commit <seq>
//   ...
//
// The frontier delta is a longest-common-prefix diff against the previously
// committed frontier encoding: keep the first K lines, append M new ones.
// Crawlers treat the frontier as a stack (pop from the back), so each round
// touches only the tail and deltas stay small.
//
// Durability protocol: each commit is appended with a single write() and
// (when FrontierLogOptions::sync) fsync'd before Commit() returns. The
// snapshot segment is replaced via WriteFileDurably (temp file + fsync +
// rename), so the log is never in a torn state at a segment boundary. On
// replay, a trailing record without its matching `commit <seq>` line is a
// torn tail from the crash and is discarded silently; everything up to the
// last commit is applied.
//
// Billing guarantee: CrawlContext commits at the *top* of each round —
// commit N captures the state produced by rounds 1..N-1 and happens-before
// any query of round N. A crash therefore loses at most the in-flight
// round; every completed (committed) round's queries are never re-billed on
// resume. The kill-and-resume test aborts inside on_commit, exactly at the
// boundary, and checks query counts stay byte-identical.
//
// Caveat — materialize=false: snapshots serialize the in-memory extraction,
// which is empty in streaming mode, so snapshot compaction drops the tuple
// history (the `collected` watermark survives). Streaming consumers must
// persist tuples themselves and truncate their output to the replayed
// state's tuples_collected watermark before resuming (see
// examples/daily_quota.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/crawler.h"
#include "data/tuple.h"
#include "util/status.h"

namespace hdc {

struct FrontierLogOptions {
  /// Rewrite the log as a fresh snapshot once it grows past this many
  /// bytes (compaction). The rewrite is crash-atomic.
  uint64_t rotate_bytes = 4ull << 20;

  /// fsync after every commit. Turning this off keeps the format and the
  /// torn-tail recovery but trades durability for speed (tests, benches).
  bool sync = true;

  /// Invoked after each commit becomes durable, with the commit sequence
  /// number. The kill-and-resume harness aborts the process here to prove
  /// resume correctness at exact round boundaries.
  std::function<void(uint64_t)> on_commit;
};

/// Appends round deltas to a frontier log. Wire into a crawl via
/// CrawlOptions::frontier_log; CrawlContext calls NoteSeen/NoteTuple as
/// rows arrive and Commit at every round boundary. Single-threaded, like
/// the crawl itself.
class FrontierLogWriter {
 public:
  /// Creates a writer for `path`. Nothing is written until the first
  /// Commit, which always starts a fresh snapshot segment (atomically
  /// replacing any previous log at `path` — resume therefore re-opens with
  /// the replayed state and compacts on its first commit).
  static Status Open(const std::string& path, FrontierLogOptions options,
                     std::unique_ptr<FrontierLogWriter>* out);

  ~FrontierLogWriter();
  FrontierLogWriter(const FrontierLogWriter&) = delete;
  FrontierLogWriter& operator=(const FrontierLogWriter&) = delete;

  /// Records a newly seen physical row id (delta since the last commit).
  void NoteSeen(uint64_t row_id);

  /// Records a newly collected tuple (delta since the last commit).
  void NoteTuple(const Tuple& tuple);

  /// Durably commits the state as of a round boundary. No-op commits
  /// (nothing changed since the last one) are skipped without touching the
  /// disk or firing on_commit. Skips (returns OK) when the state carries a
  /// fatal error — a failed crawl is not a resume point.
  Status Commit(const CrawlState& state);

  const std::string& path() const { return path_; }

  /// Commits written so far (snapshot segments count as one commit).
  uint64_t commits() const { return seq_; }

 private:
  FrontierLogWriter(std::string path, FrontierLogOptions options);

  Status WriteSnapshot(const CrawlState& state,
                       std::vector<std::string> frontier_lines);
  Status AppendDurably(const std::string& record);

  std::string path_;
  FrontierLogOptions options_;
  int fd_ = -1;
  uint64_t bytes_ = 0;
  uint64_t seq_ = 0;
  bool have_snapshot_ = false;
  uint64_t last_queries_ = 0;
  uint64_t last_collected_ = 0;
  std::vector<std::string> last_frontier_;
  std::vector<uint64_t> pending_seen_;
  std::vector<std::string> pending_tuples_;
};

/// Replays a frontier log into a resumable CrawlState: applies every
/// complete round record on top of the snapshot, silently discarding a torn
/// tail. NotFound when `path` does not exist (a fresh run, not an error).
/// Corruption *before* the tail — a durably-committed region that fails to
/// parse — is a typed InvalidArgument naming the offending line.
Status ReplayFrontierLog(const std::string& path, SchemaPtr schema,
                         std::shared_ptr<CrawlState>* out);

}  // namespace hdc
