// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/delta_crawl.h"

#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "core/checkpoint.h"
#include "data/csv_reader.h"
#include "server/answer_cache.h"
#include "server/caching_server.h"
#include "util/macros.h"

namespace hdc {
namespace {

constexpr const char* kMagic = "hdc-crawl-record";
constexpr int kFormatVersion = 1;

/// Passes over the cover before concluding the server mutates faster than
/// we can snapshot it. Each pass re-asks only entries the previous pass
/// left stale, so consecutive passes shrink geometrically on any server
/// that quiesces at all; a server that defeats sixteen passes is churning
/// continuously and has no consistent snapshot to extract.
constexpr int kMaxPasses = 16;

Status NextLine(std::istream* in, std::string* line) {
  if (!std::getline(*in, *line)) {
    return Status::InvalidArgument("crawl record truncated");
  }
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return Status::OK();
}

// Tagged-line parsing uses ExpectTagged from core/checkpoint.h.

/// Splits an overflowing rectangle into disjoint children covering it
/// exactly, pushed so the DFS pops them in ascending order: a categorical
/// slot pins each value of its extent, a numeric slot is halved at the
/// midpoint (the binary-shrink geometry).
Status SplitRectangle(const Query& q, std::vector<Query>* stack) {
  const std::optional<size_t> attr = q.FirstNonPinnedAttribute();
  if (!attr.has_value()) {
    return Status::Unsolvable(
        "point query overflowed: more than k identical tuples at " +
        q.ToString());
  }
  const AttrInterval& ext = q.extent(*attr);
  if (q.schema()->IsCategorical(*attr)) {
    for (Value c = ext.hi; c >= ext.lo; --c) {
      stack->push_back(q.WithCategoricalEquals(*attr, c));
    }
  } else {
    const Value x = ext.lo + (ext.hi - ext.lo + 1) / 2;
    TwoWaySplitResult halves = TwoWaySplit(q, *attr, x);
    stack->push_back(std::move(halves.right));
    stack->push_back(std::move(halves.left));
  }
  return Status::OK();
}

/// One depth-first sweep of `work` through the caching stack: resolved
/// rectangles become regions, overflowing ones are split and descended.
Status CrawlPass(CachingServer* server, const std::vector<Query>& work,
                 std::vector<CrawlRecordRegion>* regions,
                 DeltaCrawlStats* stats) {
  regions->clear();
  std::vector<Query> stack(work.rbegin(), work.rend());
  while (!stack.empty()) {
    Query q = std::move(stack.back());
    stack.pop_back();
    Response response;
    HDC_RETURN_IF_ERROR(server->Issue(q, &response));
    if (response.overflow) {
      ++stats->regions_descended;
      HDC_RETURN_IF_ERROR(SplitRectangle(q, &stack));
      continue;
    }
    const uint64_t hash = HashResponse(response);
    regions->push_back(
        CrawlRecordRegion{std::move(q), std::move(response), hash});
  }
  return Status::OK();
}

/// Shared driver of BuildCrawlRecord and DeltaCrawl: replays `work`
/// through a CachingServer over `cache` until one full pass completes
/// without the server's db_version moving, so the resulting cover is a
/// consistent snapshot even when mutations land mid-crawl. Re-passes walk
/// the refined cover of the previous pass: regions already answered at the
/// final version are version-check hits (free), so each pass pays only for
/// the rectangles the interleaved mutation actually touched.
Status ConvergedCrawl(HiddenDbServer* server, SchemaPtr schema,
                      std::shared_ptr<AnswerCache> cache,
                      std::vector<Query> work, CrawlRecord* record,
                      DeltaCrawlStats* stats) {
  CachingServer caching(server, std::move(cache));
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    const uint64_t version_before = server->db_version();
    std::vector<CrawlRecordRegion> regions;
    HDC_RETURN_IF_ERROR(CrawlPass(&caching, work, &regions, stats));
    ++stats->passes;
    const uint64_t version_after = server->db_version();
    if (version_after == version_before) {
      const AnswerCacheStats cache_stats = caching.stats();
      stats->billed_queries =
          cache_stats.misses + cache_stats.revalidations_changed;
      stats->cheap_revalidations = cache_stats.revalidations_matched;
      stats->cache_hits = cache_stats.hits;
      record->schema = std::move(schema);
      record->db_version = version_after;
      record->regions = std::move(regions);
      return Status::OK();
    }
    work.clear();
    work.reserve(regions.size());
    for (CrawlRecordRegion& region : regions) {
      work.push_back(std::move(region.rectangle));
    }
  }
  return Status::Unavailable(
      "server kept mutating across " + std::to_string(kMaxPasses) +
      " crawl passes; no consistent snapshot reachable");
}

std::shared_ptr<AnswerCache> MakeVersionCheckCache() {
  AnswerCacheOptions options;
  options.policy = RevalidationPolicy::kVersionCheck;
  return std::make_shared<AnswerCache>(options);
}

}  // namespace

std::vector<std::pair<uint64_t, Tuple>> CrawlRecord::Extraction() const {
  std::vector<std::pair<uint64_t, Tuple>> rows;
  rows.reserve(TupleCount());
  for (const CrawlRecordRegion& region : regions) {
    for (const ReturnedTuple& rt : region.answer.tuples) {
      rows.emplace_back(rt.hidden_id, rt.tuple);
    }
  }
  return rows;
}

uint64_t CrawlRecord::TupleCount() const {
  uint64_t count = 0;
  for (const CrawlRecordRegion& region : regions) {
    count += region.answer.size();
  }
  return count;
}

Status BuildCrawlRecord(HiddenDbServer* server, CrawlRecord* record,
                        DeltaCrawlStats* stats) {
  HDC_CHECK(server != nullptr && record != nullptr);
  DeltaCrawlStats local;
  std::vector<Query> work = {Query::FullSpace(server->schema())};
  HDC_RETURN_IF_ERROR(ConvergedCrawl(server, server->schema(),
                                     MakeVersionCheckCache(), std::move(work),
                                     record, &local));
  record->queries_spent = local.billed_queries;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status DeltaCrawl(HiddenDbServer* server, const CrawlRecord& prior,
                  CrawlRecord* updated, CrawlDelta* delta,
                  DeltaCrawlStats* stats) {
  HDC_CHECK(server != nullptr && updated != nullptr && delta != nullptr);
  HDC_CHECK_MSG(updated != &prior, "DeltaCrawl output may not alias prior");
  if (prior.schema == nullptr || prior.regions.empty()) {
    return Status::InvalidArgument("prior crawl record is empty");
  }
  if (!server->schema()->CompatibleWith(*prior.schema)) {
    return Status::InvalidArgument(
        "prior crawl record's schema is incompatible with the server's");
  }
  // Seed the cache with the prior cover at its version: rectangles the
  // server's version proves unchanged are hits, the rest cost one
  // conditional re-ask each, billed fully only when content moved.
  std::shared_ptr<AnswerCache> cache = MakeVersionCheckCache();
  std::vector<Query> work;
  work.reserve(prior.regions.size());
  for (const CrawlRecordRegion& region : prior.regions) {
    cache->Seed(region.rectangle, region.answer, region.content_hash,
                prior.db_version);
    work.push_back(region.rectangle);
  }
  DeltaCrawlStats local;
  HDC_RETURN_IF_ERROR(ConvergedCrawl(server, prior.schema, std::move(cache),
                                     std::move(work), updated, &local));
  updated->queries_spent = prior.queries_spent + local.billed_queries;
  *delta = DiffRecords(prior, *updated);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

CrawlDelta DiffRecords(const CrawlRecord& before, const CrawlRecord& after) {
  // std::map keeps both sides id-sorted, making the emitted sets
  // deterministic and the merge a linear two-pointer walk.
  std::map<uint64_t, const Tuple*> old_rows;
  std::map<uint64_t, const Tuple*> new_rows;
  for (const CrawlRecordRegion& region : before.regions) {
    for (const ReturnedTuple& rt : region.answer.tuples) {
      old_rows[rt.hidden_id] = &rt.tuple;
    }
  }
  for (const CrawlRecordRegion& region : after.regions) {
    for (const ReturnedTuple& rt : region.answer.tuples) {
      new_rows[rt.hidden_id] = &rt.tuple;
    }
  }
  CrawlDelta delta;
  auto old_it = old_rows.begin();
  auto new_it = new_rows.begin();
  while (old_it != old_rows.end() || new_it != new_rows.end()) {
    if (new_it == new_rows.end() ||
        (old_it != old_rows.end() && old_it->first < new_it->first)) {
      delta.deleted.push_back({old_it->first, *old_it->second});
      ++old_it;
    } else if (old_it == old_rows.end() || new_it->first < old_it->first) {
      delta.inserted.push_back({new_it->first, *new_it->second});
      ++new_it;
    } else {
      if (!(*old_it->second == *new_it->second)) {
        delta.updated.push_back(
            {old_it->first, *old_it->second, *new_it->second});
      }
      ++old_it;
      ++new_it;
    }
  }
  return delta;
}

// --- persistence -------------------------------------------------------

Status SaveCrawlRecord(const CrawlRecord& record, std::ostream* out) {
  HDC_CHECK(out != nullptr);
  if (record.schema == nullptr) {
    return Status::InvalidArgument("crawl record has no schema");
  }
  *out << kMagic << ' ' << kFormatVersion << '\n';
  *out << "schema " << FormatSchemaSpec(*record.schema) << '\n';
  *out << "version " << record.db_version << '\n';
  *out << "queries " << record.queries_spent << '\n';
  *out << "regions " << record.regions.size() << '\n';
  for (const CrawlRecordRegion& region : record.regions) {
    if (region.answer.overflow) {
      return Status::InvalidArgument(
          "crawl record holds an unresolved region: " +
          region.rectangle.ToString());
    }
    *out << "region " << region.content_hash << ' ' << region.answer.size()
         << ' ';
    EncodeQueryTokens(region.rectangle, out);
    *out << '\n';
    for (const ReturnedTuple& rt : region.answer.tuples) {
      *out << rt.hidden_id << ' ';
      EncodeTupleTokens(rt.tuple, out);
      *out << '\n';
    }
  }
  out->flush();
  if (!out->good()) return Status::Internal("crawl record write failed");
  return Status::OK();
}

Status SaveCrawlRecordFile(const CrawlRecord& record,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  return SaveCrawlRecord(record, &out);
}

Status LoadCrawlRecord(std::istream* in, SchemaPtr schema, CrawlRecord* out) {
  HDC_CHECK(in != nullptr && out != nullptr && schema != nullptr);
  std::string line, rest;
  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  if (line != std::string(kMagic) + " " + std::to_string(kFormatVersion)) {
    return Status::InvalidArgument("not a crawl record: '" + line + "'");
  }
  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  HDC_RETURN_IF_ERROR(ExpectTagged(line, "schema", &rest));
  SchemaPtr recorded;
  HDC_RETURN_IF_ERROR(ParseSchemaSpec(rest, &recorded));
  if (!(*recorded == *schema)) {
    return Status::InvalidArgument(
        "crawl record schema '" + rest + "' does not match the caller's '" +
        FormatSchemaSpec(*schema) + "'");
  }

  CrawlRecord record;
  record.schema = schema;
  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  HDC_RETURN_IF_ERROR(ExpectTagged(line, "version", &rest));
  record.db_version = std::stoull(rest);
  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  HDC_RETURN_IF_ERROR(ExpectTagged(line, "queries", &rest));
  record.queries_spent = std::stoull(rest);
  HDC_RETURN_IF_ERROR(NextLine(in, &line));
  HDC_RETURN_IF_ERROR(ExpectTagged(line, "regions", &rest));
  const size_t region_count = std::stoull(rest);

  const size_t arity = schema->num_attributes();
  record.regions.reserve(region_count);
  for (size_t r = 0; r < region_count; ++r) {
    HDC_RETURN_IF_ERROR(NextLine(in, &line));
    HDC_RETURN_IF_ERROR(ExpectTagged(line, "region", &rest));
    std::istringstream tokens(rest);
    uint64_t content_hash = 0;
    size_t tuple_count = 0;
    if (!(tokens >> content_hash >> tuple_count)) {
      return Status::InvalidArgument("malformed region header: " + line);
    }
    Query rectangle = Query::FullSpace(schema);
    HDC_RETURN_IF_ERROR(DecodeQueryTokens(&tokens, schema, &rectangle));
    CrawlRecordRegion region{std::move(rectangle), Response{}, content_hash};
    region.answer.tuples.reserve(tuple_count);
    for (size_t t = 0; t < tuple_count; ++t) {
      HDC_RETURN_IF_ERROR(NextLine(in, &line));
      std::istringstream row(line);
      ReturnedTuple rt;
      if (!(row >> rt.hidden_id)) {
        return Status::InvalidArgument("malformed tuple line: " + line);
      }
      HDC_RETURN_IF_ERROR(DecodeTupleTokens(&row, arity, &rt.tuple));
      region.answer.tuples.push_back(std::move(rt));
    }
    // The recorded hash doubles as a checksum: recompute and reject
    // records whose tuples no longer match their fingerprint.
    if (HashResponse(region.answer) != region.content_hash) {
      return Status::InvalidArgument(
          "crawl record corrupt: content hash mismatch in region " +
          region.rectangle.ToString());
    }
    record.regions.push_back(std::move(region));
  }
  *out = std::move(record);
  return Status::OK();
}

Status LoadCrawlRecordFile(const std::string& path, SchemaPtr schema,
                           CrawlRecord* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return LoadCrawlRecord(&in, std::move(schema), out);
}

}  // namespace hdc
