// Copyright (c) hdc authors. Apache-2.0 license.
//
// Delta crawl: incremental re-extraction of a *mutating* hidden database.
//
// The paper prices a crawl of a frozen database; a real hidden database
// mutates between (and during) crawls, and re-running a full crawl to find
// a handful of changed rows is the dominant long-run cost. This driver
// makes re-crawls pay per *change* instead of per *row*:
//
//  1. A full crawl produces a CrawlRecord: a disjoint cover of the data
//     space by resolved query rectangles, each with its answer and the
//     answer's 64-bit truncated SHA-256 content hash — the crawl's
//     conditional-request fingerprints (the ETag idiom of the related
//     hidden-web crawlers).
//
//  2. DeltaCrawl seeds an AnswerCache with the record's entries at the
//     record's db_version and replays the rectangles through a
//     CachingServer in version-check mode:
//       - server version unchanged  -> every rectangle is a cache hit:
//         zero queries prove the extraction current;
//       - version moved             -> each rectangle costs one conditional
//         re-ask. A matching content hash is a cheap revalidation (the
//         "304 Not Modified" of this protocol); only rectangles whose
//         content actually changed are billed, and only those that now
//         overflow are descended into (the binary/DFS split of the full
//         crawlers, confined to the changed subspace).
//
//  3. The old and new records are diffed by hidden id into insert /
//     delete / update sets — exactly what a full re-crawl diff would
//     produce, at a fraction of the queries (bench/bench_cache.cc).
//
// Mutations that land *mid-crawl* are handled by convergence: a pass that
// observes the server's db_version moving re-replays the (already mostly
// cached) cover until a full pass completes inside one version — so the
// final record is a consistent snapshot, and the emitted delta matches a
// full re-crawl diff taken at that version.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/tuple.h"
#include "query/query.h"
#include "server/response.h"
#include "server/server.h"
#include "util/status.h"

namespace hdc {

/// One resolved rectangle of the cover: the canonical query, its full
/// answer, and the answer's content hash.
struct CrawlRecordRegion {
  Query rectangle;
  Response answer;
  uint64_t content_hash = 0;
};

/// A completed crawl, replayable: disjoint rectangles covering the data
/// space, consistent as of `db_version`.
struct CrawlRecord {
  SchemaPtr schema;
  /// The server's db_version the regions are a consistent snapshot of.
  uint64_t db_version = 0;
  /// Lifetime billed queries spent producing and updating this record.
  uint64_t queries_spent = 0;
  std::vector<CrawlRecordRegion> regions;

  /// All extracted rows as (hidden_id, tuple), unordered.
  std::vector<std::pair<uint64_t, Tuple>> Extraction() const;
  /// Total tuples across regions.
  uint64_t TupleCount() const;
};

/// Row-level difference between two records, keyed by hidden id.
struct RowChange {
  uint64_t hidden_id = 0;
  Tuple tuple;
};
struct RowUpdate {
  uint64_t hidden_id = 0;
  Tuple before;
  Tuple after;
};
struct CrawlDelta {
  std::vector<RowChange> inserted;
  std::vector<RowChange> deleted;
  std::vector<RowUpdate> updated;

  bool empty() const {
    return inserted.empty() && deleted.empty() && updated.empty();
  }
  size_t size() const {
    return inserted.size() + deleted.size() + updated.size();
  }
};

/// Query accounting of one delta (or build) crawl, split by price.
struct DeltaCrawlStats {
  /// Full-price queries: cache misses plus conditional re-asks whose
  /// content changed — the number the bench compares to a full re-crawl.
  uint64_t billed_queries = 0;
  /// Conditional re-asks whose content hash matched ("304"s).
  uint64_t cheap_revalidations = 0;
  /// Rectangles served from cache without any round trip.
  uint64_t cache_hits = 0;
  /// Changed rectangles that overflowed and were split.
  uint64_t regions_descended = 0;
  /// Convergence passes over the cover (1 when no mid-crawl mutation).
  uint64_t passes = 0;
};

/// Full partition crawl producing a replayable record. Converges under
/// mid-crawl mutations (see file comment); fails Unsolvable when some
/// point holds more than k tuples, Unavailable when the server keeps
/// mutating faster than passes complete.
Status BuildCrawlRecord(HiddenDbServer* server, CrawlRecord* record,
                        DeltaCrawlStats* stats = nullptr);

/// Incremental re-crawl against `prior`. On success `updated` holds the
/// new consistent record (its regions refine or replace prior ones),
/// `delta` the exact insert/delete/update sets between the two
/// extractions, and `stats` the query bill. `prior` and `updated` may not
/// alias.
Status DeltaCrawl(HiddenDbServer* server, const CrawlRecord& prior,
                  CrawlRecord* updated, CrawlDelta* delta,
                  DeltaCrawlStats* stats = nullptr);

/// Exact diff of two records' extractions by hidden id — the ground truth
/// DeltaCrawl's emitted sets are tested against. Output is sorted by id
/// (deterministic for comparisons).
CrawlDelta DiffRecords(const CrawlRecord& before, const CrawlRecord& after);

// --- persistence -------------------------------------------------------
// Line-oriented text format in the checkpoint.h family:
//   hdc-crawl-record 1
//   schema <spec>
//   version <db_version>
//   queries <queries_spent>
//   regions <count>
//   region <content hash> <tuple count> <lo hi>...   (one per region)
//   <hidden_id> <v1> ... <vd>                        (one per tuple)
// Content hashes are re-verified against the decoded tuples on load, so a
// corrupted record is rejected instead of silently seeding a wrong cache.

Status SaveCrawlRecord(const CrawlRecord& record, std::ostream* out);
Status SaveCrawlRecordFile(const CrawlRecord& record,
                           const std::string& path);
/// `schema` must equal the recorded spec exactly (records are bound to the
/// space they were crawled in).
Status LoadCrawlRecord(std::istream* in, SchemaPtr schema, CrawlRecord* out);
Status LoadCrawlRecordFile(const std::string& path, SchemaPtr schema,
                           CrawlRecord* out);

}  // namespace hdc
