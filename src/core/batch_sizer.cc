// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/batch_sizer.h"

#include <algorithm>

#include "util/macros.h"

namespace hdc {

AdaptiveBatchSizer::AdaptiveBatchSizer(const AdaptiveBatchOptions& options,
                                       unsigned base_parallelism)
    : options_(options),
      limit_(std::max<size_t>(1, base_parallelism)) {
  HDC_CHECK_MSG(options_.target_round_seconds > 0,
                "AdaptiveBatchOptions::target_round_seconds must be > 0");
  HDC_CHECK_MSG(options_.max_round >= 1,
                "AdaptiveBatchOptions::max_round must be >= 1");
  limit_ = std::min(limit_, options_.max_round);
}

void AdaptiveBatchSizer::RecordRound(size_t round_size, double rtt_seconds,
                                     double queue_wait_total_seconds) {
  ++rounds_recorded_;
  // The reading is cumulative per server session; a *decrease* means the
  // conversation moved to a fresh session (reconnect), whose total is
  // entirely wait incurred since — re-seed instead of clamping to zero,
  // or a congested server would get no back-off for the whole catch-up
  // window.
  const double wait_delta =
      queue_wait_total_seconds < last_queue_wait_total_
          ? queue_wait_total_seconds
          : queue_wait_total_seconds - last_queue_wait_total_;
  last_queue_wait_total_ = queue_wait_total_seconds;

  // Congestion first: a server that parked this round behind other tenants
  // gets smaller rounds regardless of how fast the wire is.
  if (rtt_seconds > 0 &&
      wait_delta > options_.congestion_fraction * rtt_seconds) {
    if (limit_ > 1) {
      limit_ /= 2;
      ++congestion_backoffs_;
    }
    return;
  }

  if (rtt_seconds > 2 * options_.target_round_seconds) {
    if (limit_ > 1) {
      limit_ /= 2;
      ++shrink_events_;
    }
    return;
  }

  // Grow only off a *full* round: a half-empty round's round-trip says
  // nothing about what a bigger one would cost.
  if (round_size >= limit_ &&
      rtt_seconds < 0.5 * options_.target_round_seconds &&
      limit_ < options_.max_round) {
    limit_ = std::min(options_.max_round, limit_ * 2);
    ++grow_events_;
  }
}

}  // namespace hdc
