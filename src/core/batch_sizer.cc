// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/batch_sizer.h"

#include <algorithm>

#include "util/macros.h"

namespace hdc {

AdaptiveBatchSizer::AdaptiveBatchSizer(const AdaptiveBatchOptions& options,
                                       unsigned base_parallelism)
    : options_(options),
      limit_(std::max<size_t>(1, base_parallelism)) {
  HDC_CHECK_MSG(options_.target_round_seconds > 0,
                "AdaptiveBatchOptions::target_round_seconds must be > 0");
  HDC_CHECK_MSG(options_.max_round >= 1,
                "AdaptiveBatchOptions::max_round must be >= 1");
  limit_ = std::min(limit_, options_.max_round);
}

double AdaptiveBatchSizer::DiffReading(double reading, double* last) {
  // The reading is cumulative per server session; a *decrease* means the
  // conversation moved to a fresh session (reconnect), whose total is
  // entirely wait incurred since — re-seed instead of clamping to zero,
  // or a congested server would get no back-off for the whole catch-up
  // window.
  const double delta = reading < *last ? reading : reading - *last;
  *last = reading;
  return delta;
}

void AdaptiveBatchSizer::RecordRound(size_t round_size, double rtt_seconds,
                                     double queue_wait_total_seconds) {
  RecordDelta(round_size, rtt_seconds,
              DiffReading(queue_wait_total_seconds, &last_queue_wait_total_));
}

void AdaptiveBatchSizer::RecordRound(size_t round_size, double rtt_seconds,
                                     const ServerLoadHint& hint) {
  if (hint.shard_queue_wait_seconds.empty()) {
    RecordRound(round_size, rtt_seconds, hint.queue_wait_total_seconds);
    return;
  }
  // Sharded backend: the round completed when its slowest shard did, so
  // congestion is the worst per-shard wait delta, not the sum — N-1 idle
  // shards must not dilute one straggler below the back-off threshold.
  if (last_shard_waits_.size() != hint.shard_queue_wait_seconds.size()) {
    last_shard_waits_.assign(hint.shard_queue_wait_seconds.size(), 0.0);
  }
  double max_delta = 0;
  for (size_t s = 0; s < hint.shard_queue_wait_seconds.size(); ++s) {
    max_delta = std::max(
        max_delta,
        DiffReading(hint.shard_queue_wait_seconds[s], &last_shard_waits_[s]));
  }
  // Keep the aggregate tracker coherent in case the conversation later
  // degrades to unsharded hints (e.g. a proxy stops forwarding the
  // per-shard vector).
  last_queue_wait_total_ = hint.queue_wait_total_seconds;
  RecordDelta(round_size, rtt_seconds, max_delta);
}

void AdaptiveBatchSizer::RecordDelta(size_t round_size, double rtt_seconds,
                                     double wait_delta) {
  ++rounds_recorded_;
  // Congestion first: a server that parked this round behind other tenants
  // gets smaller rounds regardless of how fast the wire is.
  if (rtt_seconds > 0 &&
      wait_delta > options_.congestion_fraction * rtt_seconds) {
    if (limit_ > 1) {
      limit_ /= 2;
      ++congestion_backoffs_;
    }
    return;
  }

  if (rtt_seconds > 2 * options_.target_round_seconds) {
    if (limit_ > 1) {
      limit_ /= 2;
      ++shrink_events_;
    }
    return;
  }

  // Grow only off a *full* round: a half-empty round's round-trip says
  // nothing about what a bigger one would cost.
  if (round_size >= limit_ &&
      rtt_seconds < 0.5 * options_.target_round_seconds &&
      limit_ < options_.max_round) {
    limit_ = std::min(options_.max_round, limit_ * 2);
    ++grow_events_;
  }
}

}  // namespace hdc
