// Copyright (c) hdc authors. Apache-2.0 license.
//
// Attribute-dependency pruning (paper, Section 1.3). A crawler with external
// knowledge of the data ("BMW sells no trucks in the US") may skip queries
// that cannot cover a valid point. Skipping only ever removes queries, so
// Theorem 1's upper bounds still hold — but the oracle must be *sound*: if
// it wrongly reports a region empty, the crawl silently misses tuples.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "query/query.h"

namespace hdc {

/// Answers "might any valid tuple satisfy q?". Returning false lets the
/// crawler treat q as resolved-and-empty without spending a query.
class DependencyOracle {
 public:
  virtual ~DependencyOracle() = default;

  /// Must be *sound*: may return true spuriously (costing nothing beyond the
  /// paper's bounds) but must never return false for a region that actually
  /// holds tuples.
  virtual bool MayContainTuples(const Query& query) const = 0;
};

/// Wraps an arbitrary predicate.
class FunctionOracle : public DependencyOracle {
 public:
  explicit FunctionOracle(std::function<bool(const Query&)> fn)
      : fn_(std::move(fn)) {}
  bool MayContainTuples(const Query& query) const override {
    return fn_(query);
  }

 private:
  std::function<bool(const Query&)> fn_;
};

/// Knowledge base of forbidden categorical value pairs: (attr_a = va) never
/// co-occurs with (attr_b = vb). A query is prunable when it pins some
/// forbidden pair on both sides — the Section 1.3 heuristic for, e.g.,
/// MAKE = BMW && BODY-STYLE = TRUCK.
class ForbiddenPairOracle : public DependencyOracle {
 public:
  struct ForbiddenPair {
    size_t attr_a;
    Value value_a;
    size_t attr_b;
    Value value_b;
  };

  explicit ForbiddenPairOracle(std::vector<ForbiddenPair> pairs)
      : pairs_(std::move(pairs)) {}

  bool MayContainTuples(const Query& query) const override {
    for (const ForbiddenPair& p : pairs_) {
      if (query.IsPinned(p.attr_a) && query.lo(p.attr_a) == p.value_a &&
          query.IsPinned(p.attr_b) && query.lo(p.attr_b) == p.value_b) {
        return false;
      }
    }
    return true;
  }

  size_t num_pairs() const { return pairs_.size(); }

 private:
  std::vector<ForbiddenPair> pairs_;
};

}  // namespace hdc
