// Copyright (c) hdc authors. Apache-2.0 license.
//
// Common crawling framework. Every algorithm of the paper is implemented as
// a Crawler operating on an explicit work frontier held in a CrawlState, so
// that (i) crawls can be interrupted by a query budget and resumed later
// against a fresh quota, and (ii) the harness can observe progressiveness
// (Figure 13) query by query.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/batch_sizer.h"
#include "core/dependency.h"
#include "data/dataset.h"
#include "server/server.h"
#include "util/status.h"

namespace hdc {

class CheckpointReader;
class Clock;
class CrawlPlan;
class CrawlSink;
class FrontierLogWriter;

/// Per-query progress sample (recorded when CrawlOptions::record_trace).
struct TraceEntry {
  /// 1-based cumulative query count at the time this query was issued.
  uint64_t query_index = 0;
  bool resolved = false;
  /// Tuples in this response.
  uint32_t returned = 0;
  /// Distinct physical rows retrieved so far (the Figure 13 "tuples output"
  /// measure).
  uint64_t rows_seen = 0;
  /// Tuples confirmed into the extraction so far (from resolved regions).
  uint64_t tuples_collected = 0;
};

struct CrawlOptions {
  /// Query budget for *this run* (Crawl or Resume call). When it runs out
  /// the crawler stops cleanly with Status::ResourceExhausted and a
  /// resumable state.
  uint64_t max_queries = UINT64_MAX;

  /// How many independent frontier items a crawler may pop and issue as one
  /// server batch (HiddenDbServer::IssueBatch). 1 (default) reproduces the
  /// strictly sequential conversation query-for-query — the paper-figure
  /// setting. 0 means *auto*: each round is sized to the current frontier
  /// width, capped by the server's declared evaluation parallelism
  /// (HiddenDbServer::batch_parallelism) — against a single-lane server
  /// auto degenerates to 1 and stays byte-identical to the sequential
  /// conversation. When the server reports a latency boundary
  /// (ServerLoadHint::latency_feedback, i.e. a remote transport), the cap
  /// is adaptive instead: an AdaptiveBatchSizer grows/shrinks it from
  /// observed per-round round-trip latency and the server's queue-wait
  /// signal (see core/batch_sizer.h and `adaptive_batch` below). Any
  /// setting never changes the query *count* of the six crawlers (each
  /// work item is issued exactly once and split decisions depend only on
  /// the item's own response), only the conversation order and, against a
  /// parallel or remote server, the wall-clock time.
  uint32_t batch_size = 1;

  /// Tuning of the latency-aware auto sizing; only consulted when
  /// batch_size == 0 and the server's load hint enables latency feedback.
  AdaptiveBatchOptions adaptive_batch;

  /// Time source for round-trip measurement (latency-aware sizing only);
  /// null means the process-wide RealClock. Tests inject a FakeClock to
  /// make sizing decisions deterministic.
  Clock* clock = nullptr;

  /// Record a TraceEntry per query (costs memory; off by default).
  bool record_trace = false;

  /// Optional sound pruning oracle (Section 1.3); not owned.
  const DependencyOracle* oracle = nullptr;

  /// Optional compiled predicate pushdown (core/crawl_plan.h); not owned.
  /// The plan's root rectangle seeds the frontier, its pruning test is
  /// applied beside `oracle`, and its residual filter gates collection, so
  /// the crawl only descends into — and only extracts — the satisfying
  /// subspace. Must be compiled against the server's schema.
  const CrawlPlan* plan = nullptr;

  /// Streaming consumer (core/crawl_sink.h): receives each tuple the moment
  /// it is confirmed into the extraction, in confirmation order. Lets a
  /// pipeline process results progressively (the property Figure 13
  /// measures) instead of waiting for the crawl to finish. Not owned.
  CrawlSink* sink = nullptr;

  /// When false, confirmed tuples are *not* accumulated in
  /// CrawlState::extracted — they flow through `sink` only and the state
  /// keeps counters (tuples_collected). This is the constant-memory mode
  /// for very large extractions; checkpoints of such a state record the
  /// collected count but no tuple bag.
  bool materialize = true;

  /// Write-ahead frontier log (core/frontier_log.h). When set, the context
  /// commits a durable delta at every round boundary, so a SIGKILLed
  /// process can replay the log and resume mid-crawl without re-billing any
  /// completed round. Not owned.
  FrontierLogWriter* frontier_log = nullptr;
};

/// Mutable working memory of a crawl: the partial extraction plus the
/// algorithm-specific frontier (subclasses add it). A state is created by
/// Crawler::Crawl and can be fed back to Crawler::Resume.
class CrawlState {
 public:
  explicit CrawlState(SchemaPtr schema) : extracted(std::move(schema)) {}
  virtual ~CrawlState() = default;

  /// True when the frontier is empty — the extraction is complete.
  virtual bool Finished() const = 0;

  /// Algorithm tag, to guard against resuming a state with the wrong
  /// crawler.
  virtual std::string algorithm() const = 0;

  /// Serializes the algorithm-specific frontier — everything between the
  /// checkpoint format's frontier-begin/frontier-end markers (see
  /// core/checkpoint.h).
  virtual void EncodeFrontier(std::ostream* out) const = 0;

  /// Restores the frontier, consuming input lines up to and including the
  /// "frontier-end" marker. Errors are typed and name the offending line
  /// (the reader tracks line numbers — core/checkpoint.h).
  virtual Status DecodeFrontier(CheckpointReader* in) = 0;

  Dataset extracted;
  std::unordered_set<uint64_t> seen_rows;
  uint64_t queries_issued = 0;  // cumulative across runs
  /// Cumulative tuples confirmed into the extraction (== extracted.size()
  /// when materializing; still advances when CrawlOptions::materialize is
  /// off and tuples flow through the sink only).
  uint64_t tuples_collected = 0;
  std::vector<TraceEntry> trace;
  Status fatal;  // e.g. Unsolvable; sticky
};

/// Outcome of one crawl (or resume) run.
struct CrawlResult {
  /// OK: complete extraction. ResourceExhausted: budget ran out,
  /// `resume_state` is set. Unsolvable: a point with more than k duplicates
  /// was hit (Section 1.1). Anything else: environment/usage error.
  Status status;

  /// The tuples extracted so far (the full bag D when status is OK).
  Dataset extracted;

  /// Cumulative queries across all runs of this crawl.
  uint64_t queries_issued = 0;

  /// Distinct physical rows retrieved (>= extracted.size() is not implied;
  /// duplicates at a point are distinct rows).
  uint64_t rows_seen = 0;

  /// Cumulative tuples confirmed (equals extracted.size() unless the crawl
  /// ran with materialize off).
  uint64_t tuples_collected = 0;

  std::vector<TraceEntry> trace;

  /// Set iff status is ResourceExhausted; pass to Crawler::Resume.
  std::shared_ptr<CrawlState> resume_state;

  bool complete() const { return status.ok(); }

  CrawlResult() : extracted(nullptr) {}
  explicit CrawlResult(SchemaPtr schema) : extracted(std::move(schema)) {}
};

/// Interface shared by all six algorithms (binary-shrink, rank-shrink, DFS,
/// slice-cover, lazy-slice-cover, hybrid).
class Crawler {
 public:
  virtual ~Crawler() = default;

  /// Algorithm name as used in the paper ("rank-shrink", ...).
  virtual std::string name() const = 0;

  /// Checks the algorithm supports this data space (e.g. rank-shrink
  /// requires an all-numeric schema).
  virtual Status ValidateSchema(const Schema& schema) const = 0;

  /// Runs a fresh crawl against `server` until complete, fatal, or the
  /// budget runs out.
  CrawlResult Crawl(HiddenDbServer* server, const CrawlOptions& options = {});

  /// Continues an interrupted crawl. `state` must come from this algorithm.
  CrawlResult Resume(HiddenDbServer* server, std::shared_ptr<CrawlState> state,
                     const CrawlOptions& options = {});

 protected:
  /// Builds the initial state: the frontier is seeded with the plan's root
  /// rectangle when `options.plan` is set, the full space otherwise.
  virtual std::shared_ptr<CrawlState> MakeInitialState(
      HiddenDbServer* server, const CrawlOptions& options) const = 0;

  /// Drains the frontier until done or the context says stop. Must be
  /// re-entrant: popping work, issuing queries through the context, pushing
  /// work back when interrupted mid-item.
  virtual void Run(class CrawlContext* ctx, CrawlState* state) const = 0;

 private:
  CrawlResult RunAndPackage(HiddenDbServer* server,
                            std::shared_ptr<CrawlState> state,
                            const CrawlOptions& options);
};

}  // namespace hdc
