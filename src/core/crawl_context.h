// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/batch_sizer.h"
#include "core/crawler.h"
#include "query/query.h"
#include "server/response.h"
#include "server/server.h"

namespace hdc {

class Clock;

/// Binds a crawl run together: the server, the mutable state and the run
/// options. All queries flow through Issue(), which enforces the budget,
/// consults the dependency oracle, updates the seen-rows metric and the
/// trace. All collection flows through the Collect* methods, which append to
/// the extraction; callers are responsible for only collecting bags of
/// *resolved* queries over pairwise-disjoint regions (each algorithm's
/// correctness argument).
class CrawlContext {
 public:
  CrawlContext(HiddenDbServer* server, CrawlState* state,
               const CrawlOptions& options);

  enum class Outcome {
    kResolved,     // response holds the entire q(D)
    kOverflow,     // response holds k tuples + overflow signal
    kPrunedEmpty,  // oracle says empty; no query spent
    kStop,         // budget/server interruption or fatal; re-push work, stop
  };

  /// Issues `query` unless the budget is exhausted or the oracle prunes it.
  /// Any server failure (quota, outage) yields kStop: the caller re-pushes
  /// its work item and the crawl stays resumable — only SetFatal (e.g.
  /// Unsolvable) ends a crawl for good.
  Outcome Issue(const Query& query, Response* response);

  /// Batched variant: issues the *independent* members of `queries` through
  /// one HiddenDbServer::IssueBatch call and returns one Outcome per member,
  /// in order. Budget and oracle are applied per member exactly as repeated
  /// Issue() calls would: pruned members cost nothing, members past the
  /// budget boundary (or past a server failure) come back kStop and must be
  /// re-pushed by the caller. Trace entries and seen-row accounting are
  /// appended in issue order. A one-element batch is exactly Issue().
  std::vector<Outcome> IssueBatch(const std::vector<Query>& queries,
                                  std::vector<Response>* responses);

  /// How many frontier items a crawler should drain into its next server
  /// round: the fixed CrawlOptions::batch_size when one was given (>= 1),
  /// otherwise (batch_size == 0, "auto") the current `frontier_width`
  /// capped by the server's evaluation parallelism — wide frontiers fill
  /// the server's lanes, narrow ones never pad the round. Against a
  /// single-lane server, auto degenerates to 1 and reproduces the
  /// sequential conversation exactly. Against a remote transport
  /// (ServerLoadHint::latency_feedback) the cap is the adaptive limit fed
  /// back from observed round-trip latency and server queue wait.
  ///
  /// Every crawler calls this at the top of its drain loop, when the
  /// previous round is fully applied and the state is self-consistent —
  /// which makes it the round *boundary*. When a frontier log is attached
  /// (CrawlOptions::frontier_log) this is where the durable delta commits:
  /// a commit always precedes the round it enables, so a crash never loses
  /// billed work (see core/frontier_log.h). A commit failure stops the run
  /// like a server failure would.
  size_t RoundSize(size_t frontier_width);

  /// The adaptive sizer driving auto rounds, or null when sizing is the
  /// deterministic parallelism rule (fixed batch_size, or an in-process
  /// server). Exposed for tests and metrics.
  const AdaptiveBatchSizer* batch_sizer() const { return sizer_.get(); }

  /// The server/budget status that interrupted the run, if any.
  const Status& interrupt() const { return interrupt_; }

  /// Appends every tuple of a resolved response to the extraction.
  void CollectResponse(const Response& response);

  /// Appends the tuples of a cached resolved bag that satisfy `filter`
  /// (slice-cover's local answering; costs no query).
  void CollectFiltered(const std::vector<ReturnedTuple>& bag,
                       const Query& filter);

  /// Marks the crawl as failed (e.g. Unsolvable). Sticky; also stops.
  void SetFatal(Status status);

  /// True when the run must halt (budget exhausted or fatal).
  bool stopped() const { return stopped_; }

  HiddenDbServer* server() { return server_; }
  CrawlState* state() { return state_; }
  uint64_t k() const { return k_; }

  /// Queries issued in this run (not cumulative).
  uint64_t run_queries() const { return run_queries_; }

 private:
  /// Budget/seen-rows/trace bookkeeping for one answered query.
  void RecordAnswered(const Response& response);

  /// Confirms one tuple into the extraction: residual plan filter,
  /// materialization, sink delivery, frontier-log note.
  void Deliver(const Tuple& tuple);

  HiddenDbServer* server_;
  CrawlState* state_;
  CrawlOptions options_;
  uint64_t k_;
  uint64_t run_queries_ = 0;
  bool stopped_ = false;
  Status interrupt_;

  /// Set only for batch_size == 0 against a latency-feedback server.
  std::unique_ptr<AdaptiveBatchSizer> sizer_;
  Clock* clock_ = nullptr;  // round-trip measurement; set iff sizer_ is
};

}  // namespace hdc
