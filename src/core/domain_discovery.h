// Copyright (c) hdc authors. Apache-2.0 license.
//
// Numeric domain discovery. Section 1.3 notes a crawler must learn the
// attribute domains before crawling; categorical domains come from the
// search form, but numeric bounds are usually *not* advertised. This module
// discovers the exact observed min/max of every numeric attribute with
// O(log range) range-emptiness probes — which in turn lets binary-shrink
// (whose midpoint splits need finite extents) run against servers whose
// schema declares unbounded numeric attributes.
#pragma once

#include <cstdint>

#include "data/schema.h"
#include "server/server.h"
#include "util/status.h"

namespace hdc {

/// Result of probing one numeric attribute.
struct DiscoveredBounds {
  /// Observed minimum / maximum (valid only when !empty).
  Value lo = 0;
  Value hi = 0;
  /// True when the database holds no tuples at all.
  bool empty = false;
  /// Probing cost in queries.
  uint64_t queries = 0;
};

/// Finds the exact observed [min, max] of numeric attribute `attr` via
/// exponential search + binary search on range emptiness. Costs
/// O(log(spread)) queries where spread is the distance from a witness value
/// to the true extreme.
Status DiscoverNumericBounds(HiddenDbServer* server, size_t attr,
                             DiscoveredBounds* out);

/// Probes every numeric attribute and returns a copy of the server's
/// schema whose numeric attributes carry the discovered bounds (categorical
/// attributes unchanged). `total_queries` (optional) receives the probing
/// cost. On an empty database the returned schema pins numeric attributes
/// to [0, 0].
Status DiscoverBoundedSchema(HiddenDbServer* server, SchemaPtr* out,
                             uint64_t* total_queries = nullptr);

}  // namespace hdc
