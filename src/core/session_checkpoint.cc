// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/session_checkpoint.h"

#include <fstream>
#include <sstream>

#include "util/macros.h"

namespace hdc {

Status SaveSessionCheckpoint(const ServerSession& session,
                             const CrawlState& state, std::ostream* out) {
  HDC_RETURN_IF_ERROR(session.SaveCheckpoint(out));
  return SaveCheckpoint(state, *session.schema(), out);
}

Status SaveSessionCheckpointFile(const ServerSession& session,
                                 const CrawlState& state,
                                 const std::string& path) {
  std::ostringstream out;
  HDC_RETURN_IF_ERROR(SaveSessionCheckpoint(session, state, &out));
  return WriteFileDurably(path, out.str());
}

Status LoadSessionCheckpoint(std::istream* in, ServerSession* session,
                             std::shared_ptr<CrawlState>* out,
                             const SessionResumeOptions& options) {
  if (in == nullptr || session == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  HDC_RETURN_IF_ERROR(session->ResumeFrom(in, options.restore_budget));
  return LoadCheckpoint(in, session->schema(), out);
}

Status LoadSessionCheckpointFile(const std::string& path,
                                 ServerSession* session,
                                 std::shared_ptr<CrawlState>* out,
                                 const SessionResumeOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  return LoadSessionCheckpoint(&in, session, out, options);
}

}  // namespace hdc
