// Copyright (c) hdc authors. Apache-2.0 license.
//
// rank-shrink (paper, Sections 2.2-2.3): the asymptotically optimal numeric
// crawler, O(d * n / k) queries. Differences from binary-shrink: (1) the
// split point is the (k/2)-th smallest returned value, guaranteeing >= k/4
// returned tuples land in each half (Case 1); (2) when more than k/4
// returned tuples tie on that value, a 3-way split isolates the duplicate
// slab, exhausting one attribute (Case 2). Multi-dimensional instances
// reduce inductively: the slab is a (d-1)-dimensional sub-problem.
#pragma once

#include <vector>

#include "core/crawler.h"
#include "query/query.h"
#include "server/response.h"

namespace hdc {

/// Which attribute an overflowing rectangle is split on.
enum class SplitAttributeStrategy {
  /// The paper's rule (Section 2.3): the lowest-index non-exhausted
  /// attribute — exhaust A1 completely, then recurse on A2..Ad. This is
  /// what the O(d*n/k) proof accounts.
  kFirstNonExhausted,
  /// Adaptive heuristic: the non-exhausted attribute whose values are most
  /// diverse within the returned k tuples (ties by index). Splits where
  /// the data actually spreads; correctness and termination hold, the
  /// Lemma 2 constant is not proven for it. Compared in the ablation
  /// bench.
  kMostDistinctValues,
};

/// Tuning knobs, exposed for the ablation bench. The paper's constants are
/// rank 1/2 and 3-way threshold 1/4; Lemma 1's accounting works for any
/// rank fraction r and threshold fraction t with t <= min(r, 1-r) — the
/// ablation bench shows why (1/2, 1/4) is the sweet spot.
struct RankShrinkOptions {
  /// Split at the ceil(k * rank_fraction)-th smallest returned value.
  double rank_fraction = 0.5;
  /// 3-way split when the split value's multiplicity in the response
  /// exceeds k * three_way_fraction.
  double three_way_fraction = 0.25;
  /// Split-attribute choice (see SplitAttributeStrategy).
  SplitAttributeStrategy attribute_strategy =
      SplitAttributeStrategy::kFirstNonExhausted;
};

/// Picks the attribute to split `q` on per `options.attribute_strategy`,
/// considering only non-exhausted *numeric* attributes. Returns nullopt if
/// there is none (q is a point of its free subspace) — the caller treats an
/// overflow there as Unsolvable.
std::optional<size_t> ChooseSplitAttribute(
    const Query& q, const std::vector<ReturnedTuple>& returned,
    const RankShrinkOptions& options);

/// Shared split step: given an *overflowing* response to `q` and the active
/// (lowest-index non-exhausted) attribute, pushes the sub-queries of the
/// 2-way or 3-way split onto `frontier` in LIFO order (so the space is swept
/// in ascending value order). Also used by the hybrid crawler for the
/// numeric sub-problems under each categorical point.
void RankShrinkExpand(const Query& q, size_t attr,
                      const std::vector<ReturnedTuple>& returned, uint64_t k,
                      const RankShrinkOptions& options,
                      std::vector<Query>* frontier);

class RankShrinkState : public CrawlState {
 public:
  using CrawlState::CrawlState;
  bool Finished() const override { return frontier.empty(); }
  std::string algorithm() const override { return "rank-shrink"; }
  void EncodeFrontier(std::ostream* out) const override;
  Status DecodeFrontier(CheckpointReader* in) override;

  std::vector<Query> frontier;
};

class RankShrink : public Crawler {
 public:
  explicit RankShrink(RankShrinkOptions options = {});

  std::string name() const override { return "rank-shrink"; }

  /// Requires an all-numeric schema. Domains may be unbounded: split points
  /// are data values from responses, never midpoints.
  Status ValidateSchema(const Schema& schema) const override;

  const RankShrinkOptions& options() const { return options_; }

 protected:
  std::shared_ptr<CrawlState> MakeInitialState(
      HiddenDbServer* server, const CrawlOptions& options) const override;
  void Run(CrawlContext* ctx, CrawlState* state) const override;

 private:
  RankShrinkOptions options_;
};

}  // namespace hdc
