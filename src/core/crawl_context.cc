// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/crawl_context.h"

#include "util/macros.h"

namespace hdc {

CrawlContext::CrawlContext(HiddenDbServer* server, CrawlState* state,
                           const CrawlOptions& options)
    : server_(server), state_(state), options_(options), k_(server->k()) {
  HDC_CHECK(server != nullptr);
  HDC_CHECK(state != nullptr);
  if (!state_->fatal.ok()) stopped_ = true;
}

CrawlContext::Outcome CrawlContext::Issue(const Query& query,
                                          Response* response) {
  HDC_CHECK(response != nullptr);
  if (stopped_) return Outcome::kStop;
  if (run_queries_ >= options_.max_queries) {
    stopped_ = true;
    return Outcome::kStop;
  }
  if (options_.oracle != nullptr &&
      !options_.oracle->MayContainTuples(query)) {
    response->tuples.clear();
    response->overflow = false;
    return Outcome::kPrunedEmpty;
  }

  Status s = server_->Issue(query, response);
  if (!s.ok()) {
    // Quota exhausted, connection dropped, server outage: stop cleanly.
    // The caller re-pushes its work item, so the crawl resumes exactly
    // where it was interrupted (wrap flaky servers in RetryingServer to
    // absorb transient failures instead).
    interrupt_ = std::move(s);
    stopped_ = true;
    return Outcome::kStop;
  }

  ++run_queries_;
  ++state_->queries_issued;
  for (const ReturnedTuple& rt : response->tuples) {
    state_->seen_rows.insert(rt.hidden_id);
  }
  if (options_.record_trace) {
    state_->trace.push_back(TraceEntry{
        state_->queries_issued, response->resolved(),
        static_cast<uint32_t>(response->size()), state_->seen_rows.size(),
        state_->extracted.size()});
  }
  return response->overflow ? Outcome::kOverflow : Outcome::kResolved;
}

void CrawlContext::CollectResponse(const Response& response) {
  HDC_CHECK_MSG(response.resolved(),
                "only resolved responses may be collected");
  for (const ReturnedTuple& rt : response.tuples) {
    state_->extracted.AddUnchecked(rt.tuple);
    if (options_.tuple_sink) options_.tuple_sink(rt.tuple);
  }
  if (options_.record_trace && !state_->trace.empty()) {
    state_->trace.back().tuples_collected = state_->extracted.size();
  }
}

void CrawlContext::CollectFiltered(const std::vector<ReturnedTuple>& bag,
                                   const Query& filter) {
  for (const ReturnedTuple& rt : bag) {
    if (filter.Matches(rt.tuple)) {
      state_->extracted.AddUnchecked(rt.tuple);
      if (options_.tuple_sink) options_.tuple_sink(rt.tuple);
    }
  }
  if (options_.record_trace && !state_->trace.empty()) {
    state_->trace.back().tuples_collected = state_->extracted.size();
  }
}

void CrawlContext::SetFatal(Status status) {
  HDC_CHECK(!status.ok());
  state_->fatal = std::move(status);
  stopped_ = true;
}

}  // namespace hdc
