// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/crawl_context.h"

#include <algorithm>

#include "core/crawl_plan.h"
#include "core/crawl_sink.h"
#include "core/frontier_log.h"
#include "util/clock.h"
#include "util/macros.h"

namespace hdc {

CrawlContext::CrawlContext(HiddenDbServer* server, CrawlState* state,
                           const CrawlOptions& options)
    : server_(server), state_(state), options_(options), k_(server->k()) {
  HDC_CHECK(server != nullptr);
  HDC_CHECK(state != nullptr);
  if (!state_->fatal.ok()) stopped_ = true;
  if (options_.batch_size == 0 && server_->load_hint().latency_feedback) {
    sizer_ = std::make_unique<AdaptiveBatchSizer>(
        options_.adaptive_batch, server_->batch_parallelism());
    clock_ = options_.clock != nullptr ? options_.clock : RealClock::Get();
  }
}

size_t CrawlContext::RoundSize(size_t frontier_width) {
  // Round boundary: the state is self-consistent here (the previous round
  // is fully applied, interrupted work re-pushed), so this is where the
  // write-ahead frontier log commits. The commit precedes the round it
  // enables — a crash between commit and the next one replays to this
  // boundary and re-bills nothing.
  if (options_.frontier_log != nullptr && !stopped_) {
    Status committed = options_.frontier_log->Commit(*state_);
    if (!committed.ok()) {
      interrupt_ = std::move(committed);
      stopped_ = true;
    }
  }
  if (options_.batch_size > 0) return options_.batch_size;
  const size_t cap = sizer_ != nullptr
                         ? sizer_->limit()
                         : std::max(1u, server_->batch_parallelism());
  return std::clamp<size_t>(frontier_width, 1, cap);
}

CrawlContext::Outcome CrawlContext::Issue(const Query& query,
                                          Response* response) {
  HDC_CHECK(response != nullptr);
  if (stopped_) return Outcome::kStop;
  if (run_queries_ >= options_.max_queries) {
    stopped_ = true;
    return Outcome::kStop;
  }
  if ((options_.oracle != nullptr &&
       !options_.oracle->MayContainTuples(query)) ||
      (options_.plan != nullptr &&
       !options_.plan->MayContainTuples(query))) {
    response->tuples.clear();
    response->overflow = false;
    return Outcome::kPrunedEmpty;
  }

  Status s = server_->Issue(query, response);
  if (!s.ok()) {
    // Quota exhausted, connection dropped, server outage: stop cleanly.
    // The caller re-pushes its work item, so the crawl resumes exactly
    // where it was interrupted (wrap flaky servers in RetryingServer to
    // absorb transient failures instead).
    interrupt_ = std::move(s);
    stopped_ = true;
    return Outcome::kStop;
  }

  RecordAnswered(*response);
  return response->overflow ? Outcome::kOverflow : Outcome::kResolved;
}

void CrawlContext::RecordAnswered(const Response& response) {
  ++run_queries_;
  ++state_->queries_issued;
  for (const ReturnedTuple& rt : response.tuples) {
    if (state_->seen_rows.insert(rt.hidden_id).second &&
        options_.frontier_log != nullptr) {
      options_.frontier_log->NoteSeen(rt.hidden_id);
    }
  }
  if (options_.record_trace) {
    state_->trace.push_back(TraceEntry{
        state_->queries_issued, response.resolved(),
        static_cast<uint32_t>(response.size()), state_->seen_rows.size(),
        state_->tuples_collected});
  }
}

std::vector<CrawlContext::Outcome> CrawlContext::IssueBatch(
    const std::vector<Query>& queries, std::vector<Response>* responses) {
  HDC_CHECK(responses != nullptr);
  const size_t n = queries.size();
  std::vector<Outcome> outcomes(n, Outcome::kStop);
  responses->assign(n, Response{});

  // Plan: apply budget and oracle member by member, exactly as sequential
  // Issue() calls would — planned members count against the budget check of
  // every later member, pruned members cost nothing.
  std::vector<size_t> to_issue;
  to_issue.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (stopped_) continue;  // stays kStop
    if (run_queries_ + to_issue.size() >= options_.max_queries) {
      stopped_ = true;
      continue;
    }
    if ((options_.oracle != nullptr &&
         !options_.oracle->MayContainTuples(queries[i])) ||
        (options_.plan != nullptr &&
         !options_.plan->MayContainTuples(queries[i]))) {
      outcomes[i] = Outcome::kPrunedEmpty;
      continue;
    }
    to_issue.push_back(i);
  }
  if (to_issue.empty()) return outcomes;

  // Common case: nothing pruned or refused — forward the caller's vector
  // without copying the queries.
  std::vector<Query> filtered;
  const std::vector<Query>* batch = &queries;
  if (to_issue.size() != n) {
    filtered.reserve(to_issue.size());
    for (size_t i : to_issue) filtered.push_back(queries[i]);
    batch = &filtered;
  }
  std::vector<Response> answered;
  double round_start = 0, politeness_before = 0;
  if (sizer_ != nullptr) {
    round_start = clock_->NowSeconds();
    politeness_before = server_->load_hint().politeness_wait_total_seconds;
  }
  Status s = server_->IssueBatch(*batch, &answered);
  if (sizer_ != nullptr) {
    // Feed the adaptive loop: this wire round's size and round-trip, plus
    // the server's cumulative queue-wait reading after it. The politeness
    // sleep inside the round is a deliberate pacing choice, not transport
    // latency — subtract it so a polite crawl still grows its rounds.
    const ServerLoadHint hint = server_->load_hint();
    const double paced = std::max(
        0.0, hint.politeness_wait_total_seconds - politeness_before);
    const double rtt =
        std::max(0.0, clock_->NowSeconds() - round_start - paced);
    sizer_->RecordRound(batch->size(), rtt, hint);
  }
  HDC_CHECK_MSG(answered.size() <= batch->size(),
                "server answered more members than submitted");
  HDC_CHECK_MSG(s.ok() == (answered.size() == batch->size()),
                "server batch status inconsistent with answered prefix");

  // The answered prefix, in issue order.
  for (size_t j = 0; j < answered.size(); ++j) {
    const size_t i = to_issue[j];
    (*responses)[i] = std::move(answered[j]);
    RecordAnswered((*responses)[i]);
    outcomes[i] = (*responses)[i].overflow ? Outcome::kOverflow
                                           : Outcome::kResolved;
  }
  if (!s.ok()) {
    // Members past the failure stay kStop; the caller re-pushes them.
    interrupt_ = std::move(s);
    stopped_ = true;
  }
  return outcomes;
}

void CrawlContext::Deliver(const Tuple& tuple) {
  // The residual predicate filter (constraints the plan's rectangle could
  // not express) gates confirmation itself, so sink, counter and log all
  // agree on what "collected" means.
  if (options_.plan != nullptr && options_.plan->has_residual() &&
      !options_.plan->Matches(tuple)) {
    return;
  }
  if (options_.materialize) state_->extracted.AddUnchecked(tuple);
  ++state_->tuples_collected;
  if (options_.sink != nullptr) options_.sink->Append(tuple);
  if (options_.frontier_log != nullptr) {
    options_.frontier_log->NoteTuple(tuple);
  }
}

void CrawlContext::CollectResponse(const Response& response) {
  HDC_CHECK_MSG(response.resolved(),
                "only resolved responses may be collected");
  for (const ReturnedTuple& rt : response.tuples) {
    Deliver(rt.tuple);
  }
  if (options_.record_trace && !state_->trace.empty()) {
    state_->trace.back().tuples_collected = state_->tuples_collected;
  }
}

void CrawlContext::CollectFiltered(const std::vector<ReturnedTuple>& bag,
                                   const Query& filter) {
  for (const ReturnedTuple& rt : bag) {
    if (filter.Matches(rt.tuple)) Deliver(rt.tuple);
  }
  if (options_.record_trace && !state_->trace.empty()) {
    state_->trace.back().tuples_collected = state_->tuples_collected;
  }
}

void CrawlContext::SetFatal(Status status) {
  HDC_CHECK(!status.ok());
  state_->fatal = std::move(status);
  stopped_ = true;
}

}  // namespace hdc
