// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/hybrid.h"

#include "core/crawl_plan.h"

namespace hdc {

HybridCrawler::HybridCrawler(HybridOptions options)
    : options_(std::move(options)) {}

Status HybridCrawler::ValidateSchema(const Schema& schema) const {
  (void)schema;  // every combination of attribute kinds is supported
  return Status::OK();
}

std::shared_ptr<CrawlState> HybridCrawler::MakeInitialState(
    HiddenDbServer* server, const CrawlOptions& options) const {
  return MakeSliceEngineState(
      server->schema(), name(), /*eager=*/!options_.lazy,
      options_.categorical_order,
      options.plan != nullptr ? &options.plan->root() : nullptr);
}

void HybridCrawler::Run(CrawlContext* ctx, CrawlState* state) const {
  SliceEngineOptions engine_options;
  engine_options.eager = !options_.lazy;
  engine_options.rank = options_.rank;
  engine_options.order = options_.categorical_order;
  SliceEngineRun(ctx, static_cast<SliceEngineState*>(state), engine_options);
}

}  // namespace hdc
