// Copyright (c) hdc authors. Apache-2.0 license.
#include "net/frame.h"

#include <cstring>

#include "server/answer_cache.h"

namespace hdc {
namespace net {

// --- WireWriter -------------------------------------------------------------

void WireWriter::PutU8(uint8_t v) {
  data_.push_back(static_cast<char>(v));
}

void WireWriter::PutU32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    data_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    data_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void WireWriter::PutI64(int64_t v) {
  PutU64(static_cast<uint64_t>(v));
}

void WireWriter::PutDouble(double v) {
  static_assert(sizeof(double) == sizeof(uint64_t), "IEEE-754 assumed");
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  data_.append(s);
}

// --- WireReader -------------------------------------------------------------

bool WireReader::GetU8(uint8_t* v) {
  if (data_.size() - pos_ < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool WireReader::GetU32(uint32_t* v) {
  if (data_.size() - pos_ < 4) return false;
  uint32_t out = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
           << shift;
  }
  *v = out;
  return true;
}

bool WireReader::GetU64(uint64_t* v) {
  if (data_.size() - pos_ < 8) return false;
  uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
           << shift;
  }
  *v = out;
  return true;
}

bool WireReader::GetI64(int64_t* v) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  *v = static_cast<int64_t>(bits);
  return true;
}

bool WireReader::GetDouble(double* v) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool WireReader::GetString(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  if (data_.size() - pos_ < len) return false;
  s->assign(data_, pos_, len);
  pos_ += len;
  return true;
}

// --- Status on the wire -----------------------------------------------------

bool StatusCodeFromWire(uint8_t wire, Status::Code* out) {
  switch (static_cast<Status::Code>(wire)) {
    case Status::Code::kOk:
    case Status::Code::kInvalidArgument:
    case Status::Code::kNotSupported:
    case Status::Code::kFailedPrecondition:
    case Status::Code::kResourceExhausted:
    case Status::Code::kUnsolvable:
    case Status::Code::kNotFound:
    case Status::Code::kInternal:
    case Status::Code::kUnavailable:
      *out = static_cast<Status::Code>(wire);
      return true;
  }
  return false;
}

Status MakeStatus(Status::Code code, std::string message) {
  switch (code) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(message));
    case Status::Code::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case Status::Code::kUnsolvable:
      return Status::Unsolvable(std::move(message));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(message));
    case Status::Code::kInternal:
      return Status::Internal(std::move(message));
    case Status::Code::kUnavailable:
      return Status::Unavailable(std::move(message));
  }
  return Status::Internal("unknown status code on the wire");
}

namespace {

Status Malformed(const char* what) {
  return Status::Unavailable(std::string("malformed frame: ") + what);
}

}  // namespace

void PutStatus(const Status& status, WireWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(status.code()));
  writer->PutString(status.message());
}

bool GetStatus(WireReader* reader, Status* out) {
  uint8_t wire;
  std::string message;
  Status::Code code;
  if (!reader->GetU8(&wire) || !reader->GetString(&message) ||
      !StatusCodeFromWire(wire, &code)) {
    return false;
  }
  *out = MakeStatus(code, std::move(message));
  return true;
}

// --- handshake --------------------------------------------------------------

std::string EncodeHello(const HelloMessage& msg) {
  WireWriter w;
  w.PutU32(msg.magic);
  w.PutU32(msg.version);
  w.PutU64(msg.max_queries);
  w.PutU32(msg.weight);
  w.PutU32(msg.max_lane_parallelism);
  w.PutString(msg.label);
  return w.Take();
}

Status DecodeHello(const std::string& payload, HelloMessage* out) {
  WireReader r(payload);
  if (!r.GetU32(&out->magic) || !r.GetU32(&out->version) ||
      !r.GetU64(&out->max_queries) || !r.GetU32(&out->weight) ||
      !r.GetU32(&out->max_lane_parallelism) || !r.GetString(&out->label) ||
      !r.AtEnd()) {
    return Malformed("hello");
  }
  if (out->magic != kProtocolMagic) {
    return Status::FailedPrecondition("peer is not speaking hdc wire");
  }
  if (out->version != kProtocolVersion) {
    return Status::FailedPrecondition("unsupported protocol version");
  }
  if (out->weight < 1) {
    return Malformed("hello: weight must be >= 1");
  }
  return Status::OK();
}

std::string EncodeWelcome(const WelcomeMessage& msg) {
  WireWriter w;
  w.PutU64(msg.session_id);
  w.PutU64(msg.k);
  w.PutU32(msg.batch_parallelism);
  w.PutU64(msg.db_version);
  w.PutU32(static_cast<uint32_t>(msg.attributes.size()));
  for (const AttributeSpec& attr : msg.attributes) {
    w.PutU8(attr.is_categorical() ? 1 : 0);
    w.PutU64(attr.domain_size);
    w.PutI64(attr.lo);
    w.PutI64(attr.hi);
    w.PutString(attr.name);
  }
  return w.Take();
}

Status DecodeWelcome(const std::string& payload, WelcomeMessage* out) {
  WireReader r(payload);
  uint32_t num_attrs;
  if (!r.GetU64(&out->session_id) || !r.GetU64(&out->k) ||
      !r.GetU32(&out->batch_parallelism) || !r.GetU64(&out->db_version) ||
      !r.GetU32(&num_attrs)) {
    return Malformed("welcome");
  }
  if (out->k == 0 || out->batch_parallelism == 0 || num_attrs == 0 ||
      num_attrs > 4096) {
    return Malformed("welcome: implausible server parameters");
  }
  out->attributes.clear();
  out->attributes.reserve(num_attrs);
  for (uint32_t i = 0; i < num_attrs; ++i) {
    uint8_t categorical;
    AttributeSpec attr;
    if (!r.GetU8(&categorical) || !r.GetU64(&attr.domain_size) ||
        !r.GetI64(&attr.lo) || !r.GetI64(&attr.hi) ||
        !r.GetString(&attr.name)) {
      return Malformed("welcome attribute");
    }
    attr.kind =
        categorical != 0 ? AttributeKind::kCategorical : AttributeKind::kNumeric;
    if (attr.is_categorical() && attr.domain_size == 0) {
      return Malformed("welcome: empty categorical domain");
    }
    if (attr.is_numeric() && attr.lo > attr.hi) {
      return Malformed("welcome: inverted numeric bounds");
    }
    out->attributes.push_back(std::move(attr));
  }
  if (!r.AtEnd()) return Malformed("welcome: trailing bytes");
  return Status::OK();
}

// --- batches ----------------------------------------------------------------

std::string EncodeQueryBatch(const std::vector<Query>& queries) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(queries.size()));
  for (const Query& q : queries) {
    for (size_t i = 0; i < q.num_attributes(); ++i) {
      w.PutI64(q.lo(i));
      w.PutI64(q.hi(i));
    }
  }
  return w.Take();
}

Status DecodeQueryBatch(const std::string& payload, const SchemaPtr& schema,
                        std::vector<Query>* out) {
  WireReader r(payload);
  uint32_t count;
  if (!r.GetU32(&count)) return Malformed("batch header");
  const size_t d = schema->num_attributes();
  // 16 bytes per extent: reject a count the payload cannot possibly hold
  // before reserving anything.
  if (payload.size() < 4 + static_cast<size_t>(count) * d * 16) {
    return Malformed("batch: count exceeds payload");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t n = 0; n < count; ++n) {
    Query q = Query::FullSpace(schema);
    for (size_t i = 0; i < d; ++i) {
      int64_t lo, hi;
      if (!r.GetI64(&lo) || !r.GetI64(&hi)) return Malformed("query extent");
      if (schema->IsCategorical(i)) {
        const Value domain = static_cast<Value>(schema->domain_size(i));
        if (lo == 1 && hi == domain) continue;  // wildcard
        if (lo != hi || lo < 1 || lo > domain) {
          return Malformed("query: categorical slot neither wildcard "
                           "nor a legal pinned value");
        }
        q = q.WithCategoricalEquals(i, lo);
      } else {
        if (lo > hi) return Malformed("query: empty numeric range");
        // Any non-empty range is legal: numeric bounds are crawler
        // knowledge, not a server contract (Schema::CompatibleWith) — a
        // probe outside the declared extent answers from the actual data,
        // exactly as the in-process servers do (the reference LocalServer
        // conversation in the conformance suite includes such probes).
        q = q.WithNumericRange(i, lo, hi);
      }
    }
    out->push_back(std::move(q));
  }
  if (!r.AtEnd()) return Malformed("batch: trailing bytes");
  return Status::OK();
}

std::string EncodeResponse(const Response& response,
                           const uint64_t* content_hash) {
  WireWriter w;
  w.PutU8(response.overflow ? 1 : 0);
  w.PutU8(content_hash != nullptr ? 1 : 0);
  if (content_hash != nullptr) w.PutU64(*content_hash);
  w.PutU32(static_cast<uint32_t>(response.tuples.size()));
  for (const ReturnedTuple& rt : response.tuples) {
    w.PutU64(rt.hidden_id);
    for (Value v : rt.tuple.values()) w.PutI64(v);
  }
  return w.Take();
}

Status DecodeResponse(const std::string& payload, size_t arity,
                      Response* out, uint64_t* content_hash) {
  WireReader r(payload);
  uint8_t overflow;
  uint8_t has_hash;
  uint64_t wire_hash = 0;
  uint32_t count;
  if (!r.GetU8(&overflow) || !r.GetU8(&has_hash) || has_hash > 1 ||
      (has_hash != 0 && !r.GetU64(&wire_hash)) || !r.GetU32(&count)) {
    return Malformed("response header");
  }
  if (payload.size() < 6 + static_cast<size_t>(count) * (8 + arity * 8)) {
    return Malformed("response: count exceeds payload");
  }
  out->overflow = overflow != 0;
  out->tuples.clear();
  out->tuples.reserve(count);
  for (uint32_t n = 0; n < count; ++n) {
    ReturnedTuple rt;
    if (!r.GetU64(&rt.hidden_id)) return Malformed("tuple id");
    std::vector<Value> values(arity);
    for (size_t i = 0; i < arity; ++i) {
      if (!r.GetI64(&values[i])) return Malformed("tuple value");
    }
    rt.tuple = Tuple(std::move(values));
    out->tuples.push_back(std::move(rt));
  }
  if (!r.AtEnd()) return Malformed("response: trailing bytes");
  if (has_hash != 0 && HashResponse(*out) != wire_hash) {
    // A hash the decoded answer does not reproduce means the frame was
    // corrupted or tampered with in flight; it must never seed a cache.
    return Malformed("response: content hash mismatch");
  }
  if (content_hash != nullptr) *content_hash = wire_hash;
  return Status::OK();
}

std::string EncodeBatchEnd(const BatchEndMessage& msg) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(msg.code));
  w.PutString(msg.message);
  w.PutDouble(msg.queue_wait_total_seconds);
  w.PutU64(msg.db_version);
  return w.Take();
}

Status DecodeBatchEnd(const std::string& payload, BatchEndMessage* out) {
  WireReader r(payload);
  uint8_t wire;
  if (!r.GetU8(&wire) || !r.GetString(&out->message) ||
      !r.GetDouble(&out->queue_wait_total_seconds) ||
      !r.GetU64(&out->db_version) || !r.AtEnd() ||
      !StatusCodeFromWire(wire, &out->code)) {
    return Malformed("batch end");
  }
  return Status::OK();
}

// --- stats / budget ---------------------------------------------------------

std::string EncodeStats(const StatsMessage& msg) {
  WireWriter w;
  w.PutU64(msg.queries_served);
  w.PutU64(msg.tuples_returned);
  w.PutU64(msg.overflow_count);
  w.PutU64(msg.budget_remaining);
  return w.Take();
}

Status DecodeStats(const std::string& payload, StatsMessage* out) {
  WireReader r(payload);
  if (!r.GetU64(&out->queries_served) || !r.GetU64(&out->tuples_returned) ||
      !r.GetU64(&out->overflow_count) || !r.GetU64(&out->budget_remaining) ||
      !r.AtEnd()) {
    return Malformed("stats");
  }
  return Status::OK();
}

std::string EncodeRefill(uint64_t max_queries) {
  WireWriter w;
  w.PutU64(max_queries);
  return w.Take();
}

Status DecodeRefill(const std::string& payload, uint64_t* out) {
  WireReader r(payload);
  if (!r.GetU64(out) || !r.AtEnd()) return Malformed("refill");
  return Status::OK();
}

std::string EncodeAck(const Status& status) {
  WireWriter w;
  PutStatus(status, &w);
  return w.Take();
}

Status DecodeAck(const std::string& payload, Status* out) {
  WireReader r(payload);
  if (!GetStatus(&r, out) || !r.AtEnd()) return Malformed("ack");
  return Status::OK();
}

}  // namespace net
}  // namespace hdc
