// Copyright (c) hdc authors. Apache-2.0 license.
//
// The hdc wire protocol: length-prefixed binary frames carrying the
// HiddenDbServer conversation across a process boundary.
//
// Every frame is
//
//   uint32  payload length (little-endian, excludes this 5-byte header)
//   uint8   frame type (FrameType)
//   bytes   payload
//
// and every scalar inside a payload is fixed-width little-endian (strings
// are u32 length + raw bytes). The conversation:
//
//   client                          server
//   ------                          ------
//   kHello  ------------------->            (magic, version, session opts)
//           <-------------------  kWelcome  (session id, k, parallelism,
//                                            schema)
//   kIssueBatch  -------------->            (n queries, pipelined)
//           <-------------------  kResponse  x m   (answered prefix,
//                                                   streamed in order)
//           <-------------------  kBatchEnd  (status + queue-wait signal)
//   kStatsRequest  ------------>
//           <-------------------  kStatsReply
//   kRefillBudget  ------------>
//           <-------------------  kRefillAck
//
// Responses are *streamed* member by member, so a connection dropped
// mid-batch naturally leaves the client holding a valid answered prefix —
// exactly the IssueBatch partial-failure contract (server/server.h). The
// batch-end frame carries the server's own status (OK, ResourceExhausted
// from the session budget, ...) plus the session lane's cumulative
// queue-wait total, the congestion signal latency-aware batch sizing feeds
// on (core/batch_sizer.h).
//
// Frames cap their payload at kMaxFramePayload; a length prefix beyond the
// cap, a truncated payload, or an undecodable message is a *malformed
// frame* — the receiving side closes the connection (server) or surfaces
// Status::Unavailable (client). Decoding never trusts the peer: every
// read is bounds-checked and every query/value is validated against the
// schema before it reaches an index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/attribute.h"
#include "data/schema.h"
#include "query/query.h"
#include "server/response.h"
#include "util/status.h"

namespace hdc {
namespace net {

/// "HDC" + protocol generation; a peer speaking anything else is refused.
/// v2 piggybacks the server's monotonic db_version on the welcome and on
/// every batch-end frame (so a client-side answer cache can prove cached
/// answers fresh across reconnects) and adds an optional per-answer
/// content hash to response frames (integrity-checked at decode; the
/// cache's conditional-re-ask fingerprint).
inline constexpr uint32_t kProtocolMagic = 0x48444301;
inline constexpr uint32_t kProtocolVersion = 2;

/// Hard cap on one frame's payload. Generous: the largest legitimate frame
/// is a kResponse of k tuples (k ~ 1000, d ~ dozens => a few hundred KB).
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : uint8_t {
  kHello = 1,
  kWelcome = 2,
  kIssueBatch = 3,
  kResponse = 4,
  kBatchEnd = 5,
  kStatsRequest = 6,
  kStatsReply = 7,
  kRefillBudget = 8,
  kRefillAck = 9,
};

/// One decoded frame: type plus raw payload bytes.
struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

// --- raw byte writer/reader -------------------------------------------------

/// Appends fixed-width little-endian scalars to a byte string.
class WireWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  /// u32 length + raw bytes.
  void PutString(const std::string& s);

  const std::string& data() const { return data_; }
  std::string Take() { return std::move(data_); }

 private:
  std::string data_;
};

/// Bounds-checked reader over a payload. Every Get* returns false once the
/// payload is exhausted or a length is implausible; decoding then fails
/// without ever reading out of bounds. The results are [[nodiscard]]: an
/// unchecked Get* is exactly the bug class the reader exists to prevent
/// (Status returns get the same treatment from the class-level attribute
/// on Status itself).
class WireReader {
 public:
  explicit WireReader(const std::string& data) : data_(data) {}

  [[nodiscard]] bool GetU8(uint8_t* v);
  [[nodiscard]] bool GetU32(uint32_t* v);
  [[nodiscard]] bool GetU64(uint64_t* v);
  [[nodiscard]] bool GetI64(int64_t* v);
  [[nodiscard]] bool GetDouble(double* v);
  [[nodiscard]] bool GetString(std::string* s);

  /// True when every byte has been consumed — trailing garbage is malformed.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

// --- messages ---------------------------------------------------------------

/// Client handshake: protocol identity plus the session shape it requests
/// (applied by the endpoint within its configured limits).
struct HelloMessage {
  uint32_t magic = kProtocolMagic;
  uint32_t version = kProtocolVersion;
  uint64_t max_queries = UINT64_MAX;  // kUnlimitedQueries
  uint32_t weight = 1;
  uint32_t max_lane_parallelism = 0;
  std::string label;
};

/// Server handshake reply: everything a client needs to act as a full
/// HiddenDbServer — k, evaluation parallelism, and the schema.
struct WelcomeMessage {
  uint64_t session_id = 0;
  uint64_t k = 0;
  uint32_t batch_parallelism = 1;
  /// The backend's data version at session creation (0 = frozen backend);
  /// see HiddenDbServer::db_version().
  uint64_t db_version = 0;
  std::vector<AttributeSpec> attributes;
};

/// End of one batch: the server-side status of the batch (OK or the first
/// failing member's status) plus the session's cumulative queue-wait total
/// (ServerLoadHint::queue_wait_total_seconds).
struct BatchEndMessage {
  Status::Code code = Status::Code::kOk;
  std::string message;
  double queue_wait_total_seconds = 0;
  /// The backend's data version after the batch — keeps the client's view
  /// current without a dedicated poll round trip.
  uint64_t db_version = 0;
};

/// Server-side per-session accounting, mirrored to the client on request.
struct StatsMessage {
  uint64_t queries_served = 0;
  uint64_t tuples_returned = 0;
  uint64_t overflow_count = 0;
  uint64_t budget_remaining = UINT64_MAX;
};

std::string EncodeHello(const HelloMessage& msg);
Status DecodeHello(const std::string& payload, HelloMessage* out);

std::string EncodeWelcome(const WelcomeMessage& msg);
Status DecodeWelcome(const std::string& payload, WelcomeMessage* out);

std::string EncodeBatchEnd(const BatchEndMessage& msg);
Status DecodeBatchEnd(const std::string& payload, BatchEndMessage* out);

std::string EncodeStats(const StatsMessage& msg);
Status DecodeStats(const std::string& payload, StatsMessage* out);

/// kIssueBatch payload: u32 count, then each query as 2d i64 extents in
/// schema order.
std::string EncodeQueryBatch(const std::vector<Query>& queries);
/// Validates every decoded extent against `schema`: categorical slots must
/// be the full domain or pinned to a legal value (the only forms the Query
/// type can represent), numeric slots any non-empty range — numeric bounds
/// are crawler knowledge, not a server contract (Schema::CompatibleWith),
/// so out-of-extent probes answer from the data like every in-process
/// server.
Status DecodeQueryBatch(const std::string& payload, const SchemaPtr& schema,
                        std::vector<Query>* out);

/// kResponse payload: overflow u8, hash-present u8 (+ u64 content hash
/// when set), u32 tuple count, each tuple as a u64 hidden id plus d i64
/// values. `content_hash` attaches the answer's 64-bit truncated SHA-256
/// (server/answer_cache.h HashResponse); nullptr omits it.
std::string EncodeResponse(const Response& response,
                           const uint64_t* content_hash = nullptr);
/// When the payload carries a content hash, the decoded answer is hashed
/// and verified against it — a mismatch is a malformed frame, so a
/// corrupted or tampered answer never reaches a cache. `content_hash`
/// (optional) receives the verified hash, or 0 when absent.
Status DecodeResponse(const std::string& payload, size_t arity,
                      Response* out, uint64_t* content_hash = nullptr);

/// kRefillBudget payload: u64 allotment. kRefillAck payload: status.
std::string EncodeRefill(uint64_t max_queries);
Status DecodeRefill(const std::string& payload, uint64_t* out);
std::string EncodeAck(const Status& status);
Status DecodeAck(const std::string& payload, Status* out);

/// Lossless Status <-> wire round-trip (code byte + message string).
void PutStatus(const Status& status, WireWriter* writer);
[[nodiscard]] bool GetStatus(WireReader* reader, Status* out);

/// Maps a wire code byte back to Status::Code; false when out of range.
[[nodiscard]] bool StatusCodeFromWire(uint8_t wire, Status::Code* out);

/// Rebuilds a Status from a decoded (code, message) pair.
Status MakeStatus(Status::Code code, std::string message);

}  // namespace net
}  // namespace hdc
