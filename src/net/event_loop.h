// Copyright (c) hdc authors. Apache-2.0 license.
//
// A thin RAII epoll wrapper — the readiness engine under the event-driven
// ServiceEndpoint. One loop multiplexes one listening socket plus
// thousands of nonblocking connections on a single thread; a cheap
// eventfd wake channel lets other threads (dispatch workers finishing a
// batch, Stop()) nudge the loop out of its wait.
//
// This is deliberately not a general-purpose reactor: no timers, no
// callback registry, no ownership of the fds it watches. The endpoint
// owns its connections and interprets readiness itself; the loop only
// answers "which fds can make progress?" without burning a thread per
// connection to find out.
#pragma once

#include <cstdint>
#include <vector>

#include <sys/epoll.h>

#include "util/status.h"

namespace hdc {
namespace net {

/// One epoll instance plus its wake eventfd. Not thread-safe except for
/// Wake(), which any thread may call.
class EventLoop {
 public:
  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wake channel. Must be called
  /// (successfully) before anything else.
  Status Init();

  bool valid() const { return epoll_fd_ >= 0; }

  /// Registers `fd` with an interest set (EPOLLIN / EPOLLOUT / ...);
  /// `data` comes back verbatim in the ready events. Level-triggered —
  /// the endpoint re-arms interest explicitly, which keeps the state
  /// machine simple and unmissable.
  Status Add(int fd, uint32_t events, uint64_t data);
  Status Modify(int fd, uint32_t events, uint64_t data);
  Status Remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) for readiness; fills `out`
  /// with the ready events, wake-channel events already consumed and
  /// filtered out. Returns OK on timeout with an empty `out`.
  Status Wait(int timeout_ms, std::vector<epoll_event>* out);

  /// Makes the current (or next) Wait() return promptly. Callable from
  /// any thread, async-signal-unsafe-free, never blocks.
  void Wake();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::vector<epoll_event> scratch_;
};

}  // namespace net
}  // namespace hdc
