// Copyright (c) hdc authors. Apache-2.0 license.
#include "net/event_loop.h"

#include <cerrno>
#include <cstring>

#include <sys/eventfd.h>
#include <unistd.h>

namespace hdc {
namespace net {

namespace {

/// The wake channel's marker in event data: no real fd ever gets it.
constexpr uint64_t kWakeData = UINT64_MAX;

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

}  // namespace

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  // Nonblocking so a pile of queued wakes drains without stalling the
  // loop; semaphore semantics are unnecessary — one wake is as good as n.
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd");
  return Add(wake_fd_, EPOLLIN, kWakeData);
}

Status EventLoop::Add(int fd, uint32_t events, uint64_t data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = data;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events, uint64_t data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = data;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status EventLoop::Remove(int fd) {
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Status EventLoop::Wait(int timeout_ms, std::vector<epoll_event>* out) {
  out->clear();
  scratch_.resize(256);
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, scratch_.data(),
                     static_cast<int>(scratch_.size()), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("epoll_wait");
  out->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (scratch_[i].data.u64 == kWakeData) {
      uint64_t drained;
      while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
      }
      continue;
    }
    out->push_back(scratch_[i]);
  }
  return Status::OK();
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wake.
  [[maybe_unused]] ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace net
}  // namespace hdc
