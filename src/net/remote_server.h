// Copyright (c) hdc authors. Apache-2.0 license.
//
// RemoteServer — the first out-of-process HiddenDbServer backend. It
// speaks the hdc wire protocol (net/frame.h) to a ServiceEndpoint
// (net/service_endpoint.h) and presents the standard server contract to
// crawlers, so every algorithm, decorator and CrawlContext works against a
// remote database unchanged.
//
//  - *Pipelining.* IssueBatch ships the whole round in one frame and
//    streams the answers back over the same connection: one wire
//    round-trip per round, however many members it carries.
//  - *Typed failure.* Every transport fault — refused or dropped
//    connection, truncated or malformed frame — surfaces as
//    Status::Unavailable with the answered prefix preserved, exactly the
//    IssueBatch partial-failure contract. The crawl framework already
//    treats that as an interruption: the crawler re-pushes unanswered
//    work and stays resumable (or a RetryingServer absorbs it).
//  - *Reconnect & resume.* A failed connection is redialed transparently
//    on the next call; the re-handshake must present the same k and
//    schema (anything else is FailedPrecondition — the remote data
//    changed under the crawl). A reconnect mints a fresh server-side
//    session, so server-side metering restarts; the *crawl* resumes from
//    its own client-side state or checkpoint (core/checkpoint.h).
//  - *Politeness.* An optional PolitenessPolicy paces wire rounds
//    client-side (min inter-round delay + jitter on an injectable Clock);
//    the pacing applies per round, not per member — batching is how a
//    polite crawler still makes progress.
//  - *Latency feedback.* load_hint() reports latency_feedback = true plus
//    the server's piggybacked queue-wait total, which switches adaptive
//    batch sizing (CrawlOptions::batch_size == 0) into its latency-aware
//    mode (core/batch_sizer.h).
//
// Single conversation, like every HiddenDbServer: no concurrent calls on
// one RemoteServer. Distinct RemoteServers (even to one endpoint) are
// independent sessions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "server/politeness.h"
#include "server/server.h"

namespace hdc {
namespace net {

struct RemoteServerOptions {
  /// Server-side session budget this client requests in its handshake
  /// (UINT64_MAX = unlimited, the default).
  uint64_t max_queries = UINT64_MAX;

  /// Requested scheduling lane shape on the remote service (see
  /// SessionOptions in server/crawl_service.h).
  unsigned weight = 1;
  unsigned max_lane_parallelism = 0;

  /// Display label the remote service shows in its metrics.
  std::string label;

  /// Client-side pacing between wire rounds. Defaults pace nothing.
  PolitenessOptions politeness;
};

/// Client half of the remote backend. Create via Connect().
class RemoteServer : public HiddenDbServer {
 public:
  /// Dials host:port and performs the handshake. On success the returned
  /// server is ready to issue queries; its schema()/k() mirror the remote
  /// service.
  static Status Connect(const std::string& host, uint16_t port,
                        const RemoteServerOptions& options,
                        std::unique_ptr<RemoteServer>* out);

  Status Issue(const Query& query, Response* response) override;

  /// One wire round: the batch is pipelined whole, answers stream back in
  /// order. Keeps the prefix contract on every failure mode (see file
  /// header).
  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override;

  uint64_t k() const override { return k_; }
  const SchemaPtr& schema() const override { return schema_; }
  unsigned batch_parallelism() const override { return batch_parallelism_; }
  ServerLoadHint load_hint() const override;

  /// Fetches the server-side session accounting (one extra wire round).
  Status FetchStats(StatsMessage* out);

  /// Refills the server-side session budget (BudgetServer::Refill across
  /// the wire).
  Status RefillBudget(uint64_t max_queries);

  /// Server-side id of the current session (changes on reconnect).
  /// The service's data version as last piggybacked on the welcome or a
  /// batch-end frame — a client-side answer cache's freshness proof, valid
  /// across reconnects (the welcome refreshes it).
  uint64_t db_version() const override { return db_version_; }

  uint64_t session_id() const { return session_id_; }

  /// Successful re-handshakes after the initial connection.
  uint64_t reconnects() const { return reconnects_; }

  /// True when the next call will have to redial first.
  bool disconnected() const { return !socket_.valid(); }

  /// Politeness accounting (rounds paced, total time slept).
  const PolitenessPolicy& politeness() const { return politeness_; }

 private:
  RemoteServer(std::string host, uint16_t port, RemoteServerOptions options);

  /// Dials + handshakes if the connection is down. After the first
  /// handshake, later ones must agree on k and schema.
  Status EnsureConnected();

  /// Marks the connection dead (next call reconnects) and returns
  /// Unavailable built from `s`.
  Status Drop(const Status& s);

  std::string host_;
  uint16_t port_;
  RemoteServerOptions options_;
  PolitenessPolicy politeness_;

  Socket socket_;
  bool ever_connected_ = false;
  uint64_t session_id_ = 0;
  uint64_t db_version_ = 0;
  uint64_t reconnects_ = 0;

  uint64_t k_ = 0;
  unsigned batch_parallelism_ = 1;
  SchemaPtr schema_;

  /// Last queue-wait total piggybacked by the server (see
  /// ServerLoadHint::queue_wait_total_seconds).
  double queue_wait_total_seconds_ = 0;
};

}  // namespace net
}  // namespace hdc
