// Copyright (c) hdc authors. Apache-2.0 license.
#include "net/service_endpoint.h"

#include <utility>

#include "util/macros.h"

namespace hdc {
namespace net {

ServiceEndpoint::ServiceEndpoint(CrawlService* service,
                                 ServiceEndpointOptions options)
    : service_(service), options_(std::move(options)) {
  HDC_CHECK(service != nullptr);
}

ServiceEndpoint::~ServiceEndpoint() { Stop(); }

Status ServiceEndpoint::Start() {
  HDC_CHECK_MSG(!running_, "endpoint already started");
  Status s = Listener::Listen(options_.host, options_.port, &listener_);
  if (!s.ok()) return s;
  running_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ServiceEndpoint::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the acceptor first so no new connection threads appear while we
  // join the existing ones.
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& [id, socket] : live_connections_) socket->Shutdown();
  }
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    to_join.reserve(connection_threads_.size());
    for (auto& [id, thread] : connection_threads_) {
      to_join.push_back(std::move(thread));
    }
    connection_threads_.clear();
    finished_.clear();
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  listener_.Close();
}

void ServiceEndpoint::ReapFinishedConnections() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    to_join.reserve(finished_.size());
    for (uint64_t id : finished_) {
      auto it = connection_threads_.find(id);
      if (it == connection_threads_.end()) continue;
      to_join.push_back(std::move(it->second));
      connection_threads_.erase(it);
    }
    finished_.clear();
  }
  // Join outside the lock: the thread's final instructions finish in
  // nanoseconds (it announced completion as its last locked action).
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
}

void ServiceEndpoint::AcceptLoop() {
  while (running_) {
    Socket socket;
    Status s = listener_.Accept(&socket);
    if (!s.ok()) return;  // listener shut down (or hard failure): exit
    ++connections_accepted_;
    // Reap exited connection threads so a long-running endpoint never
    // accumulates dead thread handles.
    ReapFinishedConnections();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    const uint64_t id = next_connection_id_++;
    connection_threads_.emplace(
        id, std::thread([this, id, sock = std::move(socket)]() mutable {
          // Register before the first read, deregister before the socket
          // dies: Stop() can always sever a blocked connection and never
          // touches a reused fd.
          {
            std::lock_guard<std::mutex> reg(connections_mutex_);
            live_connections_.emplace(id, &sock);
          }
          if (running_) ServeConnection(id, &sock);
          std::lock_guard<std::mutex> dereg(connections_mutex_);
          live_connections_.erase(id);
          finished_.push_back(id);
        }));
  }
}

void ServiceEndpoint::ServeConnection(uint64_t connection_id,
                                      Socket* socket) {
  // Handshake: the very first frame must be a well-formed hello.
  Frame frame;
  HelloMessage hello;
  if (!RecvFrame(socket, &frame).ok() || frame.type != FrameType::kHello ||
      !DecodeHello(frame.payload, &hello).ok()) {
    return;  // not our protocol: close without a session
  }

  SessionOptions session_options;
  session_options.max_queries = hello.max_queries;
  session_options.weight = hello.weight;
  session_options.max_lane_parallelism = hello.max_lane_parallelism;
  session_options.label = hello.label.empty()
                              ? "remote-" + std::to_string(connection_id)
                              : hello.label;
  std::unique_ptr<ServerSession> session =
      service_->CreateSession(std::move(session_options));

  WelcomeMessage welcome;
  welcome.session_id = session->id();
  welcome.k = session->k();
  welcome.batch_parallelism = session->batch_parallelism();
  const SchemaPtr& schema = session->schema();
  welcome.attributes.reserve(schema->num_attributes());
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    welcome.attributes.push_back(schema->attribute(i));
  }
  if (!SendFrame(socket, FrameType::kWelcome, EncodeWelcome(welcome))
           .ok()) {
    return;
  }

  uint64_t responses_sent = 0;
  while (running_ &&
         HandleFrame(socket, session.get(), hello.max_queries,
                     &responses_sent)) {
  }
}

bool ServiceEndpoint::HandleFrame(Socket* socket, ServerSession* session,
                                  uint64_t session_budget,
                                  uint64_t* responses_sent) {
  Frame frame;
  if (!RecvFrame(socket, &frame).ok()) return false;  // client gone

  switch (frame.type) {
    case FrameType::kIssueBatch: {
      std::vector<Query> queries;
      if (!DecodeQueryBatch(frame.payload, session->schema(), &queries)
               .ok()) {
        return false;  // malformed batch: sever, never evaluate
      }
      std::vector<Response> responses;
      Status batch_status = session->IssueBatch(queries, &responses);
      for (const Response& response : responses) {
        if (options_.drop_connection_after_responses > 0 &&
            *responses_sent >= options_.drop_connection_after_responses) {
          // Injected fault: sever mid-batch, leaving the client a valid
          // answered prefix.
          socket->Shutdown();
          return false;
        }
        if (!SendFrame(socket, FrameType::kResponse,
                       EncodeResponse(response))
                 .ok()) {
          return false;
        }
        ++*responses_sent;
      }
      BatchEndMessage end;
      end.code = batch_status.code();
      end.message = batch_status.message();
      end.queue_wait_total_seconds =
          session->load_hint().queue_wait_total_seconds;
      return SendFrame(socket, FrameType::kBatchEnd, EncodeBatchEnd(end))
          .ok();
    }

    case FrameType::kStatsRequest: {
      StatsMessage stats;
      stats.queries_served = session->queries_served();
      stats.tuples_returned = session->tuples_returned();
      stats.overflow_count = session->overflow_count();
      stats.budget_remaining = session->budget_remaining();
      return SendFrame(socket, FrameType::kStatsReply, EncodeStats(stats))
          .ok();
    }

    case FrameType::kRefillBudget: {
      uint64_t max_queries;
      if (!DecodeRefill(frame.payload, &max_queries).ok()) return false;
      Status ack = Status::OK();
      if (session_budget == kUnlimitedQueries) {
        ack = Status::FailedPrecondition(
            "session was created without a budget");
      } else {
        session->RefillBudget(max_queries);
      }
      return SendFrame(socket, FrameType::kRefillAck, EncodeAck(ack)).ok();
    }

    default:
      return false;  // protocol violation: sever
  }
}

}  // namespace net
}  // namespace hdc
