// Copyright (c) hdc authors. Apache-2.0 license.
#include "net/service_endpoint.h"

#include <cstring>
#include <utility>

#include "server/answer_cache.h"
#include "server/metrics_text.h"
#include "util/macros.h"

namespace hdc {
namespace net {

namespace {

/// Epoll event data for the listening socket; connections use their id.
/// (The loop's own wake channel claims UINT64_MAX.)
constexpr uint64_t kListenerData = UINT64_MAX - 1;

/// Stop reading while a connection's unparsed input exceeds this — a
/// peer pumping frames faster than its requests complete buffers at most
/// one oversized frame beyond the cap, not unbounded memory.
constexpr size_t kInbufSoftCap = 2 * (static_cast<size_t>(kMaxFramePayload) + 5);

/// Serializes one frame (header + payload) onto `out`.
void AppendFrame(std::string* out, FrameType type,
                 const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((len >> shift) & 0xff));
  }
  out->push_back(static_cast<char>(type));
  out->append(payload);
}

std::string HttpResponse(const char* status_line, const std::string& body) {
  std::string out;
  out.reserve(128 + body.size());
  out.append("HTTP/1.0 ");
  out.append(status_line);
  out.append("\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8");
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(body.size()));
  out.append("\r\nConnection: close\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace

ServiceEndpoint::ServiceEndpoint(CrawlService* service,
                                 ServiceEndpointOptions options)
    : service_(service), options_(std::move(options)) {
  HDC_CHECK(service != nullptr);
}

ServiceEndpoint::~ServiceEndpoint() { Stop(); }

Status ServiceEndpoint::Start() {
  HDC_CHECK_MSG(!running_, "endpoint already started");
  Status s = loop_.Init();
  if (!s.ok()) return s;
  s = Listener::Listen(options_.host, options_.port, &listener_);
  if (!s.ok()) return s;
  s = listener_.SetNonBlocking(true);
  if (!s.ok()) return s;
  s = loop_.Add(listener_.fd(), EPOLLIN, kListenerData);
  if (!s.ok()) return s;

  running_ = true;
  queue_stopped_ = false;
  const unsigned dispatchers = std::max(1u, options_.dispatch_threads);
  dispatchers_.reserve(dispatchers);
  for (unsigned i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void ServiceEndpoint::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the IO thread out of epoll_wait; it exits its loop on the next
  // iteration. No new connections or dispatches appear after that.
  listener_.Shutdown();
  loop_.Wake();
  if (io_thread_.joinable()) io_thread_.join();
  {
    MutexLock lock(&queue_mutex_);
    queue_stopped_ = true;
    queue_.clear();  // undispatched requests die with their connections
  }
  queue_cv_.NotifyAll();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  // Single-threaded from here: destroying a connection closes its socket
  // and retires its session.
  connections_.clear();
  completed_.clear();
  listener_.Close();
}

void ServiceEndpoint::DispatchLoop() {
  while (true) {
    std::pair<Connection*, Frame> job;
    {
      MutexLock lock(&queue_mutex_);
      while (!queue_stopped_ && queue_.empty()) queue_cv_.Wait(&queue_mutex_);
      if (queue_stopped_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    ExecuteRequest(job.first, std::move(job.second));
  }
}

void ServiceEndpoint::IoLoop() {
  std::vector<epoll_event> events;
  while (running_) {
    if (!loop_.Wait(-1, &events).ok()) return;

    // Finished requests first: clear busy flags (possibly re-enabling
    // parse/dispatch of pipelined input) before handling new readiness.
    std::vector<uint64_t> done;
    {
      MutexLock lock(&queue_mutex_);
      done.swap(completed_);
    }
    for (uint64_t id : done) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      conn->busy = false;
      if (conn->defunct) {
        DestroyConnection(conn);
        continue;
      }
      WriteReady(conn);
      if (connections_.find(id) == connections_.end()) continue;
      while (!conn->busy && ConsumeInput(conn)) {
      }
      if (connections_.find(id) != connections_.end()) {
        UpdateInterest(conn);
      }
    }

    for (const epoll_event& ev : events) {
      if (!running_) break;
      if (ev.data.u64 == kListenerData) {
        AcceptReady();
        continue;
      }
      // The connection may have died while we processed earlier events
      // of this same batch — resolve through the registry, never trust
      // the stale pointerless id.
      auto it = connections_.find(ev.data.u64);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if (ev.events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        ReadReady(conn);
        if (connections_.find(ev.data.u64) == connections_.end()) continue;
      }
      if (ev.events & EPOLLOUT) {
        WriteReady(conn);
      }
    }
  }
}

void ServiceEndpoint::AcceptReady() {
  while (running_) {
    Socket socket;
    bool accepted = false;
    Status s = listener_.TryAccept(&socket, &accepted);
    if (!s.ok() || !accepted) return;
    if (!socket.SetNonBlocking(true).ok()) continue;  // drop this one
    ++connections_accepted_;
    auto conn = std::make_unique<Connection>();
    conn->id = next_connection_id_++;
    conn->socket = std::move(socket);
    conn->interest = EPOLLIN;
    if (!loop_.Add(conn->socket.fd(), EPOLLIN, conn->id).ok()) continue;
    connections_.emplace(conn->id, std::move(conn));
  }
}

void ServiceEndpoint::ReadReady(Connection* conn) {
  const uint64_t id = conn->id;
  char buf[16384];
  while (true) {
    size_t got = 0;
    Status s = conn->socket.RecvSome(buf, sizeof(buf), &got);
    if (!s.ok()) {
      // Peer gone (EOF or reset). A busy connection cannot be torn down
      // under its in-flight request; mark it and let completion reap it.
      if (conn->busy) {
        conn->defunct = true;
      } else {
        DestroyConnection(conn);
      }
      return;
    }
    if (got == 0) break;  // drained: would block
    conn->inbuf.append(buf, got);
    if (conn->inbuf.size() >= kInbufSoftCap) break;
  }
  while (!conn->busy && ConsumeInput(conn)) {
  }
  if (connections_.find(id) != connections_.end()) {
    WriteReady(conn);
  }
}

bool ServiceEndpoint::ConsumeInput(Connection* conn) {
  // Order matters: while busy a dispatch worker may be writing the
  // close_after_flush flag, so busy must short-circuit first.
  if (conn->busy || conn->defunct) return false;
  {
    MutexLock lock(&conn->out_mutex);
    if (conn->close_after_flush) return false;
  }

  if (!conn->saw_hello && !conn->is_http && conn->inbuf.size() >= 4 &&
      std::memcmp(conn->inbuf.data(), "GET ", 4) == 0) {
    // Plain HTTP, not the frame protocol (a frame header reading "GET "
    // would declare a payload far beyond kMaxFramePayload). One request,
    // one response, close.
    conn->is_http = true;
  }
  if (conn->is_http) {
    if (conn->inbuf.find("\r\n\r\n") != std::string::npos) {
      HandleHttp(conn);
    }
    return false;
  }

  if (conn->inbuf.size() < 5) return false;
  uint32_t len = 0;
  for (int shift = 0, i = 0; shift < 32; shift += 8, ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(conn->inbuf[i]))
           << shift;
  }
  if (len > kMaxFramePayload) {
    // Malformed length prefix: sever, never allocate the claimed size.
    MutexLock lock(&conn->out_mutex);
    conn->close_after_flush = true;
    return false;
  }
  if (conn->inbuf.size() < size_t{5} + len) return false;

  Frame frame;
  frame.type = static_cast<FrameType>(conn->inbuf[4]);
  frame.payload.assign(conn->inbuf, 5, len);
  conn->inbuf.erase(0, size_t{5} + len);

  if (!conn->saw_hello) {
    conn->saw_hello = true;
    if (!HandleHello(conn, frame)) {
      MutexLock lock(&conn->out_mutex);
      conn->close_after_flush = true;
      return false;
    }
    return true;
  }

  conn->busy = true;
  {
    MutexLock lock(&queue_mutex_);
    queue_.emplace_back(conn, std::move(frame));
  }
  queue_cv_.NotifyOne();
  return true;  // the busy flag stops the caller's loop
}

bool ServiceEndpoint::HandleHello(Connection* conn, const Frame& frame) {
  HelloMessage hello;
  if (frame.type != FrameType::kHello ||
      !DecodeHello(frame.payload, &hello).ok()) {
    return false;  // not our protocol: close without a session
  }

  SessionOptions session_options;
  session_options.max_queries = hello.max_queries;
  session_options.weight = hello.weight;
  session_options.max_lane_parallelism = hello.max_lane_parallelism;
  session_options.label = hello.label.empty()
                              ? "remote-" + std::to_string(conn->id)
                              : hello.label;
  conn->session = service_->CreateSession(std::move(session_options));
  conn->session_budget = hello.max_queries;

  WelcomeMessage welcome;
  welcome.session_id = conn->session->id();
  welcome.k = conn->session->k();
  welcome.batch_parallelism = conn->session->batch_parallelism();
  welcome.db_version = conn->session->db_version();
  const SchemaPtr& schema = conn->session->schema();
  welcome.attributes.reserve(schema->num_attributes());
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    welcome.attributes.push_back(schema->attribute(i));
  }
  std::string out;
  AppendFrame(&out, FrameType::kWelcome, EncodeWelcome(welcome));
  QueueOutput(conn, out);
  return true;
}

void ServiceEndpoint::HandleHttp(Connection* conn) {
  // Request line: "GET <path> HTTP/1.x". Only the path matters.
  const size_t line_end = conn->inbuf.find("\r\n");
  const std::string line = conn->inbuf.substr(0, line_end);
  const size_t path_start = 4;  // after "GET "
  const size_t path_end = line.find(' ', path_start);
  const std::string path =
      path_end == std::string::npos
          ? line.substr(path_start)
          : line.substr(path_start, path_end - path_start);

  std::string response;
  if (path == "/metrics") {
    response = HttpResponse(
        "200 OK", FormatPrometheusMetrics(service_->MetricsSnapshot()));
  } else {
    response = HttpResponse("404 Not Found", "not found\n");
  }
  QueueOutput(conn, response);
  MutexLock lock(&conn->out_mutex);
  conn->close_after_flush = true;
}

void ServiceEndpoint::ExecuteRequest(Connection* conn, Frame frame) {
  ServerSession* session = conn->session.get();
  std::string out;
  bool sever = false;

  switch (frame.type) {
    case FrameType::kIssueBatch: {
      std::vector<Query> queries;
      if (!DecodeQueryBatch(frame.payload, session->schema(), &queries)
               .ok()) {
        sever = true;  // malformed batch: sever, never evaluate
        break;
      }
      std::vector<Response> responses;
      Status batch_status = session->IssueBatch(queries, &responses);
      for (const Response& response : responses) {
        if (options_.drop_connection_after_responses > 0 &&
            conn->responses_sent >=
                options_.drop_connection_after_responses) {
          // Injected fault: sever mid-batch, leaving the client a valid
          // answered prefix.
          sever = true;
          break;
        }
        if (options_.attach_content_hashes) {
          const uint64_t hash = HashResponse(response);
          AppendFrame(&out, FrameType::kResponse,
                      EncodeResponse(response, &hash));
        } else {
          AppendFrame(&out, FrameType::kResponse, EncodeResponse(response));
        }
        ++conn->responses_sent;
      }
      if (!sever) {
        BatchEndMessage end;
        end.code = batch_status.code();
        end.message = batch_status.message();
        end.queue_wait_total_seconds =
            session->load_hint().queue_wait_total_seconds;
        end.db_version = session->db_version();
        AppendFrame(&out, FrameType::kBatchEnd, EncodeBatchEnd(end));
      }
      break;
    }

    case FrameType::kStatsRequest: {
      StatsMessage stats;
      stats.queries_served = session->queries_served();
      stats.tuples_returned = session->tuples_returned();
      stats.overflow_count = session->overflow_count();
      stats.budget_remaining = session->budget_remaining();
      AppendFrame(&out, FrameType::kStatsReply, EncodeStats(stats));
      break;
    }

    case FrameType::kRefillBudget: {
      uint64_t max_queries;
      if (!DecodeRefill(frame.payload, &max_queries).ok()) {
        sever = true;
        break;
      }
      Status ack = Status::OK();
      if (conn->session_budget == kUnlimitedQueries) {
        ack = Status::FailedPrecondition(
            "session was created without a budget");
      } else {
        session->RefillBudget(max_queries);
      }
      AppendFrame(&out, FrameType::kRefillAck, EncodeAck(ack));
      break;
    }

    default:
      sever = true;  // protocol violation
      break;
  }

  {
    MutexLock lock(&conn->out_mutex);
    conn->outbuf.append(out);
    if (sever) conn->close_after_flush = true;
  }
  {
    MutexLock lock(&queue_mutex_);
    completed_.push_back(conn->id);
  }
  loop_.Wake();
}

void ServiceEndpoint::QueueOutput(Connection* conn,
                                  const std::string& bytes) {
  MutexLock lock(&conn->out_mutex);
  conn->outbuf.append(bytes);
}

void ServiceEndpoint::WriteReady(Connection* conn) {
  bool close_now = false;
  {
    MutexLock lock(&conn->out_mutex);
    while (conn->out_flushed < conn->outbuf.size()) {
      size_t sent = 0;
      Status s = conn->socket.SendSome(
          conn->outbuf.data() + conn->out_flushed,
          conn->outbuf.size() - conn->out_flushed, &sent);
      if (!s.ok()) {
        // Peer gone mid-flush: nothing left to deliver.
        conn->outbuf.clear();
        conn->out_flushed = 0;
        conn->close_after_flush = true;
        break;
      }
      if (sent == 0) break;  // kernel buffer full: wait for EPOLLOUT
      conn->out_flushed += sent;
    }
    if (conn->out_flushed == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->out_flushed = 0;
      close_now = conn->close_after_flush;
    }
  }
  if (close_now) {
    if (conn->busy) {
      conn->defunct = true;
    } else {
      DestroyConnection(conn);
    }
    return;
  }
  UpdateInterest(conn);
}

void ServiceEndpoint::UpdateInterest(Connection* conn) {
  bool pending_output;
  {
    MutexLock lock(&conn->out_mutex);
    pending_output = conn->out_flushed < conn->outbuf.size();
  }
  uint32_t wanted = 0;
  // Backpressure: a soft-capped input buffer pauses reads until the
  // in-flight request drains it.
  if (conn->inbuf.size() < kInbufSoftCap) wanted |= EPOLLIN;
  if (pending_output) wanted |= EPOLLOUT;
  if (wanted == conn->interest) return;
  if (loop_.Modify(conn->socket.fd(), wanted, conn->id).ok()) {
    conn->interest = wanted;
  }
}

void ServiceEndpoint::DestroyConnection(Connection* conn) {
  (void)loop_.Remove(conn->socket.fd());  // best effort; fd closes either way
  connections_.erase(conn->id);
}

}  // namespace net
}  // namespace hdc
