// Copyright (c) hdc authors. Apache-2.0 license.
//
// Minimal blocking TCP wrappers (POSIX, IPv4) for the hdc wire protocol:
// a connected Socket with send-all/recv-all semantics, a Listener bound to
// a loopback (or any) address, and frame I/O on top (net/frame.h).
//
// Error model: every transport-level failure — refused connection, peer
// reset, EOF mid-frame, oversized length prefix — comes back as
// Status::Unavailable, the typed error RemoteServer surfaces and
// RetryingServer treats as transient. Nothing here throws or aborts on
// peer behaviour.
//
// Shutdown semantics: Shutdown() (SHUT_RDWR) may be called from another
// thread while this thread blocks in send/recv — the blocked call then
// fails with Unavailable. Close() must only be called by the owning
// thread once no other thread can touch the socket; this is how the
// endpoint's Stop() unblocks its connection threads without racing fd
// reuse.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/frame.h"
#include "util/status.h"

namespace hdc {
namespace net {

/// A connected stream socket. Movable, not copyable; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Dials host:port (IPv4 dotted quad or "localhost").
  static Status Connect(const std::string& host, uint16_t port, Socket* out);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all n bytes or fails (SIGPIPE suppressed).
  Status SendAll(const void* data, size_t n);

  /// Reads exactly n bytes; a clean peer close mid-read is Unavailable.
  Status RecvAll(void* data, size_t n);

  /// Flips O_NONBLOCK. The event-driven endpoint runs every connection
  /// nonblocking; RemoteServer's dialed sockets stay blocking.
  Status SetNonBlocking(bool nonblocking);

  /// Nonblocking read: fills at most `cap` bytes, reports the count in
  /// `*got`. OK with *got == 0 means "would block, try after readiness";
  /// a peer close is Unavailable("connection closed") like RecvAll.
  Status RecvSome(void* data, size_t cap, size_t* got);

  /// Nonblocking write: sends at most `n` bytes, reports the count in
  /// `*sent` (0 when the kernel buffer is full — wait for writability).
  Status SendSome(const void* data, size_t n, size_t* sent);

  /// Half-duplex teardown, safe cross-thread (see file header).
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket. SO_REUSEADDR is always set, so an endpoint can be
/// restarted on the port a previous instance just vacated (the server
/// restart path).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    shutdown_.store(other.shutdown_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    other.fd_ = -1;
    other.port_ = 0;
  }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      shutdown_.store(other.shutdown_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      other.fd_ = -1;
      other.port_ = 0;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on host:port; port 0 picks an ephemeral port,
  /// readable from port() afterwards.
  static Status Listen(const std::string& host, uint16_t port,
                       Listener* out);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

  /// Blocks for one connection. Once Shutdown() has been called, fails
  /// with the typed closed status — Unavailable and message
  /// "listener shut down" — regardless of *how* the kernel surfaced the
  /// wakeup. (Platforms disagree here: a shutdown() on a listening socket
  /// may fail the pending accept with EINVAL, deliver ECONNABORTED, or
  /// even hand back a dead connection first. Callers match the typed
  /// status, never errno text, to tell an orderly stop from a fault.)
  Status Accept(Socket* out);

  /// True once Shutdown() has been called.
  bool is_shut_down() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Flips O_NONBLOCK on the listening fd (for event-loop accept).
  Status SetNonBlocking(bool nonblocking);

  /// Nonblocking accept: *accepted = false with OK means no connection is
  /// pending. The typed shutdown status applies exactly as in Accept().
  Status TryAccept(Socket* out, bool* accepted);

  /// Wakes a blocked Accept() from another thread.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> shutdown_{false};
};

/// The stable message Listener's typed closed status carries. Accept loops
/// match `status.message() == kListenerShutDownMessage` (or call
/// is_shut_down()) to distinguish an orderly stop from a transport fault.
inline constexpr const char* kListenerShutDownMessage = "listener shut down";

/// Writes one frame: u32 payload length, u8 type, payload bytes.
Status SendFrame(Socket* socket, FrameType type, const std::string& payload);

/// Reads one frame, enforcing kMaxFramePayload. EOF exactly on a frame
/// boundary is reported as Unavailable with message "connection closed" —
/// callers that treat a clean close as end-of-conversation match on that.
Status RecvFrame(Socket* socket, Frame* out);

}  // namespace net
}  // namespace hdc
