// Copyright (c) hdc authors. Apache-2.0 license.
//
// Minimal blocking TCP wrappers (POSIX, IPv4) for the hdc wire protocol:
// a connected Socket with send-all/recv-all semantics, a Listener bound to
// a loopback (or any) address, and frame I/O on top (net/frame.h).
//
// Error model: every transport-level failure — refused connection, peer
// reset, EOF mid-frame, oversized length prefix — comes back as
// Status::Unavailable, the typed error RemoteServer surfaces and
// RetryingServer treats as transient. Nothing here throws or aborts on
// peer behaviour.
//
// Shutdown semantics: Shutdown() (SHUT_RDWR) may be called from another
// thread while this thread blocks in send/recv — the blocked call then
// fails with Unavailable. Close() must only be called by the owning
// thread once no other thread can touch the socket; this is how the
// endpoint's Stop() unblocks its connection threads without racing fd
// reuse.
#pragma once

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "util/status.h"

namespace hdc {
namespace net {

/// A connected stream socket. Movable, not copyable; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Dials host:port (IPv4 dotted quad or "localhost").
  static Status Connect(const std::string& host, uint16_t port, Socket* out);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all n bytes or fails (SIGPIPE suppressed).
  Status SendAll(const void* data, size_t n);

  /// Reads exactly n bytes; a clean peer close mid-read is Unavailable.
  Status RecvAll(void* data, size_t n);

  /// Half-duplex teardown, safe cross-thread (see file header).
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket. SO_REUSEADDR is always set, so an endpoint can be
/// restarted on the port a previous instance just vacated (the server
/// restart path).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
    other.port_ = 0;
  }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
      other.port_ = 0;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on host:port; port 0 picks an ephemeral port,
  /// readable from port() afterwards.
  static Status Listen(const std::string& host, uint16_t port,
                       Listener* out);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Blocks for one connection. Fails with Unavailable once Shutdown()
  /// has been called (the accept loop's exit signal).
  Status Accept(Socket* out);

  /// Wakes a blocked Accept() from another thread.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Writes one frame: u32 payload length, u8 type, payload bytes.
Status SendFrame(Socket* socket, FrameType type, const std::string& payload);

/// Reads one frame, enforcing kMaxFramePayload. EOF exactly on a frame
/// boundary is reported as Unavailable with message "connection closed" —
/// callers that treat a clean close as end-of-conversation match on that.
Status RecvFrame(Socket* socket, Frame* out);

}  // namespace net
}  // namespace hdc
