// Copyright (c) hdc authors. Apache-2.0 license.
#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hdc {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Status ResolveLoopbackish(const std::string& host, in_addr* out) {
  const std::string effective = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, effective.c_str(), out) != 1) {
    return Status::InvalidArgument("unparseable IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

// --- Socket -----------------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::Connect(const std::string& host, uint16_t port, Socket* out) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  Status s = ResolveLoopbackish(host, &addr.sin_addr);
  if (!s.ok()) return s;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket connecting(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  // The protocol is request/response with small frames: latency matters
  // more than segment coalescing.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(connecting);
  return Status::OK();
}

Status Socket::SendAll(const void* data, size_t n) {
  if (fd_ < 0) return Status::Unavailable("send on closed socket");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    if (sent == 0) return Status::Unavailable("send: connection closed");
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t n) {
  if (fd_ < 0) return Status::Unavailable("recv on closed socket");
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) return Status::Unavailable("connection closed");
    p += got;
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- Listener ---------------------------------------------------------------

Status Listener::Listen(const std::string& host, uint16_t port,
                        Listener* out) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  Status s = ResolveLoopbackish(host, &addr.sin_addr);
  if (!s.ok()) return s;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Listener listener;
  listener.fd_ = fd;

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, /*backlog=*/16) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  *out = std::move(listener);
  return Status::OK();
}

Status Listener::Accept(Socket* out) {
  if (fd_ < 0) return Status::Unavailable("accept on closed listener");
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = Socket(fd);
      return Status::OK();
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void Listener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- frames -----------------------------------------------------------------

Status SendFrame(Socket* socket, FrameType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds protocol cap");
  }
  // One contiguous send: header (5 bytes) + payload.
  std::string wire;
  wire.reserve(5 + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    wire.push_back(static_cast<char>((len >> shift) & 0xff));
  }
  wire.push_back(static_cast<char>(type));
  wire.append(payload);
  return socket->SendAll(wire.data(), wire.size());
}

Status RecvFrame(Socket* socket, Frame* out) {
  uint8_t header[5];
  Status s = socket->RecvAll(header, sizeof(header));
  if (!s.ok()) return s;
  uint32_t len = 0;
  for (int shift = 0, i = 0; shift < 32; shift += 8, ++i) {
    len |= static_cast<uint32_t>(header[i]) << shift;
  }
  if (len > kMaxFramePayload) {
    return Status::Unavailable("malformed frame: length prefix beyond cap");
  }
  out->type = static_cast<FrameType>(header[4]);
  out->payload.resize(len);
  if (len > 0) {
    s = socket->RecvAll(&out->payload[0], len);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace net
}  // namespace hdc
