// Copyright (c) hdc authors. Apache-2.0 license.
#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hdc {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Status ResolveLoopbackish(const std::string& host, in_addr* out) {
  const std::string effective = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, effective.c_str(), out) != 1) {
    return Status::InvalidArgument("unparseable IPv4 address: " + host);
  }
  return Status::OK();
}

Status SetFdNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int wanted =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

}  // namespace

// --- Socket -----------------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::Connect(const std::string& host, uint16_t port, Socket* out) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  Status s = ResolveLoopbackish(host, &addr.sin_addr);
  if (!s.ok()) return s;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket connecting(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  // The protocol is request/response with small frames: latency matters
  // more than segment coalescing.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(connecting);
  return Status::OK();
}

Status Socket::SendAll(const void* data, size_t n) {
  if (fd_ < 0) return Status::Unavailable("send on closed socket");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    if (sent == 0) return Status::Unavailable("send: connection closed");
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t n) {
  if (fd_ < 0) return Status::Unavailable("recv on closed socket");
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) return Status::Unavailable("connection closed");
    p += got;
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}

Status Socket::SetNonBlocking(bool nonblocking) {
  if (fd_ < 0) return Status::Unavailable("fcntl on closed socket");
  return SetFdNonBlocking(fd_, nonblocking);
}

Status Socket::RecvSome(void* data, size_t cap, size_t* got) {
  *got = 0;
  if (fd_ < 0) return Status::Unavailable("recv on closed socket");
  while (true) {
    const ssize_t n = ::recv(fd_, data, cap, 0);
    if (n > 0) {
      *got = static_cast<size_t>(n);
      return Status::OK();
    }
    if (n == 0) return Status::Unavailable("connection closed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    return Errno("recv");
  }
}

Status Socket::SendSome(const void* data, size_t n, size_t* sent) {
  *sent = 0;
  if (fd_ < 0) return Status::Unavailable("send on closed socket");
  while (true) {
    const ssize_t wrote = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (wrote >= 0) {
      *sent = static_cast<size_t>(wrote);
      return Status::OK();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    return Errno("send");
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- Listener ---------------------------------------------------------------

Status Listener::Listen(const std::string& host, uint16_t port,
                        Listener* out) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  Status s = ResolveLoopbackish(host, &addr.sin_addr);
  if (!s.ok()) return s;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Listener listener;
  listener.fd_ = fd;

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, /*backlog=*/16) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  *out = std::move(listener);
  return Status::OK();
}

Status Listener::Accept(Socket* out) {
  if (fd_ < 0) return Status::Unavailable("accept on closed listener");
  while (true) {
    // The shutdown flag is checked both before and after accept(): a
    // Shutdown() racing this call may land before we block (the wakeup
    // then manifests as an instant failure) or even hand us a connection
    // that was already queued — either way the caller asked us to stop,
    // so the answer is the typed closed status, never the accepted
    // connection and never whatever errno the platform chose.
    if (is_shut_down()) {
      return Status::Unavailable(kListenerShutDownMessage);
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (is_shut_down()) {
      if (fd >= 0) ::close(fd);
      return Status::Unavailable(kListenerShutDownMessage);
    }
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = Socket(fd);
      return Status::OK();
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Status Listener::SetNonBlocking(bool nonblocking) {
  if (fd_ < 0) return Status::Unavailable("fcntl on closed listener");
  return SetFdNonBlocking(fd_, nonblocking);
}

Status Listener::TryAccept(Socket* out, bool* accepted) {
  *accepted = false;
  if (fd_ < 0) return Status::Unavailable("accept on closed listener");
  while (true) {
    if (is_shut_down()) {
      return Status::Unavailable(kListenerShutDownMessage);
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (is_shut_down()) {
      if (fd >= 0) ::close(fd);
      return Status::Unavailable(kListenerShutDownMessage);
    }
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = Socket(fd);
      *accepted = true;
      return Status::OK();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    // A connection aborted between queueing and accept is the peer's
    // fault, not the listener's: keep accepting.
    if (errno == ECONNABORTED) continue;
    return Errno("accept");
  }
}

void Listener::Shutdown() {
  // Order matters: the flag must be visible before the kernel wakes any
  // blocked accept, so the woken thread always sees it.
  shutdown_.store(true, std::memory_order_release);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- frames -----------------------------------------------------------------

Status SendFrame(Socket* socket, FrameType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds protocol cap");
  }
  // One contiguous send: header (5 bytes) + payload.
  std::string wire;
  wire.reserve(5 + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    wire.push_back(static_cast<char>((len >> shift) & 0xff));
  }
  wire.push_back(static_cast<char>(type));
  wire.append(payload);
  return socket->SendAll(wire.data(), wire.size());
}

Status RecvFrame(Socket* socket, Frame* out) {
  uint8_t header[5];
  Status s = socket->RecvAll(header, sizeof(header));
  if (!s.ok()) return s;
  uint32_t len = 0;
  for (int shift = 0, i = 0; shift < 32; shift += 8, ++i) {
    len |= static_cast<uint32_t>(header[i]) << shift;
  }
  if (len > kMaxFramePayload) {
    return Status::Unavailable("malformed frame: length prefix beyond cap");
  }
  out->type = static_cast<FrameType>(header[4]);
  out->payload.resize(len);
  if (len > 0) {
    s = socket->RecvAll(&out->payload[0], len);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace net
}  // namespace hdc
