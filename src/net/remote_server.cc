// Copyright (c) hdc authors. Apache-2.0 license.
#include "net/remote_server.h"

#include <utility>

#include "util/macros.h"

namespace hdc {
namespace net {

RemoteServer::RemoteServer(std::string host, uint16_t port,
                           RemoteServerOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      politeness_(options_.politeness) {}

Status RemoteServer::Connect(const std::string& host, uint16_t port,
                             const RemoteServerOptions& options,
                             std::unique_ptr<RemoteServer>* out) {
  // Not make_unique: the constructor is private.
  std::unique_ptr<RemoteServer> server(
      new RemoteServer(host, port, options));
  Status s = server->EnsureConnected();
  if (!s.ok()) return s;
  *out = std::move(server);
  return Status::OK();
}

Status RemoteServer::Drop(const Status& s) {
  socket_.Close();
  if (s.IsUnavailable()) return s;
  return Status::Unavailable(s.ToString());
}

Status RemoteServer::EnsureConnected() {
  if (socket_.valid()) return Status::OK();

  Socket socket;
  Status s = Socket::Connect(host_, port_, &socket);
  if (!s.ok()) return s;

  HelloMessage hello;
  hello.max_queries = options_.max_queries;
  hello.weight = options_.weight;
  hello.max_lane_parallelism = options_.max_lane_parallelism;
  hello.label = options_.label;
  s = SendFrame(&socket, FrameType::kHello, EncodeHello(hello));
  if (!s.ok()) return s;

  Frame frame;
  s = RecvFrame(&socket, &frame);
  if (!s.ok()) return s;
  if (frame.type != FrameType::kWelcome) {
    return Status::Unavailable("handshake: expected welcome frame");
  }
  WelcomeMessage welcome;
  s = DecodeWelcome(frame.payload, &welcome);
  if (!s.ok()) return s;

  SchemaPtr schema = Schema::Make(welcome.attributes);
  if (ever_connected_) {
    // A reconnect must land on the same data space: resuming a crawl
    // against a different schema or k would silently corrupt it.
    if (welcome.k != k_ || !(*schema == *schema_)) {
      return Status::FailedPrecondition(
          "remote service changed k or schema across reconnect");
    }
    ++reconnects_;
  } else {
    k_ = welcome.k;
    schema_ = std::move(schema);
    ever_connected_ = true;
  }
  batch_parallelism_ = welcome.batch_parallelism;
  session_id_ = welcome.session_id;
  db_version_ = welcome.db_version;
  socket_ = std::move(socket);
  return Status::OK();
}

ServerLoadHint RemoteServer::load_hint() const {
  ServerLoadHint hint;
  hint.latency_feedback = true;
  hint.queue_wait_total_seconds = queue_wait_total_seconds_;
  hint.politeness_wait_total_seconds =
      std::chrono::duration<double>(politeness_.total_waited()).count();
  return hint;
}

Status RemoteServer::Issue(const Query& query, Response* response) {
  std::vector<Response> responses;
  Status s = IssueBatch({query}, &responses);
  if (!responses.empty()) *response = std::move(responses[0]);
  return s;
}

Status RemoteServer::IssueBatch(const std::vector<Query>& queries,
                                std::vector<Response>* responses) {
  HDC_CHECK(responses != nullptr);
  responses->clear();
  if (queries.empty()) return Status::OK();

  // EnsureConnected never leaves a half-open socket behind; its failure
  // statuses (Unavailable, FailedPrecondition on a changed schema) are
  // returned as-is.
  Status s = EnsureConnected();
  if (!s.ok()) return s;

  politeness_.AwaitRoundStart();

  s = SendFrame(&socket_, FrameType::kIssueBatch,
                EncodeQueryBatch(queries));
  if (!s.ok()) return Drop(s);

  // Stream the answered prefix. Whatever happens to the connection from
  // here on, `responses` keeps every member fully received — the contract
  // a crawl resumes from.
  responses->reserve(queries.size());
  const size_t arity = schema_->num_attributes();
  while (true) {
    Frame frame;
    s = RecvFrame(&socket_, &frame);
    if (!s.ok()) {
      // Dropped mid-batch. A full prefix means every member was in fact
      // answered — only the (implicitly OK) batch-end frame was lost.
      if (responses->size() == queries.size()) {
        socket_.Close();
        return Status::OK();
      }
      return Drop(s);
    }
    if (frame.type == FrameType::kResponse) {
      if (responses->size() == queries.size()) {
        // More answers than questions: protocol violation. Shed one
        // member to keep the prefix-vs-status invariant (it will simply
        // be re-issued).
        responses->pop_back();
        return Drop(Status::Unavailable(
            "protocol violation: more responses than batch members"));
      }
      Response response;
      s = DecodeResponse(frame.payload, arity, &response);
      if (!s.ok()) return Drop(s);
      responses->push_back(std::move(response));
      continue;
    }
    if (frame.type == FrameType::kBatchEnd) {
      BatchEndMessage end;
      s = DecodeBatchEnd(frame.payload, &end);
      if (!s.ok()) return Drop(s);
      queue_wait_total_seconds_ = end.queue_wait_total_seconds;
      db_version_ = end.db_version;
      const bool complete = responses->size() == queries.size();
      if (end.code == Status::Code::kOk) {
        if (!complete) {
          return Drop(Status::Unavailable(
              "protocol violation: OK batch end with partial prefix"));
        }
        return Status::OK();
      }
      if (complete) {
        responses->pop_back();
        return Drop(Status::Unavailable(
            "protocol violation: failed batch end with full prefix"));
      }
      // The server's own verdict (e.g. ResourceExhausted from the session
      // budget): the connection stays healthy.
      return MakeStatus(end.code, std::move(end.message));
    }
    return Drop(Status::Unavailable("protocol violation: unexpected frame "
                                    "inside a batch"));
  }
}

Status RemoteServer::FetchStats(StatsMessage* out) {
  Status s = EnsureConnected();
  if (!s.ok()) return s;
  s = SendFrame(&socket_, FrameType::kStatsRequest, std::string());
  if (!s.ok()) return Drop(s);
  Frame frame;
  s = RecvFrame(&socket_, &frame);
  if (!s.ok()) return Drop(s);
  if (frame.type != FrameType::kStatsReply) {
    return Drop(Status::Unavailable("expected stats reply"));
  }
  s = DecodeStats(frame.payload, out);
  if (!s.ok()) return Drop(s);
  return Status::OK();
}

Status RemoteServer::RefillBudget(uint64_t max_queries) {
  Status s = EnsureConnected();
  if (!s.ok()) return s;
  s = SendFrame(&socket_, FrameType::kRefillBudget,
                EncodeRefill(max_queries));
  if (!s.ok()) return Drop(s);
  Frame frame;
  s = RecvFrame(&socket_, &frame);
  if (!s.ok()) return Drop(s);
  if (frame.type != FrameType::kRefillAck) {
    return Drop(Status::Unavailable("expected refill ack"));
  }
  Status ack;
  s = DecodeAck(frame.payload, &ack);
  if (!s.ok()) return Drop(s);
  return ack;
}

}  // namespace net
}  // namespace hdc
