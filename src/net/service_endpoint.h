// Copyright (c) hdc authors. Apache-2.0 license.
//
// ServiceEndpoint — serves an existing CrawlService over the hdc wire
// protocol. Each accepted connection becomes one ServerSession
// (server/crawl_service.h): remote tenants therefore inherit everything
// the in-process service already provides — per-session statistics,
// budgets, and a fair scheduling lane on the shared worker pool — and a
// remote conversation is the same conversation an in-process session
// would have had, frame framing aside.
//
// Concurrency model: event-driven, not thread-per-connection. One IO
// thread runs an epoll loop (net/event_loop.h) over the nonblocking
// listener and every nonblocking connection — accepting, assembling
// frames incrementally, and flushing buffered output as sockets become
// writable — while a small endpoint-owned dispatch pool executes the
// session work (batch evaluation on the service's fair lanes). Thousands
// of idle or slow-reading connections therefore cost file descriptors and
// buffers, not threads; the thread count is dispatch_threads + 1
// regardless of connection count. Each connection runs at most one
// request at a time (the HiddenDbServer contract forbids concurrent calls
// on one session); input that arrives while a request is in flight waits
// in the connection's buffer.
//
// The dispatch pool is deliberately NOT the service's worker pool: a
// session batch blocks its dispatching thread until the batch completes,
// and batches themselves fan out onto the service pool — dispatching from
// that same pool could park every worker on blocked batches with no one
// left to run them.
//
// Plain HTTP is sniffed on the first bytes of a connection: `GET
// /metrics` answers a Prometheus text rendering of the service's
// MetricsSnapshot (server/metrics_text.h) and closes, so the same port a
// crawler dials is scrapeable by standard monitoring. (A frame peer can
// never collide with this: "GET " as a frame header would declare a
// ~1.4 GB payload, far beyond kMaxFramePayload.)
//
// Lifecycle: Start() binds and spawns the IO thread and dispatch pool;
// Stop() (or the destructor) shuts the listener down, severs live
// connections, and joins every thread. The CrawlService must outlive the
// endpoint.
//
// Robustness: a peer sending a malformed hello, an oversized length
// prefix, an undecodable batch, or an unknown frame type gets its
// connection closed — never a crash, never a stuck thread — and the
// endpoint keeps serving everyone else. Tests drive this directly
// (remote_transport_test.cc) by speaking garbage at a live endpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/socket.h"
#include "server/crawl_service.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace hdc {
namespace net {

struct ServiceEndpointOptions {
  /// Bind address. Loopback by default: the supported deployment is one
  /// trusted machine boundary (tests, benches, the remote_crawl example).
  std::string host = "127.0.0.1";

  /// 0 picks an ephemeral port (read it from port() after Start()).
  uint16_t port = 0;

  /// Threads executing session work (batch evaluation, stats, refills).
  /// Bounds how many *requests* make progress simultaneously — not how
  /// many connections may be open, which is limited only by fds.
  unsigned dispatch_threads = 4;

  /// Fault injection for tests: when > 0, each connection is severed
  /// right before it would send its (N+1)-th response frame — a
  /// deterministic mid-batch connection drop. 0 never drops.
  uint64_t drop_connection_after_responses = 0;

  /// Attach each response's 64-bit truncated SHA-256 content hash to its
  /// frame (protocol v2). Clients verify it at decode, so a corrupted
  /// answer can never seed a client-side cache. One hash pass per
  /// response — noise next to the round trip it protects.
  bool attach_content_hashes = true;
};

/// One listening endpoint over one CrawlService.
class ServiceEndpoint {
 public:
  /// `service` is borrowed and must outlive the endpoint.
  ServiceEndpoint(CrawlService* service, ServiceEndpointOptions options = {});
  ~ServiceEndpoint();

  ServiceEndpoint(const ServiceEndpoint&) = delete;
  ServiceEndpoint& operator=(const ServiceEndpoint&) = delete;

  /// Binds, listens, and starts the IO loop and dispatch pool. Fails
  /// (typed) when the address is unusable.
  Status Start();

  /// Severs every connection, joins every thread. Idempotent.
  void Stop();

  bool running() const { return running_; }

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return listener_.port(); }

  uint64_t connections_accepted() const { return connections_accepted_; }

 private:
  /// One client connection's full state. Owned by the IO thread; the
  /// output buffer is additionally touched by dispatch workers under
  /// `out_mutex`, and `done` hands a finished request back to the loop.
  struct Connection {
    uint64_t id = 0;
    Socket socket;

    /// Unparsed inbound bytes; frames are assembled from the front.
    std::string inbuf;

    /// Outbound bytes not yet accepted by the kernel. Workers append
    /// under the mutex; only the IO thread consumes.
    Mutex out_mutex;
    std::string outbuf HDC_GUARDED_BY(out_mutex);
    size_t out_flushed HDC_GUARDED_BY(out_mutex) = 0;

    /// Current epoll interest set (EPOLLIN / EPOLLOUT), to skip
    /// redundant epoll_ctl calls.
    uint32_t interest = 0;

    std::unique_ptr<ServerSession> session;
    uint64_t session_budget = 0;  // kUnlimitedQueries when unbudgeted
    uint64_t responses_sent = 0;

    bool saw_hello = false;
    bool is_http = false;
    /// A dispatch job owns this connection's request right now; the IO
    /// thread must not parse further input or destroy the connection.
    /// IO thread only: set before enqueueing, cleared on completion.
    bool busy = false;
    /// The socket died while busy; completion handling reaps the
    /// connection. IO thread only.
    bool defunct = false;
    /// Flush remaining output, then sever. Set on protocol violations,
    /// HTTP responses, and the injected drop fault (a dispatch worker may
    /// set it while the IO thread flushes).
    bool close_after_flush HDC_GUARDED_BY(out_mutex) = false;
  };

  void IoLoop();
  void DispatchLoop();

  /// Accepts until the listener would block.
  void AcceptReady();
  /// Reads available bytes and assembles/handles as many frames (or the
  /// HTTP request) as the buffer now holds. May dispatch at most one
  /// request (busy flag) — remaining input waits.
  void ReadReady(Connection* conn);
  /// Flushes buffered output; re-arms EPOLLOUT iff bytes remain.
  void WriteReady(Connection* conn);
  /// Tries to consume one complete inbound unit (hello frame, request
  /// frame, or HTTP request) from conn->inbuf. Returns false when more
  /// bytes are needed or the connection went busy/dead.
  bool ConsumeInput(Connection* conn);
  /// Executes one decoded request on a dispatch thread: runs the session
  /// call, appends the response frames to the output buffer, marks done.
  void ExecuteRequest(Connection* conn, Frame frame);
  /// Appends bytes to the connection's output buffer (worker- or
  /// IO-thread-side) and ensures the loop will flush them.
  void QueueOutput(Connection* conn, const std::string& bytes);
  /// Applies interest-set changes after buffer state changed.
  void UpdateInterest(Connection* conn);
  /// Unregisters, closes and destroys a connection. IO thread only.
  void DestroyConnection(Connection* conn);

  /// Handles the first frame of a connection (must be a hello): mints the
  /// session, queues the welcome. Returns false to sever.
  bool HandleHello(Connection* conn, const Frame& frame);
  /// Serves the sniffed HTTP request (metrics scrape) and closes.
  void HandleHttp(Connection* conn);

  CrawlService* service_;
  ServiceEndpointOptions options_;
  Listener listener_;
  EventLoop loop_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  std::thread io_thread_;
  std::vector<std::thread> dispatchers_;

  /// Dispatch queue: requests decoded by the IO thread, executed by the
  /// pool.
  Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<std::pair<Connection*, Frame>> queue_
      HDC_GUARDED_BY(queue_mutex_);
  bool queue_stopped_ HDC_GUARDED_BY(queue_mutex_) = false;
  /// Connections whose in-flight request finished, awaiting the IO
  /// thread's completion pass.
  std::vector<uint64_t> completed_ HDC_GUARDED_BY(queue_mutex_);

  /// All live connections, keyed by id (the epoll event data). IO thread
  /// only, except sizing under Stop() after threads are joined.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 0;
};

}  // namespace net
}  // namespace hdc
