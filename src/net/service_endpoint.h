// Copyright (c) hdc authors. Apache-2.0 license.
//
// ServiceEndpoint — serves an existing CrawlService over the hdc wire
// protocol. Each accepted connection becomes one ServerSession
// (server/crawl_service.h): remote tenants therefore inherit everything
// the in-process service already provides — per-session statistics,
// budgets, and a fair scheduling lane on the shared worker pool — and a
// remote conversation is the same conversation an in-process session
// would have had, frame framing aside.
//
// Lifecycle: Start() binds and spawns the accept loop; Stop() (or the
// destructor) shuts the listener down, severs live connections, and joins
// every thread. The endpoint must outlive none of its connections and the
// CrawlService must outlive the endpoint.
//
// Robustness: a peer sending a malformed hello, an oversized length
// prefix, an undecodable batch, or an unknown frame type gets its
// connection closed — never a crash, never a stuck thread — and the
// endpoint keeps serving everyone else. Tests drive this directly
// (remote_transport_test.cc) by speaking garbage at a live endpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "server/crawl_service.h"
#include "util/status.h"

namespace hdc {
namespace net {

struct ServiceEndpointOptions {
  /// Bind address. Loopback by default: the supported deployment is one
  /// trusted machine boundary (tests, benches, the remote_crawl example).
  std::string host = "127.0.0.1";

  /// 0 picks an ephemeral port (read it from port() after Start()).
  uint16_t port = 0;

  /// Fault injection for tests: when > 0, each connection is severed
  /// right before it would send its (N+1)-th response frame — a
  /// deterministic mid-batch connection drop. 0 never drops.
  uint64_t drop_connection_after_responses = 0;
};

/// One listening endpoint over one CrawlService.
class ServiceEndpoint {
 public:
  /// `service` is borrowed and must outlive the endpoint.
  ServiceEndpoint(CrawlService* service, ServiceEndpointOptions options = {});
  ~ServiceEndpoint();

  ServiceEndpoint(const ServiceEndpoint&) = delete;
  ServiceEndpoint& operator=(const ServiceEndpoint&) = delete;

  /// Binds, listens, and starts accepting. Fails (typed) when the address
  /// is unusable.
  Status Start();

  /// Severs every connection, joins every thread. Idempotent.
  void Stop();

  bool running() const { return running_; }

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return listener_.port(); }

  uint64_t connections_accepted() const { return connections_accepted_; }

 private:
  void AcceptLoop();

  /// Runs one connection's conversation; `socket` stays owned (and
  /// registered) by the calling connection thread.
  void ServeConnection(uint64_t connection_id, Socket* socket);

  /// One client turn: reads a frame, dispatches. Returns false when the
  /// connection should close (EOF, malformed input, protocol violation).
  bool HandleFrame(Socket* socket, ServerSession* session,
                   uint64_t session_budget, uint64_t* responses_sent);

  CrawlService* service_;
  ServiceEndpointOptions options_;
  Listener listener_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  std::thread acceptor_;

  /// Joins (and erases) the threads listed in finished_. Must be called
  /// WITHOUT connections_mutex_ held by this thread.
  void ReapFinishedConnections();

  /// Live connection sockets, for severing at Stop(). A connection thread
  /// deregisters its socket (under the mutex) before destroying it, so
  /// Stop() never shuts down a reused fd. Threads announce completion via
  /// finished_ and are joined by the accept loop (so a long-lived
  /// endpoint never accumulates exited threads) or, finally, by Stop().
  std::mutex connections_mutex_;
  std::unordered_map<uint64_t, Socket*> live_connections_;
  std::unordered_map<uint64_t, std::thread> connection_threads_;
  std::vector<uint64_t> finished_;
  uint64_t next_connection_id_ = 0;
};

}  // namespace net
}  // namespace hdc
