// Copyright (c) hdc authors. Apache-2.0 license.
//
// CSV ingestion: load a dataset saved by Dataset::SaveCsv (or produced by
// any tool emitting integer cells) against a known schema, and parse the
// compact schema-spec strings used by the CLI.
#pragma once

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace hdc {

/// Parses a schema specification of the form
///
///   "Make:cat:85, Price:num:200:200000, Mileage:num"
///
/// i.e. comma-separated `name:kind[:params]` entries where kind is `cat`
/// (one param: domain size) or `num` (optional two params: lo and hi
/// bounds; omitted means unbounded). Whitespace around entries is ignored.
Status ParseSchemaSpec(const std::string& spec, SchemaPtr* out);

/// Renders a schema back into the spec format accepted by ParseSchemaSpec.
std::string FormatSchemaSpec(const Schema& schema);

/// Loads a CSV file with a header row into a dataset with the given
/// schema. The header must list exactly the schema's attribute names in
/// order; every cell must be an integer within its attribute's domain.
/// Quoted cells (RFC-4180 style) are accepted.
Status LoadCsv(const std::string& path, SchemaPtr schema, Dataset* out);

}  // namespace hdc
