// Copyright (c) hdc authors. Apache-2.0 license.
#include "data/schema.h"

#include "util/macros.h"

namespace hdc {

const char* AttributeKindName(AttributeKind kind) {
  return kind == AttributeKind::kNumeric ? "num" : "cat";
}

Schema::Schema(std::vector<AttributeSpec> attributes)
    : attributes_(std::move(attributes)) {
  HDC_CHECK(!attributes_.empty());
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const AttributeSpec& spec = attributes_[i];
    if (spec.is_categorical()) {
      HDC_CHECK_MSG(spec.domain_size >= 1,
                    "categorical attribute needs a positive domain size");
      categorical_indices_.push_back(i);
    } else {
      HDC_CHECK_MSG(spec.lo <= spec.hi, "numeric bounds must be ordered");
      numeric_indices_.push_back(i);
    }
  }
}

SchemaPtr Schema::Numeric(size_t d) {
  std::vector<AttributeSpec> attrs;
  attrs.reserve(d);
  for (size_t i = 0; i < d; ++i) {
    attrs.push_back(AttributeSpec::Numeric("A" + std::to_string(i + 1)));
  }
  return std::make_shared<Schema>(std::move(attrs));
}

SchemaPtr Schema::NumericBounded(
    std::vector<std::pair<Value, Value>> bounds) {
  std::vector<AttributeSpec> attrs;
  attrs.reserve(bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    attrs.push_back(AttributeSpec::NumericBounded(
        "A" + std::to_string(i + 1), bounds[i].first, bounds[i].second));
  }
  return std::make_shared<Schema>(std::move(attrs));
}

SchemaPtr Schema::Categorical(std::vector<uint64_t> domain_sizes) {
  std::vector<AttributeSpec> attrs;
  attrs.reserve(domain_sizes.size());
  for (size_t i = 0; i < domain_sizes.size(); ++i) {
    attrs.push_back(AttributeSpec::Categorical("A" + std::to_string(i + 1),
                                               domain_sizes[i]));
  }
  return std::make_shared<Schema>(std::move(attrs));
}

SchemaPtr Schema::Make(std::vector<AttributeSpec> attributes) {
  return std::make_shared<Schema>(std::move(attributes));
}

uint64_t Schema::domain_size(size_t i) const {
  HDC_CHECK(IsCategorical(i));
  return attributes_[i].domain_size;
}

uint64_t Schema::TotalCategoricalDomain() const {
  uint64_t total = 0;
  for (size_t i : categorical_indices_) total += attributes_[i].domain_size;
  return total;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    const AttributeSpec& spec = attributes_[i];
    out += spec.name;
    out += ':';
    out += AttributeKindName(spec.kind);
    if (spec.is_categorical()) {
      out += '(' + std::to_string(spec.domain_size) + ')';
    }
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const AttributeSpec& a = attributes_[i];
    const AttributeSpec& b = other.attributes_[i];
    if (a.kind != b.kind || a.domain_size != b.domain_size || a.lo != b.lo ||
        a.hi != b.hi || a.name != b.name) {
      return false;
    }
  }
  return true;
}

bool Schema::CompatibleWith(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const AttributeSpec& a = attributes_[i];
    const AttributeSpec& b = other.attributes_[i];
    if (a.kind != b.kind || a.domain_size != b.domain_size ||
        a.name != b.name) {
      return false;
    }
  }
  return true;
}

}  // namespace hdc
