// Copyright (c) hdc authors. Apache-2.0 license.
#include "data/tuple.h"

namespace hdc {

size_t Tuple::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (Value v : values_) {
    uint64_t x = static_cast<uint64_t>(v);
    // Mix each 64-bit value through a splitmix-style finalizer before
    // folding, so nearby integers do not collide.
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    h = (h ^ x) * 0x100000001b3ULL;
  }
  return static_cast<size_t>(h);
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values_[i]);
  }
  out += ')';
  return out;
}

}  // namespace hdc
