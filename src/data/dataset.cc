// Copyright (c) hdc authors. Apache-2.0 license.
#include "data/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "util/csv_writer.h"
#include "util/macros.h"

namespace hdc {

Dataset::Dataset(SchemaPtr schema) : schema_(std::move(schema)) {
  HDC_CHECK(schema_ != nullptr);
}

Dataset::Dataset(SchemaPtr schema, std::vector<Tuple> tuples)
    : schema_(std::move(schema)), tuples_(std::move(tuples)) {
  HDC_CHECK(schema_ != nullptr);
  HDC_CHECK_OK(Validate());
}

void Dataset::Add(Tuple tuple) {
  HDC_CHECK(tuple.size() == schema_->num_attributes());
  for (size_t i = 0; i < tuple.size(); ++i) {
    HDC_CHECK_MSG(schema_->attribute(i).ValueInDomain(tuple[i]),
                  "tuple value outside attribute domain");
  }
  tuples_.push_back(std::move(tuple));
}

Status Dataset::Validate() const {
  for (const Tuple& t : tuples_) {
    if (t.size() != schema_->num_attributes()) {
      return Status::InvalidArgument("tuple arity does not match schema");
    }
    for (size_t i = 0; i < t.size(); ++i) {
      if (!schema_->attribute(i).ValueInDomain(t[i])) {
        return Status::InvalidArgument(
            "value " + std::to_string(t[i]) + " outside domain of attribute " +
            schema_->attribute(i).name);
      }
    }
  }
  return Status::OK();
}

uint64_t Dataset::MaxPointMultiplicity() const {
  std::unordered_map<Tuple, uint64_t, TupleHasher> counts;
  counts.reserve(tuples_.size() * 2);
  uint64_t max_count = 0;
  for (const Tuple& t : tuples_) {
    uint64_t c = ++counts[t];
    max_count = std::max(max_count, c);
  }
  return max_count;
}

uint64_t Dataset::DistinctPointCount() const {
  std::unordered_set<Tuple, TupleHasher> points;
  points.reserve(tuples_.size() * 2);
  for (const Tuple& t : tuples_) points.insert(t);
  return points.size();
}

std::vector<AttributeStats> Dataset::ComputeAttributeStats() const {
  std::vector<AttributeStats> stats(schema_->num_attributes());
  for (size_t i = 0; i < stats.size(); ++i) {
    const AttributeSpec& spec = schema_->attribute(i);
    stats[i].name = spec.name;
    stats[i].kind = spec.kind;
    std::unordered_set<Value> distinct;
    Value min_v = kNumericMax, max_v = kNumericMin;
    for (const Tuple& t : tuples_) {
      distinct.insert(t[i]);
      min_v = std::min(min_v, t[i]);
      max_v = std::max(max_v, t[i]);
    }
    stats[i].distinct_values = distinct.size();
    if (!tuples_.empty()) {
      stats[i].min_value = min_v;
      stats[i].max_value = max_v;
    }
  }
  return stats;
}

Dataset Dataset::BernoulliSample(double p, Rng* rng) const {
  HDC_CHECK(rng != nullptr);
  Dataset out(schema_);
  for (const Tuple& t : tuples_) {
    if (rng->Bernoulli(p)) out.AddUnchecked(t);
  }
  return out;
}

Dataset Dataset::Project(const std::vector<size_t>& attribute_indices) const {
  std::vector<AttributeSpec> attrs;
  attrs.reserve(attribute_indices.size());
  for (size_t idx : attribute_indices) {
    HDC_CHECK(idx < schema_->num_attributes());
    attrs.push_back(schema_->attribute(idx));
  }
  Dataset out(Schema::Make(std::move(attrs)));
  for (const Tuple& t : tuples_) {
    std::vector<Value> values;
    values.reserve(attribute_indices.size());
    for (size_t idx : attribute_indices) values.push_back(t[idx]);
    out.AddUnchecked(Tuple(std::move(values)));
  }
  return out;
}

std::vector<size_t> Dataset::TopDistinctAttributes(size_t d) const {
  HDC_CHECK(d <= schema_->num_attributes());
  std::vector<AttributeStats> stats = ComputeAttributeStats();
  std::vector<size_t> order(stats.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return stats[a].distinct_values > stats[b].distinct_values;
  });
  order.resize(d);
  // Keep the selected attributes in their original schema order, matching
  // the experimental setup of Section 6.
  std::sort(order.begin(), order.end());
  return order;
}

Status Dataset::SaveCsv(const std::string& path) const {
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  std::vector<std::string> header;
  header.reserve(schema_->num_attributes());
  for (size_t i = 0; i < schema_->num_attributes(); ++i) {
    header.push_back(schema_->attribute(i).name);
  }
  writer.WriteRow(header);
  std::vector<std::string> row(schema_->num_attributes());
  for (const Tuple& t : tuples_) {
    for (size_t i = 0; i < t.size(); ++i) row[i] = std::to_string(t[i]);
    writer.WriteRow(row);
  }
  return writer.Close();
}

bool Dataset::MultisetEquals(const Dataset& a, const Dataset& b) {
  return a.size() == b.size() && MultisetDistance(a, b) == 0;
}

uint64_t Dataset::MultisetDistance(const Dataset& a, const Dataset& b) {
  std::unordered_map<Tuple, int64_t, TupleHasher> counts;
  counts.reserve((a.size() + b.size()) * 2);
  for (const Tuple& t : a.tuples()) ++counts[t];
  for (const Tuple& t : b.tuples()) --counts[t];
  uint64_t distance = 0;
  for (const auto& [tuple, count] : counts) {
    distance += static_cast<uint64_t>(count < 0 ? -count : count);
  }
  return distance;
}

}  // namespace hdc
