// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <cstdint>
#include <string>

#include "data/value.h"

namespace hdc {

/// Whether an attribute supports range predicates (numeric, totally ordered)
/// or only equality / wildcard predicates (categorical).
enum class AttributeKind { kNumeric, kCategorical };

const char* AttributeKindName(AttributeKind kind);

/// Static description of one attribute of the data space.
///
/// Categorical attributes have a finite domain {1, ..., domain_size} whose
/// ordering is meaningless. Numeric attributes conceptually range over all
/// integers; `lo`/`hi` optionally record known bounds (used as the starting
/// extent by binary-shrink, which cannot bisect an unbounded interval, and by
/// generators to describe the data). Rank-shrink never needs bounds.
struct AttributeSpec {
  std::string name;
  AttributeKind kind = AttributeKind::kNumeric;

  /// Categorical only: |dom(Ai)| = U_i, values are 1..domain_size.
  uint64_t domain_size = 0;

  /// Numeric only: known domain bounds; default unbounded sentinels.
  Value lo = kNumericMin;
  Value hi = kNumericMax;

  static AttributeSpec Numeric(std::string name) {
    AttributeSpec spec;
    spec.name = std::move(name);
    spec.kind = AttributeKind::kNumeric;
    return spec;
  }

  static AttributeSpec NumericBounded(std::string name, Value lo, Value hi) {
    AttributeSpec spec;
    spec.name = std::move(name);
    spec.kind = AttributeKind::kNumeric;
    spec.lo = lo;
    spec.hi = hi;
    return spec;
  }

  static AttributeSpec Categorical(std::string name, uint64_t domain_size) {
    AttributeSpec spec;
    spec.name = std::move(name);
    spec.kind = AttributeKind::kCategorical;
    spec.domain_size = domain_size;
    return spec;
  }

  bool is_numeric() const { return kind == AttributeKind::kNumeric; }
  bool is_categorical() const { return kind == AttributeKind::kCategorical; }

  /// True if `v` is a legal value for this attribute.
  bool ValueInDomain(Value v) const {
    if (is_numeric()) return v >= lo && v <= hi;
    return v >= 1 && v <= static_cast<Value>(domain_size);
  }
};

}  // namespace hdc
