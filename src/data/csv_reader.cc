// Copyright (c) hdc authors. Apache-2.0 license.
#include "data/csv_reader.h"

#include <charconv>
#include <fstream>
#include <vector>

#include "util/string_escape.h"

namespace hdc {
namespace {

/// Splits one CSV record into cells, honouring double-quote escaping.
Status SplitCsvLine(const std::string& line, std::vector<std::string>* out) {
  out->clear();
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      out->push_back(std::move(cell));
      cell.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote: " + line);
  out->push_back(std::move(cell));
  return Status::OK();
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

Status ParseValue(const std::string& cell, Value* out) {
  const std::string trimmed = Trim(cell);
  auto [ptr, ec] = std::from_chars(trimmed.data(),
                                   trimmed.data() + trimmed.size(), *out);
  if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
    return Status::InvalidArgument("not an integer: '" + cell + "'");
  }
  return Status::OK();
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string part;
  for (char ch : s) {
    if (ch == sep) {
      parts.push_back(part);
      part.clear();
    } else {
      part += ch;
    }
  }
  parts.push_back(part);
  return parts;
}

}  // namespace

Status ParseSchemaSpec(const std::string& spec, SchemaPtr* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  std::vector<AttributeSpec> attrs;
  for (const std::string& raw_entry : SplitOn(spec, ',')) {
    const std::string entry = Trim(raw_entry);
    if (entry.empty()) continue;
    std::vector<std::string> fields = SplitOn(entry, ':');
    if (fields.size() < 2) {
      return Status::InvalidArgument("schema entry needs name:kind — '" +
                                     entry + "'");
    }
    // Names are written escaped (see FormatSchemaSpec); plain legacy names
    // pass through unescaping unchanged, and a malformed escape is a typed
    // ambiguity error rather than silent mangling.
    std::string name;
    HDC_RETURN_IF_ERROR(UnescapeToken(Trim(fields[0]), &name));
    const std::string kind = Trim(fields[1]);
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute name in '" + entry +
                                     "'");
    }
    if (kind == "cat") {
      if (fields.size() != 3) {
        return Status::InvalidArgument(
            "categorical attribute needs a domain size — '" + entry + "'");
      }
      Value domain = 0;
      HDC_RETURN_IF_ERROR(ParseValue(fields[2], &domain));
      if (domain < 1) {
        return Status::InvalidArgument("domain size must be positive — '" +
                                       entry + "'");
      }
      attrs.push_back(AttributeSpec::Categorical(
          name, static_cast<uint64_t>(domain)));
    } else if (kind == "num") {
      if (fields.size() == 2) {
        attrs.push_back(AttributeSpec::Numeric(name));
      } else if (fields.size() == 4) {
        Value lo = 0, hi = 0;
        HDC_RETURN_IF_ERROR(ParseValue(fields[2], &lo));
        HDC_RETURN_IF_ERROR(ParseValue(fields[3], &hi));
        if (lo > hi) {
          return Status::InvalidArgument("bounds out of order — '" + entry +
                                         "'");
        }
        attrs.push_back(AttributeSpec::NumericBounded(name, lo, hi));
      } else {
        return Status::InvalidArgument(
            "numeric attribute takes no params or lo:hi — '" + entry + "'");
      }
    } else {
      return Status::InvalidArgument("unknown attribute kind '" + kind +
                                     "' (want cat|num)");
    }
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("schema spec declares no attributes");
  }
  *out = Schema::Make(std::move(attrs));
  return Status::OK();
}

std::string FormatSchemaSpec(const Schema& schema) {
  std::string out;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += ", ";
    const AttributeSpec& spec = schema.attribute(i);
    out += EscapeToken(spec.name);
    if (spec.is_categorical()) {
      out += ":cat:" + std::to_string(spec.domain_size);
    } else if (spec.lo > kNumericMin || spec.hi < kNumericMax) {
      out += ":num:" + std::to_string(spec.lo) + ":" +
             std::to_string(spec.hi);
    } else {
      out += ":num";
    }
  }
  return out;
}

Status LoadCsv(const std::string& path, SchemaPtr schema, Dataset* out) {
  if (schema == nullptr || out == nullptr) {
    return Status::InvalidArgument("LoadCsv needs a schema and an output");
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(path + " is empty (no header row)");
  }
  std::vector<std::string> cells;
  HDC_RETURN_IF_ERROR(SplitCsvLine(line, &cells));
  if (cells.size() != schema->num_attributes()) {
    return Status::InvalidArgument(
        path + ": header has " + std::to_string(cells.size()) +
        " columns, schema has " + std::to_string(schema->num_attributes()));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (Trim(cells[i]) != schema->attribute(i).name) {
      return Status::InvalidArgument(path + ": header column " +
                                     std::to_string(i + 1) + " is '" +
                                     cells[i] + "', schema expects '" +
                                     schema->attribute(i).name + "'");
    }
  }

  Dataset dataset(schema);
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;
    HDC_RETURN_IF_ERROR(SplitCsvLine(line, &cells));
    if (cells.size() != schema->num_attributes()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": expected " +
          std::to_string(schema->num_attributes()) + " cells, got " +
          std::to_string(cells.size()));
    }
    std::vector<Value> values(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      Status s = ParseValue(cells[i], &values[i]);
      if (!s.ok()) {
        return Status::InvalidArgument(path + ":" +
                                       std::to_string(line_number) + ": " +
                                       s.message());
      }
      if (!schema->attribute(i).ValueInDomain(values[i])) {
        return Status::InvalidArgument(
            path + ":" + std::to_string(line_number) + ": value " +
            std::to_string(values[i]) + " outside the domain of " +
            schema->attribute(i).name);
      }
    }
    dataset.AddUnchecked(Tuple(std::move(values)));
  }
  *out = std::move(dataset);
  return Status::OK();
}

}  // namespace hdc
