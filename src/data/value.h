// Copyright (c) hdc authors. Apache-2.0 license.
//
// Scalar value model. Following the paper (Section 1.1), every attribute
// domain is represented by integers: a numeric attribute ranges over all
// integers, while a categorical attribute with domain size U takes values
// 1..U whose ordering carries no meaning.
#pragma once

#include <cstdint>

namespace hdc {

/// A single attribute value.
using Value = int64_t;

/// Sentinels standing in for -inf / +inf on numeric attributes. Chosen well
/// inside the int64 range so that the +/-1 arithmetic of query splits can
/// never overflow.
inline constexpr Value kNumericMin = INT64_MIN / 4;
inline constexpr Value kNumericMax = INT64_MAX / 4;

/// Categorical wildcard marker used in query predicates (categorical domains
/// start at 1, so 0 is free).
inline constexpr Value kCategoricalWildcard = 0;

}  // namespace hdc
