// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/schema.h"
#include "data/tuple.h"
#include "util/random.h"
#include "util/status.h"

namespace hdc {

/// Per-attribute summary used by the Figure 9 reproduction and by the
/// "project to the d most-distinct attributes" transform of Figures 10b/11b.
struct AttributeStats {
  std::string name;
  AttributeKind kind = AttributeKind::kNumeric;
  uint64_t distinct_values = 0;
  Value min_value = 0;
  Value max_value = 0;
};

/// A hidden database instance: a *bag* of tuples over a schema. Duplicate
/// tuples are allowed and meaningful (the paper's Problem 1 is only solvable
/// when no point carries more than k duplicates).
class Dataset {
 public:
  explicit Dataset(SchemaPtr schema);
  Dataset(SchemaPtr schema, std::vector<Tuple> tuples);

  const SchemaPtr& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a tuple; aborts if its arity or values do not fit the schema.
  void Add(Tuple tuple);

  /// Appends without validation (hot path for generators; validated datasets
  /// can call Validate() once at the end).
  void AddUnchecked(Tuple tuple) { tuples_.push_back(std::move(tuple)); }

  /// Checks every tuple against the schema.
  Status Validate() const;

  /// Largest number of identical tuples at any single point. Problem 1 is
  /// solvable iff this is <= k (Section 1.1).
  uint64_t MaxPointMultiplicity() const;

  /// Number of distinct points occupied.
  uint64_t DistinctPointCount() const;

  /// Per-attribute statistics (distinct counts, ranges).
  std::vector<AttributeStats> ComputeAttributeStats() const;

  /// Independent Bernoulli(p) sample of the bag — the sampling scheme of
  /// Figures 10c / 11c ("independently sampling each of its tuples with a
  /// 20% probability").
  Dataset BernoulliSample(double p, Rng* rng) const;

  /// Keeps only the given attributes (schema order preserved as listed).
  Dataset Project(const std::vector<size_t>& attribute_indices) const;

  /// Indices of the `d` attributes with the most distinct values, ordered as
  /// they appear in the schema — the selection rule of Figures 10b / 11b.
  std::vector<size_t> TopDistinctAttributes(size_t d) const;

  /// Saves as CSV with a header row of attribute names.
  Status SaveCsv(const std::string& path) const;

  /// True iff both bags contain exactly the same multiset of tuples.
  static bool MultisetEquals(const Dataset& a, const Dataset& b);

  /// Multiset difference size: |a \ b| + |b \ a| (0 iff equal).
  static uint64_t MultisetDistance(const Dataset& a, const Dataset& b);

 private:
  SchemaPtr schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace hdc
