// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/attribute.h"

namespace hdc {

class Schema;

/// Schemas are immutable and shared by datasets, queries and servers.
using SchemaPtr = std::shared_ptr<const Schema>;

/// Ordered list of attributes describing a data space D = dom(A1) x ... x
/// dom(Ad). The attribute *order* matters: the paper's algorithms consume
/// attributes left to right (Section 6 fixes the order per dataset), and the
/// experiments in Figures 10b / 11b vary which attributes participate.
class Schema {
 public:
  explicit Schema(std::vector<AttributeSpec> attributes);

  /// All-numeric space with unbounded domains.
  static SchemaPtr Numeric(size_t d);

  /// All-numeric space where attribute i spans [bounds[i].first,
  /// bounds[i].second].
  static SchemaPtr NumericBounded(std::vector<std::pair<Value, Value>> bounds);

  /// All-categorical space; domain_sizes[i] = U_{i+1}.
  static SchemaPtr Categorical(std::vector<uint64_t> domain_sizes);

  /// Arbitrary mix.
  static SchemaPtr Make(std::vector<AttributeSpec> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeSpec& attribute(size_t i) const { return attributes_[i]; }

  bool IsNumeric(size_t i) const { return attributes_[i].is_numeric(); }
  bool IsCategorical(size_t i) const {
    return attributes_[i].is_categorical();
  }

  /// Categorical domain size U_i (requires IsCategorical(i)).
  uint64_t domain_size(size_t i) const;

  /// Indices of categorical / numeric attributes, in schema order.
  const std::vector<size_t>& categorical_indices() const {
    return categorical_indices_;
  }
  const std::vector<size_t>& numeric_indices() const {
    return numeric_indices_;
  }

  size_t num_categorical() const { return categorical_indices_.size(); }
  size_t num_numeric() const { return numeric_indices_.size(); }

  bool all_numeric() const { return num_categorical() == 0; }
  bool all_categorical() const { return num_numeric() == 0; }

  /// Sum of categorical domain sizes (the Sigma U_i term of Theorem 1).
  uint64_t TotalCategoricalDomain() const;

  /// Human-readable one-liner, e.g. "Make:cat(85), Price:num".
  std::string ToString() const;

  /// Structural equality: names, kinds, categorical domains AND numeric
  /// bounds.
  bool operator==(const Schema& other) const;

  /// Compatibility for query evaluation: same attributes, kinds and
  /// categorical domains; numeric *bounds* may differ (they are crawler
  /// knowledge, not server contract — e.g. tightened by domain discovery).
  bool CompatibleWith(const Schema& other) const;

 private:
  std::vector<AttributeSpec> attributes_;
  std::vector<size_t> categorical_indices_;
  std::vector<size_t> numeric_indices_;
};

}  // namespace hdc
