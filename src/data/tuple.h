// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "data/value.h"

namespace hdc {

/// A point of the data space: one value per attribute, in schema order.
/// Tuples are plain value containers; a dataset may contain duplicates
/// (the database is a bag).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  Value operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Tuple& other) const {
    return values_ == other.values_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// Lexicographic order; used only for canonicalization (multiset compare,
  /// dataset sorting) — never for algorithmic decisions on categorical data.
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  /// FNV-1a style hash over the value sequence.
  size_t Hash() const;

  /// "(3, 1, 55)"
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHasher {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace hdc
