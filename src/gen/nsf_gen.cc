// Copyright (c) hdc authors. Apache-2.0 license.
#include "gen/nsf_gen.h"

#include "util/macros.h"
#include "util/random.h"

namespace hdc {

// The real NSF award data is strongly correlated: awards cluster by program
// (a program fixes the funding-amount bucket, instrument, field, state and
// NSF organisation, and is handled by a handful of program managers), and a
// PI belongs to one organisation in one city. The generator reproduces that
// dependency structure because it is what keeps deep data-space-tree nodes
// heavy — the regime where lazy-slice-cover's local answering beats DFS
// (Figure 11). Independent columns would let the tree thin out too early
// and understate the paper's gap.
Dataset GenerateNsf(const NsfGeneratorOptions& options) {
  // Figure 9 domain sizes, in the paper's attribute order.
  constexpr uint64_t kAmnt = 5, kInstru = 8, kField = 49, kPiState = 58,
                     kNsfOrg = 58, kProgMgr = 654, kCity = 1093,
                     kPiOrg = 3110, kPiName = 29042;
  HDC_CHECK_MSG(options.num_tuples >= kPiName,
                "need at least 29042 tuples to cover the PI-name domain");

  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("Amnt", kAmnt),
      AttributeSpec::Categorical("Instru", kInstru),
      AttributeSpec::Categorical("Field", kField),
      AttributeSpec::Categorical("PI-state", kPiState),
      AttributeSpec::Categorical("NSF-org", kNsfOrg),
      AttributeSpec::Categorical("Prog-mgr", kProgMgr),
      AttributeSpec::Categorical("City", kCity),
      AttributeSpec::Categorical("PI-org", kPiOrg),
      AttributeSpec::Categorical("PI-name", kPiName),
  });

  Rng rng(options.seed);
  const size_t n = options.num_tuples;

  // Program clusters: each fixes the five narrow attributes and a small
  // pool of program managers. Cluster popularity is Zipf(1.0).
  constexpr size_t kClusters = 400;
  constexpr size_t kMgrsPerCluster = 4;
  struct Cluster {
    Value amnt, instru, field, state, org;
    Value mgrs[kMgrsPerCluster];
  };
  ZipfDistribution amnt_dist(kAmnt, 0.4), instru_dist(kInstru, 0.9),
      field_dist(kField, 0.9), state_dist(kPiState, 0.8),
      org_dist(kNsfOrg, 0.9), mgr_dist(kProgMgr, 0.7),
      city_dist(kCity, 0.9), name_dist(kPiName, 0.5);
  std::vector<Cluster> clusters(kClusters);
  for (auto& c : clusters) {
    c.amnt = static_cast<Value>(amnt_dist.Sample(&rng));
    c.instru = static_cast<Value>(instru_dist.Sample(&rng));
    c.field = static_cast<Value>(field_dist.Sample(&rng));
    c.state = static_cast<Value>(state_dist.Sample(&rng));
    c.org = static_cast<Value>(org_dist.Sample(&rng));
    for (auto& m : c.mgrs) m = static_cast<Value>(mgr_dist.Sample(&rng));
  }
  ZipfDistribution cluster_dist(kClusters, 1.0);

  Dataset out(schema);
  for (size_t i = 0; i < n; ++i) {
    const Cluster& c = clusters[cluster_dist.Sample(&rng) - 1];
    std::vector<Value> v(9);
    // Narrow attributes from the cluster, with 5% independent noise.
    v[0] = rng.Bernoulli(0.05) ? static_cast<Value>(amnt_dist.Sample(&rng))
                               : c.amnt;
    v[1] = rng.Bernoulli(0.05) ? static_cast<Value>(instru_dist.Sample(&rng))
                               : c.instru;
    v[2] = rng.Bernoulli(0.05) ? static_cast<Value>(field_dist.Sample(&rng))
                               : c.field;
    v[3] = rng.Bernoulli(0.05) ? static_cast<Value>(state_dist.Sample(&rng))
                               : c.state;
    v[4] = rng.Bernoulli(0.05) ? static_cast<Value>(org_dist.Sample(&rng))
                               : c.org;
    // Program manager from the cluster's pool, 10% noise.
    v[5] = rng.Bernoulli(0.10)
               ? static_cast<Value>(mgr_dist.Sample(&rng))
               : c.mgrs[rng.UniformU64(kMgrsPerCluster)];
    // PI-name: the first 29,042 rows enumerate the domain (the paper's
    // observed-distinct == domain-size property), the rest are repeat
    // submitters drawn Zipf.
    v[8] = i < kPiName ? static_cast<Value>(i) + 1
                       : static_cast<Value>(name_dist.Sample(&rng));
    // A PI belongs to exactly one organisation; organisations sit in one
    // city (10% of awards list a satellite-campus city).
    v[7] = 1 + (v[8] - 1) % static_cast<Value>(kPiOrg);
    v[6] = rng.Bernoulli(0.10)
               ? static_cast<Value>(city_dist.Sample(&rng))
               : 1 + (v[7] - 1) % static_cast<Value>(kCity);

    // Domain-coverage overrides for the cluster-driven attributes (shuffled
    // below, so they act as uniform background noise).
    const uint64_t domains[6] = {kAmnt, kInstru, kField,
                                 kPiState, kNsfOrg, kProgMgr};
    for (size_t a = 0; a < 6; ++a) {
      if (i < domains[a]) v[a] = static_cast<Value>(i) + 1;
    }

    out.AddUnchecked(Tuple(std::move(v)));
  }

  std::vector<Tuple> rows = out.tuples();
  rng.Shuffle(&rows);
  return Dataset(schema, std::move(rows));
}

}  // namespace hdc
