// Copyright (c) hdc authors. Apache-2.0 license.
//
// Simulacrum of the UCI Adult census dataset as used in the paper's
// evaluation (Figure 9): 45,222 tuples, categorical Sex(2), Race(5),
// Rel(6), Edu(6), Marital(7), Wrk-class(8), Occ(14), Country(41) followed
// by numeric Edu-num, Age, Wrk-hr, Cap-loss, Cap-gain, Fnalwgt — exactly
// the paper's attribute order.
//
// The generator reproduces the *multiplicity structure* the experiments
// depend on: Fnalwgt is nearly duplicate-free (so rank-shrink performs
// almost no 3-way splits — the Figure 10b observation), Cap-gain/Cap-loss
// are ~90% zeros with a bounded set of non-zero values, and the distinct-
// value ordering Fnalwgt > Cap-gain > Cap-loss > Wrk-hr > Age > Edu-num
// matches the paper's attribute selection for Figure 10b.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace hdc {

struct AdultGeneratorOptions {
  size_t num_tuples = 45222;
  uint64_t seed = 2012;
};

/// The full mixed-space Adult dataset (8 categorical + 6 numeric).
Dataset GenerateAdult(const AdultGeneratorOptions& options = {});

/// Adult-numeric: only the 6 numeric attributes, same cardinality — the
/// dataset of Figure 10.
Dataset GenerateAdultNumeric(const AdultGeneratorOptions& options = {});

}  // namespace hdc
