// Copyright (c) hdc authors. Apache-2.0 license.
//
// Simulacrum of the NSF award-search dataset of the paper's evaluation
// (Figure 9): 47,816 tuples over 9 categorical attributes with domain sizes
// Amnt(5), Instru(8), Field(49), PI-state(58), NSF-org(58), Prog-mgr(654),
// City(1093), PI-org(3110), PI-name(29042). Each column is Zipf-skewed and
// covers its full domain (in the paper "the number of distinct values on
// each attribute equals the attribute's domain size"), which is exactly
// what drives categorical crawl cost.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace hdc {

struct NsfGeneratorOptions {
  size_t num_tuples = 47816;
  uint64_t seed = 2012;
};

Dataset GenerateNsf(const NsfGeneratorOptions& options = {});

}  // namespace hdc
