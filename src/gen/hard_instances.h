// Copyright (c) hdc authors. Apache-2.0 license.
//
// The lower-bound constructions of Section 4, used to demonstrate that the
// upper bounds of Theorem 1 are tight up to constants (Theorem 2).
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace hdc {

/// A worst-case input together with the number of queries any correct
/// algorithm provably needs on it.
struct HardInstance {
  Dataset dataset;
  uint64_t k = 0;
  /// Proven worst-case query lower bound (d*m for Theorem 3; d*U^2 as the
  /// Omega(dU^2) reference for Theorem 4).
  uint64_t lower_bound = 0;
  std::string name;
};

/// Theorem 3's numeric instance (Figure 7). Requires d <= k. The space is
/// [1, m+1]^d; group i (1 <= i <= m) holds k "diagonal" tuples at point
/// (i, ..., i) and d "non-diagonal" tuples, the j-th equal to the diagonal
/// except value i+1 on attribute Aj. n = m * (k + d); any algorithm needs at
/// least d*m queries.
HardInstance MakeHardNumericInstance(uint64_t k, size_t d, uint64_t m);

/// Theorem 4's categorical instance (Figure 8) with d = 2k attributes of
/// domain size U. Requires U >= 3 and k >= 3; the Omega(dU^2) bound
/// additionally needs d * U^2 <= 2^(d/4) (checked by
/// HardCategoricalBoundApplies). Group i (0 <= i <= U-1) holds d tuples, the
/// j-th taking value (i+1) mod U on attribute Aj and value i elsewhere
/// (stored 1-based). n = d * U.
HardInstance MakeHardCategoricalInstance(uint64_t k, uint64_t U);

/// True when the parameter regime of Theorem 4 holds, i.e. d*U^2 <= 2^(d/4)
/// with d = 2k.
bool HardCategoricalBoundApplies(uint64_t k, uint64_t U);

}  // namespace hdc
