// Copyright (c) hdc authors. Apache-2.0 license.
#include "gen/adult_gen.h"

#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace {

// Approximate marginals of the cleaned UCI Adult data (train + test,
// 45,222 rows). Only the shape matters for crawl cost: frequency skew and
// value multiplicities.
const std::vector<double> kSexWeights = {0.67, 0.33};
const std::vector<double> kRaceWeights = {0.855, 0.096, 0.031, 0.010, 0.008};
const std::vector<double> kRelWeights = {0.405, 0.255, 0.155, 0.105, 0.050,
                                         0.030};
const std::vector<double> kEduWeights = {0.32, 0.22, 0.16, 0.12, 0.10, 0.08};
const std::vector<double> kMaritalWeights = {0.46, 0.33, 0.14, 0.03,
                                             0.02, 0.01, 0.01};
const std::vector<double> kWrkClassWeights = {0.70,  0.08,  0.08, 0.04,
                                              0.035, 0.035, 0.02, 0.01};

// Edu (grouped, 6 buckets) -> typical years-of-education base for the
// correlated Edu-num attribute.
const int64_t kEduNumBase[6] = {13, 9, 10, 14, 11, 7};

}  // namespace

Dataset GenerateAdult(const AdultGeneratorOptions& options) {
  HDC_CHECK_MSG(options.num_tuples >= 41,
                "need at least 41 tuples to cover the Country domain");
  Rng rng(options.seed);

  std::vector<AttributeSpec> attrs = {
      AttributeSpec::Categorical("Sex", 2),
      AttributeSpec::Categorical("Race", 5),
      AttributeSpec::Categorical("Rel", 6),
      AttributeSpec::Categorical("Edu", 6),
      AttributeSpec::Categorical("Marital", 7),
      AttributeSpec::Categorical("Wrk-class", 8),
      AttributeSpec::Categorical("Occ", 14),
      AttributeSpec::Categorical("Country", 41),
      AttributeSpec::NumericBounded("Edu-num", 1, 16),
      AttributeSpec::NumericBounded("Age", 17, 90),
      AttributeSpec::NumericBounded("Wrk-hr", 1, 99),
      AttributeSpec::NumericBounded("Cap-loss", 0, 2290),
      AttributeSpec::NumericBounded("Cap-gain", 0, 100000),
      AttributeSpec::NumericBounded("Fnalwgt", 10000, 1500000),
  };
  SchemaPtr schema = Schema::Make(std::move(attrs));

  DiscreteDistribution sex(kSexWeights), race(kRaceWeights),
      rel(kRelWeights), edu(kEduWeights), marital(kMaritalWeights),
      wrk_class(kWrkClassWeights);
  ZipfDistribution occ(14, 0.7);
  // Country: ~90% value 1 (US), the rest Zipf over the remaining 40.
  ZipfDistribution country_rest(40, 0.8);
  // Non-zero capital gains: 150 fixed amounts, skewed toward the small end.
  ZipfDistribution cap_gain_levels(150, 0.5);

  Dataset out(schema);
  for (size_t i = 0; i < options.num_tuples; ++i) {
    std::vector<Value> v(14);
    v[0] = static_cast<Value>(sex.Sample(&rng)) + 1;
    v[1] = static_cast<Value>(race.Sample(&rng)) + 1;
    v[2] = static_cast<Value>(rel.Sample(&rng)) + 1;
    v[3] = static_cast<Value>(edu.Sample(&rng)) + 1;
    v[4] = static_cast<Value>(marital.Sample(&rng)) + 1;
    v[5] = static_cast<Value>(wrk_class.Sample(&rng)) + 1;
    v[6] = static_cast<Value>(occ.Sample(&rng));
    v[7] = rng.Bernoulli(0.90)
               ? 1
               : static_cast<Value>(country_rest.Sample(&rng)) + 1;

    // Domain coverage: the paper's domain sizes equal the observed distinct
    // counts, so force every categorical value to appear at least once
    // (rows are shuffled below).
    for (size_t a = 0; a < 8; ++a) {
      const uint64_t u = schema->domain_size(a);
      if (i < u) v[a] = static_cast<Value>(i) + 1;
    }

    // Edu-num correlates with the education bucket.
    v[8] = std::min<Value>(
        16, std::max<Value>(1, kEduNumBase[v[3] - 1] + rng.UniformInt(-2, 2)));
    v[9] = rng.NormalInt(38.6, 13.7, 17, 90);
    v[10] = rng.Bernoulli(0.47) ? 40 : rng.NormalInt(41.0, 12.0, 1, 99);
    v[11] = rng.Bernoulli(0.953)
                ? 0
                : 1300 + 10 * static_cast<Value>(rng.UniformU64(100));
    v[12] = rng.Bernoulli(0.916)
                ? 0
                : 114 + 667 * (static_cast<Value>(
                                   cap_gain_levels.Sample(&rng)) -
                               1);
    v[13] = rng.UniformInt(12285, 1490400);

    out.AddUnchecked(Tuple(std::move(v)));
  }

  // Shuffle so the coverage-forced prefix rows are not clustered.
  std::vector<Tuple> rows = out.tuples();
  rng.Shuffle(&rows);
  return Dataset(schema, std::move(rows));
}

Dataset GenerateAdultNumeric(const AdultGeneratorOptions& options) {
  Dataset full = GenerateAdult(options);
  // The 6 numeric attributes, in the paper's Figure 9 order.
  return full.Project({8, 9, 10, 11, 12, 13});
}

}  // namespace hdc
