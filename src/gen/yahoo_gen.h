// Copyright (c) hdc authors. Apache-2.0 license.
//
// Simulacrum of the Yahoo! Autos hidden database of the paper's evaluation
// (Figure 9): 69,768 tuples, categorical Owner(2), Body-style(7), Make(85)
// followed by numeric Mileage, Year, Price. Correlations mirror a used-car
// market (make determines price tier and body-style mix; mileage tracks
// age), and — reproducing the documented property that blocks k = 64 in
// Figure 12 — one listing appears as more than 64 identical tuples.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "data/tuple.h"

namespace hdc {

struct YahooGeneratorOptions {
  size_t num_tuples = 69768;
  uint64_t seed = 2012;
  /// Multiplicity of the heaviest duplicated listing. The paper's Yahoo
  /// data has more than 64 identical tuples (Section 6), making the crawl
  /// infeasible at k = 64 but fine at k >= 128.
  size_t max_duplicates = 70;
};

Dataset GenerateYahoo(const YahooGeneratorOptions& options = {});

/// The tuple duplicated `max_duplicates` times (exposed for tests).
Tuple YahooHeavyListing();

}  // namespace hdc
