// Copyright (c) hdc authors. Apache-2.0 license.
#include "gen/hard_instances.h"

#include "util/macros.h"

namespace hdc {

HardInstance MakeHardNumericInstance(uint64_t k, size_t d, uint64_t m) {
  HDC_CHECK_MSG(d >= 1 && m >= 1 && k >= 1, "positive parameters required");
  HDC_CHECK_MSG(static_cast<uint64_t>(d) <= k, "Theorem 3 requires d <= k");

  std::vector<std::pair<Value, Value>> bounds(
      d, {1, static_cast<Value>(m) + 1});
  SchemaPtr schema = Schema::NumericBounded(std::move(bounds));

  Dataset dataset(schema);
  for (uint64_t i = 1; i <= m; ++i) {
    std::vector<Value> diagonal(d, static_cast<Value>(i));
    for (uint64_t c = 0; c < k; ++c) dataset.AddUnchecked(Tuple(diagonal));
    for (size_t j = 0; j < d; ++j) {
      std::vector<Value> values = diagonal;
      values[j] = static_cast<Value>(i) + 1;
      dataset.AddUnchecked(Tuple(std::move(values)));
    }
  }

  HardInstance out{std::move(dataset), k, static_cast<uint64_t>(d) * m,
                   "hard-numeric(k=" + std::to_string(k) +
                       ",d=" + std::to_string(d) +
                       ",m=" + std::to_string(m) + ")"};
  return out;
}

bool HardCategoricalBoundApplies(uint64_t k, uint64_t U) {
  const uint64_t d = 2 * k;
  // d * U^2 <= 2^(d/4), avoiding overflow: cap the exponent.
  const uint64_t exponent = d / 4;
  if (exponent >= 63) return true;
  return d * U * U <= (1ULL << exponent);
}

HardInstance MakeHardCategoricalInstance(uint64_t k, uint64_t U) {
  HDC_CHECK_MSG(U >= 3, "Theorem 4 requires U >= 3");
  HDC_CHECK_MSG(k >= 3, "Theorem 4 requires k >= 3");
  const size_t d = static_cast<size_t>(2 * k);

  SchemaPtr schema = Schema::Categorical(std::vector<uint64_t>(d, U));

  // The paper uses values 0..U-1; categorical domains here are 1..U, so
  // every coordinate is stored +1. The shift is irrelevant: categorical
  // ordering carries no meaning.
  Dataset dataset(schema);
  for (uint64_t i = 0; i < U; ++i) {
    for (size_t j = 0; j < d; ++j) {
      std::vector<Value> values(d, static_cast<Value>(i) + 1);
      values[j] = static_cast<Value>((i + 1) % U) + 1;
      dataset.AddUnchecked(Tuple(std::move(values)));
    }
  }

  HardInstance out{std::move(dataset), k,
                   static_cast<uint64_t>(d) * U * U,
                   "hard-categorical(k=" + std::to_string(k) +
                       ",U=" + std::to_string(U) +
                       ",d=" + std::to_string(d) + ")"};
  return out;
}

}  // namespace hdc
