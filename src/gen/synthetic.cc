// Copyright (c) hdc authors. Apache-2.0 license.
#include "gen/synthetic.h"

#include <optional>

#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace {

Value DrawNumeric(Rng* rng, Value range, double skew,
                  const std::optional<ZipfDistribution>& zipf) {
  if (skew > 0.0) {
    return static_cast<Value>(zipf->Sample(rng)) - 1;
  }
  return rng->UniformInt(0, range - 1);
}

}  // namespace

Dataset GenerateSyntheticNumeric(const SyntheticNumericOptions& options) {
  HDC_CHECK(options.d >= 1 && options.value_range >= 1);
  Rng rng(options.seed);

  SchemaPtr schema;
  if (options.bounded_schema) {
    std::vector<std::pair<Value, Value>> bounds(
        options.d, {0, options.value_range - 1});
    schema = Schema::NumericBounded(std::move(bounds));
  } else {
    schema = Schema::Numeric(options.d);
  }

  std::optional<ZipfDistribution> zipf;
  if (options.value_skew > 0.0) {
    zipf.emplace(static_cast<uint64_t>(options.value_range),
                 options.value_skew);
  }

  auto draw_tuple = [&]() {
    std::vector<Value> values(options.d);
    for (auto& v : values) {
      v = DrawNumeric(&rng, options.value_range, options.value_skew, zipf);
    }
    return Tuple(std::move(values));
  };

  std::vector<Tuple> pool;
  for (size_t i = 0; i < options.duplicate_pool; ++i) {
    pool.push_back(draw_tuple());
  }

  Dataset out(schema);
  for (size_t i = 0; i < options.n; ++i) {
    if (options.duplicate_prob > 0.0 && !pool.empty() &&
        rng.Bernoulli(options.duplicate_prob)) {
      out.AddUnchecked(pool[rng.UniformU64(pool.size())]);
    } else {
      out.AddUnchecked(draw_tuple());
    }
  }
  return out;
}

Dataset GenerateSyntheticCategorical(
    const SyntheticCategoricalOptions& options) {
  HDC_CHECK(!options.domain_sizes.empty());
  Rng rng(options.seed);
  SchemaPtr schema = Schema::Categorical(options.domain_sizes);

  std::vector<ZipfDistribution> dists;
  dists.reserve(options.domain_sizes.size());
  for (uint64_t u : options.domain_sizes) {
    dists.emplace_back(u, options.zipf_s);
  }

  auto draw_tuple = [&]() {
    std::vector<Value> values(options.domain_sizes.size());
    for (size_t a = 0; a < values.size(); ++a) {
      values[a] = static_cast<Value>(dists[a].Sample(&rng));
    }
    return Tuple(std::move(values));
  };

  std::vector<Tuple> pool;
  for (size_t i = 0; i < options.duplicate_pool; ++i) {
    pool.push_back(draw_tuple());
  }

  Dataset out(schema);
  for (size_t i = 0; i < options.n; ++i) {
    if (options.duplicate_prob > 0.0 && !pool.empty() &&
        rng.Bernoulli(options.duplicate_prob)) {
      out.AddUnchecked(pool[rng.UniformU64(pool.size())]);
    } else {
      out.AddUnchecked(draw_tuple());
    }
  }
  return out;
}

Dataset GenerateSyntheticMixed(const SyntheticMixedOptions& options) {
  HDC_CHECK(options.num_numeric >= 1 || !options.domain_sizes.empty());
  Rng rng(options.seed);

  std::vector<AttributeSpec> attrs;
  for (size_t i = 0; i < options.domain_sizes.size(); ++i) {
    attrs.push_back(AttributeSpec::Categorical("C" + std::to_string(i + 1),
                                               options.domain_sizes[i]));
  }
  for (size_t i = 0; i < options.num_numeric; ++i) {
    attrs.push_back(AttributeSpec::NumericBounded(
        "N" + std::to_string(i + 1), 0, options.value_range - 1));
  }
  SchemaPtr schema = Schema::Make(std::move(attrs));

  std::vector<ZipfDistribution> cat_dists;
  for (uint64_t u : options.domain_sizes) {
    cat_dists.emplace_back(u, options.zipf_s);
  }
  std::optional<ZipfDistribution> num_zipf;
  if (options.value_skew > 0.0) {
    num_zipf.emplace(static_cast<uint64_t>(options.value_range),
                     options.value_skew);
  }

  auto draw_tuple = [&]() {
    std::vector<Value> values;
    values.reserve(schema->num_attributes());
    for (auto& dist : cat_dists) {
      values.push_back(static_cast<Value>(dist.Sample(&rng)));
    }
    for (size_t i = 0; i < options.num_numeric; ++i) {
      values.push_back(DrawNumeric(&rng, options.value_range,
                                   options.value_skew, num_zipf));
    }
    return Tuple(std::move(values));
  };

  std::vector<Tuple> pool;
  for (size_t i = 0; i < options.duplicate_pool; ++i) {
    pool.push_back(draw_tuple());
  }

  Dataset out(schema);
  for (size_t i = 0; i < options.n; ++i) {
    if (options.duplicate_prob > 0.0 && !pool.empty() &&
        rng.Bernoulli(options.duplicate_prob)) {
      out.AddUnchecked(pool[rng.UniformU64(pool.size())]);
    } else {
      out.AddUnchecked(draw_tuple());
    }
  }
  return out;
}

}  // namespace hdc
