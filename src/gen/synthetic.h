// Copyright (c) hdc authors. Apache-2.0 license.
//
// Fully synthetic dataset families for unit and property tests: random
// numeric/categorical/mixed bags with controllable skew and whole-tuple
// duplication (the stress case for rank-shrink's 3-way splits and for the
// solvability boundary of Problem 1).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace hdc {

struct SyntheticNumericOptions {
  size_t d = 2;
  size_t n = 1000;
  /// Values are drawn from [0, value_range).
  Value value_range = 1000;
  /// Zipf skew of the value distribution (0 = uniform); skew produces heavy
  /// per-attribute ties, triggering 3-way splits.
  double value_skew = 0.0;
  /// With this probability a tuple is a copy of one of `duplicate_pool`
  /// fixed tuples — whole-point multiplicity.
  double duplicate_prob = 0.0;
  size_t duplicate_pool = 4;
  /// Record [0, value_range) bounds in the schema (needed by binary-shrink).
  bool bounded_schema = true;
  uint64_t seed = 1;
};

Dataset GenerateSyntheticNumeric(const SyntheticNumericOptions& options);

struct SyntheticCategoricalOptions {
  std::vector<uint64_t> domain_sizes = {4, 4, 4};
  size_t n = 1000;
  /// Zipf skew per attribute value distribution (0 = uniform).
  double zipf_s = 0.8;
  double duplicate_prob = 0.0;
  size_t duplicate_pool = 4;
  uint64_t seed = 1;
};

Dataset GenerateSyntheticCategorical(
    const SyntheticCategoricalOptions& options);

struct SyntheticMixedOptions {
  std::vector<uint64_t> domain_sizes = {4, 8};  // categorical attrs first
  size_t num_numeric = 2;
  size_t n = 1000;
  Value value_range = 1000;
  double zipf_s = 0.8;
  double value_skew = 0.0;
  double duplicate_prob = 0.0;
  size_t duplicate_pool = 4;
  uint64_t seed = 1;
};

Dataset GenerateSyntheticMixed(const SyntheticMixedOptions& options);

}  // namespace hdc
