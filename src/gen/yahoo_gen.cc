// Copyright (c) hdc authors. Apache-2.0 license.
#include "gen/yahoo_gen.h"

#include <cmath>

#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace {

SchemaPtr MakeYahooSchema() {
  return Schema::Make({
      AttributeSpec::Categorical("Owner", 2),
      AttributeSpec::Categorical("Body-style", 7),
      AttributeSpec::Categorical("Make", 85),
      AttributeSpec::NumericBounded("Mileage", 0, 300000),
      AttributeSpec::NumericBounded("Year", 1981, 2012),
      AttributeSpec::NumericBounded("Price", 200, 200000),
  });
}

// Price tier by make (cycled over the 85 makes).
const Value kTierBase[5] = {3000, 8000, 15000, 30000, 60000};

}  // namespace

Tuple YahooHeavyListing() {
  // Owner=1, Body-style=1, Make=1, Mileage=12000, Year=2011, Price=15950 —
  // a fleet listing posted many times.
  return Tuple({1, 1, 1, 12000, 2011, 15950});
}

Dataset GenerateYahoo(const YahooGeneratorOptions& options) {
  HDC_CHECK_MSG(options.num_tuples >= 85 + options.max_duplicates,
                "need enough tuples to cover the Make domain plus the "
                "duplicated listing");
  Rng rng(options.seed);
  SchemaPtr schema = MakeYahooSchema();

  ZipfDistribution make_dist(85, 1.0);
  const std::vector<double> body_weights = {0.30, 0.22, 0.13, 0.12,
                                            0.08, 0.08, 0.07};
  DiscreteDistribution body_dist(body_weights);

  Dataset out(schema);
  const size_t organic = options.num_tuples - options.max_duplicates;
  for (size_t i = 0; i < organic; ++i) {
    std::vector<Value> v(6);
    // Make, with forced domain coverage on the first 85 rows.
    v[2] = i < 85 ? static_cast<Value>(i) + 1
                  : static_cast<Value>(make_dist.Sample(&rng));
    // Body-style mix rotates with the make (correlation), forced coverage
    // on the first 7 rows.
    v[1] = i < 7 ? static_cast<Value>(i) + 1
                 : 1 + static_cast<Value>((body_dist.Sample(&rng) + v[2]) % 7);
    v[0] = i < 2 ? static_cast<Value>(i) + 1 : (rng.Bernoulli(0.55) ? 1 : 2);

    const Value year = rng.NormalInt(2006.0, 5.0, 1981, 2012);
    v[4] = year;
    const Value age = 2012 - year;

    // Mileage tracks age; a quarter of listings round to the nearest
    // thousand (sellers do), creating value ties.
    Value mileage = age * 12000 + rng.NormalInt(0.0, 15000.0, -36000, 36000);
    mileage = std::max<Value>(0, std::min<Value>(300000, mileage));
    if (rng.Bernoulli(0.25)) mileage = (mileage + 500) / 1000 * 1000;
    v[3] = mileage;

    // Price: make-tier base with exponential depreciation, rounded to $50
    // steps (ties again).
    const Value base = kTierBase[(v[2] - 1) % 5];
    double price = static_cast<double>(base) *
                       std::pow(0.9, static_cast<double>(age)) +
                   static_cast<double>(rng.NormalInt(
                       0.0, static_cast<double>(base) * 0.15,
                       -base / 2, base / 2));
    Value p = static_cast<Value>(std::llround(price / 50.0)) * 50;
    v[5] = std::max<Value>(200, std::min<Value>(200000, p));

    out.AddUnchecked(Tuple(std::move(v)));
  }

  const Tuple heavy = YahooHeavyListing();
  for (size_t i = 0; i < options.max_duplicates; ++i) {
    out.AddUnchecked(heavy);
  }

  std::vector<Tuple> rows = out.tuples();
  rng.Shuffle(&rows);
  return Dataset(schema, std::move(rows));
}

}  // namespace hdc
