// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/answer_cache.h"

#include <utility>

#include "util/sha256.h"

namespace hdc {
namespace {

void AppendU64(std::string* out, uint64_t v) {
  for (size_t i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

}  // namespace

const char* RevalidationPolicyName(RevalidationPolicy policy) {
  switch (policy) {
    case RevalidationPolicy::kAlwaysFresh:
      return "always-fresh";
    case RevalidationPolicy::kTtl:
      return "ttl";
    case RevalidationPolicy::kVersionCheck:
      return "version-check";
  }
  return "?";
}

std::string CanonicalQueryKey(const Query& query) {
  // Query's constructor already sorted the predicate set into
  // schema-ordered interval slots, so packing every (lo, hi) in slot order
  // IS the canonical sorted-rectangle form. Every slot is included —
  // wildcards and full numeric ranges too — so keys from different schema
  // views (SchemaOverrideServer) can never alias.
  const size_t arity = query.schema()->num_attributes();
  std::string key;
  key.reserve(16 * arity);
  for (size_t i = 0; i < arity; ++i) {
    AppendU64(&key, static_cast<uint64_t>(query.lo(i)));
    AppendU64(&key, static_cast<uint64_t>(query.hi(i)));
  }
  return key;
}

uint64_t HashResponse(const Response& response) {
  Sha256Stream hash;
  hash.UpdateU64(response.overflow ? 1 : 0);
  hash.UpdateU64(response.tuples.size());
  for (const ReturnedTuple& rt : response.tuples) {
    hash.UpdateU64(rt.hidden_id);
    hash.UpdateU64(rt.tuple.size());
    for (const Value v : rt.tuple.values()) {
      hash.UpdateU64(static_cast<uint64_t>(v));
    }
  }
  return hash.Finish64();
}

AnswerCache::AnswerCache(AnswerCacheOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Get()) {}

AnswerCache::ProbeResult AnswerCache::Probe(const Query& query,
                                            uint64_t server_version,
                                            Response* out,
                                            uint64_t* cached_hash) {
  if (options_.policy == RevalidationPolicy::kAlwaysFresh) {
    // Never consult the store: behavior must be indistinguishable from the
    // undecorated server.
    return ProbeResult::kMiss;
  }
  MutexLock lock(&mu_);
  auto it = entries_.find(CanonicalQueryKey(query));
  if (it == entries_.end()) return ProbeResult::kMiss;
  const Entry& entry = it->second;
  bool fresh = false;
  if (options_.policy == RevalidationPolicy::kTtl) {
    fresh = clock_->Now() - entry.fill_time < options_.ttl;
  } else {  // kVersionCheck
    fresh = entry.version == server_version;
  }
  if (fresh) {
    ++stats_.hits;
    if (out != nullptr) *out = entry.response;
    return ProbeResult::kHit;
  }
  if (cached_hash != nullptr) *cached_hash = entry.hash;
  return ProbeResult::kRevalidate;
}

void AnswerCache::StoreMiss(const Query& query, const Response& response,
                            uint64_t server_version) {
  Entry entry;
  entry.response = response;
  entry.hash = HashResponse(response);
  entry.version = server_version;
  entry.fill_time = clock_->Now();
  MutexLock lock(&mu_);
  ++stats_.misses;
  InsertLocked(CanonicalQueryKey(query), std::move(entry));
}

bool AnswerCache::StoreRevalidation(const Query& query,
                                    const Response& response,
                                    uint64_t server_version) {
  const uint64_t hash = HashResponse(response);
  const std::string key = CanonicalQueryKey(query);
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  const bool matched = it != entries_.end() && it->second.hash == hash;
  if (matched) {
    ++stats_.revalidations_matched;
    // Refresh the proof of freshness; the content stays as stored.
    it->second.version = server_version;
    it->second.fill_time = clock_->Now();
    return true;
  }
  ++stats_.revalidations_changed;
  Entry entry;
  entry.response = response;
  entry.hash = hash;
  entry.version = server_version;
  entry.fill_time = clock_->Now();
  if (it != entries_.end()) {
    it->second = std::move(entry);
  } else {
    InsertLocked(key, std::move(entry));
  }
  return false;
}

void AnswerCache::Seed(const Query& query, const Response& response,
                       uint64_t hash, uint64_t version) {
  Entry entry;
  entry.response = response;
  entry.hash = hash;
  entry.version = version;
  entry.fill_time = clock_->Now();
  MutexLock lock(&mu_);
  InsertLocked(CanonicalQueryKey(query), std::move(entry));
}

void AnswerCache::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
  fill_order_.clear();
}

size_t AnswerCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

AnswerCacheStats AnswerCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void AnswerCache::InsertLocked(const std::string& key, Entry entry) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second = std::move(entry);
    return;
  }
  entries_.emplace(key, std::move(entry));
  fill_order_.push_back(key);
  if (options_.max_entries > 0) {
    while (entries_.size() > options_.max_entries && !fill_order_.empty()) {
      entries_.erase(fill_order_.front());
      fill_order_.pop_front();
    }
  }
}

}  // namespace hdc
