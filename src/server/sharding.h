// Copyright (c) hdc authors. Apache-2.0 license.
//
// Scatter-gather sharding behind the HiddenDbServer seam: one logical
// hidden database served by N partition backends, provably answer-identical
// to the single-index server.
//
// Why the top-k contract composes across partitions (the merge proof the
// whole subsystem rests on):
//
//   Partition the bag D into disjoint shards D_1..D_N and give every shard
//   the *global* ranking (each shard ranks its rows by the priorities the
//   unsharded index would have assigned; ties break by global row id, and
//   the partitioner preserves global id order inside each shard, so a
//   shard's local tie-break agrees with the global one). For any query q:
//
//   - Membership: q(D) = q(D_1) ∪ ... ∪ q(D_N), a disjoint union.
//   - Containment: every tuple of the global top-k of q(D) is, a fortiori,
//     in the top-k of its own shard's q(D_i). So the union of per-shard
//     top-k answers is a superset of the global top-k, and re-ranking that
//     union by the global priorities and cutting at k reproduces the
//     single-index answer exactly.
//   - Overflow: q overflows iff |q(D)| = Σ|q(D_i)| > k. A resolved shard
//     answer carries its exact count (its rows); an overflowing shard
//     answer proves |q(D_i)| >= k+1 on its own. Hence the merged flag is
//     "some shard overflowed, or the summed candidate rows exceed k" —
//     computed from per-shard candidate counts, never by looking at how
//     many rows survived the merge cut (the merged row count is min(Σ, k)
//     and cannot distinguish |q(D)| = k from |q(D)| > k when one shard
//     already hit its own cap).
//   - Order: an overflowing merged answer is sorted by global rank (best
//     first); a resolved one is the whole bag sorted by global row id —
//     byte-identical to LocalIndex's response ordering either way.
//
// ShardPlan is the partitioner: it splits one Dataset into N shard
// datasets (hash or range on the global row id, order-preserving), assigns
// the global ranking once, and hands each shard its slice of the priority
// table plus the local-to-global id map. ShardedServer is the gather half:
// a full HiddenDbServer that scatters every IssueBatch round to its N
// backends — in-process LocalServers or RemoteServers across the wire —
// and merges per-member answers as above. Crawlers, decorators and
// CrawlContext work against it unchanged, and a crawl through it is
// byte-identical (extraction, query count, conversation transcript) to the
// same crawl against the unsharded server.
//
// Failure semantics: a shard failing mid-batch truncates the *merged*
// answered prefix to the shortest per-shard prefix — members the merge
// could not complete are never partially answered — and the batch returns
// the failing shard's status. Healthy shards may have answered further
// members server-side; resubmitting the suffix re-asks them (answers are
// deterministic, so nothing diverges), which matches the IssueBatch
// contract's view that the client re-submits from the first unanswered
// member. Client-visible billing (one query per member, however many
// shards it scattered to) is what the paper's cost model counts, and is
// what stays identical to the unsharded conversation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "server/local_index.h"
#include "server/local_server.h"
#include "server/server.h"

namespace hdc {

/// How ShardPlan deals rows to shards.
enum class ShardSplit {
  kHash,   ///< mixed hash of the global row id: balanced, order-free
  kRange,  ///< contiguous global-id ranges: locality-preserving
};

struct ShardPlanOptions {
  unsigned num_shards = 2;
  ShardSplit split = ShardSplit::kHash;
};

/// The partition of one dataset: per-shard datasets (global id order
/// preserved inside each shard), the local-to-global id maps, the global
/// priority table, and each shard's slice of it. Immutable once built;
/// copyable handles via shared_ptr members.
class ShardPlan {
 public:
  /// Splits `dataset` into `options.num_shards` shards and assigns the
  /// global ranking. `policy` null means the paper's default ranking with
  /// the same seed LocalIndex uses, so a plan over a dataset matches a
  /// plain `LocalServer(dataset, k)` reference bit for bit.
  static ShardPlan Partition(std::shared_ptr<const Dataset> dataset,
                             uint64_t k,
                             std::unique_ptr<RankingPolicy> policy = nullptr,
                             ShardPlanOptions options = {});

  size_t num_shards() const { return shards_.size(); }
  uint64_t k() const { return k_; }
  const SchemaPtr& schema() const { return dataset_->schema(); }
  const std::shared_ptr<const Dataset>& dataset() const { return dataset_; }

  const std::shared_ptr<const Dataset>& shard_dataset(size_t shard) const {
    return shards_[shard].dataset;
  }
  /// Local row id -> global row id for one shard (ascending: the
  /// partitioner preserves global order inside a shard).
  const std::vector<uint64_t>& shard_global_ids(size_t shard) const {
    return shards_[shard].global_ids;
  }
  /// The global priorities of one shard's rows, in shard row order — the
  /// vector to feed a FixedPriorityPolicy when building the shard's index.
  const std::vector<uint64_t>& shard_priorities(size_t shard) const {
    return shards_[shard].priorities;
  }
  /// The global priority table (indexed by global row id) the gather side
  /// merges with.
  const std::vector<uint64_t>& global_priorities() const {
    return *global_priorities_;
  }
  std::shared_ptr<const std::vector<uint64_t>> shared_global_priorities()
      const {
    return global_priorities_;
  }

  /// Builds shard `shard`'s evaluation index: the shard dataset under the
  /// shard's slice of the global ranking.
  std::shared_ptr<const LocalIndex> BuildShardIndex(
      size_t shard, IndexEngine engine = IndexEngine::kBitmap) const;

 private:
  struct Shard {
    std::shared_ptr<const Dataset> dataset;
    std::vector<uint64_t> global_ids;
    std::vector<uint64_t> priorities;
  };

  std::shared_ptr<const Dataset> dataset_;
  uint64_t k_ = 0;
  std::shared_ptr<const std::vector<uint64_t>> global_priorities_;
  std::vector<Shard> shards_;
};

/// One gather-side backend: any HiddenDbServer serving one shard, plus the
/// map from its local hidden ids back to global row ids.
struct ShardBackend {
  std::unique_ptr<HiddenDbServer> server;
  std::vector<uint64_t> global_ids;
};

struct ShardedServerOptions {
  /// Scatter each round to the shards on parallel threads (one per extra
  /// shard; the calling thread takes shard 0). Indispensable for remote
  /// shards — sequential scatter would serialize N wire round-trips —
  /// and harmless in-process. false scatters sequentially (deterministic
  /// single-threaded mode for debugging).
  bool parallel_scatter = true;
};

/// Cumulative per-shard accounting of one ShardedServer conversation.
struct ShardStats {
  /// Batch members this shard answered (incl. members a later-failing
  /// round discarded from the merged prefix).
  uint64_t members_answered = 0;
  /// Candidate rows this shard contributed to merges.
  uint64_t candidates_contributed = 0;
  /// This shard's own overflow flags across answered members.
  uint64_t overflows = 0;
  /// Rounds this shard failed (transport fault, budget, ...).
  uint64_t failures = 0;
};

/// The scatter-gather HiddenDbServer over N shard backends. Single
/// conversation, like every server; the scatter threads live only inside
/// one IssueBatch call.
class ShardedServer : public HiddenDbServer {
 public:
  /// `shards` must all present the same k and schema (checked); every
  /// local id a shard ever returns must map through its global_ids table
  /// into `global_priorities`. The convenience factories below build the
  /// common stacks.
  ShardedServer(std::vector<ShardBackend> shards,
                std::shared_ptr<const std::vector<uint64_t>> global_priorities,
                ShardedServerOptions options = {});

  /// In-process sharding over a plan: one LocalServer per shard, each on
  /// its shard index under the global ranking.
  static std::unique_ptr<ShardedServer> OverPlan(
      const ShardPlan& plan, IndexEngine engine = IndexEngine::kBitmap,
      ShardedServerOptions options = {});

  Status Issue(const Query& query, Response* response) override;
  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override;

  uint64_t k() const override { return k_; }
  const SchemaPtr& schema() const override { return schema_; }
  /// Shards evaluate scattered rounds concurrently, so the useful round
  /// width is the sum of the shards' own parallelism hints.
  unsigned batch_parallelism() const override;
  /// Aggregated feedback: latency_feedback if any shard crosses a wire,
  /// summed queue waits, plus the per-shard queue-wait vector adaptive
  /// batch sizing uses to see the straggler shard (core/batch_sizer.h).
  ServerLoadHint load_hint() const override;
  /// Sum of the shard counters — monotonic, and moves iff a shard mutated.
  uint64_t db_version() const override;

  size_t num_shards() const { return shards_.size(); }
  HiddenDbServer* shard(size_t i) { return shards_[i].server.get(); }

  /// Merged members answered to the caller (the client-visible bill).
  uint64_t queries_answered() const { return queries_answered_; }
  /// Scatter rounds driven (IssueBatch calls, including failed ones).
  uint64_t rounds() const { return rounds_; }
  /// Merged answers that overflowed.
  uint64_t merged_overflows() const { return merged_overflows_; }
  const ShardStats& shard_stats(size_t i) const { return stats_[i]; }

 private:
  /// Merges member `member` of the gathered per-shard responses into
  /// `out`. Fails (Internal) when a shard returned a local id outside its
  /// map — a corrupt or mismatched backend, never the data's fault.
  Status MergeMember(std::vector<std::vector<Response>>& gathered,
                     size_t member, Response* out);

  std::vector<ShardBackend> shards_;
  std::shared_ptr<const std::vector<uint64_t>> global_priorities_;
  ShardedServerOptions options_;
  uint64_t k_ = 0;
  SchemaPtr schema_;

  std::vector<ShardStats> stats_;
  uint64_t queries_answered_ = 0;
  uint64_t rounds_ = 0;
  uint64_t merged_overflows_ = 0;

  /// Scratch reused across merges: (priority, global id, shard, row slot).
  struct MergeEntry {
    uint64_t priority;
    uint64_t global_id;
    uint32_t shard;
    uint32_t slot;
  };
  std::vector<MergeEntry> merge_scratch_;
};

}  // namespace hdc
