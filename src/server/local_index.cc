// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/local_index.h"

#include <algorithm>

#include "util/macros.h"
#include "util/worker_pool.h"

namespace hdc {

LocalIndex::LocalIndex(std::shared_ptr<const Dataset> dataset, uint64_t k,
                       std::unique_ptr<RankingPolicy> policy,
                       LocalIndexOptions options)
    : dataset_(std::move(dataset)), k_(k), options_(options) {
  HDC_CHECK(dataset_ != nullptr);
  HDC_CHECK_MSG(k_ >= 1, "the result limit k must be positive");

  if (policy == nullptr) policy = MakeRandomPriorityPolicy(0x5eedULL);
  priorities_ = policy->AssignPriorities(*dataset_);
  HDC_CHECK(priorities_.size() == dataset_->size());

  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();
  const size_t n = dataset_->size();
  HDC_CHECK_MSG(n <= UINT32_MAX, "row ids are 32-bit");

  columns_.assign(d, {});
  for (size_t a = 0; a < d; ++a) {
    columns_[a].resize(n);
    for (size_t i = 0; i < n; ++i) columns_[a][i] = dataset_->tuple(i)[a];
  }

  if (options_.use_index) {
    postings_.assign(d, {});
    sorted_ids_.assign(d, {});
    sorted_values_.assign(d, {});
    for (size_t a = 0; a < d; ++a) {
      if (schema.IsCategorical(a)) {
        postings_[a].assign(schema.domain_size(a) + 1, {});
        for (size_t i = 0; i < n; ++i) {
          postings_[a][static_cast<size_t>(columns_[a][i])].push_back(
              static_cast<uint32_t>(i));
        }
      } else {
        auto& ids = sorted_ids_[a];
        ids.resize(n);
        for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
        const auto& col = columns_[a];
        std::sort(ids.begin(), ids.end(), [&col](uint32_t x, uint32_t y) {
          return col[x] != col[y] ? col[x] < col[y] : x < y;
        });
        auto& vals = sorted_values_[a];
        vals.resize(n);
        for (size_t i = 0; i < n; ++i) vals[i] = col[ids[i]];
      }
    }
  }
}

bool LocalIndex::IsCrawlable() const {
  return dataset_->MaxPointMultiplicity() <= k_;
}

bool LocalIndex::VerifyRow(const Query& query, uint32_t id,
                           size_t skip_attr) const {
  const size_t d = columns_.size();
  for (size_t a = 0; a < d; ++a) {
    if (a == skip_attr) continue;
    const AttrInterval& ext = query.extent(a);
    const Value v = columns_[a][id];
    if (v < ext.lo || v > ext.hi) return false;
  }
  return true;
}

void LocalIndex::CollectMatchesScan(const Query& query,
                                    std::vector<uint32_t>* out) const {
  const size_t n = dataset_->size();
  for (size_t i = 0; i < n; ++i) {
    if (query.Matches(dataset_->tuple(i))) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

bool LocalIndex::CoversDomain(const Query& query, size_t a) const {
  const AttributeSpec& spec = dataset_->schema()->attribute(a);
  const AttrInterval& ext = query.extent(a);
  if (spec.is_categorical()) {
    return ext.lo <= 1 && ext.hi >= static_cast<Value>(spec.domain_size);
  }
  return ext.lo <= spec.lo && ext.hi >= spec.hi;
}

void LocalIndex::CollectMatchesIndexed(const Query& query,
                                       std::vector<uint32_t>* out) const {
  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();
  const size_t n = dataset_->size();

  // Pick the most selective constraining predicate as the candidate
  // driver. Note Query::IsWildcard would be wrong here: it is relative to
  // the *query's* schema, whose bounds a session's schema override may have
  // narrowed below this dataset's — such a predicate still excludes rows.
  size_t best_attr = d;
  size_t best_size = n + 1;
  for (size_t a = 0; a < d; ++a) {
    if (CoversDomain(query, a)) continue;
    const AttrInterval& ext = query.extent(a);
    size_t size;
    if (schema.IsCategorical(a)) {
      // Categorical non-wildcard slots are always pinned.
      size = postings_[a][static_cast<size_t>(ext.lo)].size();
    } else {
      const auto& vals = sorted_values_[a];
      auto lo_it = std::lower_bound(vals.begin(), vals.end(), ext.lo);
      auto hi_it = std::upper_bound(vals.begin(), vals.end(), ext.hi);
      size = static_cast<size_t>(hi_it - lo_it);
    }
    if (size < best_size) {
      best_size = size;
      best_attr = a;
    }
  }

  if (best_attr == d) {
    // Every predicate covers the whole server-side domain: all rows
    // qualify.
    out->resize(n);
    for (size_t i = 0; i < n; ++i) (*out)[i] = static_cast<uint32_t>(i);
    return;
  }

  const AttrInterval& ext = query.extent(best_attr);
  if (schema.IsCategorical(best_attr)) {
    for (uint32_t id : postings_[best_attr][static_cast<size_t>(ext.lo)]) {
      if (VerifyRow(query, id, best_attr)) out->push_back(id);
    }
  } else {
    const auto& vals = sorted_values_[best_attr];
    const auto& ids = sorted_ids_[best_attr];
    size_t lo_idx = static_cast<size_t>(
        std::lower_bound(vals.begin(), vals.end(), ext.lo) - vals.begin());
    size_t hi_idx = static_cast<size_t>(
        std::upper_bound(vals.begin(), vals.end(), ext.hi) - vals.begin());
    for (size_t i = lo_idx; i < hi_idx; ++i) {
      uint32_t id = ids[i];
      if (VerifyRow(query, id, best_attr)) out->push_back(id);
    }
    // The driver range is ordered by value; restore id order so responses
    // are independent of which index drove the query.
    std::sort(out->begin(), out->end());
  }
}

void LocalIndex::CollectMatches(const Query& query,
                                std::vector<uint32_t>* out) const {
  out->clear();
  if (options_.use_index) {
    CollectMatchesIndexed(query, out);
  } else {
    CollectMatchesScan(query, out);
  }
}

uint64_t LocalIndex::CountMatches(const Query& query) const {
  std::vector<uint32_t> matches;
  CollectMatches(query, &matches);
  return matches.size();
}

void LocalIndex::AnswerQuery(const Query& query, Response* response,
                             std::vector<uint32_t>* scratch,
                             QueryStats* stats) const {
  HDC_CHECK(response != nullptr);
  HDC_CHECK_MSG(query.schema() != nullptr &&
                    query.schema()->CompatibleWith(*dataset_->schema()),
                "query schema does not match the server's data space");
  ++stats->queries;

  CollectMatches(query, scratch);
  response->tuples.clear();

  const size_t count = scratch->size();
  response->overflow = count > k_;
  if (response->overflow) {
    ++stats->overflows;
    // Keep the k highest-priority rows (ties by id ascending) — the fixed
    // ranking a real site would apply.
    auto better = [this](uint32_t x, uint32_t y) {
      return priorities_[x] != priorities_[y] ? priorities_[x] > priorities_[y]
                                              : x < y;
    };
    std::nth_element(scratch->begin(), scratch->begin() + k_, scratch->end(),
                     better);
    scratch->resize(k_);
    std::sort(scratch->begin(), scratch->end(), better);
  }

  response->tuples.reserve(scratch->size());
  for (uint32_t id : *scratch) {
    response->tuples.push_back(ReturnedTuple{dataset_->tuple(id), id});
  }
  stats->tuples += response->tuples.size();
}

void EvaluateBatch(const LocalIndex& index, WorkerPool* pool,
                   const std::vector<Query>& queries,
                   std::vector<Response>* responses, QueryStats* stats,
                   uint64_t lane) {
  HDC_CHECK(responses != nullptr);
  HDC_CHECK(stats != nullptr);
  const size_t n = queries.size();
  responses->assign(n, Response{});
  if (pool == nullptr || pool->threads() == 0 || n <= 1) {
    std::vector<uint32_t> scratch;
    for (size_t i = 0; i < n; ++i) {
      index.AnswerQuery(queries[i], &(*responses)[i], &scratch, stats);
    }
    return;
  }

  // Per-member stat slots keep the workers write-disjoint; the per-thread
  // scratch amortises allocations across members and batches.
  std::vector<QueryStats> deltas(n);
  pool->ParallelFor(lane, n, [&](size_t i) {
    static thread_local std::vector<uint32_t> scratch;
    index.AnswerQuery(queries[i], &(*responses)[i], &scratch, &deltas[i]);
  });
  for (const QueryStats& delta : deltas) stats->Add(delta);
}

}  // namespace hdc
