// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/local_index.h"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HDC_X86 1
#endif

#include "util/macros.h"
#include "util/worker_pool.h"

namespace hdc {

namespace {

inline int PopCount(uint64_t w) { return __builtin_popcountll(w); }
inline int CountTrailingZeros(uint64_t w) { return __builtin_ctzll(w); }

/// When a numeric range matches fewer ids than 1/8 of the dataset, it is
/// worth materializing it into a driver bitmap from the sorted array
/// instead of testing rows block by block.
constexpr uint64_t kMaterializeDivisor = 8;

/// A range driver is materialized only when it is decisively smaller than
/// the cheapest categorical bitmap; otherwise the bitmaps drive and the
/// range is applied lazily to the (already small) survivor set.
constexpr uint64_t kDriverAdvantage = 4;

/// First index >= `v` in sorted `b[pos..nb)`, found by galloping: double the
/// step until overshooting, then binary-search the last doubling window.
/// O(log(gap)) per call with sequential access — far fewer mispredicted
/// branches than a from-scratch binary search when consecutive probes
/// advance monotonically (which intersection probes do).
inline size_t AdvanceTo(const uint16_t* b, size_t pos, size_t nb,
                        uint16_t v) {
  if (pos >= nb || b[pos] >= v) return pos;
  size_t lo = pos;  // invariant: b[lo] < v
  size_t step = 1;
  size_t hi = pos + step;
  while (hi < nb && b[hi] < v) {
    lo = hi;
    step <<= 1;
    hi = pos + step;
  }
  if (hi > nb) hi = nb;
  return static_cast<size_t>(std::lower_bound(b + lo + 1, b + hi, v) - b);
}

/// Galloping intersection of sorted sets: walks the smaller side (a) and
/// gallops through the larger, so the cost is O(na * log(nb / na)) — the
/// right shape when one side is far rarer than the other. Requires
/// na <= nb.
size_t IntersectGalloping(const uint16_t* a, size_t na, const uint16_t* b,
                          size_t nb, uint16_t* out) {
  size_t j = 0;
  size_t m = 0;
  for (size_t i = 0; i < na; ++i) {
    const uint16_t v = a[i];
    j = AdvanceTo(b, j, nb, v);
    if (j == nb) break;
    if (b[j] == v) {
      out[m++] = v;
      ++j;
    }
  }
  return m;
}

#ifdef HDC_X86
/// SSE4.2 intersection of sorted uint16 sets, 8 elements per side at a
/// time: PCMPISTRM compares every element of one register against every
/// element of the other in a single instruction, and the window with the
/// smaller maximum advances (elements are unique within a side, so a value
/// can match at most once and no duplicates arise). This is the
/// branch-light all-pairs scheme of Schlegel et al. for comparable-size
/// sets; heavily skewed pairs go to the galloping routine instead.
__attribute__((target("sse4.2"))) size_t IntersectSse42(
    const uint16_t* a, size_t na, const uint16_t* b, size_t nb,
    uint16_t* out) {
  size_t i = 0;
  size_t j = 0;
  size_t m = 0;
  // PCMPISTRM reads a zero element as a string terminator, and 0 is a
  // legal low-16 id. The arrays are sorted and duplicate-free, so a zero
  // can only sit at index 0 of either side: peel it scalar and the SIMD
  // windows below are guaranteed terminator-free.
  if (a[0] == 0 || b[0] == 0) {
    if (a[0] == 0 && b[0] == 0) out[m++] = 0;
    i += size_t{a[0] == 0};
    j += size_t{b[0] == 0};
  }
  const size_t na8 = i + ((na - i) & ~size_t{7});
  const size_t nb8 = j + ((nb - j) & ~size_t{7});
  while (i < na8 && j < nb8) {
    // Disjoint windows are the common case under skew: step over them with
    // two cheap scalar compares and save the string compare for windows
    // that can actually share a value.
    if (b[j + 7] < a[i]) {
      j += 8;
      continue;
    }
    if (a[i + 7] < b[j]) {
      i += 8;
      continue;
    }
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    const __m128i hits = _mm_cmpistrm(
        vb, va, _SIDD_UWORD_OPS | _SIDD_CMP_EQUAL_ANY | _SIDD_BIT_MASK);
    int mask = _mm_extract_epi32(hits, 0);
    while (mask != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(mask));
      out[m++] = a[i + static_cast<size_t>(bit)];
      mask &= mask - 1;
    }
    // Branchless advance: which side's window moves is data-dependent and
    // would mispredict constantly as a branch.
    const uint16_t a_max = a[i + 7];
    const uint16_t b_max = b[j + 7];
    i += size_t{a_max <= b_max} * 8;
    j += size_t{b_max <= a_max} * 8;
  }
  // Scalar merge over whatever tails remain.
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[m++] = a[i];
      ++i;
      ++j;
    }
  }
  return m;
}

bool HaveSse42() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif  // HDC_X86

/// Below this size ratio the all-pairs SIMD walk beats galloping; above it
/// the smaller side is rare enough that skipping through the larger side
/// logarithmically wins.
constexpr size_t kGallopSkew = 16;

/// Intersects sorted sets a and b into `out` (capacity >= min(na, nb));
/// returns the result size. Dispatches between the SIMD all-pairs kernel
/// and the galloping walk on size skew (and on what the CPU offers).
size_t IntersectSorted(const uint16_t* a, size_t na, const uint16_t* b,
                       size_t nb, uint16_t* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
#ifdef HDC_X86
  if (nb / na < kGallopSkew && HaveSse42()) {
    // Both sides are about to be streamed end to end and are usually cold
    // (every query lands on different value bitmaps): issue the footprint
    // as prefetches up front so the misses overlap instead of serialising
    // behind the walk.
    for (size_t p = 0; p < nb; p += 32) __builtin_prefetch(b + p);
    for (size_t p = 0; p < na; p += 32) __builtin_prefetch(a + p);
    return IntersectSse42(a, na, b, nb, out);
  }
#endif
  return IntersectGalloping(a, na, b, nb, out);
}

}  // namespace


const char* IndexEngineName(IndexEngine engine) {
  switch (engine) {
    case IndexEngine::kScan:
      return "scan";
    case IndexEngine::kLegacy:
      return "legacy";
    case IndexEngine::kBitmap:
      return "bitmap";
  }
  return "unknown";
}

// --- construction -----------------------------------------------------------

void LocalIndex::Bitmap::Append(uint32_t id) {
  const uint32_t block = id >> kBlockShift;
  if (blocks.size() <= block) blocks.resize(block + 1);
  Container& c = blocks[block];
  const uint16_t low = static_cast<uint16_t>(id & (kBlockSize - 1));
  switch (c.kind) {
    case Container::Kind::kEmpty:
      c.kind = Container::Kind::kArray;
      c.build_array.push_back(low);
      break;
    case Container::Kind::kArray:
      c.build_array.push_back(low);
      if (c.build_array.size() >= kArrayCutover) {
        // Dense enough that a bitset is both smaller and faster: flip.
        c.build_words.assign(kWordsPerBlock, 0);
        for (uint16_t v : c.build_array) {
          c.build_words[v >> 6] |= uint64_t{1} << (v & 63);
        }
        c.build_array.clear();
        c.build_array.shrink_to_fit();
        c.kind = Container::Kind::kBitset;
      }
      break;
    case Container::Kind::kBitset:
      c.build_words[low >> 6] |= uint64_t{1} << (low & 63);
      break;
  }
  ++c.cardinality;
  ++cardinality;
}

void LocalIndex::Bitmap::Finalize() {
  size_t array_total = 0;
  size_t word_total = 0;
  for (const Container& c : blocks) {
    if (c.kind == Container::Kind::kArray) {
      array_total += c.build_array.size();
    } else if (c.kind == Container::Kind::kBitset) {
      word_total += kWordsPerBlock;
    }
  }
  arena.reserve(array_total);
  words.reserve(word_total);
  for (Container& c : blocks) {
    if (c.kind == Container::Kind::kArray) {
      c.offset = static_cast<uint32_t>(arena.size());
      arena.insert(arena.end(), c.build_array.begin(), c.build_array.end());
    } else if (c.kind == Container::Kind::kBitset) {
      c.offset = static_cast<uint32_t>(words.size());
      words.insert(words.end(), c.build_words.begin(), c.build_words.end());
    }
    c.build_array = {};
    c.build_words = {};
  }
}

LocalIndex::LocalIndex(std::shared_ptr<const Dataset> dataset, uint64_t k,
                       std::unique_ptr<RankingPolicy> policy,
                       LocalIndexOptions options)
    : dataset_(std::move(dataset)), k_(k), options_(options) {
  HDC_CHECK(dataset_ != nullptr);
  HDC_CHECK_MSG(k_ >= 1, "the result limit k must be positive");

  if (policy == nullptr) policy = MakeRandomPriorityPolicy(0x5eedULL);
  priorities_ = policy->AssignPriorities(*dataset_);
  HDC_CHECK(priorities_.size() == dataset_->size());

  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();
  const size_t n = dataset_->size();
  HDC_CHECK_MSG(n <= UINT32_MAX, "row ids are 32-bit");

  columns_.assign(d, {});
  for (size_t a = 0; a < d; ++a) {
    columns_[a].resize(n);
    for (size_t i = 0; i < n; ++i) columns_[a][i] = dataset_->tuple(i)[a];
  }

  build_stats_.engine = options_.engine;
  switch (options_.engine) {
    case IndexEngine::kScan:
      break;  // no structures: every query walks the tuples
    case IndexEngine::kLegacy:
      BuildLegacyStructures();
      break;
    case IndexEngine::kBitmap:
      BuildBitmapStructures();
      break;
  }
}

void LocalIndex::BuildLegacyStructures() {
  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();
  const size_t n = dataset_->size();

  postings_.assign(d, {});
  sorted_ids_.assign(d, {});
  sorted_values_.assign(d, {});
  for (size_t a = 0; a < d; ++a) {
    if (schema.IsCategorical(a)) {
      postings_[a].assign(schema.domain_size(a) + 1, {});
      for (size_t i = 0; i < n; ++i) {
        postings_[a][static_cast<size_t>(columns_[a][i])].push_back(
            static_cast<uint32_t>(i));
      }
    } else {
      auto& ids = sorted_ids_[a];
      ids.resize(n);
      for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
      const auto& col = columns_[a];
      std::sort(ids.begin(), ids.end(), [&col](uint32_t x, uint32_t y) {
        return col[x] != col[y] ? col[x] < col[y] : x < y;
      });
      auto& vals = sorted_values_[a];
      vals.resize(n);
      for (size_t i = 0; i < n; ++i) vals[i] = col[ids[i]];
    }
  }
}

void LocalIndex::BuildBitmapStructures() {
  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();
  const size_t n = dataset_->size();
  const uint32_t blocks = num_blocks();

  value_bitmaps_.assign(d, {});
  zone_maps_.assign(d, {});
  sorted_ids_.assign(d, {});
  sorted_values_.assign(d, {});
  for (size_t a = 0; a < d; ++a) {
    if (schema.IsCategorical(a)) {
      auto& bitmaps = value_bitmaps_[a];
      bitmaps.resize(schema.domain_size(a) + 1);
      // Ids arrive ascending, so every container's array stays sorted.
      for (size_t i = 0; i < n; ++i) {
        bitmaps[static_cast<size_t>(columns_[a][i])].Append(
            static_cast<uint32_t>(i));
      }
      for (Bitmap& bm : bitmaps) {
        bm.Finalize();
        for (const Container& c : bm.blocks) {
          if (c.kind == Container::Kind::kArray) {
            ++build_stats_.array_containers;
          } else if (c.kind == Container::Kind::kBitset) {
            ++build_stats_.bitset_containers;
          }
        }
      }
    } else {
      // The value-sorted view doubles as exact range selectivity and as
      // the source for materializing selective range drivers.
      auto& ids = sorted_ids_[a];
      ids.resize(n);
      for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
      const auto& col = columns_[a];
      std::sort(ids.begin(), ids.end(), [&col](uint32_t x, uint32_t y) {
        return col[x] != col[y] ? col[x] < col[y] : x < y;
      });
      auto& vals = sorted_values_[a];
      vals.resize(n);
      for (size_t i = 0; i < n; ++i) vals[i] = col[ids[i]];

      ZoneMap& zone = zone_maps_[a];
      zone.min.resize(blocks);
      zone.max.resize(blocks);
      for (uint32_t b = 0; b < blocks; ++b) {
        const size_t base = size_t{b} << kBlockShift;
        const size_t end = base + block_rows(b);
        Value lo = col[base];
        Value hi = col[base];
        for (size_t i = base + 1; i < end; ++i) {
          lo = std::min(lo, col[i]);
          hi = std::max(hi, col[i]);
        }
        zone.min[b] = lo;
        zone.max[b] = hi;
        ++build_stats_.zone_map_blocks;
      }
    }
  }
}

// --- shared helpers ---------------------------------------------------------

bool LocalIndex::IsCrawlable() const {
  return dataset_->MaxPointMultiplicity() <= k_;
}

bool LocalIndex::VerifyRow(const Query& query, uint32_t id,
                           size_t skip_attr) const {
  const size_t d = columns_.size();
  for (size_t a = 0; a < d; ++a) {
    if (a == skip_attr) continue;
    const AttrInterval& ext = query.extent(a);
    const Value v = columns_[a][id];
    if (v < ext.lo || v > ext.hi) return false;
  }
  return true;
}

bool LocalIndex::CoversDomain(const Query& query, size_t a) const {
  const AttributeSpec& spec = dataset_->schema()->attribute(a);
  const AttrInterval& ext = query.extent(a);
  if (spec.is_categorical()) {
    return ext.lo <= 1 && ext.hi >= static_cast<Value>(spec.domain_size);
  }
  return ext.lo <= spec.lo && ext.hi >= spec.hi;
}

std::pair<size_t, size_t> LocalIndex::SortedRange(size_t a, Value lo,
                                                  Value hi) const {
  const auto& vals = sorted_values_[a];
  const size_t begin = static_cast<size_t>(
      std::lower_bound(vals.begin(), vals.end(), lo) - vals.begin());
  const size_t end = static_cast<size_t>(
      std::upper_bound(vals.begin(), vals.end(), hi) - vals.begin());
  return {begin, end};
}

// --- kScan ------------------------------------------------------------------

void LocalIndex::CollectMatchesScan(const Query& query,
                                    std::vector<uint32_t>* out) const {
  const size_t n = dataset_->size();
  for (size_t i = 0; i < n; ++i) {
    if (query.Matches(dataset_->tuple(i))) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

uint64_t LocalIndex::CountMatchesScan(const Query& query) const {
  const size_t n = dataset_->size();
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (query.Matches(dataset_->tuple(i))) ++count;
  }
  return count;
}

// --- kLegacy ----------------------------------------------------------------

void LocalIndex::CollectMatchesLegacy(const Query& query,
                                      std::vector<uint32_t>* out) const {
  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();
  const size_t n = dataset_->size();

  // Pick the most selective constraining predicate as the candidate
  // driver. Note Query::IsWildcard would be wrong here: it is relative to
  // the *query's* schema, whose bounds a session's schema override may have
  // narrowed below this dataset's — such a predicate still excludes rows.
  size_t best_attr = d;
  size_t best_size = n + 1;
  for (size_t a = 0; a < d; ++a) {
    if (CoversDomain(query, a)) continue;
    const AttrInterval& ext = query.extent(a);
    size_t size;
    if (schema.IsCategorical(a)) {
      // Categorical non-wildcard slots are always pinned.
      size = postings_[a][static_cast<size_t>(ext.lo)].size();
    } else {
      const auto range = SortedRange(a, ext.lo, ext.hi);
      size = range.second - range.first;
    }
    if (size < best_size) {
      best_size = size;
      best_attr = a;
    }
  }

  if (best_attr == d) {
    // Every predicate covers the whole server-side domain: all rows
    // qualify.
    out->resize(n);
    for (size_t i = 0; i < n; ++i) (*out)[i] = static_cast<uint32_t>(i);
    return;
  }

  const AttrInterval& ext = query.extent(best_attr);
  if (schema.IsCategorical(best_attr)) {
    for (uint32_t id : postings_[best_attr][static_cast<size_t>(ext.lo)]) {
      if (VerifyRow(query, id, best_attr)) out->push_back(id);
    }
  } else {
    const auto& ids = sorted_ids_[best_attr];
    const auto range = SortedRange(best_attr, ext.lo, ext.hi);
    for (size_t i = range.first; i < range.second; ++i) {
      uint32_t id = ids[i];
      if (VerifyRow(query, id, best_attr)) out->push_back(id);
    }
    // The driver range is ordered by value; restore id order so responses
    // are independent of which index drove the query.
    std::sort(out->begin(), out->end());
  }
}

uint64_t LocalIndex::CountMatchesLegacy(const Query& query) const {
  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();
  const size_t n = dataset_->size();

  size_t best_attr = d;
  size_t best_size = n + 1;
  for (size_t a = 0; a < d; ++a) {
    if (CoversDomain(query, a)) continue;
    const AttrInterval& ext = query.extent(a);
    size_t size;
    if (schema.IsCategorical(a)) {
      size = postings_[a][static_cast<size_t>(ext.lo)].size();
    } else {
      const auto range = SortedRange(a, ext.lo, ext.hi);
      size = range.second - range.first;
    }
    if (size < best_size) {
      best_size = size;
      best_attr = a;
    }
  }
  if (best_attr == d) return n;

  uint64_t count = 0;
  const AttrInterval& ext = query.extent(best_attr);
  if (schema.IsCategorical(best_attr)) {
    for (uint32_t id : postings_[best_attr][static_cast<size_t>(ext.lo)]) {
      if (VerifyRow(query, id, best_attr)) ++count;
    }
  } else {
    const auto& ids = sorted_ids_[best_attr];
    const auto range = SortedRange(best_attr, ext.lo, ext.hi);
    for (size_t i = range.first; i < range.second; ++i) {
      if (VerifyRow(query, ids[i], best_attr)) ++count;
    }
  }
  return count;
}

// --- kBitmap ----------------------------------------------------------------

bool LocalIndex::PlanPredicates(const Query& query,
                                std::vector<PlannedPredicate>* plan) const {
  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();

  plan->clear();
  for (size_t a = 0; a < d; ++a) {
    if (CoversDomain(query, a)) continue;
    const AttrInterval& ext = query.extent(a);
    PlannedPredicate pred;
    if (schema.IsCategorical(a)) {
      // Categorical non-wildcard slots are always pinned (the query model
      // admits no other categorical range).
      pred.kind = PlannedPredicate::Kind::kBitmap;
      pred.bitmap = &value_bitmaps_[a][static_cast<size_t>(ext.lo)];
      pred.count = pred.bitmap->cardinality;
    } else {
      pred.kind = PlannedPredicate::Kind::kRange;
      pred.attr = a;
      pred.lo = ext.lo;
      pred.hi = ext.hi;
      const auto range = SortedRange(a, ext.lo, ext.hi);
      pred.count = range.second - range.first;
    }
    if (pred.count == 0) return false;
    plan->push_back(pred);
  }

  // Cheapest bitmaps first (smallest drives the per-block intersection),
  // ranges last (they strip survivors, so they want a small input).
  std::stable_sort(plan->begin(), plan->end(),
                   [](const PlannedPredicate& x, const PlannedPredicate& y) {
                     const bool xr = x.kind == PlannedPredicate::Kind::kRange;
                     const bool yr = y.kind == PlannedPredicate::Kind::kRange;
                     if (xr != yr) return yr;
                     return x.count < y.count;
                   });
  return true;
}

LocalIndex::ZoneFit LocalIndex::ClassifyZone(const PlannedPredicate& range,
                                             uint32_t block) const {
  const ZoneMap& zone = zone_maps_[range.attr];
  if (zone.min[block] > range.hi || zone.max[block] < range.lo) {
    return ZoneFit::kNone;
  }
  if (zone.min[block] >= range.lo && zone.max[block] <= range.hi) {
    return ZoneFit::kAll;
  }
  return ZoneFit::kPartial;
}

template <bool kPrefetchRank, typename Visitor>
void LocalIndex::ForEachMatchBitmap(const std::vector<PlannedPredicate>& plan,
                                    const uint64_t* driver_words,
                                    const uint32_t* driver_epochs,
                                    uint32_t epoch, Visitor&& visit) const {
  const uint32_t blocks = num_blocks();

  // Per-block participant slots, refilled each block. Sizes are bounded by
  // the schema's attribute count, which is small; the arrays live on the
  // stack of this one call.
  struct ArrayRef {
    const uint16_t* data;
    uint32_t size;
  };
  std::vector<ArrayRef> arrays;
  std::vector<const uint64_t*> bitsets;
  std::vector<const PlannedPredicate*> partials;
  arrays.reserve(plan.size());
  bitsets.reserve(plan.size() + 1);
  partials.reserve(plan.size());

  for (uint32_t b = 0; b < blocks; ++b) {
    const uint32_t base = b << kBlockShift;
    const uint32_t rows = block_rows(b);

    if (driver_words != nullptr && driver_epochs[b] != epoch) {
      continue;  // the materialized range driver has no id in this block
    }

    arrays.clear();
    bitsets.clear();
    partials.clear();
    if (driver_words != nullptr) {
      bitsets.push_back(driver_words + size_t{b} * kWordsPerBlock);
    }

    bool block_empty = false;
    for (const PlannedPredicate& pred : plan) {
      if (pred.kind == PlannedPredicate::Kind::kBitmap) {
        const Bitmap& bm = *pred.bitmap;
        if (bm.blocks.size() <= b ||
            bm.blocks[b].kind == Container::Kind::kEmpty) {
          block_empty = true;
          break;
        }
        const Container& c = bm.blocks[b];
        if (c.kind == Container::Kind::kArray) {
          arrays.push_back({bm.ArrayAt(c), c.cardinality});
        } else {
          bitsets.push_back(bm.WordsAt(c));
        }
      } else {
        const ZoneFit fit = ClassifyZone(pred, b);
        if (fit == ZoneFit::kNone) {
          block_empty = true;
          break;
        }
        if (fit == ZoneFit::kPartial) partials.push_back(&pred);
        // kAll: the zone proves every row of the block matches — drop the
        // predicate for this block without touching a row.
      }
    }
    if (block_empty) continue;

    auto passes_partials = [&](uint32_t id) {
      for (const PlannedPredicate* p : partials) {
        const Value v = columns_[p->attr][id];
        if (v < p->lo || v > p->hi) return false;
      }
      return true;
    };

    if (!arrays.empty()) {
      // Sparse path: fold the array containers together smallest-first with
      // galloping intersections (linear in the survivor set, logarithmic in
      // the gaps), then membership-test only the survivors against bitsets
      // and boundary ranges. Arrays never exceed the cutover, so two
      // ping-pong stack buffers of that size always suffice.
      std::sort(arrays.begin(), arrays.end(),
                [](const ArrayRef& x, const ArrayRef& y) {
                  return x.size < y.size;
                });
      uint16_t buf[2][kArrayCutover];
      const uint16_t* cur = arrays[0].data;
      size_t cur_n = arrays[0].size;
      for (size_t i = 1; i < arrays.size() && cur_n > 0; ++i) {
        uint16_t* next = buf[i & 1];
        cur_n = IntersectSorted(cur, cur_n, arrays[i].data, arrays[i].size,
                                next);
        cur = next;
      }
      constexpr size_t kRankLookahead = 16;
      for (size_t s = 0; s < cur_n; ++s) {
        if (kPrefetchRank && s + kRankLookahead < cur_n) {
          __builtin_prefetch(&priorities_[base + cur[s + kRankLookahead]]);
        }
        const uint16_t low = cur[s];
        bool pass = true;
        for (size_t i = 0; pass && i < bitsets.size(); ++i) {
          pass = (bitsets[i][low >> 6] >> (low & 63)) & 1;
        }
        const uint32_t id = base + low;
        if (pass && passes_partials(id)) visit(id);
      }
      continue;
    }

    if (!bitsets.empty()) {
      // Dense path: word-at-a-time AND across every bitset, then ANDNOT
      // away the candidates the boundary-range tests reject.
      uint64_t words[kWordsPerBlock];
      std::memcpy(words, bitsets[0], sizeof(words));
      for (size_t i = 1; i < bitsets.size(); ++i) {
        for (uint32_t w = 0; w < kWordsPerBlock; ++w) {
          words[w] &= bitsets[i][w];
        }
      }
      constexpr uint32_t kWordLookahead = 8;
      for (uint32_t w = 0; w < kWordsPerBlock; ++w) {
        if constexpr (kPrefetchRank) {
          if (w + kWordLookahead < kWordsPerBlock) {
            for (uint64_t pf = words[w + kWordLookahead]; pf != 0;
                 pf &= pf - 1) {
              __builtin_prefetch(&priorities_[base + (w + kWordLookahead) * 64 +
                                              CountTrailingZeros(pf)]);
            }
          }
        }
        uint64_t m = words[w];
        if (m == 0) continue;
        if (!partials.empty()) {
          uint64_t reject = 0;
          for (uint64_t rest = m; rest != 0; rest &= rest - 1) {
            const int bit = CountTrailingZeros(rest);
            if (!passes_partials(base + w * 64 + bit)) {
              reject |= uint64_t{1} << bit;
            }
          }
          m &= ~reject;
        }
        for (; m != 0; m &= m - 1) {
          visit(base + w * 64 + CountTrailingZeros(m));
        }
      }
      continue;
    }

    if (!partials.empty()) {
      // Boundary blocks of a range-only query: scan the block's rows.
      for (uint32_t r = 0; r < rows; ++r) {
        const uint32_t id = base + r;
        if (passes_partials(id)) visit(id);
      }
      continue;
    }

    // Every predicate covers this whole block: all its rows match.
    for (uint32_t r = 0; r < rows; ++r) visit(base + r);
  }
}

void LocalIndex::AnswerQueryBitmap(const Query& query, Response* response,
                                   EvalScratch* scratch) const {
  const size_t n = dataset_->size();

  std::vector<PlannedPredicate> plan;
  std::vector<uint32_t>& kept = scratch->ids;
  kept.clear();
  uint64_t count = 0;

  const uint64_t* driver_words = nullptr;
  const uint32_t* driver_epochs = nullptr;

  if (PlanPredicates(query, &plan)) {
    // Decide whether a numeric range should drive. The smallest range
    // (exact count via the sorted array) is materialized into a bitmap
    // when it is decisively cheaper than the best categorical bitmap —
    // the classic "huge category, needle range" case the single-driver
    // engine handled well and a blind bitmap intersection would not.
    uint64_t best_bitmap = UINT64_MAX;
    size_t best_range_slot = plan.size();
    for (size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].kind == PlannedPredicate::Kind::kBitmap) {
        best_bitmap = std::min(best_bitmap, plan[i].count);
      } else if (best_range_slot == plan.size() ||
                 plan[i].count < plan[best_range_slot].count) {
        best_range_slot = i;  // ranges sorted ascending, but be explicit
      }
    }
    if (best_range_slot < plan.size()) {
      const PlannedPredicate& range = plan[best_range_slot];
      const bool beats_bitmaps = best_bitmap == UINT64_MAX ||
                                 range.count * kDriverAdvantage < best_bitmap;
      if (beats_bitmaps && range.count <= n / kMaterializeDivisor) {
        const size_t words_needed = size_t{num_blocks()} * kWordsPerBlock;
        if (scratch->range_words.size() < words_needed) {
          scratch->range_words.resize(words_needed, 0);
          scratch->block_epoch.assign(num_blocks(), scratch->epoch);
        }
        if (scratch->epoch == UINT32_MAX) {
          // Epoch wrap: age every block out explicitly so a stale entry
          // can never collide with a recycled epoch value.
          std::fill(scratch->block_epoch.begin(), scratch->block_epoch.end(),
                    0);
          scratch->epoch = 0;
        }
        ++scratch->epoch;
        const auto& ids = sorted_ids_[range.attr];
        const auto span = SortedRange(range.attr, range.lo, range.hi);
        for (size_t i = span.first; i < span.second; ++i) {
          const uint32_t id = ids[i];
          const uint32_t block = id >> kBlockShift;
          uint64_t* block_words =
              scratch->range_words.data() + size_t{block} * kWordsPerBlock;
          if (scratch->block_epoch[block] != scratch->epoch) {
            std::memset(block_words, 0, kWordsPerBlock * sizeof(uint64_t));
            scratch->block_epoch[block] = scratch->epoch;
          }
          const uint32_t low = id & (kBlockSize - 1);
          block_words[low >> 6] |= uint64_t{1} << (low & 63);
        }
        driver_words = scratch->range_words.data();
        driver_epochs = scratch->block_epoch.data();
        plan.erase(plan.begin() + best_range_slot);
      }
    }

    // Streaming bounded top-k: `kept` is a heap whose root is the worst of
    // the k best seen so far (Outranks as the heap's "less-than" makes the
    // std max-heap surface the lowest-ranked candidate). The intersection
    // arrives in ascending id order, overflow is known the moment
    // candidate k+1 shows up, and nothing beyond k ids is ever stored.
    const uint64_t k = k_;
    auto worst_first = [this](uint32_t x, uint32_t y) {
      return Outranks(x, y);
    };
    ForEachMatchBitmap<true>(plan, driver_words, driver_epochs,
                             scratch->epoch, [&](uint32_t id) {
                         ++count;
                         if (kept.size() < k) {
                           kept.push_back(id);
                           std::push_heap(kept.begin(), kept.end(),
                                          worst_first);
                         } else if (Outranks(id, kept.front())) {
                           std::pop_heap(kept.begin(), kept.end(),
                                         worst_first);
                           kept.back() = id;
                           std::push_heap(kept.begin(), kept.end(),
                                          worst_first);
                         }
                       });
  }

  response->tuples.clear();
  response->overflow = count > k_;
  if (response->overflow) {
    // Server order: the fixed ranking, best first.
    std::sort(kept.begin(), kept.end(),
              [this](uint32_t x, uint32_t y) { return Outranks(x, y); });
  } else {
    // Resolved: the whole bag, in id order (`kept` holds every match but
    // in heap order).
    std::sort(kept.begin(), kept.end());
  }
  response->tuples.reserve(kept.size());
  for (uint32_t id : kept) {
    response->tuples.push_back(ReturnedTuple{dataset_->tuple(id), id});
  }
}

uint64_t LocalIndex::CountMatchesBitmap(const Query& query) const {
  const size_t n = dataset_->size();

  std::vector<PlannedPredicate> plan;
  if (!PlanPredicates(query, &plan)) return 0;
  if (plan.empty()) return n;

  // If a range is the cheapest constraint, count by walking its sorted
  // slice and verifying rows — no scratch bitmap needed for counting.
  uint64_t best_bitmap = UINT64_MAX;
  size_t best_range_slot = plan.size();
  for (size_t i = 0; i < plan.size(); ++i) {
    if (plan[i].kind == PlannedPredicate::Kind::kBitmap) {
      best_bitmap = std::min(best_bitmap, plan[i].count);
    } else if (best_range_slot == plan.size()) {
      best_range_slot = i;
    }
  }
  if (best_range_slot < plan.size() &&
      plan[best_range_slot].count < best_bitmap) {
    const PlannedPredicate& range = plan[best_range_slot];
    if (plan.size() == 1) return range.count;
    const auto& ids = sorted_ids_[range.attr];
    const auto span = SortedRange(range.attr, range.lo, range.hi);
    uint64_t count = 0;
    for (size_t i = span.first; i < span.second; ++i) {
      if (VerifyRow(query, ids[i], range.attr)) ++count;
    }
    return count;
  }

  uint64_t count = 0;
  ForEachMatchBitmap<false>(plan, nullptr, nullptr, 0,
                            [&count](uint32_t) { ++count; });
  return count;
}

// --- engine dispatch --------------------------------------------------------

uint64_t LocalIndex::CountMatches(const Query& query) const {
  switch (options_.engine) {
    case IndexEngine::kScan:
      return CountMatchesScan(query);
    case IndexEngine::kLegacy:
      return CountMatchesLegacy(query);
    case IndexEngine::kBitmap:
      return CountMatchesBitmap(query);
  }
  return 0;
}

void LocalIndex::AnswerQuery(const Query& query, Response* response,
                             EvalScratch* scratch, QueryStats* stats) const {
  HDC_CHECK(response != nullptr);
  HDC_CHECK(scratch != nullptr);
  HDC_CHECK_MSG(query.schema() != nullptr &&
                    query.schema()->CompatibleWith(*dataset_->schema()),
                "query schema does not match the server's data space");
  ++stats->queries;

  if (options_.engine == IndexEngine::kBitmap) {
    AnswerQueryBitmap(query, response, scratch);
    if (response->overflow) ++stats->overflows;
    stats->tuples += response->tuples.size();
    return;
  }

  std::vector<uint32_t>& matches = scratch->ids;
  matches.clear();
  if (options_.engine == IndexEngine::kLegacy) {
    CollectMatchesLegacy(query, &matches);
  } else {
    CollectMatchesScan(query, &matches);
  }
  response->tuples.clear();

  const size_t count = matches.size();
  response->overflow = count > k_;
  if (response->overflow) {
    ++stats->overflows;
    // Keep the k highest-priority rows (ties by id ascending) — the fixed
    // ranking a real site would apply.
    auto better = [this](uint32_t x, uint32_t y) { return Outranks(x, y); };
    std::nth_element(matches.begin(), matches.begin() + k_, matches.end(),
                     better);
    matches.resize(k_);
    std::sort(matches.begin(), matches.end(), better);
  }

  response->tuples.reserve(matches.size());
  for (uint32_t id : matches) {
    response->tuples.push_back(ReturnedTuple{dataset_->tuple(id), id});
  }
  stats->tuples += response->tuples.size();
}

void EvaluateBatch(const LocalIndex& index, WorkerPool* pool,
                   const std::vector<Query>& queries,
                   std::vector<Response>* responses, QueryStats* stats,
                   uint64_t lane) {
  HDC_CHECK(responses != nullptr);
  HDC_CHECK(stats != nullptr);
  const size_t n = queries.size();
  responses->assign(n, Response{});
  if (pool == nullptr || pool->threads() == 0 || n <= 1) {
    EvalScratch scratch;
    for (size_t i = 0; i < n; ++i) {
      index.AnswerQuery(queries[i], &(*responses)[i], &scratch, stats);
    }
    return;
  }

  // Per-member stat slots keep the workers write-disjoint; the per-thread
  // scratch amortises allocations across members and batches, and is
  // trimmed after every member so one oversized round cannot pin
  // peak-size buffers on a pool thread for the rest of the process.
  std::vector<QueryStats> deltas(n);
  pool->ParallelFor(lane, n, [&](size_t i) {
    static thread_local EvalScratch scratch;
    index.AnswerQuery(queries[i], &(*responses)[i], &scratch, &deltas[i]);
    scratch.TrimAfterBatch();
  });
  for (const QueryStats& delta : deltas) stats->Add(delta);
}

}  // namespace hdc
