// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/sharding.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/macros.h"

namespace hdc {

namespace {

/// SplitMix64 finalizer: the row-id mixer behind ShardSplit::kHash. A raw
/// `id % N` would map contiguous id ranges to shards in lockstep with any
/// id-correlated data pattern; the mixer decorrelates them.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// --- ShardPlan --------------------------------------------------------------

ShardPlan ShardPlan::Partition(std::shared_ptr<const Dataset> dataset,
                               uint64_t k,
                               std::unique_ptr<RankingPolicy> policy,
                               ShardPlanOptions options) {
  HDC_CHECK(dataset != nullptr);
  HDC_CHECK_MSG(options.num_shards >= 1, "a plan needs at least one shard");
  // The same default (policy and seed) LocalIndex applies, so a plan with
  // no explicit policy reproduces the unsharded reference server.
  if (policy == nullptr) policy = MakeRandomPriorityPolicy(0x5eedULL);

  ShardPlan plan;
  plan.dataset_ = dataset;
  plan.k_ = k;
  plan.global_priorities_ = std::make_shared<const std::vector<uint64_t>>(
      policy->AssignPriorities(*dataset));
  const std::vector<uint64_t>& priorities = *plan.global_priorities_;

  const size_t n = dataset->size();
  const unsigned num_shards = options.num_shards;
  std::vector<Dataset> building;
  building.reserve(num_shards);
  plan.shards_.resize(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) {
    building.emplace_back(dataset->schema());
  }

  // Deal rows in ascending global id, so each shard's local id order is
  // its global id order — the tie-break agreement the merge proof needs.
  for (size_t id = 0; id < n; ++id) {
    const unsigned s =
        options.split == ShardSplit::kHash
            ? static_cast<unsigned>(MixId(id) % num_shards)
            : static_cast<unsigned>(id * uint64_t{num_shards} / n);
    building[s].AddUnchecked(dataset->tuple(id));
    plan.shards_[s].global_ids.push_back(id);
    plan.shards_[s].priorities.push_back(priorities[id]);
  }
  for (unsigned s = 0; s < num_shards; ++s) {
    plan.shards_[s].dataset =
        std::make_shared<const Dataset>(std::move(building[s]));
  }
  return plan;
}

std::shared_ptr<const LocalIndex> ShardPlan::BuildShardIndex(
    size_t shard, IndexEngine engine) const {
  LocalIndexOptions options;
  options.engine = engine;
  return std::make_shared<const LocalIndex>(
      shards_[shard].dataset, k_,
      MakeFixedPriorityPolicy(shards_[shard].priorities), options);
}

// --- ShardedServer ----------------------------------------------------------

ShardedServer::ShardedServer(
    std::vector<ShardBackend> shards,
    std::shared_ptr<const std::vector<uint64_t>> global_priorities,
    ShardedServerOptions options)
    : shards_(std::move(shards)),
      global_priorities_(std::move(global_priorities)),
      options_(options) {
  HDC_CHECK_MSG(!shards_.empty(), "a sharded server needs >= 1 backend");
  HDC_CHECK(global_priorities_ != nullptr);
  for (const ShardBackend& shard : shards_) {
    HDC_CHECK(shard.server != nullptr);
  }
  k_ = shards_[0].server->k();
  schema_ = shards_[0].server->schema();
  for (const ShardBackend& shard : shards_) {
    HDC_CHECK_MSG(shard.server->k() == k_,
                  "every shard must enforce the same result cap k");
    HDC_CHECK_MSG(*shard.server->schema() == *schema_,
                  "every shard must present the same data space");
    for (uint64_t gid : shard.global_ids) {
      HDC_CHECK_MSG(gid < global_priorities_->size(),
                    "shard id map points past the global priority table");
    }
  }
  stats_.resize(shards_.size());
}

std::unique_ptr<ShardedServer> ShardedServer::OverPlan(
    const ShardPlan& plan, IndexEngine engine, ShardedServerOptions options) {
  std::vector<ShardBackend> backends;
  backends.reserve(plan.num_shards());
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    ShardBackend backend;
    LocalServerOptions server_options;
    server_options.engine = engine;
    backend.server = std::make_unique<LocalServer>(
        plan.BuildShardIndex(s, engine), server_options);
    backend.global_ids = plan.shard_global_ids(s);
    backends.push_back(std::move(backend));
  }
  return std::make_unique<ShardedServer>(std::move(backends),
                                         plan.shared_global_priorities(),
                                         options);
}

Status ShardedServer::Issue(const Query& query, Response* response) {
  HDC_CHECK(response != nullptr);
  std::vector<Response> responses;
  Status s = IssueBatch({query}, &responses);
  if (!s.ok()) return s;
  *response = std::move(responses[0]);
  return Status::OK();
}

Status ShardedServer::IssueBatch(const std::vector<Query>& queries,
                                 std::vector<Response>* responses) {
  HDC_CHECK(responses != nullptr);
  responses->clear();
  ++rounds_;
  if (queries.empty()) return Status::OK();

  // Scatter: the whole round goes to every shard (rows are partitioned, so
  // every shard may hold matches for any member). Shard 0 runs on the
  // calling thread; the rest on their own scatter threads for the round.
  const size_t num_shards = shards_.size();
  std::vector<std::vector<Response>> gathered(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());

  if (options_.parallel_scatter && num_shards > 1) {
    std::vector<std::thread> scatter;
    scatter.reserve(num_shards - 1);
    for (size_t s = 1; s < num_shards; ++s) {
      scatter.emplace_back([this, s, &queries, &gathered, &statuses] {
        statuses[s] =
            shards_[s].server->IssueBatch(queries, &gathered[s]);
      });
    }
    statuses[0] = shards_[0].server->IssueBatch(queries, &gathered[0]);
    for (std::thread& t : scatter) t.join();
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      statuses[s] = shards_[s].server->IssueBatch(queries, &gathered[s]);
    }
  }

  // Gather: the merged prefix ends at the first member some shard could
  // not answer. Per-shard accounting records what each backend really did,
  // even for members the merge has to discard.
  size_t prefix = queries.size();
  Status batch_status = Status::OK();
  for (size_t s = 0; s < num_shards; ++s) {
    stats_[s].members_answered += gathered[s].size();
    if (!statuses[s].ok()) ++stats_[s].failures;
    HDC_CHECK_MSG(gathered[s].size() <= queries.size(),
                  "shard answered more members than scattered");
    HDC_CHECK_MSG(statuses[s].ok() == (gathered[s].size() == queries.size()),
                  "shard batch status inconsistent with answered prefix");
    if (gathered[s].size() < prefix) {
      prefix = gathered[s].size();
      batch_status = statuses[s];
    }
  }

  responses->reserve(prefix);
  for (size_t member = 0; member < prefix; ++member) {
    Response merged;
    Status s = MergeMember(gathered, member, &merged);
    if (!s.ok()) {
      // A corrupt shard reply: the members merged so far are valid, the
      // rest of the round is not.
      return s;
    }
    responses->push_back(std::move(merged));
    ++queries_answered_;
  }
  return batch_status;
}

Status ShardedServer::MergeMember(
    std::vector<std::vector<Response>>& gathered, size_t member,
    Response* out) {
  const std::vector<uint64_t>& priorities = *global_priorities_;

  // Per-shard candidate counts decide the merged overflow flag: a resolved
  // shard contributes exactly |q(D_i)| candidates (its rows), an
  // overflowing shard proves |q(D_i)| > k by its flag alone. The merged
  // row count min(Σ, k) could not make this call — one shard at its cap
  // plus empty siblings yields exactly k merged rows for both |q(D)| = k
  // (resolved) and |q(D)| > k (overflow).
  uint64_t candidates = 0;
  bool shard_overflow = false;
  merge_scratch_.clear();
  for (size_t s = 0; s < gathered.size(); ++s) {
    Response& shard_response = gathered[s][member];
    const std::vector<uint64_t>& global_ids = shards_[s].global_ids;
    candidates += shard_response.tuples.size();
    shard_overflow |= shard_response.overflow;
    stats_[s].candidates_contributed += shard_response.tuples.size();
    if (shard_response.overflow) ++stats_[s].overflows;
    for (uint32_t slot = 0; slot < shard_response.tuples.size(); ++slot) {
      const uint64_t local = shard_response.tuples[slot].hidden_id;
      if (local >= global_ids.size()) {
        return Status::Internal(
            "shard " + std::to_string(s) + " returned unknown row id " +
            std::to_string(local));
      }
      const uint64_t gid = global_ids[local];
      merge_scratch_.push_back(
          MergeEntry{priorities[gid], gid, static_cast<uint32_t>(s), slot});
    }
  }

  out->overflow = shard_overflow || candidates > k_;
  if (out->overflow) {
    ++merged_overflows_;
    // Global rank order, best first, cut at k — identical to the single
    // index's overflow ordering (priority descending, global id ascending
    // on ties).
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergeEntry& a, const MergeEntry& b) {
                if (a.priority != b.priority) return a.priority > b.priority;
                return a.global_id < b.global_id;
              });
    if (merge_scratch_.size() > k_) merge_scratch_.resize(k_);
  } else {
    // Resolved: the whole bag in global id order, as the single index
    // answers resolved queries.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergeEntry& a, const MergeEntry& b) {
                return a.global_id < b.global_id;
              });
  }

  out->tuples.clear();
  out->tuples.reserve(merge_scratch_.size());
  for (const MergeEntry& entry : merge_scratch_) {
    ReturnedTuple& rt = gathered[entry.shard][member].tuples[entry.slot];
    out->tuples.push_back(
        ReturnedTuple{std::move(rt.tuple), entry.global_id});
  }
  return Status::OK();
}

unsigned ShardedServer::batch_parallelism() const {
  unsigned total = 0;
  for (const ShardBackend& shard : shards_) {
    total += shard.server->batch_parallelism();
  }
  return std::max(1u, total);
}

ServerLoadHint ShardedServer::load_hint() const {
  ServerLoadHint hint;
  hint.shard_queue_wait_seconds.reserve(shards_.size());
  for (const ShardBackend& shard : shards_) {
    const ServerLoadHint sh = shard.server->load_hint();
    hint.latency_feedback |= sh.latency_feedback;
    hint.queue_wait_total_seconds += sh.queue_wait_total_seconds;
    hint.politeness_wait_total_seconds += sh.politeness_wait_total_seconds;
    hint.shard_queue_wait_seconds.push_back(sh.queue_wait_total_seconds);
  }
  return hint;
}

uint64_t ShardedServer::db_version() const {
  // Any shard mutating must invalidate cached merged answers, so the
  // sharded view's version is the sum of the shard counters: each is
  // monotonic, hence so is the sum, and it moves iff some shard moved.
  uint64_t version = 0;
  for (const ShardBackend& shard : shards_) {
    version += shard.server->db_version();
  }
  return version;
}

}  // namespace hdc
