// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/caching_server.h"

#include <utility>

namespace hdc {

CachingServer::CachingServer(HiddenDbServer* base, AnswerCacheOptions options)
    : ServerDecorator(base),
      cache_(std::make_shared<AnswerCache>(options)) {}

CachingServer::CachingServer(std::unique_ptr<HiddenDbServer> base,
                             AnswerCacheOptions options)
    : ServerDecorator(std::move(base)),
      cache_(std::make_shared<AnswerCache>(options)) {}

CachingServer::CachingServer(HiddenDbServer* base,
                             std::shared_ptr<AnswerCache> cache)
    : ServerDecorator(base), cache_(std::move(cache)) {
  HDC_CHECK(cache_ != nullptr);
}

CachingServer::CachingServer(std::unique_ptr<HiddenDbServer> base,
                             std::shared_ptr<AnswerCache> cache)
    : ServerDecorator(std::move(base)), cache_(std::move(cache)) {
  HDC_CHECK(cache_ != nullptr);
}

Status CachingServer::ForwardOne(const Query& query, bool revalidate,
                                 Response* response) {
  Status status = base_->Issue(query, response);
  if (!status.ok()) return status;
  ++forwarded_queries_;
  if (revalidate) {
    cache_->StoreRevalidation(query, *response, base_->db_version());
  } else {
    cache_->StoreMiss(query, *response, base_->db_version());
  }
  return Status::OK();
}

Status CachingServer::Issue(const Query& query, Response* response) {
  switch (cache_->Probe(query, base_->db_version(), response, nullptr)) {
    case AnswerCache::ProbeResult::kHit:
      return Status::OK();
    case AnswerCache::ProbeResult::kRevalidate:
      return ForwardOne(query, /*revalidate=*/true, response);
    case AnswerCache::ProbeResult::kMiss:
      return ForwardOne(query, /*revalidate=*/false, response);
  }
  return Status::Internal("unreachable probe result");
}

Status CachingServer::IssueBatch(const std::vector<Query>& queries,
                                 std::vector<Response>* responses) {
  responses->clear();
  responses->reserve(queries.size());

  // A pending run of consecutive non-hit members awaiting one sub-batch
  // forward to the wrapped server.
  std::vector<Query> run;
  std::vector<bool> run_revalidates;

  auto flush_run = [&]() -> Status {
    if (run.empty()) return Status::OK();
    std::vector<Response> run_responses;
    Status status = base_->IssueBatch(run, &run_responses);
    // The answered prefix of the sub-batch extends the caller's prefix
    // whether or not the sub-batch completed.
    for (size_t i = 0; i < run_responses.size(); ++i) {
      ++forwarded_queries_;
      if (run_revalidates[i]) {
        cache_->StoreRevalidation(run[i], run_responses[i],
                                  base_->db_version());
      } else {
        cache_->StoreMiss(run[i], run_responses[i], base_->db_version());
      }
      responses->push_back(std::move(run_responses[i]));
    }
    run.clear();
    run_revalidates.clear();
    return status;
  };

  for (const Query& query : queries) {
    Response cached;
    switch (cache_->Probe(query, base_->db_version(), &cached, nullptr)) {
      case AnswerCache::ProbeResult::kHit: {
        // Flush the preceding non-hit run first so member order holds. If
        // the flush fails mid-run, the prefix ends there and this member's
        // cached answer is not delivered (its hit was already counted — a
        // stats-only imprecision confined to the failure path).
        Status status = flush_run();
        if (!status.ok()) return status;
        responses->push_back(std::move(cached));
        break;
      }
      case AnswerCache::ProbeResult::kRevalidate:
        run.push_back(query);
        run_revalidates.push_back(true);
        break;
      case AnswerCache::ProbeResult::kMiss:
        run.push_back(query);
        run_revalidates.push_back(false);
        break;
    }
  }
  return flush_run();
}

}  // namespace hdc
