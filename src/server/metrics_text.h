// Copyright (c) hdc authors. Apache-2.0 license.
//
// Prometheus-style text rendering of a CrawlServiceMetrics snapshot — the
// payload behind the endpoint's `GET /metrics` (net/service_endpoint.h).
// Plain exposition format, version 0.0.4: `# HELP` / `# TYPE` headers,
// one `name{labels} value` line per sample, labels for the per-session
// series. No client library, no registry — a snapshot in, a string out,
// so the formatter is trivially testable and the endpoint stays free of
// scrape-time state.
#pragma once

#include <string>

#include "server/crawl_service.h"

namespace hdc {

/// Renders `metrics` in Prometheus text exposition format. Deterministic
/// for a given snapshot (sessions appear in snapshot order, ascending id).
std::string FormatPrometheusMetrics(const CrawlServiceMetrics& metrics);

}  // namespace hdc
