// Copyright (c) hdc authors. Apache-2.0 license.
//
// Ranking policies decide *which* k tuples an overflowing query returns.
// The paper's experiments assign each tuple a random priority and always
// return the k highest-priority qualifying tuples (Section 6); real sites
// rank by an attribute (price ascending, newest first, ...). Crawling
// algorithms must extract the full database under any fixed policy — the
// property tests sweep all of these.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace hdc {

/// Assigns a static priority to every tuple of the dataset. Higher priority
/// = returned first. Ties are broken by row id (ascending) at the server, so
/// responses are always deterministic.
class RankingPolicy {
 public:
  virtual ~RankingPolicy() = default;

  /// Returns one priority per tuple, aligned with dataset row ids.
  virtual std::vector<uint64_t> AssignPriorities(const Dataset& dataset) = 0;

  /// Short label used in bench output.
  virtual std::string name() const = 0;
};

/// The paper's policy: an independent random priority per tuple.
class RandomPriorityPolicy : public RankingPolicy {
 public:
  explicit RandomPriorityPolicy(uint64_t seed) : seed_(seed) {}
  std::vector<uint64_t> AssignPriorities(const Dataset& dataset) override;
  std::string name() const override { return "random-priority"; }

 private:
  uint64_t seed_;
};

/// Priorities follow insertion order: `ascending` favours the oldest rows.
/// A useful adversary — early rows shadow late rows in every overflowing
/// query, the worst case for "just repeat the broad query" crawlers.
class IdOrderPolicy : public RankingPolicy {
 public:
  explicit IdOrderPolicy(bool ascending) : ascending_(ascending) {}
  std::vector<uint64_t> AssignPriorities(const Dataset& dataset) override;
  std::string name() const override {
    return ascending_ ? "oldest-first" : "newest-first";
  }

 private:
  bool ascending_;
};

/// Ranks by an attribute value (e.g. price ascending), modelling real result
/// orderings; ties by row id.
class ByAttributePolicy : public RankingPolicy {
 public:
  ByAttributePolicy(size_t attribute, bool ascending)
      : attribute_(attribute), ascending_(ascending) {}
  std::vector<uint64_t> AssignPriorities(const Dataset& dataset) override;
  std::string name() const override;

 private:
  size_t attribute_;
  bool ascending_;
};

/// Explicit priorities, one per tuple in row order. Two production uses: a
/// shard index must rank its rows by the *global* ranking of the unsharded
/// dataset (server/sharding.h hands each shard its slice of the global
/// priority table), and tests reproduce the paper's worked examples where
/// specific tuples must be returned first.
class FixedPriorityPolicy : public RankingPolicy {
 public:
  explicit FixedPriorityPolicy(std::vector<uint64_t> priorities)
      : priorities_(std::move(priorities)) {}
  /// Aborts unless `priorities` matches the dataset size exactly.
  std::vector<uint64_t> AssignPriorities(const Dataset& dataset) override;
  std::string name() const override { return "fixed"; }

 private:
  std::vector<uint64_t> priorities_;
};

std::unique_ptr<RankingPolicy> MakeRandomPriorityPolicy(uint64_t seed);
std::unique_ptr<RankingPolicy> MakeIdOrderPolicy(bool ascending);
std::unique_ptr<RankingPolicy> MakeByAttributePolicy(size_t attribute,
                                                     bool ascending);
std::unique_ptr<RankingPolicy> MakeFixedPriorityPolicy(
    std::vector<uint64_t> priorities);

}  // namespace hdc
