// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/metrics_text.h"

#include <cinttypes>
#include <cstdio>

namespace hdc {

namespace {

void AppendHeader(std::string* out, const char* name, const char* type,
                  const char* help) {
  out->append("# HELP ");
  out->append(name);
  out->push_back(' ');
  out->append(help);
  out->push_back('\n');
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

void AppendCounter(std::string* out, const char* name, uint64_t value) {
  char line[160];
  std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", name, value);
  out->append(line);
}

void AppendGauge(std::string* out, const char* name, double value) {
  char line[160];
  std::snprintf(line, sizeof(line), "%s %.9g\n", name, value);
  out->append(line);
}

/// Label values are quoted strings: backslash, quote and newline must be
/// escaped per the exposition format.
void AppendEscapedLabel(std::string* out, const std::string& value) {
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

void AppendSessionSample(std::string* out, const char* name,
                         const SessionMetrics& session, double value,
                         bool integral) {
  out->append(name);
  out->append("{session_id=\"");
  char id[32];
  std::snprintf(id, sizeof(id), "%" PRIu64, session.id);
  out->append(id);
  out->append("\",label=\"");
  AppendEscapedLabel(out, session.label);
  out->append("\"} ");
  char v[64];
  if (integral) {
    std::snprintf(v, sizeof(v), "%" PRIu64 "\n",
                  static_cast<uint64_t>(value));
  } else {
    std::snprintf(v, sizeof(v), "%.9g\n", value);
  }
  out->append(v);
}

}  // namespace

std::string FormatPrometheusMetrics(const CrawlServiceMetrics& metrics) {
  std::string out;
  out.reserve(2048 + metrics.sessions.size() * 512);

  AppendHeader(&out, "hdc_sessions_created_total", "counter",
               "Sessions minted since service start.");
  AppendCounter(&out, "hdc_sessions_created_total",
                metrics.sessions_created);
  AppendHeader(&out, "hdc_sessions_active", "gauge",
               "Sessions alive right now.");
  AppendCounter(&out, "hdc_sessions_active", metrics.sessions_active);
  AppendHeader(&out, "hdc_queries_served_total", "counter",
               "Queries answered across all sessions, including retired.");
  AppendCounter(&out, "hdc_queries_served_total", metrics.queries_served);
  AppendHeader(&out, "hdc_tuples_returned_total", "counter",
               "Tuples shipped across all sessions, including retired.");
  AppendCounter(&out, "hdc_tuples_returned_total", metrics.tuples_returned);
  AppendHeader(&out, "hdc_uptime_seconds", "gauge",
               "Service uptime in seconds.");
  AppendGauge(&out, "hdc_uptime_seconds", metrics.uptime_seconds);
  AppendHeader(&out, "hdc_queries_per_second", "gauge",
               "Lifetime query throughput.");
  AppendGauge(&out, "hdc_queries_per_second", metrics.queries_per_second);
  AppendHeader(&out, "hdc_pool_threads", "gauge",
               "Helper workers in the shared pool.");
  AppendCounter(&out, "hdc_pool_threads", metrics.pool_threads);
  AppendHeader(&out, "hdc_pool_busy", "gauge",
               "Pool workers running batch items right now.");
  AppendCounter(&out, "hdc_pool_busy", metrics.pool_busy);
  AppendHeader(&out, "hdc_cache_hits_total", "counter",
               "Queries answered from the shared answer cache.");
  AppendCounter(&out, "hdc_cache_hits_total", metrics.cache_hits);
  AppendHeader(&out, "hdc_cache_misses_total", "counter",
               "Queries evaluated and stored into the answer cache.");
  AppendCounter(&out, "hdc_cache_misses_total", metrics.cache_misses);
  AppendHeader(&out, "hdc_cache_revalidations_total", "counter",
               "Conditional re-asks of stale cache entries.");
  AppendCounter(&out, "hdc_cache_revalidations_total",
                metrics.cache_revalidations);
  AppendHeader(&out, "hdc_cache_entries", "gauge",
               "Entries live in the answer cache.");
  AppendCounter(&out, "hdc_cache_entries", metrics.cache_entries);

  if (!metrics.sessions.empty()) {
    AppendHeader(&out, "hdc_session_queries_served_total", "counter",
                 "Queries answered for one live session.");
    for (const SessionMetrics& s : metrics.sessions) {
      AppendSessionSample(&out, "hdc_session_queries_served_total", s,
                          static_cast<double>(s.queries_served), true);
    }
    AppendHeader(&out, "hdc_session_overflow_total", "counter",
                 "Answered queries that overflowed, per live session.");
    for (const SessionMetrics& s : metrics.sessions) {
      AppendSessionSample(&out, "hdc_session_overflow_total", s,
                          static_cast<double>(s.overflow_count), true);
    }
    AppendHeader(&out, "hdc_session_queue_wait_seconds_total", "counter",
                 "Cumulative lane queue wait, per live session.");
    for (const SessionMetrics& s : metrics.sessions) {
      AppendSessionSample(&out, "hdc_session_queue_wait_seconds_total", s,
                          s.queue_wait_total_seconds, false);
    }
    AppendHeader(&out, "hdc_session_queue_wait_seconds_max", "gauge",
                 "Largest single lane queue wait, per live session.");
    for (const SessionMetrics& s : metrics.sessions) {
      AppendSessionSample(&out, "hdc_session_queue_wait_seconds_max", s,
                          s.queue_wait_max_seconds, false);
    }
  }
  return out;
}

}  // namespace hdc
