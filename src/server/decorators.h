// Copyright (c) hdc authors. Apache-2.0 license.
//
// Composable server wrappers (RocksDB-style decorators). A crawl against a
// remote site typically runs behind
//   BudgetServer( CountingServer( LocalServer ) )
// so it can be metered and interrupted.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "server/server.h"
#include "util/macros.h"

namespace hdc {

/// Base decorator: forwards everything to a wrapped (non-owned) server.
/// The wrapped server must outlive the decorator.
class ServerDecorator : public HiddenDbServer {
 public:
  explicit ServerDecorator(HiddenDbServer* base) : base_(base) {}

  Status Issue(const Query& query, Response* response) override {
    return base_->Issue(query, response);
  }
  uint64_t k() const override { return base_->k(); }
  const SchemaPtr& schema() const override { return base_->schema(); }

 protected:
  HiddenDbServer* base_;
};

/// Compact per-query record kept by CountingServer when tracing is on.
struct QueryRecord {
  bool resolved = false;
  uint32_t returned = 0;
};

/// Counts queries (the paper's cost metric) and optionally keeps a compact
/// trace of every response.
class CountingServer : public ServerDecorator {
 public:
  explicit CountingServer(HiddenDbServer* base, bool keep_trace = false)
      : ServerDecorator(base), keep_trace_(keep_trace) {}

  Status Issue(const Query& query, Response* response) override {
    Status s = base_->Issue(query, response);
    if (s.ok()) {
      ++queries_;
      if (keep_trace_) {
        trace_.push_back(QueryRecord{
            response->resolved(), static_cast<uint32_t>(response->size())});
      }
    }
    return s;
  }

  uint64_t queries() const { return queries_; }
  const std::vector<QueryRecord>& trace() const { return trace_; }
  void Reset() {
    queries_ = 0;
    trace_.clear();
  }

 private:
  bool keep_trace_;
  uint64_t queries_ = 0;
  std::vector<QueryRecord> trace_;
};

/// Enforces a hard query budget: once `max_queries` have been forwarded,
/// further issues fail with ResourceExhausted (the crawler checkpoints and
/// can resume against a fresh budget — e.g. the next day's quota).
class BudgetServer : public ServerDecorator {
 public:
  BudgetServer(HiddenDbServer* base, uint64_t max_queries)
      : ServerDecorator(base), remaining_(max_queries) {}

  Status Issue(const Query& query, Response* response) override {
    if (remaining_ == 0) {
      return Status::ResourceExhausted("query budget exhausted");
    }
    Status s = base_->Issue(query, response);
    if (s.ok()) --remaining_;
    return s;
  }

  uint64_t remaining() const { return remaining_; }

  /// Grants a fresh allotment (e.g. quota reset).
  void Refill(uint64_t max_queries) { remaining_ = max_queries; }

 private:
  uint64_t remaining_;
};

/// Presents a different — but compatible — schema to the crawler than the
/// wrapped server's: e.g. numeric bounds tightened by domain discovery
/// (core/domain_discovery.h), which is what lets binary-shrink run against
/// a server that declares unbounded numeric domains.
class SchemaOverrideServer : public ServerDecorator {
 public:
  SchemaOverrideServer(HiddenDbServer* base, SchemaPtr schema)
      : ServerDecorator(base), schema_(std::move(schema)) {
    HDC_CHECK_MSG(schema_ != nullptr &&
                      schema_->CompatibleWith(*base->schema()),
                  "override schema must be structurally compatible");
  }

  const SchemaPtr& schema() const override { return schema_; }

 private:
  SchemaPtr schema_;
};

/// Failure injection: deterministically fails every `period`-th Issue with
/// an Internal error *before* reaching the wrapped server — a dropped
/// connection, which consumes no quota. period = 0 never fails.
class FlakyServer : public ServerDecorator {
 public:
  FlakyServer(HiddenDbServer* base, uint64_t period)
      : ServerDecorator(base), period_(period) {}

  Status Issue(const Query& query, Response* response) override {
    ++attempts_;
    if (period_ > 0 && attempts_ % period_ == 0) {
      ++failures_;
      return Status::Internal("simulated connection failure");
    }
    return base_->Issue(query, response);
  }

  uint64_t attempts() const { return attempts_; }
  uint64_t failures() const { return failures_; }

 private:
  uint64_t period_;
  uint64_t attempts_ = 0;
  uint64_t failures_ = 0;
};

/// Retries transient failures (Internal) up to `max_retries` extra
/// attempts per query. Deliberate refusals — ResourceExhausted budgets —
/// are never retried: a quota does not come back by asking again.
class RetryingServer : public ServerDecorator {
 public:
  RetryingServer(HiddenDbServer* base, uint64_t max_retries)
      : ServerDecorator(base), max_retries_(max_retries) {}

  Status Issue(const Query& query, Response* response) override {
    Status s = base_->Issue(query, response);
    uint64_t attempts = 0;
    while (s.code() == Status::Code::kInternal && attempts < max_retries_) {
      ++attempts;
      ++retries_performed_;
      s = base_->Issue(query, response);
    }
    return s;
  }

  uint64_t retries_performed() const { return retries_performed_; }

 private:
  uint64_t max_retries_;
  uint64_t retries_performed_ = 0;
};

/// Invokes a callback after every successful query — used by benches to
/// sample progressiveness curves without entangling crawler internals.
class ObservedServer : public ServerDecorator {
 public:
  using Callback = std::function<void(const Query&, const Response&)>;

  ObservedServer(HiddenDbServer* base, Callback callback)
      : ServerDecorator(base), callback_(std::move(callback)) {}

  Status Issue(const Query& query, Response* response) override {
    Status s = base_->Issue(query, response);
    if (s.ok() && callback_) callback_(query, *response);
    return s;
  }

 private:
  Callback callback_;
};

/// Audit log: streams one line per query to `out` —
///   <index>\t<resolved|OVERFLOW>\t<returned>\t<query>
/// so an operator can review exactly what a crawl asked a site, or diff
/// two crawls' query sequences. The stream is not owned and must outlive
/// the decorator.
class QueryLogServer : public ServerDecorator {
 public:
  QueryLogServer(HiddenDbServer* base, std::ostream* out)
      : ServerDecorator(base), out_(out) {
    HDC_CHECK(out != nullptr);
  }

  Status Issue(const Query& query, Response* response) override {
    Status s = base_->Issue(query, response);
    if (s.ok()) {
      ++index_;
      *out_ << index_ << '\t'
            << (response->overflow ? "OVERFLOW" : "resolved") << '\t'
            << response->size() << '\t' << query.ToString() << '\n';
    }
    return s;
  }

  uint64_t logged() const { return index_; }

 private:
  std::ostream* out_;
  uint64_t index_ = 0;
};

}  // namespace hdc
