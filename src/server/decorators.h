// Copyright (c) hdc authors. Apache-2.0 license.
//
// Composable server wrappers (RocksDB-style decorators). A crawl against a
// remote site typically runs behind
//   BudgetServer( CountingServer( LocalServer ) )
// so it can be metered and interrupted.
//
// Two composition styles share the same classes:
//
//  - *Borrowed* (the classic shape): each wrapper takes a HiddenDbServer*
//    it does not own; the caller keeps every layer alive, usually on the
//    stack around one crawl.
//  - *Owned* (the session shape): each wrapper takes a
//    std::unique_ptr<HiddenDbServer> and owns its base, so a whole metering
//    stack — budget, audit log, trace — can be composed once at
//    session-creation time and handed around as a single object. This is
//    how CrawlService (server/crawl_service.h) builds the per-session
//    stack over its shared index; the metering state is per session, never
//    a wrapper around a process-wide singleton.
//
// Every decorator implements both entry points of the HiddenDbServer
// contract. IssueBatch keeps the prefix semantics documented in
// server/server.h: the wrapper answers (or forwards) an in-order prefix of
// the batch, and the first member that fails — a budget boundary, an
// injected connection drop, an exhausted retry allowance — truncates the
// batch there with that member's status. A one-element batch always behaves
// exactly like Issue on the same wrapper.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "server/server.h"
#include "util/macros.h"

namespace hdc {

/// Base decorator: forwards everything to the wrapped server. The borrowed
/// form does not own its base (the caller keeps it alive); the owned form
/// keeps the base alive itself.
class ServerDecorator : public HiddenDbServer {
 public:
  explicit ServerDecorator(HiddenDbServer* base) : base_(base) {
    HDC_CHECK(base != nullptr);
  }
  explicit ServerDecorator(std::unique_ptr<HiddenDbServer> base)
      : base_(base.get()), owned_(std::move(base)) {
    HDC_CHECK(base_ != nullptr);
  }

  Status Issue(const Query& query, Response* response) override {
    return base_->Issue(query, response);
  }
  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override {
    return base_->IssueBatch(queries, responses);
  }
  uint64_t k() const override { return base_->k(); }
  const SchemaPtr& schema() const override { return base_->schema(); }
  unsigned batch_parallelism() const override {
    return base_->batch_parallelism();
  }
  ServerLoadHint load_hint() const override { return base_->load_hint(); }
  uint64_t db_version() const override { return base_->db_version(); }

 protected:
  HiddenDbServer* base_;

 private:
  std::unique_ptr<HiddenDbServer> owned_;
};

/// Compact per-query record kept by CountingServer when tracing is on.
struct QueryRecord {
  bool resolved = false;
  uint32_t returned = 0;
};

/// Counts queries (the paper's cost metric) and optionally keeps a compact
/// trace of every response.
///
/// Batches forward to the base server whole; every *answered* member counts
/// as one query and appends one trace record, in issue order. Retries are
/// invisible from here unless this wrapper sits *below* the retry layer:
/// RetryingServer(CountingServer(base)) meters every attempt, while
/// CountingServer(RetryingServer(base)) counts only queries that ultimately
/// succeeded (each retried-then-successful query counts once).
class CountingServer : public ServerDecorator {
 public:
  explicit CountingServer(HiddenDbServer* base, bool keep_trace = false)
      : ServerDecorator(base), keep_trace_(keep_trace) {}
  explicit CountingServer(std::unique_ptr<HiddenDbServer> base,
                          bool keep_trace = false)
      : ServerDecorator(std::move(base)), keep_trace_(keep_trace) {}

  Status Issue(const Query& query, Response* response) override {
    Status s = base_->Issue(query, response);
    if (s.ok()) Record(*response);
    return s;
  }

  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override {
    Status s = base_->IssueBatch(queries, responses);
    // Prefix semantics: everything in `responses` was answered (and paid
    // for) regardless of how the batch ended.
    for (const Response& response : *responses) Record(response);
    return s;
  }

  uint64_t queries() const { return queries_; }
  const std::vector<QueryRecord>& trace() const { return trace_; }
  void Reset() {
    queries_ = 0;
    trace_.clear();
  }

 private:
  void Record(const Response& response) {
    ++queries_;
    if (keep_trace_) {
      trace_.push_back(QueryRecord{response.resolved(),
                                   static_cast<uint32_t>(response.size())});
    }
  }

  bool keep_trace_;
  uint64_t queries_ = 0;
  std::vector<QueryRecord> trace_;
};

/// Enforces a hard query budget: once `max_queries` have been forwarded,
/// further issues fail with ResourceExhausted (the crawler checkpoints and
/// can resume against a fresh budget — e.g. the next day's quota).
///
/// A batch that crosses the budget boundary is truncated: the affordable
/// prefix is forwarded (and those answers returned), then the call fails
/// with ResourceExhausted. Refill() mid-crawl makes the *next* call start
/// against the fresh allotment; the truncated members were never forwarded,
/// so no work is lost or double-spent.
class BudgetServer : public ServerDecorator {
 public:
  BudgetServer(HiddenDbServer* base, uint64_t max_queries)
      : ServerDecorator(base), remaining_(max_queries) {}
  BudgetServer(std::unique_ptr<HiddenDbServer> base, uint64_t max_queries)
      : ServerDecorator(std::move(base)), remaining_(max_queries) {}

  Status Issue(const Query& query, Response* response) override {
    if (remaining() == 0) {
      return Status::ResourceExhausted("query budget exhausted");
    }
    Status s = base_->Issue(query, response);
    if (s.ok()) Spend(1);
    return s;
  }

  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override {
    const size_t allowed = static_cast<size_t>(
        std::min<uint64_t>(remaining(), queries.size()));
    if (allowed == 0 && !queries.empty()) {
      responses->clear();
      return Status::ResourceExhausted("query budget exhausted");
    }
    Status s;
    if (allowed == queries.size()) {
      s = base_->IssueBatch(queries, responses);
    } else {
      const std::vector<Query> head(queries.begin(),
                                    queries.begin() + allowed);
      s = base_->IssueBatch(head, responses);
    }
    // Only answered members consume budget (the base may itself have
    // truncated the prefix further, e.g. a flaky transport).
    Spend(responses->size());
    if (s.ok() && allowed < queries.size()) {
      return Status::ResourceExhausted("query budget exhausted mid-batch");
    }
    return s;
  }

  uint64_t remaining() const {
    return remaining_.load(std::memory_order_relaxed);
  }

  /// Grants a fresh allotment (e.g. quota reset).
  void Refill(uint64_t max_queries) {
    remaining_.store(max_queries, std::memory_order_relaxed);
  }

 private:
  void Spend(uint64_t queries) {
    const uint64_t before = remaining();
    remaining_.store(before - std::min(before, queries),
                     std::memory_order_relaxed);
  }

  /// Atomic so a metrics sampler (CrawlService::MetricsSnapshot) may read
  /// the quota while the conversation thread spends it; the conversation
  /// itself stays single-threaded, so plain load/store suffices.
  std::atomic<uint64_t> remaining_;
};

/// Presents a different — but compatible — schema to the crawler than the
/// wrapped server's: e.g. numeric bounds tightened by domain discovery
/// (core/domain_discovery.h), which is what lets binary-shrink run against
/// a server that declares unbounded numeric domains. Batches forward
/// unchanged (the base evaluates against its own schema).
class SchemaOverrideServer : public ServerDecorator {
 public:
  SchemaOverrideServer(HiddenDbServer* base, SchemaPtr schema)
      : ServerDecorator(base), schema_(std::move(schema)) {
    CheckCompatible();
  }
  SchemaOverrideServer(std::unique_ptr<HiddenDbServer> base, SchemaPtr schema)
      : ServerDecorator(std::move(base)), schema_(std::move(schema)) {
    CheckCompatible();
  }

  const SchemaPtr& schema() const override { return schema_; }

 private:
  void CheckCompatible() const {
    HDC_CHECK_MSG(schema_ != nullptr &&
                      schema_->CompatibleWith(*base_->schema()),
                  "override schema must be structurally compatible");
  }

  SchemaPtr schema_;
};

/// Failure injection: deterministically fails every `period`-th Issue with
/// an Internal error *before* reaching the wrapped server — a dropped
/// connection, which consumes no quota. period = 0 never fails.
///
/// Batch members count as individual attempts, in order. The member that
/// trips the period fails the batch there: the preceding members are
/// forwarded (as one sub-batch) and answered, the failing member and
/// everything after it never reach the base — exactly the sequence of
/// outcomes `period`-spaced sequential Issues would produce.
class FlakyServer : public ServerDecorator {
 public:
  FlakyServer(HiddenDbServer* base, uint64_t period)
      : ServerDecorator(base), period_(period) {}
  FlakyServer(std::unique_ptr<HiddenDbServer> base, uint64_t period)
      : ServerDecorator(std::move(base)), period_(period) {}

  Status Issue(const Query& query, Response* response) override {
    ++attempts_;
    if (period_ > 0 && attempts_ % period_ == 0) {
      ++failures_;
      return Status::Internal("simulated connection failure");
    }
    return base_->Issue(query, response);
  }

  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override {
    // Simulate the sequential attempt counter to find the member (if any)
    // that would trip the failure period.
    size_t clean = queries.size();
    bool trips = false;
    if (period_ > 0) {
      for (size_t i = 0; i < queries.size(); ++i) {
        if ((attempts_ + i + 1) % period_ == 0) {
          clean = i;
          trips = true;
          break;
        }
      }
    }
    Status s;
    if (clean == queries.size()) {
      s = base_->IssueBatch(queries, responses);
    } else {
      const std::vector<Query> head(queries.begin(), queries.begin() + clean);
      s = base_->IssueBatch(head, responses);
    }
    // Members the base answered were clean attempts; a base-side failure
    // means the sequential conversation stopped at the refused member —
    // which had already reached this layer, so its attempt counts too.
    // Members past it (and past our trip point) were never attempted.
    attempts_ += responses->size();
    if (!s.ok()) {
      ++attempts_;  // the refused member's own attempt
      return s;
    }
    if (trips) {
      ++attempts_;  // the tripping member's own attempt
      ++failures_;
      return Status::Internal("simulated connection failure");
    }
    return s;
  }

  uint64_t attempts() const { return attempts_; }
  uint64_t failures() const { return failures_; }

 private:
  uint64_t period_;
  uint64_t attempts_ = 0;
  uint64_t failures_ = 0;
};

/// Retries transient failures — Internal (simulated outages) and
/// Unavailable (transport drops, see net/remote_server.h) — up to
/// `max_retries` extra attempts per query. Deliberate refusals —
/// ResourceExhausted budgets — are never retried: a quota does not come
/// back by asking again.
///
/// A batch is forwarded whole; when the base fails the batch at some member
/// with a transient error, the unanswered suffix is re-submitted, charging
/// the retry to the member at the failure point. A member that exhausts its
/// allowance fails the batch there (prefix kept). attempts_trace() exposes
/// how many attempts each ultimately-answered query cost, so a retried-
/// then-successful query is distinguishable downstream from a clean one;
/// see CountingServer for which wrapper order meters retries as queries.
class RetryingServer : public ServerDecorator {
 public:
  RetryingServer(HiddenDbServer* base, uint64_t max_retries,
                 bool keep_attempts_trace = false)
      : ServerDecorator(base), max_retries_(max_retries),
        keep_attempts_trace_(keep_attempts_trace) {}
  RetryingServer(std::unique_ptr<HiddenDbServer> base, uint64_t max_retries,
                 bool keep_attempts_trace = false)
      : ServerDecorator(std::move(base)), max_retries_(max_retries),
        keep_attempts_trace_(keep_attempts_trace) {}

  Status Issue(const Query& query, Response* response) override {
    Status s = base_->Issue(query, response);
    uint64_t attempts = 1;
    while (s.IsTransient() && attempts <= max_retries_) {
      ++attempts;
      ++retries_performed_;
      s = base_->Issue(query, response);
    }
    last_attempts_ = attempts;
    if (s.ok() && keep_attempts_trace_) {
      attempts_trace_.push_back(static_cast<uint32_t>(attempts));
    }
    return s;
  }

  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override {
    responses->clear();
    size_t done = 0;
    // Retries already spent on the member currently at position `done`.
    uint64_t front_retries = 0;
    while (done < queries.size()) {
      const std::vector<Query> rest(queries.begin() + done, queries.end());
      std::vector<Response> part;
      Status s = base_->IssueBatch(rest, &part);
      for (size_t j = 0; j < part.size(); ++j) {
        RecordAnswered(j == 0 ? front_retries + 1 : 1);
        responses->push_back(std::move(part[j]));
      }
      if (!part.empty()) front_retries = 0;
      done += part.size();
      if (s.ok()) {
        HDC_CHECK(done == queries.size());
        return s;
      }
      if (!s.IsTransient() || front_retries >= max_retries_) {
        last_attempts_ = front_retries + 1;
        return s;
      }
      ++front_retries;
      ++retries_performed_;
    }
    return Status::OK();
  }

  uint64_t retries_performed() const { return retries_performed_; }

  /// Attempts (1 = clean) consumed by the most recent query that concluded
  /// — answered or given up on.
  uint64_t last_attempts() const { return last_attempts_; }

  /// One entry per answered query, in issue order: how many attempts it
  /// took. Only populated when constructed with keep_attempts_trace.
  const std::vector<uint32_t>& attempts_trace() const {
    return attempts_trace_;
  }

 private:
  void RecordAnswered(uint64_t attempts) {
    last_attempts_ = attempts;
    if (keep_attempts_trace_) {
      attempts_trace_.push_back(static_cast<uint32_t>(attempts));
    }
  }

  uint64_t max_retries_;
  bool keep_attempts_trace_;
  uint64_t retries_performed_ = 0;
  uint64_t last_attempts_ = 0;
  std::vector<uint32_t> attempts_trace_;
};

/// Invokes a callback after every successful query — used by benches to
/// sample progressiveness curves without entangling crawler internals.
/// Batch members fire the callback in issue order, answered prefix only.
class ObservedServer : public ServerDecorator {
 public:
  using Callback = std::function<void(const Query&, const Response&)>;

  ObservedServer(HiddenDbServer* base, Callback callback)
      : ServerDecorator(base), callback_(std::move(callback)) {}
  ObservedServer(std::unique_ptr<HiddenDbServer> base, Callback callback)
      : ServerDecorator(std::move(base)), callback_(std::move(callback)) {}

  Status Issue(const Query& query, Response* response) override {
    Status s = base_->Issue(query, response);
    if (s.ok() && callback_) callback_(query, *response);
    return s;
  }

  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override {
    Status s = base_->IssueBatch(queries, responses);
    if (callback_) {
      for (size_t i = 0; i < responses->size(); ++i) {
        callback_(queries[i], (*responses)[i]);
      }
    }
    return s;
  }

 private:
  Callback callback_;
};

/// Audit log: streams one line per query to `out` —
///   <index>\t<resolved|OVERFLOW>\t<returned>\t<query>
/// so an operator can review exactly what a crawl asked a site, or diff
/// two crawls' query sequences. Batch members are logged in issue order
/// (answered prefix only), so the log stays a faithful, diffable record of
/// the conversation whatever the batch size. The stream is not owned and
/// must outlive the decorator.
class QueryLogServer : public ServerDecorator {
 public:
  QueryLogServer(HiddenDbServer* base, std::ostream* out)
      : ServerDecorator(base), out_(out) {
    HDC_CHECK(out != nullptr);
  }
  QueryLogServer(std::unique_ptr<HiddenDbServer> base, std::ostream* out)
      : ServerDecorator(std::move(base)), out_(out) {
    HDC_CHECK(out != nullptr);
  }

  Status Issue(const Query& query, Response* response) override {
    Status s = base_->Issue(query, response);
    if (s.ok()) Log(query, *response);
    return s;
  }

  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override {
    Status s = base_->IssueBatch(queries, responses);
    for (size_t i = 0; i < responses->size(); ++i) {
      Log(queries[i], (*responses)[i]);
    }
    return s;
  }

  uint64_t logged() const { return index_; }

 private:
  void Log(const Query& query, const Response& response) {
    ++index_;
    *out_ << index_ << '\t'
          << (response.overflow ? "OVERFLOW" : "resolved") << '\t'
          << response.size() << '\t' << query.ToString() << '\n';
  }

  std::ostream* out_;
  uint64_t index_ = 0;
};

}  // namespace hdc
