// Copyright (c) hdc authors. Apache-2.0 license.
//
// Virtual-clock politeness model. The paper motivates minimizing queries by
// per-IP daily quotas (Section 1.1); this helper converts a measured query
// count into wall-clock estimates under such quotas, without actually
// sleeping. Used by examples to report "crawling this site would take X
// days at 1 query/5s, 10k queries/day".
#pragma once

#include <cstdint>
#include <string>

namespace hdc {

struct PolitenessModel {
  /// Per-IP daily quota (0 = unlimited).
  uint64_t queries_per_day = 0;
  /// Round-trip latency budget per query, in milliseconds.
  uint64_t per_query_latency_ms = 1000;

  struct Estimate {
    double hours_latency_bound = 0.0;  // latency-limited duration
    double days_quota_bound = 0.0;     // quota-limited duration
    double days_total = 0.0;           // max of the two, in days
  };

  Estimate EstimateDuration(uint64_t num_queries) const {
    Estimate e;
    e.hours_latency_bound = static_cast<double>(num_queries) *
                            static_cast<double>(per_query_latency_ms) /
                            3'600'000.0;
    if (queries_per_day > 0) {
      e.days_quota_bound = static_cast<double>(num_queries) /
                           static_cast<double>(queries_per_day);
    }
    double latency_days = e.hours_latency_bound / 24.0;
    e.days_total =
        latency_days > e.days_quota_bound ? latency_days : e.days_quota_bound;
    return e;
  }
};

}  // namespace hdc
