// Copyright (c) hdc authors. Apache-2.0 license.
//
// Politeness against a remote form interface, in two shapes:
//
//  - PolitenessModel: the virtual-clock estimator. The paper motivates
//    minimizing queries by per-IP daily quotas (Section 1.1); this helper
//    converts a measured query count into wall-clock estimates under such
//    quotas, without actually sleeping. Used by examples to report
//    "crawling this site would take X days at 1 query/5s, 10k queries/day".
//
//  - PolitenessPolicy: the *enforcing* client-side pacer. A real deep-web
//    crawler must space its requests out (hidden-web crawler surveys treat
//    request pacing as a hard requirement, not a courtesy); the policy
//    sleeps between wire rounds so a RemoteServer never hits the site
//    faster than a configured minimum inter-round delay, with optional
//    deterministic jitter so many crawlers sharing a policy seed do not
//    synchronize into bursts. Time flows through an injectable Clock, so
//    tests assert the exact schedule with a FakeClock.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "util/clock.h"
#include "util/macros.h"
#include "util/random.h"

namespace hdc {

struct PolitenessModel {
  /// Per-IP daily quota (0 = unlimited).
  uint64_t queries_per_day = 0;
  /// Round-trip latency budget per query, in milliseconds.
  uint64_t per_query_latency_ms = 1000;

  struct Estimate {
    double hours_latency_bound = 0.0;  // latency-limited duration
    double days_quota_bound = 0.0;     // quota-limited duration
    double days_total = 0.0;           // max of the two, in days
  };

  Estimate EstimateDuration(uint64_t num_queries) const {
    Estimate e;
    e.hours_latency_bound = static_cast<double>(num_queries) *
                            static_cast<double>(per_query_latency_ms) /
                            3'600'000.0;
    if (queries_per_day > 0) {
      e.days_quota_bound = static_cast<double>(num_queries) /
                           static_cast<double>(queries_per_day);
    }
    double latency_days = e.hours_latency_bound / 24.0;
    e.days_total =
        latency_days > e.days_quota_bound ? latency_days : e.days_quota_bound;
    return e;
  }
};

/// Configuration of the enforcing pacer. Default-constructed options pace
/// nothing (zero delay, zero jitter) — a policy built from them is a no-op,
/// so transports can own one unconditionally.
struct PolitenessOptions {
  /// Minimum time between the *starts* of two consecutive wire rounds.
  std::chrono::nanoseconds min_round_delay{0};

  /// Upper bound (exclusive) of the uniform random extra delay added to
  /// each round after the first. Zero disables jitter.
  std::chrono::nanoseconds max_jitter{0};

  /// Seed of the jitter stream — deterministic, so a paced conversation is
  /// reproducible run-to-run.
  uint64_t jitter_seed = 0x9e11fe;

  /// Time source; null means the process-wide RealClock.
  Clock* clock = nullptr;
};

/// Client-side pacing between wire rounds: call AwaitRoundStart()
/// immediately before sending each round. The first round is never
/// delayed; round i >= 2 starts no earlier than
///   start(i-1) + min_round_delay + jitter_i,   jitter_i ~ U[0, max_jitter)
/// measured on the injected clock. Single-conversation, like the server it
/// paces: not safe for concurrent AwaitRoundStart calls.
class PolitenessPolicy {
 public:
  explicit PolitenessPolicy(PolitenessOptions options = {})
      : options_(options),
        clock_(options.clock != nullptr ? options.clock : RealClock::Get()),
        jitter_rng_(options.jitter_seed) {
    HDC_CHECK_MSG(options_.min_round_delay.count() >= 0 &&
                      options_.max_jitter.count() >= 0,
                  "politeness delays must be non-negative");
  }

  /// Sleeps (on the policy's clock) until the next round may start, then
  /// stamps the round as started. Returns the delay actually slept.
  std::chrono::nanoseconds AwaitRoundStart() {
    const std::chrono::nanoseconds now = clock_->Now();
    std::chrono::nanoseconds wait{0};
    if (rounds_ > 0 && enforces_delay()) {
      std::chrono::nanoseconds gap = options_.min_round_delay;
      if (options_.max_jitter.count() > 0) {
        gap += std::chrono::nanoseconds(static_cast<int64_t>(
            jitter_rng_.UniformU64(
                static_cast<uint64_t>(options_.max_jitter.count()))));
      }
      const std::chrono::nanoseconds next_allowed = last_round_start_ + gap;
      if (next_allowed > now) {
        wait = next_allowed - now;
        clock_->SleepFor(wait);
        total_waited_ += wait;
        // Stamp the *actual* wake time, not the scheduled one: an OS
        // oversleep must push the next round out too, or the guaranteed
        // minimum gap would be measured from a time that never happened.
        last_round_start_ = clock_->Now();
        ++rounds_;
        return wait;
      }
    }
    last_round_start_ = now;
    ++rounds_;
    return wait;
  }

  /// True when the policy can ever sleep (any positive delay configured).
  bool enforces_delay() const {
    return options_.min_round_delay.count() > 0 ||
           options_.max_jitter.count() > 0;
  }

  /// Rounds started through this policy.
  uint64_t rounds() const { return rounds_; }

  /// Total time spent sleeping for politeness.
  std::chrono::nanoseconds total_waited() const { return total_waited_; }

 private:
  PolitenessOptions options_;
  Clock* clock_;
  Rng jitter_rng_;
  uint64_t rounds_ = 0;
  std::chrono::nanoseconds last_round_start_{0};
  std::chrono::nanoseconds total_waited_{0};
};

}  // namespace hdc
