// Copyright (c) hdc authors. Apache-2.0 license.
//
// The immutable half of the in-memory server: everything LocalServer used
// to build once and never change — the column store, the per-attribute
// indexes, and the fixed ranking priorities — extracted into a fully const,
// freely shareable object. One LocalIndex can back any number of servers
// or crawl sessions at once (see server/crawl_service.h): every method is
// const and touches no mutable state, so concurrent evaluation from many
// threads needs no synchronisation.
//
// Evaluation runs on one of three engines (LocalIndexOptions::engine):
//
//   kScan    — full scan per query. No index structures at all; the slow,
//              independent oracle the other engines are cross-checked
//              against.
//   kLegacy  — single-driver postings/sorted-array evaluation: the most
//              selective predicate supplies candidates, every candidate is
//              verified row-at-a-time against the remaining predicates.
//   kBitmap  — the default. Roaring-style block-compressed bitmaps: every
//              categorical value owns one container per 65536-id block,
//              stored as a sorted uint16 array while sparse and flipped to
//              a 1024-word bitset at 4096 ids; conjunctions intersect all
//              constraining predicates word-at-a-time (AND to combine
//              bitsets, ANDNOT to strip candidates a range predicate
//              rejects). Numeric ranges carry per-block zone maps (min/max
//              of the column per id block) so a range skips blocks that
//              cannot intersect it and accepts blocks it fully covers
//              without looking at a single row; only boundary blocks are
//              scanned. Top-k answers are selected streaming: a bounded
//              size-k heap consumes the intersection in ascending-id order,
//              flags overflow the moment candidate k+1 appears, and never
//              materializes the full match set.
//
// All three engines return bit-identical responses; the conformance suite
// and tests/index_engine_test.cc enforce it.
//
// The mutable half of a conversation (statistics, budgets, logs) lives in
// whoever holds the index: LocalServer for the classic single-crawl setup,
// ServerSession for the multi-crawl service.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "query/query.h"
#include "server/ranking.h"
#include "server/response.h"

namespace hdc {

class WorkerPool;

/// Which evaluation core answers queries. All engines are answer-identical;
/// they differ only in wall time and in the structures built at
/// construction.
enum class IndexEngine {
  kScan,    ///< full scan; the differential-test oracle
  kLegacy,  ///< single-driver postings + per-row verification
  kBitmap,  ///< block-compressed bitmaps + zone maps + streaming top-k
};

/// "scan" / "legacy" / "bitmap".
const char* IndexEngineName(IndexEngine engine);

struct LocalIndexOptions {
  IndexEngine engine = IndexEngine::kBitmap;
};

/// What LocalIndex built at construction time; printed by examples and
/// benches so a run proves which path it exercised.
struct IndexBuildStats {
  IndexEngine engine = IndexEngine::kBitmap;
  /// kBitmap only: containers across all categorical value bitmaps.
  uint64_t array_containers = 0;
  uint64_t bitset_containers = 0;
  /// kBitmap only: zone-map entries (id blocks x numeric attributes).
  uint64_t zone_map_blocks = 0;
};

/// Per-conversation statistic deltas produced by query evaluation; the
/// owner folds them into its own counters.
struct QueryStats {
  uint64_t queries = 0;
  uint64_t tuples = 0;
  uint64_t overflows = 0;

  void Add(const QueryStats& other) {
    queries += other.queries;
    tuples += other.tuples;
    overflows += other.overflows;
  }
};

/// Reusable per-conversation evaluation buffers. One EvalScratch may serve
/// any number of sequential AnswerQuery calls; concurrent calls need
/// distinct instances. Capacity is amortised across queries but bounded:
/// TrimAfterBatch drops oversized retention so one huge query cannot pin
/// peak-size buffers for the lifetime of a pool thread.
struct EvalScratch {
  /// Match collection (kScan/kLegacy) and the bounded top-k selection heap
  /// (kBitmap, never more than k entries).
  std::vector<uint32_t> ids;

  /// kBitmap range-driver bitmap: one bit per row, valid only for blocks
  /// whose epoch entry matches `epoch` (re-zeroed lazily per query, so a
  /// narrow range touches only its own blocks).
  std::vector<uint64_t> range_words;
  std::vector<uint32_t> block_epoch;
  uint32_t epoch = 0;

  /// Ids capacity retained across queries; anything above is released by
  /// TrimAfterBatch (64Ki ids = 256KiB).
  static constexpr size_t kRetainIds = size_t{1} << 16;

  /// Shrinks oversized buffers back to the retention cap. Called by
  /// EvaluateBatch after each pooled member so an overflow-heavy round
  /// cannot pin peak-size scratch on every worker thread forever.
  /// (range_words/block_epoch are bounded by the dataset size and kept.)
  void TrimAfterBatch() {
    if (ids.capacity() > kRetainIds) {
      ids.clear();
      ids.shrink_to_fit();
      ids.reserve(kRetainIds);
    }
  }
};

/// Read-only evaluation engine over one Dataset with one fixed ranking.
class LocalIndex {
 public:
  /// `policy` defaults to the paper's random-priority ranking (seeded for
  /// reproducibility).
  LocalIndex(std::shared_ptr<const Dataset> dataset, uint64_t k,
             std::unique_ptr<RankingPolicy> policy = nullptr,
             LocalIndexOptions options = {});

  uint64_t k() const { return k_; }
  const SchemaPtr& schema() const { return dataset_->schema(); }
  const Dataset& dataset() const { return *dataset_; }
  IndexEngine engine() const { return options_.engine; }
  const IndexBuildStats& build_stats() const { return build_stats_; }

  /// True iff Problem 1 is solvable against this index: no point of the
  /// data space holds more than k tuples (Section 1.1).
  bool IsCrawlable() const;

  /// Exact |q(D)| (no k-truncation); used by tests as ground truth.
  /// Thread-safe and materialization-free: counts flow from popcounts over
  /// intersected bitmap blocks (or per-row tests on the oracle engines)
  /// without ever building a match vector.
  uint64_t CountMatches(const Query& query) const;

  /// Evaluation of one query: fills `response`, accumulates into `stats`,
  /// touches nothing but the read-only indexes. Safe to call concurrently
  /// with distinct `scratch`/`stats`.
  void AnswerQuery(const Query& query, Response* response,
                   EvalScratch* scratch, QueryStats* stats) const;

 private:
  // --- kBitmap structures ----------------------------------------------

  /// Ids are split into blocks of 65536; each block's membership set is one
  /// container, array-coded while sparse and bitset-coded once dense
  /// (roaring's hybrid; the cutover is where the encodings' sizes cross).
  static constexpr uint32_t kBlockShift = 16;
  static constexpr uint32_t kBlockSize = uint32_t{1} << kBlockShift;
  static constexpr uint32_t kWordsPerBlock = kBlockSize / 64;
  static constexpr uint32_t kArrayCutover = 4096;

  struct Container {
    enum class Kind : uint8_t { kEmpty, kArray, kBitset };
    Kind kind = Kind::kEmpty;
    uint32_t cardinality = 0;
    /// Start of this container's payload in the owning Bitmap's arena
    /// (element offset into `arena` for kArray, word offset into `words`
    /// for kBitset); assigned by Finalize.
    uint32_t offset = 0;
    std::vector<uint16_t> build_array;  ///< build-time only, freed on Finalize
    std::vector<uint64_t> build_words;  ///< build-time only, freed on Finalize
  };

  struct Bitmap {
    uint64_t cardinality = 0;
    std::vector<Container> blocks;
    /// Payloads of every container, packed in block order. One contiguous
    /// buffer per bitmap keeps a query's fold over many blocks on a single
    /// hardware-prefetchable stream instead of thousands of scattered
    /// small allocations (which cost a TLB miss per container).
    std::vector<uint16_t> arena;  ///< kArray payloads: sorted low-16 id bits
    std::vector<uint64_t> words;  ///< kBitset payloads: kWordsPerBlock each

    void Append(uint32_t id);  ///< ids must arrive in ascending order
    void Finalize();           ///< packs payloads; no Append afterwards

    const uint16_t* ArrayAt(const Container& c) const {
      return arena.data() + c.offset;
    }
    const uint64_t* WordsAt(const Container& c) const {
      return words.data() + c.offset;
    }
  };

  /// One constraining predicate of a query, resolved against the index.
  struct PlannedPredicate {
    enum class Kind : uint8_t {
      kBitmap,  ///< pinned categorical: a prebuilt value bitmap
      kRange,   ///< numeric range, applied lazily via zone maps
    };
    Kind kind = Kind::kBitmap;
    const Bitmap* bitmap = nullptr;  // kBitmap
    size_t attr = 0;                 // kRange
    Value lo = 0;
    Value hi = 0;
    uint64_t count = 0;  ///< exact match count of this predicate alone
  };

  /// How one numeric range relates to one id block, per its zone map.
  enum class ZoneFit : uint8_t {
    kNone,     ///< zones disjoint: no row of the block can match
    kAll,      ///< zone inside the range: every row matches, scan nothing
    kPartial,  ///< boundary block: rows must be tested
  };

  void BuildLegacyStructures();
  void BuildBitmapStructures();

  /// Resolves `query`'s constraining predicates (domain-covering ones are
  /// dropped), cheapest bitmaps first, ranges last. Returns false when some
  /// predicate proves the result empty outright.
  bool PlanPredicates(const Query& query,
                      std::vector<PlannedPredicate>* plan) const;

  ZoneFit ClassifyZone(const PlannedPredicate& range, uint32_t block) const;

  /// Streams the ids matching `query` under the bitmap engine, ascending,
  /// into `visit(uint32_t id)`. `driver_words`/`driver_epochs` carry a
  /// materialized range-driver bitmap, or null for none. kPrefetchRank
  /// pre-touches priorities_[id] a little ahead of emission — the top-k
  /// visitor reads it per candidate and would otherwise stall on it; the
  /// counting visitor never does, so it skips the prefetches.
  template <bool kPrefetchRank, typename Visitor>
  void ForEachMatchBitmap(const std::vector<PlannedPredicate>& plan,
                          const uint64_t* driver_words,
                          const uint32_t* driver_epochs, uint32_t epoch,
                          Visitor&& visit) const;

  /// Appends all row ids matching `query` to `out` (oracle engines).
  void CollectMatchesScan(const Query& query,
                          std::vector<uint32_t>* out) const;
  void CollectMatchesLegacy(const Query& query,
                            std::vector<uint32_t>* out) const;

  uint64_t CountMatchesScan(const Query& query) const;
  uint64_t CountMatchesLegacy(const Query& query) const;
  uint64_t CountMatchesBitmap(const Query& query) const;

  void AnswerQueryBitmap(const Query& query, Response* response,
                         EvalScratch* scratch) const;

  /// Returns true if row `id` satisfies every predicate except (optionally)
  /// the one on `skip_attr` (pass num_attributes() to skip none).
  bool VerifyRow(const Query& query, uint32_t id, size_t skip_attr) const;

  /// True when the predicate on `a` cannot exclude any row: its extent
  /// covers this dataset's attribute domain (not merely the query
  /// schema's, which a session schema override may have narrowed).
  bool CoversDomain(const Query& query, size_t a) const;

  /// Ordering of the fixed ranking: true when x outranks y.
  bool Outranks(uint32_t x, uint32_t y) const {
    return priorities_[x] != priorities_[y] ? priorities_[x] > priorities_[y]
                                            : x < y;
  }

  /// [begin, end) positions of values in [lo, hi] inside sorted_values_[a].
  std::pair<size_t, size_t> SortedRange(size_t a, Value lo, Value hi) const;

  uint32_t num_blocks() const {
    return static_cast<uint32_t>(
        (dataset_->size() + kBlockSize - 1) / kBlockSize);
  }
  uint32_t block_rows(uint32_t block) const {
    const size_t n = dataset_->size();
    const size_t base = size_t{block} << kBlockShift;
    return static_cast<uint32_t>(std::min<size_t>(kBlockSize, n - base));
  }

  std::shared_ptr<const Dataset> dataset_;
  uint64_t k_;
  LocalIndexOptions options_;
  IndexBuildStats build_stats_;

  /// priorities_[id]: higher is returned first; ties by id ascending.
  std::vector<uint64_t> priorities_;

  /// Column-major copy of the data: columns_[attr][id].
  std::vector<std::vector<Value>> columns_;

  /// kLegacy: categorical attr -> (value -> sorted row ids). Indexed by
  /// value (1..U); slot 0 unused.
  std::vector<std::vector<std::vector<uint32_t>>> postings_;

  /// kLegacy + kBitmap: numeric attr -> row ids sorted by value, plus the
  /// aligned sorted values for binary search (kBitmap uses them for exact
  /// range selectivity and to materialize selective range drivers).
  std::vector<std::vector<uint32_t>> sorted_ids_;
  std::vector<std::vector<Value>> sorted_values_;

  /// kBitmap: categorical attr -> (value -> bitmap). Slot 0 unused.
  std::vector<std::vector<Bitmap>> value_bitmaps_;

  /// kBitmap: numeric attr -> per-block min/max of the column in id order.
  struct ZoneMap {
    std::vector<Value> min;
    std::vector<Value> max;
  };
  std::vector<ZoneMap> zone_maps_;
};

/// Evaluates `queries` against `index`, fanning members across `pool` when
/// one is supplied (nullptr or a 0-thread pool evaluates inline on the
/// calling thread). `responses` is parallel to `queries`; `stats` receives
/// the whole batch's deltas after all members finish. Responses and
/// statistics are identical either way — evaluation is pure given the
/// index. Thread-safe: concurrent calls against one index (even one pool)
/// are independent. `lane` is the WorkerPool::LaneId the batch's loop is
/// submitted on (0 = the pool's default lane); per-session lanes are how
/// CrawlService keeps concurrent crawls from starving each other.
void EvaluateBatch(const LocalIndex& index, WorkerPool* pool,
                   const std::vector<Query>& queries,
                   std::vector<Response>* responses, QueryStats* stats,
                   uint64_t lane = 0);

}  // namespace hdc
