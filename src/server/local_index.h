// Copyright (c) hdc authors. Apache-2.0 license.
//
// The immutable half of the in-memory server: everything LocalServer used
// to build once and never change — the column store, the per-attribute
// indexes, and the fixed ranking priorities — extracted into a fully const,
// freely shareable object. One LocalIndex can back any number of servers
// or crawl sessions at once (see server/crawl_service.h): every method is
// const and touches no mutable state, so concurrent evaluation from many
// threads needs no synchronisation.
//
// The mutable half of a conversation (statistics, budgets, logs) lives in
// whoever holds the index: LocalServer for the classic single-crawl setup,
// ServerSession for the multi-crawl service.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "query/query.h"
#include "server/ranking.h"
#include "server/response.h"

namespace hdc {

class WorkerPool;

struct LocalIndexOptions {
  /// When true (default), queries are answered through per-attribute indexes
  /// (postings lists for categorical values, value-sorted arrays for numeric
  /// ranges): the most selective predicate supplies candidates, the rest are
  /// verified column-at-a-time. When false, every query is a full scan —
  /// slow, but an independent oracle used to cross-check the indexed path.
  bool use_index = true;
};

/// Per-conversation statistic deltas produced by query evaluation; the
/// owner folds them into its own counters.
struct QueryStats {
  uint64_t queries = 0;
  uint64_t tuples = 0;
  uint64_t overflows = 0;

  void Add(const QueryStats& other) {
    queries += other.queries;
    tuples += other.tuples;
    overflows += other.overflows;
  }
};

/// Read-only evaluation engine over one Dataset with one fixed ranking.
class LocalIndex {
 public:
  /// `policy` defaults to the paper's random-priority ranking (seeded for
  /// reproducibility).
  LocalIndex(std::shared_ptr<const Dataset> dataset, uint64_t k,
             std::unique_ptr<RankingPolicy> policy = nullptr,
             LocalIndexOptions options = {});

  uint64_t k() const { return k_; }
  const SchemaPtr& schema() const { return dataset_->schema(); }
  const Dataset& dataset() const { return *dataset_; }

  /// True iff Problem 1 is solvable against this index: no point of the
  /// data space holds more than k tuples (Section 1.1).
  bool IsCrawlable() const;

  /// Exact |q(D)| (no k-truncation); used by tests as ground truth.
  /// Scratch-free and thread-safe.
  uint64_t CountMatches(const Query& query) const;

  /// Evaluation of one query: fills `response`, accumulates into `stats`,
  /// touches nothing but the read-only indexes. Safe to call concurrently
  /// with distinct `scratch`/`stats`.
  void AnswerQuery(const Query& query, Response* response,
                   std::vector<uint32_t>* scratch, QueryStats* stats) const;

 private:
  /// Appends all row ids matching `query` to `out`.
  void CollectMatches(const Query& query, std::vector<uint32_t>* out) const;
  void CollectMatchesScan(const Query& query,
                          std::vector<uint32_t>* out) const;
  void CollectMatchesIndexed(const Query& query,
                             std::vector<uint32_t>* out) const;

  /// Returns true if row `id` satisfies every predicate except (optionally)
  /// the one on `skip_attr` (pass num_attributes() to skip none).
  bool VerifyRow(const Query& query, uint32_t id, size_t skip_attr) const;

  /// True when the predicate on `a` cannot exclude any row: its extent
  /// covers this dataset's attribute domain (not merely the query
  /// schema's, which a session schema override may have narrowed).
  bool CoversDomain(const Query& query, size_t a) const;

  std::shared_ptr<const Dataset> dataset_;
  uint64_t k_;
  LocalIndexOptions options_;

  /// priorities_[id]: higher is returned first; ties by id ascending.
  std::vector<uint64_t> priorities_;

  /// Column-major copy of the data: columns_[attr][id].
  std::vector<std::vector<Value>> columns_;

  /// Categorical attr -> (value -> sorted row ids). Indexed by value
  /// (1..U); slot 0 unused.
  std::vector<std::vector<std::vector<uint32_t>>> postings_;

  /// Numeric attr -> row ids sorted by value, plus the aligned sorted
  /// values for binary search.
  std::vector<std::vector<uint32_t>> sorted_ids_;
  std::vector<std::vector<Value>> sorted_values_;
};

/// Evaluates `queries` against `index`, fanning members across `pool` when
/// one is supplied (nullptr or a 0-thread pool evaluates inline on the
/// calling thread). `responses` is parallel to `queries`; `stats` receives
/// the whole batch's deltas after all members finish. Responses and
/// statistics are identical either way — evaluation is pure given the
/// index. Thread-safe: concurrent calls against one index (even one pool)
/// are independent. `lane` is the WorkerPool::LaneId the batch's loop is
/// submitted on (0 = the pool's default lane); per-session lanes are how
/// CrawlService keeps concurrent crawls from starving each other.
void EvaluateBatch(const LocalIndex& index, WorkerPool* pool,
                   const std::vector<Query>& queries,
                   std::vector<Response>* responses, QueryStats* stats,
                   uint64_t lane = 0);

}  // namespace hdc
