// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/local_server.h"

#include "util/macros.h"
#include "util/worker_pool.h"

namespace hdc {

LocalServer::LocalServer(std::shared_ptr<const Dataset> dataset, uint64_t k,
                         std::unique_ptr<RankingPolicy> policy,
                         LocalServerOptions options)
    : LocalServer(std::make_shared<const LocalIndex>(
                      std::move(dataset), k, std::move(policy),
                      LocalIndexOptions{options.engine}),
                  options) {}

LocalServer::LocalServer(std::shared_ptr<const LocalIndex> index,
                         LocalServerOptions options)
    : index_(std::move(index)), options_(options) {
  HDC_CHECK(index_ != nullptr);
  HDC_CHECK_MSG(options_.max_parallelism >= 1,
                "LocalServerOptions::max_parallelism must be >= 1 (it "
                "bounds the threads of a batch, calling thread included)");
  if (options_.max_parallelism > 1) {
    pool_ = std::make_unique<WorkerPool>(options_.max_parallelism - 1);
  }
}

LocalServer::~LocalServer() = default;

void LocalServer::ResetStats() {
  queries_served_ = 0;
  tuples_returned_ = 0;
  overflow_count_ = 0;
}

Status LocalServer::Issue(const Query& query, Response* response) {
  QueryStats stats;
  index_->AnswerQuery(query, response, &scratch_, &stats);
  queries_served_ += stats.queries;
  tuples_returned_ += stats.tuples;
  overflow_count_ += stats.overflows;
  return Status::OK();
}

Status LocalServer::IssueBatch(const std::vector<Query>& queries,
                               std::vector<Response>* responses) {
  HDC_CHECK(responses != nullptr);
  QueryStats stats;
  EvaluateBatch(*index_, pool_.get(), queries, responses, &stats);
  queries_served_ += stats.queries;
  tuples_returned_ += stats.tuples;
  overflow_count_ += stats.overflows;
  return Status::OK();
}

}  // namespace hdc
