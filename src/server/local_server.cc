// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/local_server.h"

#include <algorithm>
#include <thread>

#include "util/macros.h"

namespace hdc {

LocalServer::LocalServer(std::shared_ptr<const Dataset> dataset, uint64_t k,
                         std::unique_ptr<RankingPolicy> policy,
                         LocalServerOptions options)
    : dataset_(std::move(dataset)), k_(k), options_(options) {
  HDC_CHECK(dataset_ != nullptr);
  HDC_CHECK_MSG(k_ >= 1, "the result limit k must be positive");

  if (policy == nullptr) policy = MakeRandomPriorityPolicy(0x5eedULL);
  priorities_ = policy->AssignPriorities(*dataset_);
  HDC_CHECK(priorities_.size() == dataset_->size());

  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();
  const size_t n = dataset_->size();
  HDC_CHECK_MSG(n <= UINT32_MAX, "row ids are 32-bit");

  columns_.assign(d, {});
  for (size_t a = 0; a < d; ++a) {
    columns_[a].resize(n);
    for (size_t i = 0; i < n; ++i) columns_[a][i] = dataset_->tuple(i)[a];
  }

  if (options_.use_index) {
    postings_.assign(d, {});
    sorted_ids_.assign(d, {});
    sorted_values_.assign(d, {});
    for (size_t a = 0; a < d; ++a) {
      if (schema.IsCategorical(a)) {
        postings_[a].assign(schema.domain_size(a) + 1, {});
        for (size_t i = 0; i < n; ++i) {
          postings_[a][static_cast<size_t>(columns_[a][i])].push_back(
              static_cast<uint32_t>(i));
        }
      } else {
        auto& ids = sorted_ids_[a];
        ids.resize(n);
        for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
        const auto& col = columns_[a];
        std::sort(ids.begin(), ids.end(), [&col](uint32_t x, uint32_t y) {
          return col[x] != col[y] ? col[x] < col[y] : x < y;
        });
        auto& vals = sorted_values_[a];
        vals.resize(n);
        for (size_t i = 0; i < n; ++i) vals[i] = col[ids[i]];
      }
    }
  }
}

bool LocalServer::IsCrawlable() const {
  return dataset_->MaxPointMultiplicity() <= k_;
}

void LocalServer::ResetStats() {
  queries_served_ = 0;
  tuples_returned_ = 0;
  overflow_count_ = 0;
}

bool LocalServer::VerifyRow(const Query& query, uint32_t id,
                            size_t skip_attr) const {
  const size_t d = columns_.size();
  for (size_t a = 0; a < d; ++a) {
    if (a == skip_attr) continue;
    const AttrInterval& ext = query.extent(a);
    const Value v = columns_[a][id];
    if (v < ext.lo || v > ext.hi) return false;
  }
  return true;
}

void LocalServer::CollectMatchesScan(const Query& query,
                                     std::vector<uint32_t>* out) const {
  const size_t n = dataset_->size();
  for (size_t i = 0; i < n; ++i) {
    if (query.Matches(dataset_->tuple(i))) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

void LocalServer::CollectMatchesIndexed(const Query& query,
                                        std::vector<uint32_t>* out) const {
  const Schema& schema = *dataset_->schema();
  const size_t d = schema.num_attributes();
  const size_t n = dataset_->size();

  // Pick the most selective non-wildcard predicate as the candidate driver.
  size_t best_attr = d;
  size_t best_size = n + 1;
  for (size_t a = 0; a < d; ++a) {
    if (query.IsWildcard(a)) continue;
    const AttrInterval& ext = query.extent(a);
    size_t size;
    if (schema.IsCategorical(a)) {
      // Categorical non-wildcard slots are always pinned.
      size = postings_[a][static_cast<size_t>(ext.lo)].size();
    } else {
      const auto& vals = sorted_values_[a];
      auto lo_it = std::lower_bound(vals.begin(), vals.end(), ext.lo);
      auto hi_it = std::upper_bound(vals.begin(), vals.end(), ext.hi);
      size = static_cast<size_t>(hi_it - lo_it);
    }
    if (size < best_size) {
      best_size = size;
      best_attr = a;
    }
  }

  if (best_attr == d) {
    // Every predicate is a wildcard: all rows qualify.
    out->resize(n);
    for (size_t i = 0; i < n; ++i) (*out)[i] = static_cast<uint32_t>(i);
    return;
  }

  const AttrInterval& ext = query.extent(best_attr);
  if (schema.IsCategorical(best_attr)) {
    for (uint32_t id : postings_[best_attr][static_cast<size_t>(ext.lo)]) {
      if (VerifyRow(query, id, best_attr)) out->push_back(id);
    }
  } else {
    const auto& vals = sorted_values_[best_attr];
    const auto& ids = sorted_ids_[best_attr];
    size_t lo_idx = static_cast<size_t>(
        std::lower_bound(vals.begin(), vals.end(), ext.lo) - vals.begin());
    size_t hi_idx = static_cast<size_t>(
        std::upper_bound(vals.begin(), vals.end(), ext.hi) - vals.begin());
    for (size_t i = lo_idx; i < hi_idx; ++i) {
      uint32_t id = ids[i];
      if (VerifyRow(query, id, best_attr)) out->push_back(id);
    }
    // The driver range is ordered by value; restore id order so responses
    // are independent of which index drove the query.
    std::sort(out->begin(), out->end());
  }
}

void LocalServer::CollectMatches(const Query& query,
                                 std::vector<uint32_t>* out) const {
  out->clear();
  if (options_.use_index) {
    CollectMatchesIndexed(query, out);
  } else {
    CollectMatchesScan(query, out);
  }
}

uint64_t LocalServer::CountMatches(const Query& query) {
  CollectMatches(query, &scratch_);
  return scratch_.size();
}

void LocalServer::AnswerQuery(const Query& query, Response* response,
                              std::vector<uint32_t>* scratch,
                              StatsDelta* stats) const {
  HDC_CHECK(response != nullptr);
  HDC_CHECK_MSG(query.schema() != nullptr &&
                    query.schema()->CompatibleWith(*dataset_->schema()),
                "query schema does not match the server's data space");
  ++stats->queries;

  CollectMatches(query, scratch);
  response->tuples.clear();

  const size_t count = scratch->size();
  response->overflow = count > k_;
  if (response->overflow) {
    ++stats->overflows;
    // Keep the k highest-priority rows (ties by id ascending) — the fixed
    // ranking a real site would apply.
    auto better = [this](uint32_t x, uint32_t y) {
      return priorities_[x] != priorities_[y]
                 ? priorities_[x] > priorities_[y]
                 : x < y;
    };
    std::nth_element(scratch->begin(), scratch->begin() + k_, scratch->end(),
                     better);
    scratch->resize(k_);
    std::sort(scratch->begin(), scratch->end(), better);
  }

  response->tuples.reserve(scratch->size());
  for (uint32_t id : *scratch) {
    response->tuples.push_back(ReturnedTuple{dataset_->tuple(id), id});
  }
  stats->tuples += response->tuples.size();
}

Status LocalServer::Issue(const Query& query, Response* response) {
  StatsDelta stats;
  AnswerQuery(query, response, &scratch_, &stats);
  queries_served_ += stats.queries;
  tuples_returned_ += stats.tuples;
  overflow_count_ += stats.overflows;
  return Status::OK();
}

Status LocalServer::IssueBatch(const std::vector<Query>& queries,
                               std::vector<Response>* responses) {
  HDC_CHECK(responses != nullptr);
  const size_t n = queries.size();
  const size_t workers =
      std::min<size_t>(options_.max_parallelism > 0 ? options_.max_parallelism
                                                    : 1,
                       n);
  if (workers <= 1) {
    responses->clear();
    responses->reserve(n);
    for (const Query& query : queries) {
      Response response;
      Status s = Issue(query, &response);
      if (!s.ok()) return s;  // unreachable: LocalServer::Issue is total
      responses->push_back(std::move(response));
    }
    return Status::OK();
  }

  responses->assign(n, Response{});
  std::vector<StatsDelta> deltas(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([this, w, workers, &queries, responses, &deltas] {
      std::vector<uint32_t> scratch;
      for (size_t i = w; i < queries.size(); i += workers) {
        AnswerQuery(queries[i], &(*responses)[i], &scratch, &deltas[w]);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const StatsDelta& d : deltas) {
    queries_served_ += d.queries;
    tuples_returned_ += d.tuples;
    overflow_count_ += d.overflows;
  }
  return Status::OK();
}

}  // namespace hdc
