// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <cstdint>
#include <vector>

#include "data/tuple.h"

namespace hdc {

/// One tuple of a server response. `hidden_id` identifies the physical row
/// (as a result row on a real site would); crawling algorithms never branch
/// on it — it exists so the harness can measure progressiveness (how many
/// distinct rows have been retrieved so far, Figure 13) without guessing
/// about duplicate tuples.
struct ReturnedTuple {
  Tuple tuple;
  uint64_t hidden_id = 0;
};

/// Server answer to one query (paper, Section 1.1):
///  - if |q(D)| <= k: the entire bag q(D), overflow = false ("resolved");
///  - else: k tuples of q(D) plus an overflow signal. Which k is the
///    server's choice (a fixed ranking); re-issuing the same query returns
///    the same k tuples.
struct Response {
  std::vector<ReturnedTuple> tuples;
  bool overflow = false;

  bool resolved() const { return !overflow; }
  size_t size() const { return tuples.size(); }
};

}  // namespace hdc
