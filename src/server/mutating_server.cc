// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/mutating_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "server/ranking.h"
#include "util/macros.h"

namespace hdc {

MutatingLocalServer::MutatingLocalServer(std::shared_ptr<const Dataset> initial,
                                         uint64_t k, uint64_t priority_seed)
    : schema_(initial->schema()), k_(k), priority_rng_(priority_seed) {
  rows_.reserve(initial->size());
  for (const Tuple& t : initial->tuples()) {
    rows_.push_back(Row{next_stable_id_++, priority_rng_.Next(), t});
  }
  RebuildIndex();
}

void MutatingLocalServer::RebuildIndex() {
  auto dataset = std::make_shared<Dataset>(schema_);
  std::vector<uint64_t> priorities;
  priorities.reserve(rows_.size());
  for (const Row& row : rows_) {
    dataset->AddUnchecked(row.tuple);
    priorities.push_back(row.priority);
  }
  index_ = std::make_shared<const LocalIndex>(
      std::move(dataset), k_, MakeFixedPriorityPolicy(std::move(priorities)));
  scratch_ = EvalScratch{};
}

Status MutatingLocalServer::Apply(const std::vector<Mutation>& burst) {
  // Validate the whole burst first: either all of it applies, or none.
  auto find_row = [&](uint64_t stable_id) {
    return std::find_if(rows_.begin(), rows_.end(), [&](const Row& r) {
      return r.stable_id == stable_id;
    });
  };
  // Deletes earlier in the burst must be visible to later validation, so
  // track ids the burst already removed.
  std::vector<uint64_t> deleted;
  auto burst_deleted = [&](uint64_t id) {
    return std::find(deleted.begin(), deleted.end(), id) != deleted.end();
  };
  // A tuple outside the schema's domains would be unreachable by any
  // rectangle query — a row no crawl could ever extract — so reject it.
  auto tuple_fits = [&](const Tuple& t, const char* what) -> Status {
    if (t.size() != schema_->num_attributes()) {
      return Status::InvalidArgument(std::string("mutation: ") + what +
                                     " arity mismatch");
    }
    for (size_t i = 0; i < t.size(); ++i) {
      if (!schema_->attribute(i).ValueInDomain(t[i])) {
        return Status::InvalidArgument(
            std::string("mutation: ") + what + " value " +
            std::to_string(t[i]) + " outside the domain of attribute " +
            schema_->attribute(i).name);
      }
    }
    return Status::OK();
  };
  for (const Mutation& m : burst) {
    switch (m.kind) {
      case Mutation::Kind::kInsert:
        HDC_RETURN_IF_ERROR(tuple_fits(m.tuple, "insert"));
        break;
      case Mutation::Kind::kDelete:
      case Mutation::Kind::kUpdate:
        if (find_row(m.stable_id) == rows_.end() ||
            burst_deleted(m.stable_id)) {
          return Status::InvalidArgument(
              "mutation: unknown stable id " + std::to_string(m.stable_id));
        }
        if (m.kind == Mutation::Kind::kUpdate) {
          HDC_RETURN_IF_ERROR(tuple_fits(m.tuple, "update"));
        }
        if (m.kind == Mutation::Kind::kDelete) deleted.push_back(m.stable_id);
        break;
    }
  }
  for (const Mutation& m : burst) {
    switch (m.kind) {
      case Mutation::Kind::kInsert:
        rows_.push_back(Row{next_stable_id_++, priority_rng_.Next(), m.tuple});
        break;
      case Mutation::Kind::kDelete:
        rows_.erase(find_row(m.stable_id));
        break;
      case Mutation::Kind::kUpdate:
        find_row(m.stable_id)->tuple = m.tuple;
        break;
    }
  }
  ++db_version_;
  RebuildIndex();
  return Status::OK();
}

void MutatingLocalServer::ScheduleAt(uint64_t at_queries_served,
                                     std::vector<Mutation> burst) {
  ScheduledBurst scheduled{at_queries_served, std::move(burst)};
  // Insert keeping trigger order; equal triggers keep scheduling order.
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [&](const ScheduledBurst& b) {
                           return b.at_queries_served >
                                  scheduled.at_queries_served;
                         });
  pending_.insert(it, std::move(scheduled));
}

void MutatingLocalServer::FireDueBursts() {
  while (!pending_.empty() &&
         pending_.front().at_queries_served <= queries_served_) {
    std::vector<Mutation> burst = std::move(pending_.front().burst);
    pending_.erase(pending_.begin());
    // A scripted burst is authored against known ids; a failure here is a
    // broken script, surfaced loudly rather than swallowed.
    Status status = Apply(burst);
    HDC_CHECK(status.ok());
  }
}

Status MutatingLocalServer::Issue(const Query& query, Response* response) {
  FireDueBursts();
  QueryStats stats;
  index_->AnswerQuery(query, response, &scratch_, &stats);
  // LocalIndex reports row positions; translate to ids that survive
  // mutations.
  for (ReturnedTuple& rt : response->tuples) {
    rt.hidden_id = rows_[rt.hidden_id].stable_id;
  }
  ++queries_served_;
  return Status::OK();
}

std::vector<std::pair<uint64_t, Tuple>> MutatingLocalServer::Rows() const {
  std::vector<std::pair<uint64_t, Tuple>> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) out.emplace_back(row.stable_id, row.tuple);
  return out;
}

std::shared_ptr<const Dataset> MutatingLocalServer::Snapshot() const {
  auto dataset = std::make_shared<Dataset>(schema_);
  for (const Row& row : rows_) dataset->AddUnchecked(row.tuple);
  return dataset;
}

}  // namespace hdc
