// Copyright (c) hdc authors. Apache-2.0 license.
//
// CachingServer: a HiddenDbServer decorator that serves repeated and
// overlapping crawl queries from an AnswerCache instead of spending server
// queries on them. This is the client-side piece of the caching + delta
// re-crawl subsystem (ROADMAP "mutating database" item): a re-crawl that
// replays a prior crawl's rectangles through a CachingServer costs zero
// server queries when nothing changed (version check), and one cheap
// revalidation per rectangle when freshness cannot be proven locally.
//
// Billing model, per probe outcome:
//   hit          — answered from cache; the wrapped server is never
//                  contacted, so nothing is billed anywhere.
//   revalidation — one conditional re-ask reaches the wrapped server. If
//                  the answer's content hash matches the cached one, the
//                  round trip moved no data (a "304") and callers should
//                  bill it as a cheap revalidation, not a full query:
//                  stats() separates revalidations_matched from
//                  revalidations_changed for exactly this purpose.
//   miss         — a full query, forwarded and billed as usual.
//
// In always-fresh mode every probe is a miss, making the decorator
// byte-identical to the undecorated conversation — proven by instantiating
// the backend conformance suite over it (in-process and over loopback).
#pragma once

#include <memory>
#include <vector>

#include "server/answer_cache.h"
#include "server/decorators.h"

namespace hdc {

class CachingServer : public ServerDecorator {
 public:
  /// Owns its cache, configured by `options`. Borrowed/owned base follows
  /// the decorator convention.
  CachingServer(HiddenDbServer* base, AnswerCacheOptions options = {});
  CachingServer(std::unique_ptr<HiddenDbServer> base,
                AnswerCacheOptions options = {});

  /// Shares an external cache (e.g. seeded from a prior crawl record by
  /// the delta-crawl driver, or shared across several client stacks).
  CachingServer(HiddenDbServer* base, std::shared_ptr<AnswerCache> cache);
  CachingServer(std::unique_ptr<HiddenDbServer> base,
                std::shared_ptr<AnswerCache> cache);

  Status Issue(const Query& query, Response* response) override;

  /// Members answered from cache are filled locally; maximal runs of
  /// consecutive non-hit members are forwarded to the wrapped server as
  /// sub-batches, preserving member order and the answered-prefix
  /// partial-failure contract: on a sub-batch failure the members answered
  /// before it (cached or forwarded) form the returned prefix.
  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override;

  AnswerCache& cache() { return *cache_; }
  const AnswerCache& cache() const { return *cache_; }
  AnswerCacheStats stats() const { return cache_->stats(); }

  /// Server queries actually forwarded to the wrapped server (misses +
  /// revalidations); the crawler-visible query count minus hits.
  uint64_t forwarded_queries() const { return forwarded_queries_; }

 private:
  /// Issue() against the wrapped base plus cache bookkeeping for one
  /// non-hit member.
  Status ForwardOne(const Query& query, bool revalidate, Response* response);

  std::shared_ptr<AnswerCache> cache_;
  uint64_t forwarded_queries_ = 0;
};

}  // namespace hdc
