// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <cstdint>
#include <vector>

#include "data/schema.h"
#include "query/query.h"
#include "server/response.h"
#include "util/status.h"

namespace hdc {

/// The crawler-facing contract of a hidden database server: submit a form
/// query, receive at most k tuples plus an overflow signal. Implementations:
/// LocalServer (in-memory evaluation, the paper's Section 6 methodology) and
/// the decorators in server/decorators.h (counting, budgets, tracing).
///
/// Two entry points share one cost model (the paper counts queries, not
/// round-trips): Issue() runs a single query, IssueBatch() submits several
/// *independent* queries in one call so an implementation may pipeline or
/// parallelize them. Callers must not call either concurrently on the same
/// server object; IssueBatch members may be evaluated concurrently *inside*
/// an implementation (e.g. LocalServer's worker pool).
class HiddenDbServer {
 public:
  virtual ~HiddenDbServer() = default;

  /// Executes `query`. Returns non-OK only for environmental reasons (e.g.
  /// a BudgetServer's budget is exhausted) — never because of the data.
  virtual Status Issue(const Query& query, Response* response) = 0;

  /// Executes the members of `queries` in order, as if by repeated Issue()
  /// calls. The batched contract:
  ///
  ///  - *Ordering.* `responses` is parallel to `queries`: responses[i]
  ///    answers queries[i]. Implementations may evaluate members in any
  ///    order (or concurrently) but must produce the same responses the
  ///    sequential conversation would.
  ///  - *Partial failure (prefix semantics).* On return, `responses` holds
  ///    the longest prefix of answered members: responses->size() == m with
  ///    m <= queries.size(). The call returns OK iff m == queries.size();
  ///    otherwise it returns the status of member m — the first member that
  ///    failed — and members past m were not attempted (they consumed no
  ///    quota). The caller re-submits queries[m..] after recovering.
  ///  - *Budget truncation.* A metering wrapper (BudgetServer) answers as
  ///    many members as its budget allows, then fails the batch with
  ///    ResourceExhausted; the answered prefix is still valid and paid-for.
  ///  - *Equivalence.* A one-element batch is exactly Issue(): same
  ///    responses, same side effects, same failure behaviour.
  ///
  /// The default implementation is the sequential fallback: Issue() per
  /// member, stopping at the first failure.
  virtual Status IssueBatch(const std::vector<Query>& queries,
                            std::vector<Response>* responses) {
    responses->clear();
    responses->reserve(queries.size());
    for (const Query& query : queries) {
      Response response;
      Status s = Issue(query, &response);
      if (!s.ok()) return s;
      responses->push_back(std::move(response));
    }
    return Status::OK();
  }

  /// The server's result-size limit k (e.g. 1000 for Yahoo! Autos).
  virtual uint64_t k() const = 0;

  /// Hint: how many batch members the implementation can evaluate
  /// concurrently (1 means batching cannot shorten wall-clock time).
  /// Adaptive batch sizing (CrawlOptions::batch_size == 0) caps its round
  /// size here; decorators forward the wrapped server's value.
  virtual unsigned batch_parallelism() const { return 1; }

  /// The data space the server exposes. A real crawler learns this from the
  /// search form (Section 1.3, "Domain values").
  virtual const SchemaPtr& schema() const = 0;
};

}  // namespace hdc
