// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <cstdint>
#include <vector>

#include "data/schema.h"
#include "query/query.h"
#include "server/response.h"
#include "util/status.h"

namespace hdc {

/// Transport/load feedback a server exposes to adaptive batch sizing
/// (CrawlOptions::batch_size == 0, see core/batch_sizer.h). Purely
/// advisory: it never changes answers, billing, or batch semantics.
struct ServerLoadHint {
  /// True when every round crosses a high-latency boundary (a network
  /// transport): latency-aware auto sizing may then grow rounds beyond
  /// batch_parallelism() to amortize the per-round latency. In-process
  /// servers leave this false, which keeps auto sizing exactly the
  /// deterministic frontier-width-capped-by-parallelism rule.
  bool latency_feedback = false;

  /// Cumulative server-side queue wait attributable to this conversation,
  /// in seconds (0 when unknown). A remote server piggybacks its session
  /// lane's queue-wait total (util/worker_pool.h LaneStats) on each batch
  /// reply; the sizer diffs successive readings to see how long the *last*
  /// round sat behind other tenants — the congestion signal that tells a
  /// polite client to shrink its rounds. A reading *smaller* than the
  /// previous one means the conversation moved to a fresh server session
  /// (reconnect); the sizer treats it as a reset, not as zero wait.
  double queue_wait_total_seconds = 0;

  /// Cumulative time this server has spent sleeping for client-side
  /// politeness (PolitenessPolicy), in seconds. Latency-aware sizing
  /// subtracts the per-round delta from its measured round-trip: a pacing
  /// delay is a deliberate choice, not transport latency, and must not
  /// shrink rounds.
  double politeness_wait_total_seconds = 0;

  /// Per-shard cumulative queue waits for scatter-gather servers
  /// (server/sharding.h), one entry per shard, same semantics as
  /// queue_wait_total_seconds. Empty for unsharded servers. A scattered
  /// round is as slow as its slowest shard, so adaptive sizing reacts to
  /// the *maximum* per-shard delta rather than the sum — one congested
  /// shard among idle ones must still shrink rounds.
  std::vector<double> shard_queue_wait_seconds;
};

/// The crawler-facing contract of a hidden database server: submit a form
/// query, receive at most k tuples plus an overflow signal. Implementations:
/// LocalServer (in-memory evaluation, the paper's Section 6 methodology) and
/// the decorators in server/decorators.h (counting, budgets, tracing).
///
/// Two entry points share one cost model (the paper counts queries, not
/// round-trips): Issue() runs a single query, IssueBatch() submits several
/// *independent* queries in one call so an implementation may pipeline or
/// parallelize them. Callers must not call either concurrently on the same
/// server object; IssueBatch members may be evaluated concurrently *inside*
/// an implementation (e.g. LocalServer's worker pool).
class HiddenDbServer {
 public:
  virtual ~HiddenDbServer() = default;

  /// Executes `query`. Returns non-OK only for environmental reasons (e.g.
  /// a BudgetServer's budget is exhausted) — never because of the data.
  virtual Status Issue(const Query& query, Response* response) = 0;

  /// Executes the members of `queries` in order, as if by repeated Issue()
  /// calls. The batched contract:
  ///
  ///  - *Ordering.* `responses` is parallel to `queries`: responses[i]
  ///    answers queries[i]. Implementations may evaluate members in any
  ///    order (or concurrently) but must produce the same responses the
  ///    sequential conversation would.
  ///  - *Partial failure (prefix semantics).* On return, `responses` holds
  ///    the longest prefix of answered members: responses->size() == m with
  ///    m <= queries.size(). The call returns OK iff m == queries.size();
  ///    otherwise it returns the status of member m — the first member that
  ///    failed — and members past m were not attempted (they consumed no
  ///    quota). The caller re-submits queries[m..] after recovering.
  ///  - *Budget truncation.* A metering wrapper (BudgetServer) answers as
  ///    many members as its budget allows, then fails the batch with
  ///    ResourceExhausted; the answered prefix is still valid and paid-for.
  ///  - *Equivalence.* A one-element batch is exactly Issue(): same
  ///    responses, same side effects, same failure behaviour.
  ///
  /// The default implementation is the sequential fallback: Issue() per
  /// member, stopping at the first failure.
  virtual Status IssueBatch(const std::vector<Query>& queries,
                            std::vector<Response>* responses) {
    responses->clear();
    responses->reserve(queries.size());
    for (const Query& query : queries) {
      Response response;
      Status s = Issue(query, &response);
      if (!s.ok()) return s;
      responses->push_back(std::move(response));
    }
    return Status::OK();
  }

  /// The server's result-size limit k (e.g. 1000 for Yahoo! Autos).
  virtual uint64_t k() const = 0;

  /// Hint: how many batch members the implementation can evaluate
  /// concurrently (1 means batching cannot shorten wall-clock time).
  /// Adaptive batch sizing (CrawlOptions::batch_size == 0) caps its round
  /// size here; decorators forward the wrapped server's value.
  virtual unsigned batch_parallelism() const { return 1; }

  /// Load/transport feedback for latency-aware batch sizing; decorators
  /// forward the wrapped server's value. The default — no latency
  /// feedback, no queue-wait signal — describes every in-process server.
  virtual ServerLoadHint load_hint() const { return ServerLoadHint{}; }

  /// The data space the server exposes. A real crawler learns this from the
  /// search form (Section 1.3, "Domain values").
  virtual const SchemaPtr& schema() const = 0;

  /// Monotonic data-version counter: a server whose contents can mutate
  /// bumps this on every mutation, so a cache (server/answer_cache.h) can
  /// prove a stored answer still fresh with zero queries. The default 0
  /// means "frozen": the paper's setting, and every immutable in-process
  /// backend. Decorators forward the wrapped server's value; RemoteServer
  /// reports the counter piggybacked on the handshake and on every
  /// batch-end frame.
  virtual uint64_t db_version() const { return 0; }
};

}  // namespace hdc
