// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <cstdint>

#include "data/schema.h"
#include "query/query.h"
#include "server/response.h"
#include "util/status.h"

namespace hdc {

/// The crawler-facing contract of a hidden database server: submit a form
/// query, receive at most k tuples plus an overflow signal. Implementations:
/// LocalServer (in-memory evaluation, the paper's Section 6 methodology) and
/// the decorators in server/decorators.h (counting, budgets, tracing).
///
/// Servers are not thread-safe; a crawl is a sequential conversation.
class HiddenDbServer {
 public:
  virtual ~HiddenDbServer() = default;

  /// Executes `query`. Returns non-OK only for environmental reasons (e.g.
  /// a BudgetServer's budget is exhausted) — never because of the data.
  virtual Status Issue(const Query& query, Response* response) = 0;

  /// The server's result-size limit k (e.g. 1000 for Yahoo! Autos).
  virtual uint64_t k() const = 0;

  /// The data space the server exposes. A real crawler learns this from the
  /// search form (Section 1.3, "Domain values").
  virtual const SchemaPtr& schema() const = 0;
};

}  // namespace hdc
