// Copyright (c) hdc authors. Apache-2.0 license.
//
// MutatingLocalServer: the test harness for everything the paper's frozen
// setting cannot express. It serves a dataset through the usual top-k
// interface, but its contents mutate — either explicitly (Apply) or via a
// script of mutation bursts that fire mid-crawl when the served-query
// counter crosses their trigger points. Every burst bumps db_version, so
// caches and delta crawls can detect staleness the way they would against
// a version-reporting production backend.
//
// Two properties make exact delta testing possible:
//
//  * Stable hidden ids. LocalIndex reports hidden_id = row position, which
//    shifts under deletion. This server remaps positions to per-row stable
//    ids assigned at insertion and never reused, so "the same row" means
//    the same id across any number of mutations — insert/delete/update
//    deltas are well-defined.
//
//  * Stable ranking. Each row keeps a fixed random priority for life; the
//    index is rebuilt after each burst under FixedPriorityPolicy over the
//    surviving rows. A row's rank relative to surviving peers never
//    changes, so an unchanged subspace returns byte-identical answers —
//    exactly the invariant content-hash revalidation relies on.
//
// Not thread-safe: mutation scripts interleave with a single
// conversation, batch_parallelism stays 1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "server/local_index.h"
#include "server/server.h"
#include "util/random.h"

namespace hdc {

/// One row-level change. kInsert adds `tuple` as a new row (a fresh stable
/// id); kDelete removes row `stable_id`; kUpdate replaces row `stable_id`'s
/// values with `tuple` (same id — the row "moved").
struct Mutation {
  enum class Kind { kInsert, kDelete, kUpdate };

  static Mutation Insert(Tuple tuple) {
    return Mutation{Kind::kInsert, std::move(tuple), 0};
  }
  static Mutation Delete(uint64_t stable_id) {
    return Mutation{Kind::kDelete, Tuple{}, stable_id};
  }
  static Mutation Update(uint64_t stable_id, Tuple tuple) {
    return Mutation{Kind::kUpdate, std::move(tuple), stable_id};
  }

  Kind kind = Kind::kInsert;
  Tuple tuple;
  uint64_t stable_id = 0;
};

class MutatingLocalServer : public HiddenDbServer {
 public:
  /// Rows 0..n-1 of `initial` get stable ids 0..n-1 and priorities drawn
  /// from a deterministic stream seeded by `priority_seed`.
  MutatingLocalServer(std::shared_ptr<const Dataset> initial, uint64_t k,
                      uint64_t priority_seed = 7);

  Status Issue(const Query& query, Response* response) override;
  // IssueBatch: inherited sequential fallback — member-by-member, so a
  // scheduled burst firing mid-batch behaves exactly as in the sequential
  // conversation.

  uint64_t k() const override { return k_; }
  const SchemaPtr& schema() const override { return schema_; }
  uint64_t db_version() const override { return db_version_; }

  /// Applies one mutation burst now and bumps db_version once. Fails
  /// (InvalidArgument) on a delete/update naming an unknown stable id, an
  /// insert/update tuple that does not fit the schema — nothing is applied
  /// in that case.
  Status Apply(const std::vector<Mutation>& burst);

  /// Schedules a burst to fire just before the first query served once
  /// `queries_served() >= at_queries_served`. Bursts fire in trigger
  /// order; several at one trigger fire as separate version bumps.
  void ScheduleAt(uint64_t at_queries_served, std::vector<Mutation> burst);

  /// Current rows as (stable_id, tuple), in stable-id order — the ground
  /// truth a delta-crawl test diffs against.
  std::vector<std::pair<uint64_t, Tuple>> Rows() const;

  /// Snapshot of the current bag (fresh Dataset, row order = stable-id
  /// order).
  std::shared_ptr<const Dataset> Snapshot() const;

  uint64_t queries_served() const { return queries_served_; }
  uint64_t next_stable_id() const { return next_stable_id_; }

 private:
  struct Row {
    uint64_t stable_id = 0;
    uint64_t priority = 0;
    Tuple tuple;
  };

  struct ScheduledBurst {
    uint64_t at_queries_served = 0;
    std::vector<Mutation> burst;
  };

  void RebuildIndex();
  void FireDueBursts();

  SchemaPtr schema_;
  uint64_t k_ = 0;
  Rng priority_rng_;

  std::vector<Row> rows_;  // insertion order == stable-id order
  uint64_t next_stable_id_ = 0;
  uint64_t db_version_ = 1;

  std::shared_ptr<const LocalIndex> index_;
  EvalScratch scratch_;

  std::vector<ScheduledBurst> pending_;  // sorted by trigger, stable
  uint64_t queries_served_ = 0;
};

}  // namespace hdc
