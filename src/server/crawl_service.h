// Copyright (c) hdc authors. Apache-2.0 license.
//
// The multi-crawl service: one immutable LocalIndex, many concurrent
// conversations. The paper's methodology (Section 6) models one crawler
// talking to one server; a production hidden-database service instead
// answers many crawlers at once over the same read-only data. This layer
// splits those concerns:
//
//   CrawlService                    ServerSession (one per crawl)
//   ------------                    ----------------------------
//   shared LocalIndex (const)       per-session statistics
//   shared WorkerPool               per-session query budget
//   session minting + registry      per-session audit log + trace
//   service-wide metrics            per-session scheduling lane
//
// A session is a full HiddenDbServer, so every crawler, decorator, and
// CrawlContext works against it unchanged, and a single-session service
// reproduces the classic LocalServer conversation byte for byte. Because
// the index is fully const and the pool is thread-safe, any number of
// sessions may run on distinct threads with no synchronisation between
// them; each session preserves the paper's query-cost accounting for its
// own conversation (a query spent by one crawl is never billed to
// another).
//
// Scheduling is fair between sessions. Each session owns a WorkerPool lane
// (util/worker_pool.h): its batches queue on its own lane and the pool
// deals helper slots across lanes weighted round-robin, so one session
// flooding the service with huge batches cannot park every other tenant's
// work behind its own. SessionOptions::weight raises a session's share;
// SessionOptions::max_lane_parallelism caps how many pool workers one
// session may occupy at once — the admission knob that keeps a heavy
// crawl from monopolizing the pool. Neither knob ever changes a session's
// answers or per-query billing, only scheduling.
//
// Lifetime: the service must outlive the sessions it vends (sessions share
// the service's worker pool and report back to its registry when they are
// destroyed). Each individual session is single-conversation — the
// HiddenDbServer contract forbids concurrent calls on one session — but
// different sessions are fully independent.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "server/answer_cache.h"
#include "server/decorators.h"
#include "server/local_index.h"
#include "server/server.h"
#include "util/clock.h"
#include "util/thread_annotations.h"
#include "util/worker_pool.h"

namespace hdc {

class CrawlService;

/// "No budget" sentinel for SessionOptions::max_queries.
inline constexpr uint64_t kUnlimitedQueries = UINT64_MAX;

struct CrawlServiceOptions {
  /// Total threads (pool workers plus the one calling thread of a batch)
  /// the service may bring to bear on one IssueBatch call. Must be >= 1.
  /// The pool is shared: concurrent sessions' batches interleave on it,
  /// dealt fairly across their lanes.
  unsigned max_parallelism = 1;

  /// When true, the service keeps one shared AnswerCache over the
  /// immutable index: a canonical query any session asked before is
  /// answered from the cache instead of re-evaluated. Billing is
  /// unchanged — a hit folds the same per-query statistics an evaluation
  /// would (evaluation is pure, so they are provably equal) — every
  /// session's conversation, budget, log and trace are byte-identical
  /// with the cache on or off; only evaluation CPU is saved. The
  /// hit/miss counters surface in MetricsSnapshot and /metrics.
  bool enable_answer_cache = false;

  /// Entry cap for the shared answer cache (0 = unbounded, FIFO eviction
  /// beyond the cap).
  size_t answer_cache_max_entries = 0;

  /// Time source for uptime/queue-wait accounting (nullptr -> the real
  /// clock). Injected so service metrics are testable on a FakeClock; it
  /// never affects answers or scheduling.
  Clock* clock = nullptr;
};

/// Per-session metering and admission, fixed at session-creation time.
/// Every layer is owned by the session and scoped to its conversation —
/// nothing here wraps or mutates service-wide state.
struct SessionOptions {
  /// Display/debug name; defaults to "session-<id>".
  std::string label;

  /// Hard per-session query budget (BudgetServer semantics: once spent,
  /// calls fail with ResourceExhausted until RefillBudget). Unlimited by
  /// default.
  uint64_t max_queries = kUnlimitedQueries;

  /// When set, streams the session's audit log — one line per answered
  /// query, QueryLogServer format — to this stream (not owned; must
  /// outlive the session).
  std::ostream* query_log = nullptr;

  /// When set, invoked after every answered query (ObservedServer).
  ObservedServer::Callback observer;

  /// When set, the session presents this (compatible) schema instead of
  /// the index's — e.g. numeric bounds tightened by domain discovery.
  SchemaPtr schema_override;

  /// Keep a compact per-query trace (CountingServer records).
  bool keep_trace = false;

  /// Scheduling share of the service pool: this session's lane is dealt
  /// `weight` helper slots per round-robin cycle. Must be >= 1. Purely a
  /// scheduling knob — never changes answers or billing.
  unsigned weight = 1;

  /// Admission cap: at most this many pool workers serve this session's
  /// batches at once (the session's own calling thread always
  /// participates on top). 0 = no cap beyond the pool size. A heavy crawl
  /// given a small cap cannot monopolize the pool however large its
  /// batches are.
  unsigned max_lane_parallelism = 0;
};

/// Point-in-time view of one live session, inside CrawlServiceMetrics.
struct SessionMetrics {
  uint64_t id = 0;
  std::string label;
  unsigned weight = 1;
  unsigned max_lane_parallelism = 0;
  uint64_t queries_served = 0;
  uint64_t tuples_returned = 0;
  uint64_t overflow_count = 0;
  /// kUnlimitedQueries when the session has no budget.
  uint64_t budget_remaining = kUnlimitedQueries;
  /// Batches this session fanned out over the pool.
  uint64_t batches_submitted = 0;
  /// Queue wait of this session's lane (see WorkerPool::LaneStats): how
  /// long its batches sat before the pool first served them.
  double queue_wait_total_seconds = 0;
  double queue_wait_max_seconds = 0;
};

/// Service-wide health snapshot (CrawlService::MetricsSnapshot).
struct CrawlServiceMetrics {
  /// Sessions minted since construction / alive right now.
  uint64_t sessions_created = 0;
  uint64_t sessions_active = 0;
  /// Queries answered and tuples shipped across all sessions, including
  /// already-destroyed ones.
  uint64_t queries_served = 0;
  uint64_t tuples_returned = 0;
  double uptime_seconds = 0;
  /// queries_served / uptime_seconds — the service's lifetime throughput.
  double queries_per_second = 0;
  /// Helper workers in the shared pool, and how many are running batch
  /// items right now (the pool occupancy).
  unsigned pool_threads = 0;
  unsigned pool_busy = 0;
  /// Shared answer cache (CrawlServiceOptions::enable_answer_cache):
  /// queries answered from cache, queries that filled it, conditional
  /// re-asks, and live entries. All zero when the cache is disabled —
  /// revalidations stay zero over a frozen index and only move on
  /// version-reporting mutable backends.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_revalidations = 0;
  uint64_t cache_entries = 0;
  /// One entry per live session, ascending id.
  std::vector<SessionMetrics> sessions;
};

/// One crawl's private handle onto a CrawlService: a HiddenDbServer whose
/// conversation state (statistics, budget, log, trace) belongs to this
/// session alone, while evaluation runs against the service's shared
/// immutable index and worker pool — on this session's own lane.
class ServerSession : public HiddenDbServer {
 public:
  ~ServerSession() override;
  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  Status Issue(const Query& query, Response* response) override;
  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override;
  uint64_t k() const override { return index_->k(); }
  const SchemaPtr& schema() const override;
  unsigned batch_parallelism() const override { return parallelism_; }

  /// In-process feedback: no latency boundary (latency_feedback stays
  /// false), but the session's cumulative lane queue wait is reported so a
  /// remote endpoint can piggyback it to its client (net/service_endpoint).
  ServerLoadHint load_hint() const override;

  uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }
  unsigned weight() const { return weight_; }

  // --- Per-session accounting ------------------------------------------
  // The counters are atomics so CrawlService::MetricsSnapshot can read a
  // running session from another thread; the session itself is still
  // single-conversation.

  /// Queries answered for this session.
  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }
  /// Tuples shipped to this session.
  uint64_t tuples_returned() const {
    return tuples_returned_.load(std::memory_order_relaxed);
  }
  /// Answered queries that overflowed.
  uint64_t overflow_count() const {
    return overflow_count_.load(std::memory_order_relaxed);
  }

  /// Budget left (kUnlimitedQueries when the session has no budget).
  uint64_t budget_remaining() const {
    return budget_ != nullptr ? budget_->remaining() : kUnlimitedQueries;
  }
  /// Grants a fresh allotment; only valid on a budgeted session.
  void RefillBudget(uint64_t max_queries);

  // --- Session checkpointing -------------------------------------------
  // A session checkpoint is a small text header — label plus remaining
  // query budget — designed to be *prepended* to a crawl checkpoint, so
  // budget state and crawl state travel in one file and survive a crash
  // together (core/session_checkpoint.h composes the two; this layer knows
  // nothing about crawl state).

  /// Writes the session header:
  ///   hdc-session-checkpoint 1
  ///   label <escaped>
  ///   budget <remaining | unlimited>
  Status SaveCheckpoint(std::ostream* out) const;

  /// Parses a session header, leaving `in` positioned at whatever follows
  /// it (the crawl payload). When `restore_budget` and the header records
  /// a numeric budget, refills this session's budget to the recorded
  /// remainder — a typed error if this session was created without one.
  /// Pass restore_budget=false to keep this session's own (fresh) budget,
  /// e.g. a new daily quota per process run. The recorded label is
  /// reported via `recorded_label` (may be null), never applied — the
  /// label is fixed at session creation and read concurrently by metrics.
  Status ResumeFrom(std::istream* in, bool restore_budget = true,
                    std::string* recorded_label = nullptr);

  /// Scheduling stats of this session's pool lane (all zero when the
  /// service runs without a pool, i.e. max_parallelism == 1).
  WorkerPool::LaneStats lane_stats() const;

  /// Per-query records (empty unless SessionOptions::keep_trace).
  const std::vector<QueryRecord>& trace() const;

  /// Lines written to the audit log so far (0 without a query_log).
  uint64_t logged() const { return log_ != nullptr ? log_->logged() : 0; }

 private:
  friend class CrawlService;

  /// Bottom of the per-session stack: pure evaluation against the shared
  /// index, accumulating into the owning session's counters.
  class Core : public HiddenDbServer {
   public:
    explicit Core(ServerSession* session) : session_(session) {}
    Status Issue(const Query& query, Response* response) override;
    Status IssueBatch(const std::vector<Query>& queries,
                      std::vector<Response>* responses) override;
    uint64_t k() const override { return session_->index_->k(); }
    const SchemaPtr& schema() const override {
      return session_->index_->schema();
    }
    unsigned batch_parallelism() const override {
      return session_->parallelism_;
    }

   private:
    ServerSession* session_;
  };

  ServerSession(CrawlService* service, uint64_t id, WorkerPool::LaneId lane,
                SessionOptions options);

  void Fold(const QueryStats& stats) {
    queries_served_.fetch_add(stats.queries, std::memory_order_relaxed);
    tuples_returned_.fetch_add(stats.tuples, std::memory_order_relaxed);
    overflow_count_.fetch_add(stats.overflows, std::memory_order_relaxed);
  }

  CrawlService* service_;
  std::shared_ptr<const LocalIndex> index_;
  WorkerPool* pool_;  // owned by the service; may be null (parallelism 1)
  WorkerPool::LaneId lane_;
  unsigned parallelism_;
  uint64_t id_;
  std::string label_;
  unsigned weight_;
  unsigned max_lane_parallelism_;

  /// The session's metering stack, bottom (Core) to top, composed from
  /// SessionOptions at creation; `top_` is the entry point, the raw
  /// pointers below alias layers inside the owned chain.
  std::unique_ptr<HiddenDbServer> top_;
  BudgetServer* budget_ = nullptr;
  CountingServer* counting_ = nullptr;
  QueryLogServer* log_ = nullptr;

  EvalScratch scratch_;
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> tuples_returned_{0};
  std::atomic<uint64_t> overflow_count_{0};
};

/// Owns the shared halves — index and worker pool — and mints sessions.
/// Thread-safe: CreateSession and MetricsSnapshot may be called from any
/// thread, and the sessions it returns run concurrently with each other.
class CrawlService {
 public:
  CrawlService(std::shared_ptr<const LocalIndex> index,
               CrawlServiceOptions options = {});

  /// Convenience: builds the index in place (random-priority ranking when
  /// `policy` is null, as LocalServer).
  CrawlService(std::shared_ptr<const Dataset> dataset, uint64_t k,
               std::unique_ptr<RankingPolicy> policy = nullptr,
               CrawlServiceOptions options = {});

  CrawlService(const CrawlService&) = delete;
  CrawlService& operator=(const CrawlService&) = delete;

  /// Mints an independent session on its own scheduling lane. The service
  /// must outlive it.
  std::unique_ptr<ServerSession> CreateSession(SessionOptions options = {});

  /// Service-wide health: live sessions with their queue waits, pool
  /// occupancy, lifetime throughput. Safe to call while sessions run —
  /// the per-session counters are sampled, not synchronised with the
  /// conversations, so a snapshot taken mid-batch may be a few queries
  /// behind a session's own final accounting.
  CrawlServiceMetrics MetricsSnapshot() const;

  const std::shared_ptr<const LocalIndex>& index() const { return index_; }

  /// The shared answer cache, or nullptr when disabled.
  AnswerCache* answer_cache() const { return answer_cache_.get(); }

  uint64_t k() const { return index_->k(); }
  const SchemaPtr& schema() const { return index_->schema(); }
  unsigned max_parallelism() const { return options_.max_parallelism; }

  /// Sessions minted so far (monotonic).
  uint64_t sessions_created() const { return next_session_id_.load(); }

 private:
  friend class ServerSession;

  /// Called by ~ServerSession: folds the session's final accounting into
  /// the retired totals, releases its lane, and drops it from the
  /// registry.
  void Retire(ServerSession* session);

  std::shared_ptr<const LocalIndex> index_;
  CrawlServiceOptions options_;
  Clock* clock_;  // never null; immutable after construction
  std::unique_ptr<WorkerPool> pool_;  // max_parallelism - 1 workers
  std::unique_ptr<AnswerCache> answer_cache_;  // null when disabled
  std::atomic<uint64_t> next_session_id_{0};
  std::chrono::nanoseconds start_{0};

  /// Live sessions plus the accumulated accounting of retired ones.
  mutable Mutex sessions_mutex_;
  std::vector<ServerSession*> live_sessions_ HDC_GUARDED_BY(sessions_mutex_);
  uint64_t retired_queries_ HDC_GUARDED_BY(sessions_mutex_) = 0;
  uint64_t retired_tuples_ HDC_GUARDED_BY(sessions_mutex_) = 0;
};

}  // namespace hdc
