// Copyright (c) hdc authors. Apache-2.0 license.
//
// The multi-crawl service: one immutable LocalIndex, many concurrent
// conversations. The paper's methodology (Section 6) models one crawler
// talking to one server; a production hidden-database service instead
// answers many crawlers at once over the same read-only data. This layer
// splits those concerns:
//
//   CrawlService                    ServerSession (one per crawl)
//   ------------                    ----------------------------
//   shared LocalIndex (const)       per-session statistics
//   shared WorkerPool               per-session query budget
//   session minting                 per-session audit log + trace
//                                   per-session batch pipeline
//
// A session is a full HiddenDbServer, so every crawler, decorator, and
// CrawlContext works against it unchanged, and a single-session service
// reproduces the classic LocalServer conversation byte for byte. Because
// the index is fully const and the pool is thread-safe, any number of
// sessions may run on distinct threads with no synchronisation between
// them; each session preserves the paper's query-cost accounting for its
// own conversation (a query spent by one crawl is never billed to
// another).
//
// Lifetime: the service must outlive the sessions it vends (sessions share
// the service's worker pool). Each individual session is single-
// conversation — the HiddenDbServer contract forbids concurrent calls on
// one session — but different sessions are fully independent.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/decorators.h"
#include "server/local_index.h"
#include "server/server.h"
#include "util/worker_pool.h"

namespace hdc {

class CrawlService;

/// "No budget" sentinel for SessionOptions::max_queries.
inline constexpr uint64_t kUnlimitedQueries = UINT64_MAX;

struct CrawlServiceOptions {
  /// Total threads (pool workers plus the one calling thread of a batch)
  /// the service may bring to bear on one IssueBatch call. Must be >= 1.
  /// The pool is shared: concurrent sessions' batches interleave on it.
  unsigned max_parallelism = 1;
};

/// Per-session metering, fixed at session-creation time. Every layer is
/// owned by the session and scoped to its conversation — nothing here
/// wraps or mutates service-wide state.
struct SessionOptions {
  /// Display/debug name; defaults to "session-<id>".
  std::string label;

  /// Hard per-session query budget (BudgetServer semantics: once spent,
  /// calls fail with ResourceExhausted until RefillBudget). Unlimited by
  /// default.
  uint64_t max_queries = kUnlimitedQueries;

  /// When set, streams the session's audit log — one line per answered
  /// query, QueryLogServer format — to this stream (not owned; must
  /// outlive the session).
  std::ostream* query_log = nullptr;

  /// When set, invoked after every answered query (ObservedServer).
  ObservedServer::Callback observer;

  /// When set, the session presents this (compatible) schema instead of
  /// the index's — e.g. numeric bounds tightened by domain discovery.
  SchemaPtr schema_override;

  /// Keep a compact per-query trace (CountingServer records).
  bool keep_trace = false;
};

/// One crawl's private handle onto a CrawlService: a HiddenDbServer whose
/// conversation state (statistics, budget, log, trace) belongs to this
/// session alone, while evaluation runs against the service's shared
/// immutable index and worker pool.
class ServerSession : public HiddenDbServer {
 public:
  ~ServerSession() override = default;
  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  Status Issue(const Query& query, Response* response) override;
  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override;
  uint64_t k() const override { return index_->k(); }
  const SchemaPtr& schema() const override;
  unsigned batch_parallelism() const override { return parallelism_; }

  uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }

  // --- Per-session accounting ------------------------------------------

  /// Queries answered for this session.
  uint64_t queries_served() const { return queries_served_; }
  /// Tuples shipped to this session.
  uint64_t tuples_returned() const { return tuples_returned_; }
  /// Answered queries that overflowed.
  uint64_t overflow_count() const { return overflow_count_; }

  /// Budget left (kUnlimitedQueries when the session has no budget).
  uint64_t budget_remaining() const {
    return budget_ != nullptr ? budget_->remaining() : kUnlimitedQueries;
  }
  /// Grants a fresh allotment; only valid on a budgeted session.
  void RefillBudget(uint64_t max_queries);

  /// Per-query records (empty unless SessionOptions::keep_trace).
  const std::vector<QueryRecord>& trace() const;

  /// Lines written to the audit log so far (0 without a query_log).
  uint64_t logged() const { return log_ != nullptr ? log_->logged() : 0; }

 private:
  friend class CrawlService;

  /// Bottom of the per-session stack: pure evaluation against the shared
  /// index, accumulating into the owning session's counters.
  class Core : public HiddenDbServer {
   public:
    explicit Core(ServerSession* session) : session_(session) {}
    Status Issue(const Query& query, Response* response) override;
    Status IssueBatch(const std::vector<Query>& queries,
                      std::vector<Response>* responses) override;
    uint64_t k() const override { return session_->index_->k(); }
    const SchemaPtr& schema() const override {
      return session_->index_->schema();
    }
    unsigned batch_parallelism() const override {
      return session_->parallelism_;
    }

   private:
    ServerSession* session_;
  };

  ServerSession(std::shared_ptr<const LocalIndex> index, WorkerPool* pool,
                unsigned parallelism, uint64_t id, SessionOptions options);

  void Fold(const QueryStats& stats) {
    queries_served_ += stats.queries;
    tuples_returned_ += stats.tuples;
    overflow_count_ += stats.overflows;
  }

  std::shared_ptr<const LocalIndex> index_;
  WorkerPool* pool_;  // owned by the service; may be null (parallelism 1)
  unsigned parallelism_;
  uint64_t id_;
  std::string label_;

  /// The session's metering stack, bottom (Core) to top, composed from
  /// SessionOptions at creation; `top_` is the entry point, the raw
  /// pointers below alias layers inside the owned chain.
  std::unique_ptr<HiddenDbServer> top_;
  BudgetServer* budget_ = nullptr;
  CountingServer* counting_ = nullptr;
  QueryLogServer* log_ = nullptr;

  std::vector<uint32_t> scratch_;
  uint64_t queries_served_ = 0;
  uint64_t tuples_returned_ = 0;
  uint64_t overflow_count_ = 0;
};

/// Owns the shared halves — index and worker pool — and mints sessions.
/// Thread-safe: CreateSession may be called from any thread, and the
/// sessions it returns run concurrently with each other.
class CrawlService {
 public:
  CrawlService(std::shared_ptr<const LocalIndex> index,
               CrawlServiceOptions options = {});

  /// Convenience: builds the index in place (random-priority ranking when
  /// `policy` is null, as LocalServer).
  CrawlService(std::shared_ptr<const Dataset> dataset, uint64_t k,
               std::unique_ptr<RankingPolicy> policy = nullptr,
               CrawlServiceOptions options = {});

  CrawlService(const CrawlService&) = delete;
  CrawlService& operator=(const CrawlService&) = delete;

  /// Mints an independent session. The service must outlive it.
  std::unique_ptr<ServerSession> CreateSession(SessionOptions options = {});

  const std::shared_ptr<const LocalIndex>& index() const { return index_; }
  uint64_t k() const { return index_->k(); }
  const SchemaPtr& schema() const { return index_->schema(); }
  unsigned max_parallelism() const { return options_.max_parallelism; }

  /// Sessions minted so far (monotonic; sessions are not tracked after
  /// creation).
  uint64_t sessions_created() const { return next_session_id_.load(); }

 private:
  std::shared_ptr<const LocalIndex> index_;
  CrawlServiceOptions options_;
  std::unique_ptr<WorkerPool> pool_;  // max_parallelism - 1 workers
  std::atomic<uint64_t> next_session_id_{0};
};

}  // namespace hdc
