// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/ranking.h"

#include "util/macros.h"
#include "util/random.h"

namespace hdc {

std::vector<uint64_t> RandomPriorityPolicy::AssignPriorities(
    const Dataset& dataset) {
  Rng rng(seed_);
  std::vector<uint64_t> priorities(dataset.size());
  for (auto& p : priorities) p = rng.Next();
  return priorities;
}

std::vector<uint64_t> IdOrderPolicy::AssignPriorities(const Dataset& dataset) {
  std::vector<uint64_t> priorities(dataset.size());
  const uint64_t n = dataset.size();
  for (uint64_t i = 0; i < n; ++i) {
    priorities[i] = ascending_ ? (n - i) : i;
  }
  return priorities;
}

std::vector<uint64_t> ByAttributePolicy::AssignPriorities(
    const Dataset& dataset) {
  HDC_CHECK(attribute_ < dataset.schema()->num_attributes());
  std::vector<uint64_t> priorities(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    // Map the (signed) attribute value onto an order-preserving unsigned
    // scale; flip for descending.
    uint64_t key = static_cast<uint64_t>(dataset.tuple(i)[attribute_]) +
                   (1ULL << 63);
    priorities[i] = ascending_ ? ~key : key;
  }
  return priorities;
}

std::string ByAttributePolicy::name() const {
  return "by-attr-" + std::to_string(attribute_) +
         (ascending_ ? "-asc" : "-desc");
}

std::vector<uint64_t> FixedPriorityPolicy::AssignPriorities(
    const Dataset& dataset) {
  HDC_CHECK_MSG(priorities_.size() == dataset.size(),
                "FixedPriorityPolicy: one priority per tuple required");
  return priorities_;
}

std::unique_ptr<RankingPolicy> MakeRandomPriorityPolicy(uint64_t seed) {
  return std::make_unique<RandomPriorityPolicy>(seed);
}
std::unique_ptr<RankingPolicy> MakeIdOrderPolicy(bool ascending) {
  return std::make_unique<IdOrderPolicy>(ascending);
}
std::unique_ptr<RankingPolicy> MakeByAttributePolicy(size_t attribute,
                                                     bool ascending) {
  return std::make_unique<ByAttributePolicy>(attribute, ascending);
}
std::unique_ptr<RankingPolicy> MakeFixedPriorityPolicy(
    std::vector<uint64_t> priorities) {
  return std::make_unique<FixedPriorityPolicy>(std::move(priorities));
}

}  // namespace hdc
