// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/crawl_service.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <utility>

#include "util/macros.h"
#include "util/string_escape.h"

namespace hdc {

// --- ServerSession::Core ----------------------------------------------------

namespace {

/// The statistics one answered query folds into its session, whether it
/// was evaluated or served from the shared cache. Evaluation is pure given
/// the index, so for the same query these are exactly the stats an
/// evaluation would have produced — billing is cache-invisible.
QueryStats StatsFor(const Response& response) {
  QueryStats stats;
  stats.queries = 1;
  stats.tuples = response.size();
  stats.overflows = response.overflow ? 1 : 0;
  return stats;
}

/// The shared service cache sits over a frozen index, which never moves
/// off db_version 0.
constexpr uint64_t kFrozenVersion = 0;

}  // namespace

Status ServerSession::Core::Issue(const Query& query, Response* response) {
  AnswerCache* cache = session_->service_->answer_cache();
  if (cache != nullptr &&
      cache->Probe(query, kFrozenVersion, response, nullptr) ==
          AnswerCache::ProbeResult::kHit) {
    session_->Fold(StatsFor(*response));
    return Status::OK();
  }
  QueryStats stats;
  session_->index_->AnswerQuery(query, response, &session_->scratch_, &stats);
  session_->Fold(stats);
  if (cache != nullptr) cache->StoreMiss(query, *response, kFrozenVersion);
  return Status::OK();
}

Status ServerSession::Core::IssueBatch(const std::vector<Query>& queries,
                                       std::vector<Response>* responses) {
  HDC_CHECK(responses != nullptr);
  AnswerCache* cache = session_->service_->answer_cache();
  if (cache == nullptr) {
    QueryStats stats;
    EvaluateBatch(*session_->index_, session_->pool_, queries, responses,
                  &stats, session_->lane_);
    session_->Fold(stats);
    return Status::OK();
  }
  // Serve what the cache holds, evaluate only the misses (one sub-batch,
  // still fanned out over the pool), then merge back in member order.
  responses->assign(queries.size(), Response{});
  std::vector<size_t> miss_indices;
  std::vector<Query> miss_queries;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (cache->Probe(queries[i], kFrozenVersion, &(*responses)[i], nullptr) ==
        AnswerCache::ProbeResult::kHit) {
      session_->Fold(StatsFor((*responses)[i]));
    } else {
      miss_indices.push_back(i);
      miss_queries.push_back(queries[i]);
    }
  }
  if (!miss_queries.empty()) {
    QueryStats stats;
    std::vector<Response> miss_responses;
    EvaluateBatch(*session_->index_, session_->pool_, miss_queries,
                  &miss_responses, &stats, session_->lane_);
    session_->Fold(stats);
    for (size_t j = 0; j < miss_indices.size(); ++j) {
      cache->StoreMiss(miss_queries[j], miss_responses[j], kFrozenVersion);
      (*responses)[miss_indices[j]] = std::move(miss_responses[j]);
    }
  }
  return Status::OK();
}

// --- ServerSession ----------------------------------------------------------

ServerSession::ServerSession(CrawlService* service, uint64_t id,
                             WorkerPool::LaneId lane, SessionOptions options)
    : service_(service),
      index_(service->index()),
      pool_(service->pool_.get()),
      lane_(lane),
      parallelism_(service->max_parallelism()),
      id_(id),
      label_(options.label.empty() ? "session-" + std::to_string(id)
                                   : std::move(options.label)),
      weight_(options.weight),
      max_lane_parallelism_(options.max_lane_parallelism) {
  // Compose the metering stack bottom-up. Order (bottom to top): evaluation
  // core, observer, audit log, trace, budget, schema override — so a
  // budget-refused query is neither logged nor traced (it never happened),
  // matching the sequential BudgetServer(QueryLogServer(LocalServer))
  // conversation.
  std::unique_ptr<HiddenDbServer> stack = std::make_unique<Core>(this);
  if (options.observer) {
    stack = std::make_unique<ObservedServer>(std::move(stack),
                                             std::move(options.observer));
  }
  if (options.query_log != nullptr) {
    auto log =
        std::make_unique<QueryLogServer>(std::move(stack), options.query_log);
    log_ = log.get();
    stack = std::move(log);
  }
  if (options.keep_trace) {
    auto counting =
        std::make_unique<CountingServer>(std::move(stack), /*keep_trace=*/true);
    counting_ = counting.get();
    stack = std::move(counting);
  }
  if (options.max_queries != kUnlimitedQueries) {
    auto budget =
        std::make_unique<BudgetServer>(std::move(stack), options.max_queries);
    budget_ = budget.get();
    stack = std::move(budget);
  }
  if (options.schema_override != nullptr) {
    stack = std::make_unique<SchemaOverrideServer>(
        std::move(stack), std::move(options.schema_override));
  }
  top_ = std::move(stack);
}

ServerSession::~ServerSession() { service_->Retire(this); }

Status ServerSession::Issue(const Query& query, Response* response) {
  return top_->Issue(query, response);
}

Status ServerSession::IssueBatch(const std::vector<Query>& queries,
                                 std::vector<Response>* responses) {
  return top_->IssueBatch(queries, responses);
}

const SchemaPtr& ServerSession::schema() const { return top_->schema(); }

void ServerSession::RefillBudget(uint64_t max_queries) {
  HDC_CHECK_MSG(budget_ != nullptr,
                "RefillBudget on a session created without max_queries");
  budget_->Refill(max_queries);
}

Status ServerSession::SaveCheckpoint(std::ostream* out) const {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  *out << "hdc-session-checkpoint 1\n";
  *out << "label " << EscapeToken(label_) << '\n';
  if (budget_ != nullptr) {
    *out << "budget " << budget_->remaining() << '\n';
  } else {
    *out << "budget unlimited\n";
  }
  if (!*out) return Status::Internal("session checkpoint write failed");
  return Status::OK();
}

Status ServerSession::ResumeFrom(std::istream* in, bool restore_budget,
                                 std::string* recorded_label) {
  if (in == nullptr) return Status::InvalidArgument("null input stream");
  uint64_t line_number = 0;
  auto next = [in, &line_number](std::string* line) {
    ++line_number;
    if (!std::getline(*in, *line)) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": session checkpoint truncated (unexpected end of input)");
    }
    if (!line->empty() && line->back() == '\r') line->pop_back();
    return Status::OK();
  };

  std::string line;
  HDC_RETURN_IF_ERROR(next(&line));
  if (line != "hdc-session-checkpoint 1") {
    return Status::InvalidArgument(
        "line 1: not an hdc session checkpoint: '" + line + "'");
  }

  HDC_RETURN_IF_ERROR(next(&line));
  if (line.rfind("label ", 0) != 0) {
    return Status::InvalidArgument("line 2: expected 'label ...', got '" +
                                   line + "'");
  }
  std::string label;
  HDC_RETURN_IF_ERROR(UnescapeToken(line.substr(6), &label));
  if (recorded_label != nullptr) *recorded_label = std::move(label);

  HDC_RETURN_IF_ERROR(next(&line));
  if (line.rfind("budget ", 0) != 0) {
    return Status::InvalidArgument("line 3: expected 'budget ...', got '" +
                                   line + "'");
  }
  const std::string value = line.substr(7);
  if (restore_budget && value != "unlimited") {
    uint64_t remaining = 0;
    auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), remaining);
    if (value.empty() || ec != std::errc() ||
        ptr != value.data() + value.size()) {
      return Status::InvalidArgument("line 3: malformed budget '" + value +
                                     "'");
    }
    if (budget_ == nullptr) {
      return Status::FailedPrecondition(
          "checkpoint records a query budget but this session was created "
          "without one (set SessionOptions::max_queries, or resume with "
          "restore_budget off)");
    }
    budget_->Refill(remaining);
  }
  return Status::OK();
}

ServerLoadHint ServerSession::load_hint() const {
  ServerLoadHint hint;
  hint.queue_wait_total_seconds = lane_stats().queue_wait_total_seconds;
  return hint;
}

WorkerPool::LaneStats ServerSession::lane_stats() const {
  return pool_ != nullptr ? pool_->lane_stats(lane_) : WorkerPool::LaneStats{};
}

const std::vector<QueryRecord>& ServerSession::trace() const {
  static const std::vector<QueryRecord> kEmpty;
  return counting_ != nullptr ? counting_->trace() : kEmpty;
}

// --- CrawlService -----------------------------------------------------------

CrawlService::CrawlService(std::shared_ptr<const LocalIndex> index,
                           CrawlServiceOptions options)
    : index_(std::move(index)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Get()),
      start_(clock_->Now()) {
  HDC_CHECK(index_ != nullptr);
  HDC_CHECK_MSG(options_.max_parallelism >= 1,
                "CrawlServiceOptions::max_parallelism must be >= 1 (it "
                "bounds the threads of a batch, calling thread included)");
  if (options_.max_parallelism > 1) {
    pool_ = std::make_unique<WorkerPool>(options_.max_parallelism - 1, clock_);
  }
  if (options_.enable_answer_cache) {
    // The index is immutable (version 0 forever), so version-check mode
    // serves every stored entry as a hit; TTL/revalidation churn would be
    // pure waste here.
    AnswerCacheOptions cache_options;
    cache_options.policy = RevalidationPolicy::kVersionCheck;
    cache_options.max_entries = options_.answer_cache_max_entries;
    answer_cache_ = std::make_unique<AnswerCache>(cache_options);
  }
}

CrawlService::CrawlService(std::shared_ptr<const Dataset> dataset, uint64_t k,
                           std::unique_ptr<RankingPolicy> policy,
                           CrawlServiceOptions options)
    : CrawlService(std::make_shared<const LocalIndex>(std::move(dataset), k,
                                                      std::move(policy)),
                   options) {}

std::unique_ptr<ServerSession> CrawlService::CreateSession(
    SessionOptions options) {
  HDC_CHECK_MSG(options.weight >= 1, "SessionOptions::weight must be >= 1");
  const uint64_t id = next_session_id_.fetch_add(1);
  WorkerPool::LaneId lane = WorkerPool::kDefaultLane;
  if (pool_ != nullptr) {
    WorkerPool::LaneOptions lane_options;
    lane_options.weight = options.weight;
    lane_options.max_parallelism = options.max_lane_parallelism;
    lane = pool_->OpenLane(lane_options);
  }
  // Not make_unique: the constructor is private to keep minting here.
  std::unique_ptr<ServerSession> session(
      new ServerSession(this, id, lane, std::move(options)));
  {
    MutexLock lock(&sessions_mutex_);
    live_sessions_.push_back(session.get());
  }
  return session;
}

void CrawlService::Retire(ServerSession* session) {
  MutexLock lock(&sessions_mutex_);
  retired_queries_ += session->queries_served();
  retired_tuples_ += session->tuples_returned();
  live_sessions_.erase(
      std::remove(live_sessions_.begin(), live_sessions_.end(), session),
      live_sessions_.end());
  if (pool_ != nullptr) pool_->CloseLane(session->lane_);
}

CrawlServiceMetrics CrawlService::MetricsSnapshot() const {
  CrawlServiceMetrics metrics;
  metrics.sessions_created = next_session_id_.load();
  metrics.uptime_seconds =
      std::chrono::duration<double>(clock_->Now() - start_).count();
  metrics.pool_threads = pool_ != nullptr ? pool_->threads() : 0;
  metrics.pool_busy = pool_ != nullptr ? pool_->busy_workers() : 0;
  if (answer_cache_ != nullptr) {
    const AnswerCacheStats cache_stats = answer_cache_->stats();
    metrics.cache_hits = cache_stats.hits;
    metrics.cache_misses = cache_stats.misses;
    metrics.cache_revalidations = cache_stats.revalidations();
    metrics.cache_entries = answer_cache_->size();
  }

  MutexLock lock(&sessions_mutex_);
  metrics.sessions_active = live_sessions_.size();
  metrics.queries_served = retired_queries_;
  metrics.tuples_returned = retired_tuples_;
  metrics.sessions.reserve(live_sessions_.size());
  for (const ServerSession* session : live_sessions_) {
    SessionMetrics s;
    s.id = session->id();
    s.label = session->label();
    s.weight = session->weight();
    s.max_lane_parallelism = session->max_lane_parallelism_;
    s.queries_served = session->queries_served();
    s.tuples_returned = session->tuples_returned();
    s.overflow_count = session->overflow_count();
    s.budget_remaining = session->budget_remaining();
    const WorkerPool::LaneStats lane = session->lane_stats();
    s.batches_submitted = lane.loops_submitted;
    s.queue_wait_total_seconds = lane.queue_wait_total_seconds;
    s.queue_wait_max_seconds = lane.queue_wait_max_seconds;
    metrics.queries_served += s.queries_served;
    metrics.tuples_returned += s.tuples_returned;
    metrics.sessions.push_back(std::move(s));
  }
  std::sort(metrics.sessions.begin(), metrics.sessions.end(),
            [](const SessionMetrics& a, const SessionMetrics& b) {
              return a.id < b.id;
            });
  if (metrics.uptime_seconds > 0) {
    metrics.queries_per_second =
        static_cast<double>(metrics.queries_served) / metrics.uptime_seconds;
  }
  return metrics;
}

}  // namespace hdc
