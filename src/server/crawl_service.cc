// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/crawl_service.h"

#include <utility>

#include "util/macros.h"

namespace hdc {

// --- ServerSession::Core ----------------------------------------------------

Status ServerSession::Core::Issue(const Query& query, Response* response) {
  QueryStats stats;
  session_->index_->AnswerQuery(query, response, &session_->scratch_, &stats);
  session_->Fold(stats);
  return Status::OK();
}

Status ServerSession::Core::IssueBatch(const std::vector<Query>& queries,
                                       std::vector<Response>* responses) {
  HDC_CHECK(responses != nullptr);
  QueryStats stats;
  EvaluateBatch(*session_->index_, session_->pool_, queries, responses,
                &stats);
  session_->Fold(stats);
  return Status::OK();
}

// --- ServerSession ----------------------------------------------------------

ServerSession::ServerSession(std::shared_ptr<const LocalIndex> index,
                             WorkerPool* pool, unsigned parallelism,
                             uint64_t id, SessionOptions options)
    : index_(std::move(index)),
      pool_(pool),
      parallelism_(parallelism),
      id_(id),
      label_(options.label.empty() ? "session-" + std::to_string(id)
                                   : std::move(options.label)) {
  // Compose the metering stack bottom-up. Order (bottom to top): evaluation
  // core, observer, audit log, trace, budget, schema override — so a
  // budget-refused query is neither logged nor traced (it never happened),
  // matching the sequential BudgetServer(QueryLogServer(LocalServer))
  // conversation.
  std::unique_ptr<HiddenDbServer> stack = std::make_unique<Core>(this);
  if (options.observer) {
    stack = std::make_unique<ObservedServer>(std::move(stack),
                                             std::move(options.observer));
  }
  if (options.query_log != nullptr) {
    auto log =
        std::make_unique<QueryLogServer>(std::move(stack), options.query_log);
    log_ = log.get();
    stack = std::move(log);
  }
  if (options.keep_trace) {
    auto counting =
        std::make_unique<CountingServer>(std::move(stack), /*keep_trace=*/true);
    counting_ = counting.get();
    stack = std::move(counting);
  }
  if (options.max_queries != kUnlimitedQueries) {
    auto budget =
        std::make_unique<BudgetServer>(std::move(stack), options.max_queries);
    budget_ = budget.get();
    stack = std::move(budget);
  }
  if (options.schema_override != nullptr) {
    stack = std::make_unique<SchemaOverrideServer>(
        std::move(stack), std::move(options.schema_override));
  }
  top_ = std::move(stack);
}

Status ServerSession::Issue(const Query& query, Response* response) {
  return top_->Issue(query, response);
}

Status ServerSession::IssueBatch(const std::vector<Query>& queries,
                                 std::vector<Response>* responses) {
  return top_->IssueBatch(queries, responses);
}

const SchemaPtr& ServerSession::schema() const { return top_->schema(); }

void ServerSession::RefillBudget(uint64_t max_queries) {
  HDC_CHECK_MSG(budget_ != nullptr,
                "RefillBudget on a session created without max_queries");
  budget_->Refill(max_queries);
}

const std::vector<QueryRecord>& ServerSession::trace() const {
  static const std::vector<QueryRecord> kEmpty;
  return counting_ != nullptr ? counting_->trace() : kEmpty;
}

// --- CrawlService -----------------------------------------------------------

CrawlService::CrawlService(std::shared_ptr<const LocalIndex> index,
                           CrawlServiceOptions options)
    : index_(std::move(index)), options_(options) {
  HDC_CHECK(index_ != nullptr);
  HDC_CHECK_MSG(options_.max_parallelism >= 1,
                "CrawlServiceOptions::max_parallelism must be >= 1 (it "
                "bounds the threads of a batch, calling thread included)");
  if (options_.max_parallelism > 1) {
    pool_ = std::make_unique<WorkerPool>(options_.max_parallelism - 1);
  }
}

CrawlService::CrawlService(std::shared_ptr<const Dataset> dataset, uint64_t k,
                           std::unique_ptr<RankingPolicy> policy,
                           CrawlServiceOptions options)
    : CrawlService(std::make_shared<const LocalIndex>(std::move(dataset), k,
                                                      std::move(policy)),
                   options) {}

std::unique_ptr<ServerSession> CrawlService::CreateSession(
    SessionOptions options) {
  const uint64_t id = next_session_id_.fetch_add(1);
  // Not make_unique: the constructor is private to keep minting here.
  return std::unique_ptr<ServerSession>(
      new ServerSession(index_, pool_.get(), options_.max_parallelism, id,
                        std::move(options)));
}

}  // namespace hdc
