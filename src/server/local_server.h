// Copyright (c) hdc authors. Apache-2.0 license.
//
// In-memory hidden database server. This mirrors the paper's experimental
// methodology exactly (Section 6): "we implemented a local server. Our
// implementation conforms strictly to the problem setup in Section 1.1, so
// that the cost reported would be equivalent if the algorithms were executed
// on a remote web server. In a dataset, each tuple is assigned a random
// priority, so that if a query overflows, always the k tuples with the
// highest priorities are returned."
//
// LocalServer is the single-conversation shape of the split server stack:
// an immutable, shareable LocalIndex (server/local_index.h) plus this
// object's own mutable statistics. To serve many concurrent conversations
// over one index, use CrawlService (server/crawl_service.h) instead —
// or construct several LocalServers over one shared index.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "server/local_index.h"
#include "server/ranking.h"
#include "server/server.h"

namespace hdc {

class WorkerPool;

struct LocalServerOptions {
  /// Which LocalIndex evaluation engine answers queries (see
  /// LocalIndexOptions::engine): kBitmap is the fast default; kLegacy and
  /// kScan are the slower oracles the fast path is cross-checked against.
  /// Only used by the dataset-taking constructor — a shared prebuilt index
  /// brings its own engine.
  IndexEngine engine = IndexEngine::kBitmap;

  /// Upper bound on threads (including the calling one) an IssueBatch call
  /// may use. Must be >= 1. 1 (default) evaluates batches sequentially on
  /// the calling thread; higher values fan batch members out across a
  /// worker pool owned by this server. Responses and server statistics are
  /// identical either way — evaluation is pure given the index.
  unsigned max_parallelism = 1;
};

/// Serves a Dataset through the top-k interface.
class LocalServer : public HiddenDbServer {
 public:
  /// Builds a private index. `policy` defaults to the paper's
  /// random-priority ranking (seeded for reproducibility).
  LocalServer(std::shared_ptr<const Dataset> dataset, uint64_t k,
              std::unique_ptr<RankingPolicy> policy = nullptr,
              LocalServerOptions options = {});

  /// Shares an existing index: the conversation state (statistics) is this
  /// server's own, the evaluation structures are `index`'s.
  explicit LocalServer(std::shared_ptr<const LocalIndex> index,
                       LocalServerOptions options = {});

  ~LocalServer() override;  // out of line: WorkerPool is forward-declared

  Status Issue(const Query& query, Response* response) override;

  /// Native batch execution: members are independent lookups, dealt across
  /// the worker pool (up to max_parallelism threads in total). Responses
  /// and statistics match the sequential conversation exactly.
  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override;

  uint64_t k() const override { return index_->k(); }
  const SchemaPtr& schema() const override { return index_->schema(); }
  unsigned batch_parallelism() const override {
    return options_.max_parallelism;
  }

  const Dataset& dataset() const { return index_->dataset(); }

  /// The shared evaluation half; hand to another LocalServer or a
  /// CrawlService to serve further conversations over the same data.
  const std::shared_ptr<const LocalIndex>& index() const { return index_; }

  /// True iff Problem 1 is solvable against this server: no point of the
  /// data space holds more than k tuples (Section 1.1).
  bool IsCrawlable() const { return index_->IsCrawlable(); }

  // --- Introspection for tests & benches -------------------------------

  /// Number of queries served so far.
  uint64_t queries_served() const { return queries_served_; }
  /// Total tuples shipped in responses.
  uint64_t tuples_returned() const { return tuples_returned_; }
  /// Number of served queries that overflowed.
  uint64_t overflow_count() const { return overflow_count_; }
  void ResetStats();

  /// Exact |q(D)| (no k-truncation); used by tests as ground truth.
  uint64_t CountMatches(const Query& query) const {
    return index_->CountMatches(query);
  }

 private:
  std::shared_ptr<const LocalIndex> index_;
  LocalServerOptions options_;

  /// max_parallelism - 1 worker threads (the calling thread is the final
  /// lane); null when max_parallelism == 1.
  std::unique_ptr<WorkerPool> pool_;

  /// Issue-path scratch; IssueBatch workers use their own.
  EvalScratch scratch_;

  uint64_t queries_served_ = 0;
  uint64_t tuples_returned_ = 0;
  uint64_t overflow_count_ = 0;
};

}  // namespace hdc
