// Copyright (c) hdc authors. Apache-2.0 license.
//
// In-memory hidden database server. This mirrors the paper's experimental
// methodology exactly (Section 6): "we implemented a local server. Our
// implementation conforms strictly to the problem setup in Section 1.1, so
// that the cost reported would be equivalent if the algorithms were executed
// on a remote web server. In a dataset, each tuple is assigned a random
// priority, so that if a query overflows, always the k tuples with the
// highest priorities are returned."
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "server/ranking.h"
#include "server/server.h"

namespace hdc {

struct LocalServerOptions {
  /// When true (default), queries are answered through per-attribute indexes
  /// (postings lists for categorical values, value-sorted arrays for numeric
  /// ranges): the most selective predicate supplies candidates, the rest are
  /// verified column-at-a-time. When false, every query is a full scan —
  /// slow, but an independent oracle used to cross-check the indexed path.
  bool use_index = true;

  /// Upper bound on worker threads an IssueBatch call may use. 1 (default)
  /// evaluates batches sequentially on the calling thread; higher values
  /// fan batch members out across a per-call worker pool. Responses and
  /// server statistics are identical either way — evaluation is pure given
  /// the dataset and the fixed ranking.
  unsigned max_parallelism = 1;
};

/// Serves a Dataset through the top-k interface.
class LocalServer : public HiddenDbServer {
 public:
  /// `policy` defaults to the paper's random-priority ranking (seeded for
  /// reproducibility).
  LocalServer(std::shared_ptr<const Dataset> dataset, uint64_t k,
              std::unique_ptr<RankingPolicy> policy = nullptr,
              LocalServerOptions options = {});

  Status Issue(const Query& query, Response* response) override;

  /// Native batch execution: members are hash-free independent lookups, so
  /// they are simply sharded across up to `max_parallelism` worker threads.
  /// Responses and statistics match the sequential conversation exactly.
  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override;

  uint64_t k() const override { return k_; }
  const SchemaPtr& schema() const override { return dataset_->schema(); }

  const Dataset& dataset() const { return *dataset_; }

  /// True iff Problem 1 is solvable against this server: no point of the
  /// data space holds more than k tuples (Section 1.1).
  bool IsCrawlable() const;

  // --- Introspection for tests & benches -------------------------------

  /// Number of queries served so far.
  uint64_t queries_served() const { return queries_served_; }
  /// Total tuples shipped in responses.
  uint64_t tuples_returned() const { return tuples_returned_; }
  /// Number of served queries that overflowed.
  uint64_t overflow_count() const { return overflow_count_; }
  void ResetStats();

  /// Exact |q(D)| (no k-truncation); used by tests as ground truth.
  uint64_t CountMatches(const Query& query);

 private:
  /// Per-call statistic deltas, accumulated thread-locally during a batch
  /// and folded into the server counters after the workers join.
  struct StatsDelta {
    uint64_t queries = 0;
    uint64_t tuples = 0;
    uint64_t overflows = 0;
  };

  /// Pure evaluation of one query: fills `response`, accumulates into
  /// `stats`, touches no server state beyond the read-only indexes. Safe to
  /// call concurrently with distinct `scratch`/`stats`.
  void AnswerQuery(const Query& query, Response* response,
                   std::vector<uint32_t>* scratch, StatsDelta* stats) const;

  /// Appends all row ids matching `query` to `out`.
  void CollectMatches(const Query& query, std::vector<uint32_t>* out) const;
  void CollectMatchesScan(const Query& query,
                          std::vector<uint32_t>* out) const;
  void CollectMatchesIndexed(const Query& query,
                             std::vector<uint32_t>* out) const;

  /// Returns true if row `id` satisfies every predicate except (optionally)
  /// the one on `skip_attr` (pass num_attributes() to skip none).
  bool VerifyRow(const Query& query, uint32_t id, size_t skip_attr) const;

  std::shared_ptr<const Dataset> dataset_;
  uint64_t k_;
  LocalServerOptions options_;

  /// priorities_[id]: higher is returned first; ties by id ascending.
  std::vector<uint64_t> priorities_;

  /// Column-major copy of the data: columns_[attr][id].
  std::vector<std::vector<Value>> columns_;

  /// Categorical attr -> (value -> sorted row ids). Indexed by value
  /// (1..U); slot 0 unused.
  std::vector<std::vector<std::vector<uint32_t>>> postings_;

  /// Numeric attr -> row ids sorted by value, plus the aligned sorted
  /// values for binary search.
  std::vector<std::vector<uint32_t>> sorted_ids_;
  std::vector<std::vector<Value>> sorted_values_;

  std::vector<uint32_t> scratch_;

  uint64_t queries_served_ = 0;
  uint64_t tuples_returned_ = 0;
  uint64_t overflow_count_ = 0;
};

}  // namespace hdc
