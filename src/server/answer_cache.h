// Copyright (c) hdc authors. Apache-2.0 license.
//
// Shared answer store behind CachingServer and the CrawlService-wide
// response cache. The design mirrors the conditional-request idiom of the
// related hidden-web crawlers (ETag / Last-Modified + content-hash dedup,
// SNIPPETS.md): each entry remembers the full answer, a 64-bit truncated
// SHA-256 of its content, the server's db_version at fill time, and the
// fill clock reading. A Probe classifies a lookup as
//
//   kHit         — serve the stored answer, zero server queries;
//   kRevalidate  — the entry exists but the policy cannot prove it fresh:
//                  re-ask the server *conditionally*. If the new answer's
//                  content hash matches the stored one, the round trip is
//                  billed as a cheap revalidation (the wire analogue of a
//                  304 Not Modified), not a full query;
//   kMiss        — no entry; ask the server and Store the answer.
//
// Keys are canonicalized queries: Query already normalizes an arbitrary
// predicate set into schema-ordered per-attribute interval slots, so two
// syntactically different but semantically equal queries (predicates
// applied in any order, explicit full-range predicates vs. wildcards)
// produce one identical slot vector — the "sorted predicate rectangle".
// The key packs every slot, never eliding wildcard or full-range slots, so
// a narrowed schema view (SchemaOverrideServer) can never collide with the
// full space.
//
// Thread-safe: CrawlService shares one instance across all sessions.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "query/query.h"
#include "server/response.h"
#include "util/clock.h"
#include "util/thread_annotations.h"

namespace hdc {

/// How a cached entry may be served without contacting the server.
enum class RevalidationPolicy {
  /// Never serve from cache: every probe is a miss. The mode under which
  /// CachingServer must be byte-identical to the undecorated conversation
  /// (conformance suite).
  kAlwaysFresh,
  /// Serve entries younger than `ttl` on the injected Clock; older entries
  /// require a conditional re-ask.
  kTtl,
  /// Serve entries whose fill-time db_version equals the server's current
  /// db_version — exact freshness proof on version-reporting servers.
  /// Entries from older versions require a conditional re-ask.
  kVersionCheck,
};

const char* RevalidationPolicyName(RevalidationPolicy policy);

struct AnswerCacheOptions {
  RevalidationPolicy policy = RevalidationPolicy::kVersionCheck;
  /// TTL for kTtl, measured on `clock` (nullptr -> RealClock::Get()).
  std::chrono::nanoseconds ttl{0};
  Clock* clock = nullptr;
  /// Entry cap; 0 = unbounded. Eviction is FIFO by fill order — the cache
  /// protects re-crawls that replay whole rectangle sets, where recency
  /// has no signal worth an LRU chain.
  size_t max_entries = 0;
};

/// Monotonic counters. `revalidations_matched` round trips moved no data
/// ("304"s); billed full queries are misses + revalidations_changed.
struct AnswerCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t revalidations_matched = 0;
  uint64_t revalidations_changed = 0;

  uint64_t revalidations() const {
    return revalidations_matched + revalidations_changed;
  }
};

/// The canonical cache key: every per-attribute (lo, hi) extent of the
/// schema-ordered slot vector, packed little-endian. Exposed for tests and
/// for the delta-crawl record codec.
std::string CanonicalQueryKey(const Query& query);

/// 64-bit truncated SHA-256 over the answer's content: the overflow flag
/// and each returned (hidden_id, tuple values) in rank order. Ranked
/// answers are ordered deterministically, so equal content implies equal
/// hash and the converse holds up to SHA-256 collisions.
uint64_t HashResponse(const Response& response);

class AnswerCache {
 public:
  explicit AnswerCache(AnswerCacheOptions options = {});

  enum class ProbeResult { kMiss, kHit, kRevalidate };

  /// Looks up `query`. On kHit, `*out` receives the stored answer. On
  /// kRevalidate, `*cached_hash` receives the stored content hash for the
  /// caller's conditional re-ask. `server_version` is the server's current
  /// db_version (used by kVersionCheck). Counts hits; misses and
  /// revalidation outcomes are counted by Store/Observe below so only
  /// completed round trips move those counters.
  ProbeResult Probe(const Query& query, uint64_t server_version,
                    Response* out, uint64_t* cached_hash);

  /// Records a freshly fetched answer after a kMiss probe (counts a miss).
  void StoreMiss(const Query& query, const Response& response,
                 uint64_t server_version);

  /// Records the outcome of a conditional re-ask after a kRevalidate
  /// probe: refreshes the entry's version/timestamp, replaces the content
  /// if it changed, and counts matched vs. changed. Returns true when the
  /// content hash matched (the cheap-revalidation case).
  bool StoreRevalidation(const Query& query, const Response& response,
                         uint64_t server_version);

  /// Inserts an entry wholesale — used to seed a delta crawl's cache from
  /// a prior crawl record. Does not touch the counters.
  void Seed(const Query& query, const Response& response, uint64_t hash,
            uint64_t version);

  /// Drops every entry (counters survive — they are lifetime totals).
  void Clear();

  size_t size() const;
  AnswerCacheStats stats() const;
  const AnswerCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    Response response;
    uint64_t hash = 0;
    uint64_t version = 0;
    std::chrono::nanoseconds fill_time{0};
  };

  void InsertLocked(const std::string& key, Entry entry) HDC_REQUIRES(mu_);

  AnswerCacheOptions options_;
  Clock* clock_;

  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> entries_ HDC_GUARDED_BY(mu_);
  std::deque<std::string> fill_order_ HDC_GUARDED_BY(mu_);
  AnswerCacheStats stats_ HDC_GUARDED_BY(mu_);
};

}  // namespace hdc
