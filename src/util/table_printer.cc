// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/macros.h"

namespace hdc {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  HDC_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  HDC_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(int64_t v) { return std::to_string(v); }
std::string TablePrinter::Cell(uint64_t v) { return std::to_string(v); }

std::string TablePrinter::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.push_back(std::string(widths[c], '-'));
  }
  emit_row(rule);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

void TablePrinter::Print() const { Print(std::cout); }

}  // namespace hdc
