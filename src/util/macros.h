// Copyright (c) hdc authors. Apache-2.0 license.
//
// Assertion macros used across the library. hdc is exception-free; invariant
// violations are programming errors and abort with a diagnostic.
#pragma once

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `condition` is false. Enabled in all build
// types: crawler correctness proofs rely on these invariants, and the cost of
// the checks is negligible next to query evaluation.
#define HDC_CHECK(condition)                                                 \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "HDC_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define HDC_CHECK_MSG(condition, msg)                                        \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "HDC_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #condition, msg);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Aborts when a Status-returning expression is not OK.
#define HDC_CHECK_OK(expr)                                                   \
  do {                                                                       \
    const ::hdc::Status _hdc_status = (expr);                                \
    if (!_hdc_status.ok()) {                                                 \
      std::fprintf(stderr, "HDC_CHECK_OK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, _hdc_status.ToString().c_str());                \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Early-returns a non-OK status to the caller.
#define HDC_RETURN_IF_ERROR(expr)                                           \
  do {                                                                      \
    ::hdc::Status _hdc_status = (expr);                                     \
    if (!_hdc_status.ok()) return _hdc_status;                              \
  } while (0)
