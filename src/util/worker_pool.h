// Copyright (c) hdc authors. Apache-2.0 license.
//
// A small fixed-size thread pool built for batch query evaluation: many
// callers (one per crawl session) concurrently submit index-parallel loops
// and block until their own loop is done. Work is dealt dynamically — each
// loop carries an atomic cursor that idle workers and the calling thread
// race on — so one slow batch member never strands the rest of the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hdc {

/// Fixed set of worker threads plus the calling thread. ParallelFor may be
/// invoked concurrently from any number of threads; the loops share the
/// workers fairly (FIFO admission, dynamic item dealing).
class WorkerPool {
 public:
  /// Spawns `threads` workers. 0 is valid: every ParallelFor then runs
  /// entirely inline on the calling thread.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for every i in [0, n) and returns when all n calls have
  /// completed. The calling thread always participates, so total
  /// parallelism for one loop is at most threads() + 1. `fn` must be safe
  /// to invoke concurrently for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  /// Shared state of one ParallelFor call.
  struct Loop {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::mutex mutex;
    std::condition_variable done_cv;
    size_t next = 0;  // guarded by mutex
    size_t done = 0;  // guarded by mutex
  };

  /// Claims and runs items of `loop` until its cursor is exhausted.
  static void RunShard(Loop* loop);

  void WorkerMain();

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Loop>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hdc
