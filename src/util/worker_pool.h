// Copyright (c) hdc authors. Apache-2.0 license.
//
// A small fixed-size thread pool built for batch query evaluation: many
// callers (one per crawl session) concurrently submit index-parallel loops
// and block until their own loop is done. Work is dealt dynamically — each
// loop carries an atomic cursor that idle workers and the calling thread
// race on — so one slow batch member never strands the rest of the pool.
//
// Admission is *fair*, not FIFO. Every loop is submitted to a lane; each
// lane keeps its own queue of pending helper entries, and idle workers deal
// across the lanes weighted round-robin. One caller flooding its lane with
// huge loops therefore cannot push every other lane's work to the back of a
// global queue: a lane of weight w is offered w helper slots per scheduling
// cycle over the non-empty lanes, and an optional per-lane parallelism cap
// bounds how many workers serve a lane at once. The calling thread always
// participates in its own loop, so no lane can be starved outright even
// when every worker is busy elsewhere.
//
// Locking: one pool-wide queue_mutex_ guards the lane table and scheduler
// state (annotated, checked under -Wthread-safety); each Loop carries its
// own completion mutex. Queue waits are measured on an injectable Clock so
// scheduler tests can run on FakeClock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "util/clock.h"
#include "util/thread_annotations.h"

namespace hdc {

/// Fixed set of worker threads plus the calling thread. ParallelFor may be
/// invoked concurrently from any number of threads; the loops share the
/// workers fairly (weighted round-robin across lanes, dynamic item dealing
/// within a loop).
class WorkerPool {
 public:
  /// Identifies one submission lane. The default lane always exists.
  using LaneId = uint64_t;
  static constexpr LaneId kDefaultLane = 0;

  struct LaneOptions {
    /// Scheduling share: a lane of weight w may be dealt w consecutive
    /// helper entries before the round-robin cursor moves on. Must be >= 1.
    unsigned weight = 1;

    /// Max workers concurrently serving this lane's loops (the submitting
    /// thread always participates on top of this). 0 = no cap.
    unsigned max_parallelism = 0;
  };

  /// Cumulative per-lane accounting, all monotonic since OpenLane.
  struct LaneStats {
    /// ParallelFor calls that enqueued helper entries (inline runs — no
    /// workers, or n <= 1 — never touch the queue and are not counted).
    uint64_t loops_submitted = 0;
    /// Total loop items across those calls.
    uint64_t items_submitted = 0;
    /// Helper entries dequeued into a live loop (a worker joined in).
    uint64_t helper_joins = 0;
    /// Helper entries dropped at dequeue because their loop had already
    /// been fully claimed (the caller and earlier helpers ate every item).
    uint64_t stale_dropped = 0;
    /// Queue wait, accumulated once per submitted loop: the time from
    /// enqueue until a worker first joined it — or until the loop
    /// completed, when the pool never got to it. This is the fairness
    /// signal: a starved lane's waits grow with its neighbours' backlogs.
    double queue_wait_total_seconds = 0;
    double queue_wait_max_seconds = 0;
  };

  /// Spawns `threads` workers. 0 is valid: every ParallelFor then runs
  /// entirely inline on the calling thread. `clock` (default: the real
  /// clock) only times queue waits — it never gates scheduling.
  explicit WorkerPool(unsigned threads, Clock* clock = nullptr);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Opens a new lane. Lanes are cheap; one per crawl session is the
  /// intended grain (see server/crawl_service.h).
  LaneId OpenLane(LaneOptions options);
  LaneId OpenLane() { return OpenLane(LaneOptions()); }

  /// Closes a lane: pending helper entries are discarded (their loops must
  /// already be complete — closing a lane with a ParallelFor in flight on
  /// it is a usage error) and the id becomes invalid for new submissions.
  /// The default lane cannot be closed.
  void CloseLane(LaneId lane);

  /// Snapshot of a lane's accounting. Valid for any open lane.
  LaneStats lane_stats(LaneId lane) const;

  /// Lanes currently open (including the default lane).
  size_t open_lanes() const;

  /// Workers currently running loop items — the pool occupancy right now,
  /// in [0, threads()].
  unsigned busy_workers() const;

  /// Runs fn(i) for every i in [0, n) and returns when all n calls have
  /// completed. The calling thread always participates, so total
  /// parallelism for one loop is at most threads() + 1 (and at most the
  /// lane's max_parallelism + 1 when capped). `fn` must be safe to invoke
  /// concurrently for distinct i. Any number of ParallelFor calls may be
  /// in flight on one lane (a lane's entries are served in submission
  /// order); distinct lanes are scheduled independently.
  void ParallelFor(LaneId lane, size_t n,
                   const std::function<void(size_t)>& fn);

  /// Submits on the default lane.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    ParallelFor(kDefaultLane, n, fn);
  }

 private:
  /// Shared state of one ParallelFor call. The loop *owns* its callable
  /// (no pointer into the submitting frame), so a helper entry that
  /// outlives the call — dequeued only after the caller finished every
  /// item itself — never dangles; it is detected as fully claimed and
  /// dropped at dequeue time.
  struct Loop {
    std::function<void(size_t)> fn;
    size_t n = 0;
    /// Enqueue timestamp on the pool's clock. Written once before the
    /// loop is published to the queue (under the pool's queue_mutex_),
    /// read only by RecordWaitLocked under the same mutex.
    std::chrono::nanoseconds enqueued{0};
    /// First-service marker; guarded by the pool's queue_mutex_ (a
    /// cross-object guard the annotation syntax cannot name — the only
    /// writers, RecordWaitLocked callers, are HDC_REQUIRES(queue_mutex_)).
    bool wait_recorded = false;
    std::atomic<size_t> next{0};
    Mutex mutex;
    CondVar done_cv;
    size_t done HDC_GUARDED_BY(mutex) = 0;
  };

  struct Lane {
    LaneId id = kDefaultLane;
    LaneOptions options;
    LaneStats stats;
    /// One entry per helper invited to the loop; entries of an already
    /// fully-claimed loop are stale and dropped at dequeue.
    std::deque<std::shared_ptr<Loop>> queue;
    unsigned active_helpers = 0;
    /// CloseLane marks the lane closed; the map node is erased once the
    /// last active helper has left (helpers hold a Lane* while running).
    bool open = true;
  };

  /// Claims and runs items of `loop` until its cursor is exhausted.
  static void RunShard(Loop* loop);

  /// Records `loop`'s queue wait into `lane` once (first service or
  /// completion, whichever comes first).
  void RecordWaitLocked(Lane* lane, Loop* loop) HDC_REQUIRES(queue_mutex_);

  /// Weighted round-robin pick: prunes stale entries, then dequeues the
  /// next helper entry from the first eligible lane at or after the
  /// cursor. Returns nullptr when nothing is runnable. Updates cursor,
  /// credit, stats and active_helpers.
  std::shared_ptr<Loop> DequeueLocked(Lane** out_lane)
      HDC_REQUIRES(queue_mutex_);

  /// Drops erased-pending lanes once idle.
  void MaybeEraseLocked(LaneId id) HDC_REQUIRES(queue_mutex_);

  void WorkerMain();

  Clock* clock_;  // never null; immutable after construction

  mutable Mutex queue_mutex_;
  CondVar queue_cv_;
  /// Ordered map: deterministic round-robin.
  std::map<LaneId, Lane> lanes_ HDC_GUARDED_BY(queue_mutex_);
  LaneId next_lane_id_ HDC_GUARDED_BY(queue_mutex_) = 1;
  /// Round-robin cursor: the lane id scheduling resumes at, and how many
  /// more consecutive entries that lane may be dealt before moving on.
  LaneId rr_lane_ HDC_GUARDED_BY(queue_mutex_) = 0;
  unsigned rr_credit_ HDC_GUARDED_BY(queue_mutex_) = 0;
  unsigned busy_workers_ HDC_GUARDED_BY(queue_mutex_) = 0;
  bool shutting_down_ HDC_GUARDED_BY(queue_mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace hdc
