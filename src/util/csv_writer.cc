// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/csv_writer.h"

namespace hdc {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_.is_open()) {
    status_ = Status::InvalidArgument("cannot open for writing: " + path);
  }
}

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quotes = false;
  for (char ch : cell) {
    if (ch == ',' || ch == '"' || ch == '\n' || ch == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!status_.ok()) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
  if (!out_) status_ = Status::Internal("write failed");
}

Status CsvWriter::Close() {
  if (out_.is_open()) {
    out_.close();
    if (!out_ && status_.ok()) status_ = Status::Internal("close failed");
  }
  return status_;
}

}  // namespace hdc
