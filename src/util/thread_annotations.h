// Copyright (c) hdc authors. Apache-2.0 license.
//
// Clang thread-safety annotations (ABSL style) plus the annotated mutex
// the whole library locks through. Locking invariants that used to live
// in comments — "guarded by mu_", "requires queue_mutex_" — are written
// as attributes on the fields and functions themselves, and a clang build
// with -DHDC_THREAD_SAFETY=ON (-Wthread-safety -Werror=thread-safety)
// turns any violation into a compile error: touching a guarded field
// without its mutex, releasing a lock that is not held, or calling a
// HDC_REQUIRES function unlocked. Under gcc the attributes expand to
// nothing and the wrappers cost exactly what std::mutex costs.
//
// Conventions:
//  - every mutex-protected field is declared `HDC_GUARDED_BY(mu_)`;
//  - private helpers that assume the lock are suffixed `Locked` and
//    annotated `HDC_REQUIRES(mu_)`;
//  - scopes use `MutexLock lock(&mu_)`; manual Lock()/Unlock() pairs are
//    reserved for worker loops that drop the lock around work items;
//  - condition waits go through CondVar with an explicit `while (!cond)`
//    loop in the caller, so the guarded reads in the condition stay
//    visible to the analysis (a lambda predicate would hide them).
//
// tools/hdc_lint.py enforces the migration: raw std::mutex /
// std::condition_variable / std::lock_guard are forbidden everywhere in
// src/ except this header.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define HDC_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define HDC_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define HDC_CAPABILITY(x) HDC_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type that acquires in its constructor and releases in
/// its destructor.
#define HDC_SCOPED_CAPABILITY \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define HDC_GUARDED_BY(x) HDC_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x`.
#define HDC_PT_GUARDED_BY(x) \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Caller must hold the named capabilities to call this function.
#define HDC_REQUIRES(...) \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function acquires the named capabilities and does not release them.
#define HDC_ACQUIRE(...) \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the named capabilities.
#define HDC_RELEASE(...) \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define HDC_TRY_ACQUIRE(b, ...) \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the named capabilities (deadlock prevention).
#define HDC_EXCLUDES(...) \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Declares lock acquisition order between mutexes.
#define HDC_ACQUIRED_BEFORE(...) \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define HDC_ACQUIRED_AFTER(...) \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define HDC_RETURN_CAPABILITY(x) \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the function is exempt from analysis (e.g. locking
/// split across functions the analysis cannot follow). Every use needs a
/// comment explaining why.
#define HDC_NO_THREAD_SAFETY_ANALYSIS \
  HDC_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace hdc {

/// The library's mutex: std::mutex carrying the capability attribute so
/// guarded fields and REQUIRES contracts are checkable. Same cost, same
/// semantics; CondVar below reaches the underlying std::mutex for waits.
class HDC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HDC_ACQUIRE() { mu_.lock(); }
  void Unlock() HDC_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope: acquires in the constructor, releases in the destructor.
class HDC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HDC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HDC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable over hdc::Mutex. Wait atomically releases and
/// reacquires the caller's lock, so annotation-wise the capability is
/// held across the call — which is exactly how callers reason about it.
/// No predicate overloads on purpose: call sites spell the guarded
/// condition in their own `while` loop, where the analysis can see it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. `mu` must be held; it is released during the
  /// wait and re-held on return (adopted into a std::unique_lock for the
  /// duration, released back unlocked-side-effect-free).
  void Wait(Mutex* mu) HDC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Blocks until notified or `timeout` elapsed. Returns false on timeout.
  bool WaitFor(Mutex* mu, std::chrono::nanoseconds timeout)
      HDC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hdc
