// Copyright (c) hdc authors. Apache-2.0 license.
//
// Console table rendering for the benchmark harness. Every figure of the
// paper is reproduced as an aligned text table whose rows mirror the figure's
// series, so bench output is directly comparable to the paper.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hdc {

/// Builds an aligned ASCII table:
///
///   == Figure 10a: cost vs k (Adult-numeric, d=6) ==
///   k      binary-shrink  rank-shrink
///   ----   -------------  -----------
///   64     3912           2167
///   ...
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> headers);

  /// Appends a row; the number of cells must equal the number of headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience overloads for common cell types.
  static std::string Cell(int64_t v);
  static std::string Cell(uint64_t v);
  static std::string Cell(double v, int precision = 2);

  /// Renders the full table.
  std::string ToString() const;

  /// Renders to a stream (defaults used by bench binaries: std::cout).
  void Print(std::ostream& os) const;
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hdc
