// Copyright (c) hdc authors. Apache-2.0 license.
//
// Deterministic, seedable randomness for the whole library. Every stochastic
// component (tuple priorities, dataset generators, property tests) draws from
// an explicitly-seeded Rng so experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace hdc {

/// xoshiro256** pseudo-random generator (Blackman & Vigna). Fast, high
/// quality, and — unlike std::mt19937 — has a guaranteed cross-platform
/// sequence for a given seed, which keeps generated datasets identical across
/// standard libraries.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64, the
  /// initialization recommended by the xoshiro authors.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  // UniformRandomBitGenerator interface (usable with <algorithm>/<random>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless rejection method, so results are unbiased.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Approximately normal integer sample via clamped rounding of a
  /// Box-Muller draw. Used by generators for bell-shaped attributes (age,
  /// work hours).
  int64_t NormalInt(double mean, double stddev, int64_t lo, int64_t hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    HDC_CHECK(v != nullptr);
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Forks an independent generator; the child stream is decorrelated from
  /// the parent's subsequent output. Used to give each dataset column its own
  /// stream so adding a column does not perturb the others.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Zipf(s) distribution over {1, ..., n}: P(i) proportional to 1 / i^s.
/// Sampling is by binary search over a precomputed CDF (O(log n) per draw,
/// O(n) memory) — domains in this project top out at ~30k values, so the
/// table is small.
class ZipfDistribution {
 public:
  /// `n >= 1`; `s >= 0` (s = 0 degenerates to uniform).
  ZipfDistribution(uint64_t n, double s);

  /// Draws a value in [1, n].
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;
};

/// Arbitrary finite discrete distribution over {0, ..., weights.size()-1}
/// given non-negative weights. CDF + binary search.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace hdc
