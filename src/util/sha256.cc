// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/sha256.h"

#include <algorithm>
#include <cstring>

namespace hdc {
namespace {

constexpr uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

constexpr uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

inline uint32_t Rotr(uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

bool Sha256Digest::operator==(const Sha256Digest& o) const {
  return std::memcmp(bytes, o.bytes, sizeof(bytes)) == 0;
}

std::string Sha256Digest::ToHex() const {
  std::string out(64, '0');
  for (size_t i = 0; i < 32; ++i) {
    out[2 * i] = kHexDigits[bytes[i] >> 4];
    out[2 * i + 1] = kHexDigits[bytes[i] & 0xf];
  }
  return out;
}

Sha256Stream::Sha256Stream() {
  std::memcpy(state_, kInit, sizeof(state_));
}

void Sha256Stream::Compress(const uint8_t block[64]) {
  uint32_t w[64];
  for (size_t i = 0; i < 16; ++i) {
    w[i] = (uint32_t{block[4 * i]} << 24) | (uint32_t{block[4 * i + 1]} << 16) |
           (uint32_t{block[4 * i + 2]} << 8) | uint32_t{block[4 * i + 3]};
  }
  for (size_t i = 16; i < 64; ++i) {
    const uint32_t s0 =
        Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 =
        Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (size_t i = 0; i < 64; ++i) {
    const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
    const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256Stream::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;
  if (buffered_ > 0) {
    const size_t take = std::min(len, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ == sizeof(buffer_)) {
      Compress(buffer_);
      buffered_ = 0;
    }
  }
  while (len >= sizeof(buffer_)) {
    Compress(p);
    p += sizeof(buffer_);
    len -= sizeof(buffer_);
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffered_ = len;
  }
}

void Sha256Stream::UpdateU64(uint64_t v) {
  uint8_t le[8];
  for (size_t i = 0; i < 8; ++i) le[i] = static_cast<uint8_t>(v >> (8 * i));
  Update(le, sizeof(le));
}

Sha256Digest Sha256Stream::Finish() {
  const uint64_t bit_len = total_len_ * 8;
  const uint8_t pad = 0x80;
  Update(&pad, 1);
  const uint8_t zero = 0;
  while (buffered_ != 56) Update(&zero, 1);
  uint8_t be[8];
  for (size_t i = 0; i < 8; ++i) {
    be[i] = static_cast<uint8_t>(bit_len >> (8 * (7 - i)));
  }
  // Bypass total_len_ bookkeeping semantics: Update is safe here because
  // exactly one block remains.
  Update(be, sizeof(be));
  Sha256Digest digest;
  for (size_t i = 0; i < 8; ++i) {
    digest.bytes[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    digest.bytes[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest.bytes[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest.bytes[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return digest;
}

uint64_t Sha256Stream::Finish64() {
  const Sha256Digest d = Finish();
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) v = (v << 8) | d.bytes[i];
  return v;
}

Sha256Digest Sha256(const void* data, size_t len) {
  Sha256Stream s;
  s.Update(data, len);
  return s.Finish();
}

Sha256Digest Sha256(const std::string& data) {
  return Sha256(data.data(), data.size());
}

uint64_t Sha256Hash64(const void* data, size_t len) {
  Sha256Stream s;
  s.Update(data, len);
  return s.Finish64();
}

uint64_t Sha256Hash64(const std::string& data) {
  return Sha256Hash64(data.data(), data.size());
}

}  // namespace hdc
