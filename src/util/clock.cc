// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/clock.h"

#include <thread>

namespace hdc {

RealClock* RealClock::Get() {
  static RealClock clock;
  return &clock;
}

std::chrono::nanoseconds RealClock::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now().time_since_epoch());
}

void RealClock::SleepFor(std::chrono::nanoseconds duration) {
  if (duration.count() > 0) std::this_thread::sleep_for(duration);
}

}  // namespace hdc
