// Copyright (c) hdc authors. Apache-2.0 license.
//
// Minimal self-contained SHA-256 (FIPS 180-4). The answer cache uses it to
// fingerprint query answers the way the related hidden-web crawlers
// fingerprint fetched pages (ETag / content-dedup idiom): a conditional
// re-ask whose answer hashes to the cached digest proves the subspace is
// unchanged without diffing tuples. No OpenSSL dependency — the container
// may not ship one, and 64 rounds of shifts is all we need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hdc {

struct Sha256Digest {
  uint8_t bytes[32] = {};

  bool operator==(const Sha256Digest& o) const;
  bool operator!=(const Sha256Digest& o) const { return !(*this == o); }

  /// Lowercase hex, 64 characters.
  std::string ToHex() const;
};

/// One-shot digest of `len` bytes at `data`.
Sha256Digest Sha256(const void* data, size_t len);
Sha256Digest Sha256(const std::string& data);

/// First eight digest bytes as a big-endian integer — the compact form the
/// cache stores and the wire carries. Truncating SHA-256 to 64 bits keeps
/// full avalanche behavior; collisions across a cache of millions of
/// rectangles are ~2^-44 territory, and a collision only costs a missed
/// change detection on one rectangle until the next full crawl.
uint64_t Sha256Hash64(const void* data, size_t len);
uint64_t Sha256Hash64(const std::string& data);

/// Incremental hasher for callers that stream fields without materializing
/// one contiguous buffer (the answer hash walks tuples in place).
class Sha256Stream {
 public:
  Sha256Stream();
  void Update(const void* data, size_t len);
  void Update(const std::string& data) { Update(data.data(), data.size()); }
  /// Appends a fixed-width little-endian integer — used for field framing
  /// so (len, bytes) sequences cannot alias across field boundaries.
  void UpdateU64(uint64_t v);
  /// Finalizes and returns the digest. The stream must not be reused.
  Sha256Digest Finish();
  /// Finish() truncated as in Sha256Hash64.
  uint64_t Finish64();

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

}  // namespace hdc
