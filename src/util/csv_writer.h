// Copyright (c) hdc authors. Apache-2.0 license.
//
// Tiny CSV writer used by the bench harness to dump figure series for
// external plotting, and by Dataset to persist generated data.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace hdc {

/// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check `status()` before use.
  explicit CsvWriter(const std::string& path);

  /// Writes one row.
  void WriteRow(const std::vector<std::string>& cells);

  /// Flushes and closes. Returns the final status.
  Status Close();

  const Status& status() const { return status_; }

  /// Escapes a single cell per CSV quoting rules.
  static std::string Escape(const std::string& cell);

 private:
  std::ofstream out_;
  Status status_;
};

}  // namespace hdc
