// Copyright (c) hdc authors. Apache-2.0 license.
//
// Injectable time source. Everything in the library that measures latency
// or paces itself against a remote interface — PolitenessPolicy,
// latency-aware batch sizing — reads time and sleeps through a Clock*, so
// tests substitute a FakeClock and assert *exact* schedules instead of
// sleeping real wall-clock time and asserting "roughly".
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "util/thread_annotations.h"

namespace hdc {

/// Monotonic time source plus sleep facility. Implementations must be
/// thread-safe: a politeness policy may sleep on one thread while a metrics
/// sampler reads Now() on another.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary (per-clock) epoch.
  virtual std::chrono::nanoseconds Now() const = 0;

  /// Blocks the calling thread for `duration` (no-op when <= 0).
  virtual void SleepFor(std::chrono::nanoseconds duration) = 0;

  /// Now() as fractional seconds — convenience for latency arithmetic.
  double NowSeconds() const {
    return std::chrono::duration<double>(Now()).count();
  }
};

/// The process-wide real clock, backed by std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  /// Shared singleton; the default everywhere a Clock* is optional.
  static RealClock* Get();

  std::chrono::nanoseconds Now() const override;
  void SleepFor(std::chrono::nanoseconds duration) override;
};

/// Deterministic manual clock for tests. Time advances only through
/// Advance() and SleepFor() — a SleepFor is modelled as instantaneous
/// advancement and recorded, so a pacing test asserts the exact sequence of
/// sleeps a policy scheduled rather than waiting them out.
class FakeClock : public Clock {
 public:
  explicit FakeClock(
      std::chrono::nanoseconds start = std::chrono::nanoseconds(0))
      : now_(start) {}

  std::chrono::nanoseconds Now() const override {
    MutexLock lock(&mutex_);
    return now_;
  }

  void SleepFor(std::chrono::nanoseconds duration) override {
    MutexLock lock(&mutex_);
    if (duration.count() > 0) now_ += duration;
    sleeps_.push_back(duration.count() > 0 ? duration
                                           : std::chrono::nanoseconds(0));
  }

  /// Moves time forward without recording a sleep (the "outside world"
  /// taking time: a request in flight, a server evaluating a batch).
  void Advance(std::chrono::nanoseconds duration) {
    MutexLock lock(&mutex_);
    now_ += duration;
  }

  /// Every SleepFor() issued so far, in order (zero-length sleeps included,
  /// recorded as 0 — "the policy decided no wait was needed").
  std::vector<std::chrono::nanoseconds> sleeps() const {
    MutexLock lock(&mutex_);
    return sleeps_;
  }

  size_t sleep_count() const {
    MutexLock lock(&mutex_);
    return sleeps_.size();
  }

 private:
  mutable Mutex mutex_;
  std::chrono::nanoseconds now_ HDC_GUARDED_BY(mutex_);
  std::vector<std::chrono::nanoseconds> sleeps_ HDC_GUARDED_BY(mutex_);
};

}  // namespace hdc
