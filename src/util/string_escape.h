// Copyright (c) hdc authors. Apache-2.0 license.
//
// Reversible escaping for string tokens embedded in the line- and
// space-separated text formats (schema specs, checkpoint headers, session
// labels). The encoded form contains no whitespace, no newline, and none of
// the structural separators of the schema-spec syntax (':' and ','), so a
// token can be spliced into any of those formats and recovered exactly —
// including tokens that are empty or contain the separators themselves.
//
// Decoding is strict: a backslash followed by anything but a known escape
// code is a typed error, never a guess. That is what distinguishes a
// legacy *unescaped* token that happens to contain a backslash (ambiguous —
// it predates the escaping convention) from a correctly encoded one.
#pragma once

#include <string>

#include "util/status.h"

namespace hdc {

/// Escapes `token` so the result contains no space, tab, CR, LF, ':', ','
/// or unescaped backslash. The empty token encodes to "\e" so an encoded
/// token is never the empty string.
std::string EscapeToken(const std::string& token);

/// Inverts EscapeToken. Characters outside escape sequences pass through
/// unchanged, so any token that EscapeToken would leave untouched decodes
/// to itself (legacy compatibility). A backslash starting an unknown
/// sequence — or ending the input — yields InvalidArgument naming the
/// offending position: the input is ambiguous, not silently corruptible.
Status UnescapeToken(const std::string& encoded, std::string* out);

}  // namespace hdc
