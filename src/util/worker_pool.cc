// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/worker_pool.h"

#include <algorithm>

namespace hdc {

WorkerPool::WorkerPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::RunShard(Loop* loop) {
  for (;;) {
    size_t i;
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      if (loop->next >= loop->n) return;
      i = loop->next++;
    }
    (*loop->fn)(i);
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      ++loop->done;
      if (loop->done == loop->n) loop->done_cv.notify_all();
    }
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto loop = std::make_shared<Loop>();
  loop->fn = &fn;
  loop->n = n;
  // The caller takes one shard itself, so at most n - 1 helpers are useful.
  const size_t helpers = std::min<size_t>(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (size_t i = 0; i < helpers; ++i) queue_.push_back(loop);
  }
  queue_cv_.notify_all();

  RunShard(loop.get());
  std::unique_lock<std::mutex> lock(loop->mutex);
  loop->done_cv.wait(lock, [&] { return loop->done == loop->n; });
}

void WorkerPool::WorkerMain() {
  for (;;) {
    std::shared_ptr<Loop> loop;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, queue drained
      loop = std::move(queue_.front());
      queue_.pop_front();
    }
    RunShard(loop.get());
  }
}

}  // namespace hdc
