// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/worker_pool.h"

#include <algorithm>

#include "util/macros.h"

namespace hdc {

WorkerPool::WorkerPool(unsigned threads, Clock* clock)
    : clock_(clock != nullptr ? clock : RealClock::Get()) {
  {
    MutexLock lock(&queue_mutex_);
    lanes_.emplace(kDefaultLane, Lane{});
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(&queue_mutex_);
    shutting_down_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

WorkerPool::LaneId WorkerPool::OpenLane(LaneOptions options) {
  HDC_CHECK_MSG(options.weight >= 1, "lane weight must be >= 1");
  MutexLock lock(&queue_mutex_);
  const LaneId id = next_lane_id_++;
  Lane& lane = lanes_[id];
  lane.id = id;
  lane.options = options;
  return id;
}

void WorkerPool::CloseLane(LaneId lane_id) {
  HDC_CHECK_MSG(lane_id != kDefaultLane, "the default lane cannot be closed");
  MutexLock lock(&queue_mutex_);
  auto it = lanes_.find(lane_id);
  HDC_CHECK_MSG(it != lanes_.end() && it->second.open,
                "CloseLane on unknown or already-closed lane");
  Lane& lane = it->second;
  // Any entry still queued belongs to a completed loop (closing a lane with
  // a ParallelFor in flight is a usage error); discard them.
  lane.queue.clear();
  lane.open = false;
  MaybeEraseLocked(lane_id);
}

WorkerPool::LaneStats WorkerPool::lane_stats(LaneId lane_id) const {
  MutexLock lock(&queue_mutex_);
  auto it = lanes_.find(lane_id);
  HDC_CHECK_MSG(it != lanes_.end(), "lane_stats on unknown lane");
  return it->second.stats;
}

size_t WorkerPool::open_lanes() const {
  MutexLock lock(&queue_mutex_);
  size_t open = 0;
  for (const auto& entry : lanes_) {
    if (entry.second.open) ++open;
  }
  return open;
}

unsigned WorkerPool::busy_workers() const {
  MutexLock lock(&queue_mutex_);
  return busy_workers_;
}

void WorkerPool::RunShard(Loop* loop) {
  for (;;) {
    const size_t i = loop->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= loop->n) return;
    loop->fn(i);
    {
      MutexLock lock(&loop->mutex);
      if (++loop->done == loop->n) loop->done_cv.NotifyAll();
    }
  }
}

void WorkerPool::RecordWaitLocked(Lane* lane, Loop* loop) {
  if (loop->wait_recorded) return;
  loop->wait_recorded = true;
  const double wait =
      std::chrono::duration<double>(clock_->Now() - loop->enqueued).count();
  lane->stats.queue_wait_total_seconds += wait;
  lane->stats.queue_wait_max_seconds =
      std::max(lane->stats.queue_wait_max_seconds, wait);
}

std::shared_ptr<WorkerPool::Loop> WorkerPool::DequeueLocked(Lane** out_lane) {
  if (lanes_.empty()) return nullptr;
  auto it = lanes_.lower_bound(rr_lane_);
  if (it == lanes_.end()) it = lanes_.begin();
  for (size_t visited = 0; visited < lanes_.size(); ++visited) {
    Lane& lane = it->second;
    // A fully-claimed loop needs no more helpers: drop its entries here so
    // they neither occupy the lane nor outlive the call they belong to.
    while (!lane.queue.empty()) {
      Loop* front = lane.queue.front().get();
      if (front->next.load(std::memory_order_acquire) < front->n) break;
      RecordWaitLocked(&lane, front);
      ++lane.stats.stale_dropped;
      lane.queue.pop_front();
    }
    const bool eligible =
        !lane.queue.empty() &&
        (lane.options.max_parallelism == 0 ||
         lane.active_helpers < lane.options.max_parallelism);
    if (eligible) {
      // Weighted round-robin: the cursor lane spends its remaining credit,
      // any other lane starts a fresh allotment of `weight` entries.
      if (it->first == rr_lane_ && rr_credit_ > 0) {
        --rr_credit_;
      } else {
        rr_lane_ = it->first;
        rr_credit_ = lane.options.weight - 1;
      }
      if (rr_credit_ == 0) rr_lane_ = it->first + 1;
      std::shared_ptr<Loop> loop = std::move(lane.queue.front());
      lane.queue.pop_front();
      RecordWaitLocked(&lane, loop.get());
      ++lane.stats.helper_joins;
      ++lane.active_helpers;
      *out_lane = &lane;
      return loop;
    }
    ++it;
    if (it == lanes_.end()) it = lanes_.begin();
  }
  return nullptr;
}

void WorkerPool::MaybeEraseLocked(LaneId id) {
  auto it = lanes_.find(id);
  if (it == lanes_.end()) return;
  const Lane& lane = it->second;
  if (!lane.open && lane.active_helpers == 0 && lane.queue.empty()) {
    lanes_.erase(it);
  }
}

void WorkerPool::ParallelFor(LaneId lane_id, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto loop = std::make_shared<Loop>();
  loop->fn = fn;
  loop->n = n;
  // The caller takes one shard itself, so at most n - 1 helpers are
  // useful, and a capped lane never admits more than its cap anyway.
  size_t helpers = std::min<size_t>(workers_.size(), n - 1);
  {
    MutexLock lock(&queue_mutex_);
    auto it = lanes_.find(lane_id);
    HDC_CHECK_MSG(it != lanes_.end() && it->second.open,
                  "ParallelFor on unknown or closed lane");
    Lane& lane = it->second;
    if (lane.options.max_parallelism > 0) {
      helpers = std::min<size_t>(helpers, lane.options.max_parallelism);
    }
    loop->enqueued = clock_->Now();
    ++lane.stats.loops_submitted;
    lane.stats.items_submitted += n;
    for (size_t i = 0; i < helpers; ++i) lane.queue.push_back(loop);
  }
  queue_cv_.NotifyAll();

  RunShard(loop.get());
  {
    MutexLock lock(&loop->mutex);
    while (loop->done != loop->n) loop->done_cv.Wait(&loop->mutex);
  }
  // If no worker ever reached the loop, its wait ran from enqueue to
  // completion; record it here so starved lanes show up in the stats.
  {
    MutexLock lock(&queue_mutex_);
    auto it = lanes_.find(lane_id);
    if (it != lanes_.end()) RecordWaitLocked(&it->second, loop.get());
  }
}

void WorkerPool::WorkerMain() {
  queue_mutex_.Lock();
  for (;;) {
    Lane* lane = nullptr;
    std::shared_ptr<Loop> loop;
    while ((loop = DequeueLocked(&lane)) == nullptr && !shutting_down_) {
      queue_cv_.Wait(&queue_mutex_);
    }
    if (loop == nullptr) {  // shutting down, nothing runnable
      queue_mutex_.Unlock();
      return;
    }
    ++busy_workers_;
    queue_mutex_.Unlock();
    RunShard(loop.get());
    queue_mutex_.Lock();
    --busy_workers_;
    --lane->active_helpers;
    // The lane may have been closed while we were serving it, and freeing
    // a cap slot can make its next entry runnable for someone else.
    MaybeEraseLocked(lane->id);
    queue_cv_.NotifyAll();
  }
}

}  // namespace hdc
