// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/status.h"

namespace hdc {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kUnsolvable:
      return "Unsolvable";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hdc
