// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/string_escape.h"

namespace hdc {
namespace {

/// Escape table: each forbidden character maps to a backslash code. The
/// codes are letters so the encoded form survives any whitespace-splitting
/// tokenizer.
constexpr char kEscapeChar = '\\';

bool EncodeOne(char c, char* code) {
  switch (c) {
    case kEscapeChar: *code = kEscapeChar; return true;
    case ' ': *code = 's'; return true;
    case '\t': *code = 't'; return true;
    case '\n': *code = 'n'; return true;
    case '\r': *code = 'r'; return true;
    case ':': *code = 'c'; return true;
    case ',': *code = 'm'; return true;
    default: return false;
  }
}

bool DecodeOne(char code, char* c) {
  switch (code) {
    case kEscapeChar: *c = kEscapeChar; return true;
    case 's': *c = ' '; return true;
    case 't': *c = '\t'; return true;
    case 'n': *c = '\n'; return true;
    case 'r': *c = '\r'; return true;
    case 'c': *c = ':'; return true;
    case 'm': *c = ','; return true;
    default: return false;
  }
}

}  // namespace

std::string EscapeToken(const std::string& token) {
  if (token.empty()) return "\\e";
  std::string out;
  out.reserve(token.size());
  for (char c : token) {
    char code;
    if (EncodeOne(c, &code)) {
      out += kEscapeChar;
      out += code;
    } else {
      out += c;
    }
  }
  return out;
}

Status UnescapeToken(const std::string& encoded, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (encoded == "\\e") {
    out->clear();
    return Status::OK();
  }
  std::string decoded;
  decoded.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (c != kEscapeChar) {
      decoded += c;
      continue;
    }
    if (i + 1 >= encoded.size()) {
      return Status::InvalidArgument(
          "ambiguous token '" + encoded +
          "': trailing backslash is not a valid escape (legacy unescaped "
          "token?)");
    }
    char plain;
    if (!DecodeOne(encoded[i + 1], &plain)) {
      return Status::InvalidArgument(
          "ambiguous token '" + encoded + "': unknown escape '\\" +
          std::string(1, encoded[i + 1]) + "' at position " +
          std::to_string(i) + " (legacy unescaped token?)");
    }
    decoded += plain;
    ++i;
  }
  *out = std::move(decoded);
  return Status::OK();
}

}  // namespace hdc
