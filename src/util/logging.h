// Copyright (c) hdc authors. Apache-2.0 license.
//
// Minimal leveled logger. Benches and examples narrate through this so their
// output can be silenced (tests) or made verbose (debugging a crawl).
#pragma once

#include <sstream>
#include <string>

namespace hdc {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-collecting helper behind HDC_LOG; flushes one line to stderr on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hdc

#define HDC_LOG(level)                                                   \
  ::hdc::internal::LogMessage(::hdc::LogLevel::k##level, __FILE__, __LINE__)
