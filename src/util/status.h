// Copyright (c) hdc authors. Apache-2.0 license.
//
// RocksDB-style Status: the library is exception-free, and operations that
// can fail for reasons other than programming errors report through Status.
#pragma once

#include <string>
#include <utility>

namespace hdc {

/// Outcome of a fallible operation.
///
/// Conventions (mirroring RocksDB / Arrow):
///  - `Status::OK()` means success; `ok()` is the only thing most callers
///    check.
///  - `ResourceExhausted` is used for query-budget exhaustion during a crawl;
///    it is an *expected* outcome that callers handle (checkpoint + resume),
///    not an error to abort on.
///  - `Unsolvable` is specific to Problem 1: some point of the data space
///    holds more than k tuples, so no algorithm can extract the full bag
///    (paper, Section 1.1).
///  - `Unavailable` is a transport-level failure against a remote server
///    (connection refused or dropped, truncated or malformed frame): like
///    `Internal` it is transient and retryable, but it tells the caller the
///    *wire* failed, not the server's own logic.
///
/// The class itself is [[nodiscard]]: every by-value Status return must be
/// consumed (checked, propagated, or explicitly voided for the rare
/// best-effort call). tools/hdc_lint.py backstops compilers that predate
/// class-level nodiscard diagnostics.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotSupported,
    kFailedPrecondition,
    kResourceExhausted,
    kUnsolvable,
    kNotFound,
    kInternal,
    kUnavailable,
  };

  /// Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Unsolvable(std::string msg) {
    return Status(Code::kUnsolvable, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsResourceExhausted() const { return code_ == Code::kResourceExhausted; }
  bool IsUnsolvable() const { return code_ == Code::kUnsolvable; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  /// True for failures worth re-attempting verbatim: transient server
  /// errors (kInternal) and transport outages (kUnavailable). Deliberate
  /// refusals — budgets, bad arguments — are not transient.
  bool IsTransient() const {
    return code_ == Code::kInternal || code_ == Code::kUnavailable;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ResourceExhausted: query budget of 100
  /// queries exhausted".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Name of a status code, e.g. "ResourceExhausted".
const char* StatusCodeName(Status::Code code);

}  // namespace hdc
