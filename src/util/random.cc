// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/random.h"

#include <cmath>

namespace hdc {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  HDC_CHECK(bound > 0);
  // Lemire's multiply-shift with rejection of the biased low range.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HDC_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

int64_t Rng::NormalInt(double mean, double stddev, int64_t lo, int64_t hi) {
  HDC_CHECK(lo <= hi);
  // Box-Muller; one draw per call is plenty for generator workloads.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) u1 = 1e-12;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double value = mean + stddev * z;
  int64_t rounded = static_cast<int64_t>(std::llround(value));
  if (rounded < lo) return lo;
  if (rounded > hi) return hi;
  return rounded;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  HDC_CHECK(n >= 1);
  HDC_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_[i - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated floating-point error
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  HDC_CHECK(rng != nullptr);
  double u = rng->UniformDouble();
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<uint64_t>(lo) + 1;
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  HDC_CHECK(!weights.empty());
  cdf_.resize(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    HDC_CHECK(weights[i] >= 0.0);
    total += weights[i];
    cdf_[i] = total;
  }
  HDC_CHECK(total > 0.0);
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t DiscreteDistribution::Sample(Rng* rng) const {
  HDC_CHECK(rng != nullptr);
  double u = rng->UniformDouble();
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace hdc
