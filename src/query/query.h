// Copyright (c) hdc authors. Apache-2.0 license.
//
// Query model (paper, Section 1.1). A query places one predicate per
// attribute:
//   - numeric Ai:      a range condition  Ai in [x, y]
//   - categorical Ai:  an equality  Ai = c, or the wildcard  Ai = *
//
// Internally both forms are an interval [lo, hi]: a categorical slot is
// either pinned ([c, c]) or the full domain ([1, U]); arbitrary categorical
// ranges are *not* representable, enforced by the mutators. A numeric query
// is therefore an axis-parallel rectangle, exactly the geometry Section 2
// reasons about.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/tuple.h"

namespace hdc {

/// Closed interval of values on one attribute.
struct AttrInterval {
  Value lo = 0;
  Value hi = 0;

  bool Contains(Value v) const { return v >= lo && v <= hi; }
  bool Contains(const AttrInterval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  /// Single-value interval — the attribute is "exhausted" in paper terms.
  bool IsPinned() const { return lo == hi; }
  bool operator==(const AttrInterval& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// A conjunctive query over a schema. Value semantics; copying is cheap
/// (d <= a few dozen attributes).
class Query {
 public:
  /// The query whose rectangle covers the entire data space: numeric slots
  /// span the schema-declared bounds (unbounded sentinels by default),
  /// categorical slots are wildcards.
  static Query FullSpace(SchemaPtr schema);

  const SchemaPtr& schema() const { return schema_; }
  size_t num_attributes() const { return slots_.size(); }

  const AttrInterval& extent(size_t i) const { return slots_[i]; }
  Value lo(size_t i) const { return slots_[i].lo; }
  Value hi(size_t i) const { return slots_[i].hi; }

  /// True if attribute i's predicate is the trivial full-domain one.
  bool IsWildcard(size_t i) const;

  /// True if attribute i is fixed to a single value (exhausted).
  bool IsPinned(size_t i) const { return slots_[i].IsPinned(); }

  /// True if every attribute is pinned — the rectangle is a point.
  bool IsPoint() const;

  /// Lowest-index attribute that is not exhausted, or nullopt for a point.
  std::optional<size_t> FirstNonPinnedAttribute() const;

  /// Returns a copy with categorical attribute i set to `Ai = c`.
  Query WithCategoricalEquals(size_t i, Value c) const;

  /// Returns a copy with categorical attribute i reset to the wildcard.
  Query WithCategoricalWildcard(size_t i) const;

  /// Returns a copy with numeric attribute i restricted to [lo, hi].
  Query WithNumericRange(size_t i, Value lo, Value hi) const;

  /// Predicate evaluation.
  bool Matches(const Tuple& tuple) const;

  /// Geometric containment: every tuple matching `other` matches *this.
  bool Contains(const Query& other) const;

  /// Geometric intersection test.
  bool Intersects(const Query& other) const;

  /// If this is a *slice query* — wildcard on every attribute except exactly
  /// one pinned categorical attribute (numeric slots at full extent) —
  /// returns {attribute index, value}. (Paper, Section 3.2.)
  std::optional<std::pair<size_t, Value>> AsSliceQuery() const;

  /// Number of pinned attributes.
  size_t NumPinned() const;

  /// e.g. "A1=3, A2=*, A3 in [55, 70]".
  std::string ToString() const;

  bool operator==(const Query& other) const { return slots_ == other.slots_; }
  bool operator!=(const Query& other) const { return !(*this == other); }

  /// Hash over the slot intervals (schema assumed shared).
  size_t Hash() const;

 private:
  explicit Query(SchemaPtr schema);

  void CheckCategoricalValue(size_t i, Value c) const;

  SchemaPtr schema_;
  std::vector<AttrInterval> slots_;
};

struct QueryHasher {
  size_t operator()(const Query& q) const { return q.Hash(); }
};

/// Result of a 2-way split of rectangle q at value x on attribute `attr`
/// (paper, Figure 2a): left gets [lo, x-1], right gets [x, hi]. Requires
/// lo < x <= hi so both halves are non-empty.
struct TwoWaySplitResult {
  Query left;
  Query right;
};
TwoWaySplitResult TwoWaySplit(const Query& q, size_t attr, Value x);

/// Result of a 3-way split at value x (paper, Figure 2b): left [lo, x-1],
/// mid [x, x], right [x+1, hi]. `left`/`right` are absent when their extent
/// would be empty (x at the boundary); `mid` always exists and has `attr`
/// exhausted.
struct ThreeWaySplitResult {
  std::optional<Query> left;
  Query mid;
  std::optional<Query> right;
};
ThreeWaySplitResult ThreeWaySplit(const Query& q, size_t attr, Value x);

}  // namespace hdc
