// Copyright (c) hdc authors. Apache-2.0 license.
#include "query/query.h"

#include "util/macros.h"

namespace hdc {

Query::Query(SchemaPtr schema) : schema_(std::move(schema)) {
  HDC_CHECK(schema_ != nullptr);
  slots_.resize(schema_->num_attributes());
}

Query Query::FullSpace(SchemaPtr schema) {
  Query q(std::move(schema));
  for (size_t i = 0; i < q.slots_.size(); ++i) {
    const AttributeSpec& spec = q.schema_->attribute(i);
    if (spec.is_categorical()) {
      q.slots_[i] = {1, static_cast<Value>(spec.domain_size)};
    } else {
      q.slots_[i] = {spec.lo, spec.hi};
    }
  }
  return q;
}

bool Query::IsWildcard(size_t i) const {
  const AttributeSpec& spec = schema_->attribute(i);
  if (spec.is_categorical()) {
    return slots_[i].lo == 1 &&
           slots_[i].hi == static_cast<Value>(spec.domain_size);
  }
  return slots_[i].lo == spec.lo && slots_[i].hi == spec.hi;
}

bool Query::IsPoint() const {
  for (const AttrInterval& slot : slots_) {
    if (!slot.IsPinned()) return false;
  }
  return true;
}

std::optional<size_t> Query::FirstNonPinnedAttribute() const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].IsPinned()) return i;
  }
  return std::nullopt;
}

void Query::CheckCategoricalValue(size_t i, Value c) const {
  HDC_CHECK(i < slots_.size());
  HDC_CHECK_MSG(schema_->IsCategorical(i),
                "equality predicates are for categorical attributes");
  HDC_CHECK_MSG(c >= 1 && c <= static_cast<Value>(schema_->domain_size(i)),
                "categorical value outside its domain");
}

Query Query::WithCategoricalEquals(size_t i, Value c) const {
  CheckCategoricalValue(i, c);
  Query out = *this;
  out.slots_[i] = {c, c};
  return out;
}

Query Query::WithCategoricalWildcard(size_t i) const {
  HDC_CHECK(i < slots_.size());
  HDC_CHECK(schema_->IsCategorical(i));
  Query out = *this;
  out.slots_[i] = {1, static_cast<Value>(schema_->domain_size(i))};
  return out;
}

Query Query::WithNumericRange(size_t i, Value lo, Value hi) const {
  HDC_CHECK(i < slots_.size());
  HDC_CHECK_MSG(schema_->IsNumeric(i),
                "range predicates are for numeric attributes");
  HDC_CHECK_MSG(lo <= hi, "range must be non-empty");
  Query out = *this;
  out.slots_[i] = {lo, hi};
  return out;
}

bool Query::Matches(const Tuple& tuple) const {
  HDC_CHECK(tuple.size() == slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].Contains(tuple[i])) return false;
  }
  return true;
}

bool Query::Contains(const Query& other) const {
  HDC_CHECK(slots_.size() == other.slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].Contains(other.slots_[i])) return false;
  }
  return true;
}

bool Query::Intersects(const Query& other) const {
  HDC_CHECK(slots_.size() == other.slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].hi < other.slots_[i].lo ||
        other.slots_[i].hi < slots_[i].lo) {
      return false;
    }
  }
  return true;
}

std::optional<std::pair<size_t, Value>> Query::AsSliceQuery() const {
  std::optional<std::pair<size_t, Value>> found;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (IsWildcard(i)) continue;
    if (!schema_->IsCategorical(i) || !slots_[i].IsPinned() || found) {
      return std::nullopt;
    }
    found = {i, slots_[i].lo};
  }
  return found;
}

size_t Query::NumPinned() const {
  size_t count = 0;
  for (const AttrInterval& slot : slots_) {
    if (slot.IsPinned()) ++count;
  }
  return count;
}

std::string Query::ToString() const {
  std::string out;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out += ", ";
    const AttributeSpec& spec = schema_->attribute(i);
    out += spec.name;
    if (spec.is_categorical()) {
      if (IsWildcard(i)) {
        out += "=*";
      } else {
        out += "=" + std::to_string(slots_[i].lo);
      }
    } else {
      auto bound = [](Value v) {
        if (v <= kNumericMin) return std::string("-inf");
        if (v >= kNumericMax) return std::string("+inf");
        return std::to_string(v);
      };
      if (slots_[i].IsPinned()) {
        out += "=" + std::to_string(slots_[i].lo);
      } else {
        out +=
            " in [" + bound(slots_[i].lo) + ", " + bound(slots_[i].hi) + "]";
      }
    }
  }
  return out;
}

size_t Query::Hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t x) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    h = (h ^ (x ^ (x >> 31))) * 0x100000001b3ULL;
  };
  for (const AttrInterval& slot : slots_) {
    mix(static_cast<uint64_t>(slot.lo));
    mix(static_cast<uint64_t>(slot.hi));
  }
  return static_cast<size_t>(h);
}

TwoWaySplitResult TwoWaySplit(const Query& q, size_t attr, Value x) {
  HDC_CHECK(attr < q.num_attributes());
  HDC_CHECK_MSG(q.schema()->IsNumeric(attr), "splits act on numeric extents");
  const AttrInterval& ext = q.extent(attr);
  HDC_CHECK_MSG(ext.lo < x && x <= ext.hi,
                "2-way split point must leave both halves non-empty");
  return TwoWaySplitResult{q.WithNumericRange(attr, ext.lo, x - 1),
                           q.WithNumericRange(attr, x, ext.hi)};
}

ThreeWaySplitResult ThreeWaySplit(const Query& q, size_t attr, Value x) {
  HDC_CHECK(attr < q.num_attributes());
  HDC_CHECK_MSG(q.schema()->IsNumeric(attr), "splits act on numeric extents");
  const AttrInterval& ext = q.extent(attr);
  HDC_CHECK(ext.Contains(x));
  ThreeWaySplitResult out{std::nullopt, q.WithNumericRange(attr, x, x),
                          std::nullopt};
  if (ext.lo < x) out.left = q.WithNumericRange(attr, ext.lo, x - 1);
  if (x < ext.hi) out.right = q.WithNumericRange(attr, x + 1, ext.hi);
  return out;
}

}  // namespace hdc
