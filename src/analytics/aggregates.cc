// Copyright (c) hdc authors. Apache-2.0 license.
#include "analytics/aggregates.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/macros.h"

namespace hdc {

const char* AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kCount:
      return "count";
    case AggregateOp::kSum:
      return "sum";
    case AggregateOp::kAvg:
      return "avg";
    case AggregateOp::kMin:
      return "min";
    case AggregateOp::kMax:
      return "max";
  }
  return "?";
}

namespace detail {

void AggregateAccumulator::Add(Value v) {
  if (rows == 0) {
    min_v = v;
    max_v = v;
  } else {
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  sum += static_cast<double>(v);
  ++rows;
}

AggregateResult AggregateAccumulator::Finish(AggregateOp op) const {
  AggregateResult out;
  out.rows = rows;
  if (rows == 0) return out;
  switch (op) {
    case AggregateOp::kCount:
      out.value = static_cast<double>(rows);
      break;
    case AggregateOp::kSum:
      out.value = sum;
      break;
    case AggregateOp::kAvg:
      out.value = sum / static_cast<double>(rows);
      break;
    case AggregateOp::kMin:
      out.value = static_cast<double>(min_v);
      break;
    case AggregateOp::kMax:
      out.value = static_cast<double>(max_v);
      break;
  }
  return out;
}

}  // namespace detail

namespace {

using Accumulator = detail::AggregateAccumulator;

void CheckAttr(const Dataset& data, size_t attr) {
  HDC_CHECK_MSG(attr < data.schema()->num_attributes(),
                "attribute index out of range");
}

}  // namespace

AggregateResult Aggregate(const Dataset& data, const Query& filter,
                          const AggregateSpec& spec) {
  if (spec.op != AggregateOp::kCount) CheckAttr(data, spec.attr);
  Accumulator acc;
  for (const Tuple& t : data.tuples()) {
    if (!filter.Matches(t)) continue;
    acc.Add(spec.op == AggregateOp::kCount ? 0 : t[spec.attr]);
  }
  return acc.Finish(spec.op);
}

std::vector<GroupedRow> GroupBy(const Dataset& data, const Query& filter,
                                size_t group_attr,
                                const AggregateSpec& spec) {
  CheckAttr(data, group_attr);
  if (spec.op != AggregateOp::kCount) CheckAttr(data, spec.attr);
  std::map<Value, Accumulator> groups;
  for (const Tuple& t : data.tuples()) {
    if (!filter.Matches(t)) continue;
    groups[t[group_attr]].Add(
        spec.op == AggregateOp::kCount ? 0 : t[spec.attr]);
  }
  std::vector<GroupedRow> out;
  out.reserve(groups.size());
  for (const auto& [group, acc] : groups) {
    out.push_back(GroupedRow{group, acc.Finish(spec.op)});
  }
  return out;
}

std::vector<HistogramBin> Histogram(const Dataset& data, const Query& filter,
                                    size_t attr, size_t num_bins) {
  CheckAttr(data, attr);
  HDC_CHECK_MSG(num_bins >= 1, "need at least one bin");

  std::vector<Value> values;
  for (const Tuple& t : data.tuples()) {
    if (filter.Matches(t)) values.push_back(t[attr]);
  }
  if (values.empty()) return {};

  const auto [min_it, max_it] = std::minmax_element(values.begin(),
                                                    values.end());
  const Value lo = *min_it, hi = *max_it;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  const uint64_t bins = std::min<uint64_t>(num_bins, span);
  // Ceil division so bins cover the whole range.
  const uint64_t width = (span + bins - 1) / bins;

  std::vector<HistogramBin> out(bins);
  for (uint64_t b = 0; b < bins; ++b) {
    out[b].lo = lo + static_cast<Value>(b * width);
    out[b].hi =
        b + 1 == bins ? hi : lo + static_cast<Value>((b + 1) * width) - 1;
  }
  for (Value v : values) {
    uint64_t b = static_cast<uint64_t>(v - lo) / width;
    ++out[b].count;
  }
  return out;
}

std::optional<Value> Quantile(const Dataset& data, const Query& filter,
                              size_t attr, double q) {
  CheckAttr(data, attr);
  HDC_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::vector<Value> values;
  for (const Tuple& t : data.tuples()) {
    if (filter.Matches(t)) values.push_back(t[attr]);
  }
  if (values.empty()) return std::nullopt;
  // Nearest-rank: the ceil(q * n)-th smallest (1-based), q=0 -> smallest.
  size_t rank = static_cast<size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(values.size()))));
  rank = std::min(rank, values.size());
  std::nth_element(values.begin(), values.begin() + (rank - 1),
                   values.end());
  return values[rank - 1];
}

std::vector<Tuple> TopBy(const Dataset& data, const Query& filter,
                         size_t attr, size_t limit, bool ascending) {
  CheckAttr(data, attr);
  std::vector<Tuple> matching;
  for (const Tuple& t : data.tuples()) {
    if (filter.Matches(t)) matching.push_back(t);
  }
  auto better = [&](const Tuple& a, const Tuple& b) {
    if (a[attr] != b[attr]) {
      return ascending ? a[attr] < b[attr] : a[attr] > b[attr];
    }
    return a < b;  // deterministic tie-break
  };
  const size_t take = std::min(limit, matching.size());
  std::partial_sort(matching.begin(), matching.begin() + take,
                    matching.end(), better);
  matching.resize(take);
  return matching;
}

std::vector<Value> DistinctValues(const Dataset& data, const Query& filter,
                                  size_t attr) {
  CheckAttr(data, attr);
  std::vector<Value> values;
  for (const Tuple& t : data.tuples()) {
    if (filter.Matches(t)) values.push_back(t[attr]);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::vector<CrossTabCell> CrossTab(const Dataset& data, const Query& filter,
                                   size_t row_attr, size_t column_attr) {
  CheckAttr(data, row_attr);
  CheckAttr(data, column_attr);
  std::map<std::pair<Value, Value>, uint64_t> cells;
  for (const Tuple& t : data.tuples()) {
    if (!filter.Matches(t)) continue;
    ++cells[{t[row_attr], t[column_attr]}];
  }
  std::vector<CrossTabCell> out;
  out.reserve(cells.size());
  for (const auto& [key, count] : cells) {
    out.push_back(CrossTabCell{key.first, key.second, count});
  }
  return out;
}

}  // namespace hdc
