// Copyright (c) hdc authors. Apache-2.0 license.
#include "analytics/crawl_pushdown.h"

#include "core/crawl_plan.h"
#include "core/crawl_sink.h"
#include "util/macros.h"

namespace hdc {

Status CrawlAggregate(Crawler* crawler, HiddenDbServer* server,
                      const Query& filter, const AggregateSpec& spec,
                      AggregateResult* out, PushdownStats* stats,
                      const CrawlOptions& base) {
  if (crawler == nullptr || server == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  if (spec.op != AggregateOp::kCount &&
      spec.attr >= filter.schema()->num_attributes()) {
    return Status::InvalidArgument("aggregate attribute out of range");
  }

  CrawlPlan plan;
  HDC_RETURN_IF_ERROR(CompileQueryPlan(filter, &plan));

  detail::AggregateAccumulator acc;
  CallbackSink sink([&](const Tuple& tuple) {
    // The plan already confines the crawl to the filter's rectangle; the
    // re-check keeps the fold exact even under a custom base.oracle.
    if (!filter.Matches(tuple)) return;
    acc.Add(spec.op == AggregateOp::kCount ? Value{0} : tuple[spec.attr]);
  });

  CrawlOptions options = base;
  options.plan = &plan;
  options.sink = &sink;
  options.materialize = false;

  CrawlResult result = crawler->Crawl(server, options);
  if (stats != nullptr) {
    stats->queries_issued = result.queries_issued;
    stats->tuples_folded = acc.rows;
  }
  if (!result.complete()) return result.status;
  *out = acc.Finish(spec.op);
  return Status::OK();
}

}  // namespace hdc
