// Copyright (c) hdc authors. Apache-2.0 license.
//
// Aggregate pushdown: answer an aggregate over a hidden database by
// crawling *only the satisfying subspace*, streaming tuples straight into
// the fold instead of materializing an extraction.
//
// The classic pipeline — crawl everything, then Aggregate(data, filter,
// spec) — spends queries proportional to the whole database. For a
// selective filter that is almost all waste: the filter is a rectangle, so
// it compiles into a CrawlPlan (core/crawl_plan.h) whose root seeds the
// crawl and whose pruning oracle rejects every region outside the filter.
// Query cost drops to what crawling just the filtered subspace costs
// (bench/bench_planner.cc measures the gap), and memory stays constant:
// tuples flow through a CrawlSink callback into the running fold
// (CrawlOptions::materialize off), never into a bag.
#pragma once

#include <cstdint>

#include "analytics/aggregates.h"
#include "core/crawler.h"
#include "query/query.h"
#include "util/status.h"

namespace hdc {

/// Crawl-side cost of a pushed-down aggregate.
struct PushdownStats {
  /// Top-k queries billed to the server conversation.
  uint64_t queries_issued = 0;
  /// Tuples that satisfied the filter and were folded.
  uint64_t tuples_folded = 0;
};

/// Evaluates `spec` over the hidden database tuples matching `filter`, by
/// crawling the filter's subspace with `crawler`. Produces exactly
/// Aggregate(D, filter, spec) — the pushdown changes cost, never the
/// answer. `base` seeds the crawl options (budget, batch size, trace);
/// its plan/sink/materialize fields are overridden by the pushdown.
/// ResourceExhausted (budget ran out mid-crawl) and Unsolvable pass
/// through from the crawl.
Status CrawlAggregate(Crawler* crawler, HiddenDbServer* server,
                      const Query& filter, const AggregateSpec& spec,
                      AggregateResult* out, PushdownStats* stats = nullptr,
                      const CrawlOptions& base = {});

}  // namespace hdc
