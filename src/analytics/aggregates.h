// Copyright (c) hdc authors. Apache-2.0 license.
//
// Local analytics over an extracted hidden database. The paper's opening
// motivation (Section 1) is that crawling "comes with the appealing promise
// of enabling virtually any form of processing on the database's content" —
// processing the top-k interface itself can never answer. This module is
// that payoff: exact aggregates, group-bys, histograms and quantiles over
// the crawled bag, filtered by the same Query predicates used for crawling.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "data/dataset.h"
#include "query/query.h"

namespace hdc {

enum class AggregateOp { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateOpName(AggregateOp op);

/// One aggregate over one attribute (attr is ignored for kCount).
struct AggregateSpec {
  AggregateOp op = AggregateOp::kCount;
  size_t attr = 0;

  static AggregateSpec Count() { return {AggregateOp::kCount, 0}; }
  static AggregateSpec Sum(size_t attr) { return {AggregateOp::kSum, attr}; }
  static AggregateSpec Avg(size_t attr) { return {AggregateOp::kAvg, attr}; }
  static AggregateSpec Min(size_t attr) { return {AggregateOp::kMin, attr}; }
  static AggregateSpec Max(size_t attr) { return {AggregateOp::kMax, attr}; }
};

struct AggregateResult {
  /// Aggregate value; 0 for an empty input (check `rows`).
  double value = 0.0;
  /// Number of tuples that satisfied the filter.
  uint64_t rows = 0;
};

namespace detail {

/// Streaming accumulator shared by the batch evaluators (Aggregate,
/// GroupBy) and the crawl pushdown path (analytics/crawl_pushdown.h), so
/// both produce bit-identical results.
struct AggregateAccumulator {
  uint64_t rows = 0;
  double sum = 0.0;
  Value min_v = 0;
  Value max_v = 0;

  void Add(Value v);
  AggregateResult Finish(AggregateOp op) const;
};

}  // namespace detail

/// Evaluates `spec` over the tuples of `data` matching `filter`.
/// Min/Max/Sum/Avg require a numeric-valued interpretation and are intended
/// for numeric attributes (categorical codes are aggregated as integers if
/// asked — occasionally useful, usually not what you want).
AggregateResult Aggregate(const Dataset& data, const Query& filter,
                          const AggregateSpec& spec);

/// Group-by a (categorical or numeric) attribute: one row per distinct
/// group value among the filtered tuples, sorted by group value.
struct GroupedRow {
  Value group = 0;
  AggregateResult agg;
};
std::vector<GroupedRow> GroupBy(const Dataset& data, const Query& filter,
                                size_t group_attr, const AggregateSpec& spec);

/// Equal-width histogram of a numeric attribute over the filtered tuples.
/// Returns `num_bins` bins spanning [min, max]; empty input yields no bins.
struct HistogramBin {
  Value lo = 0;
  Value hi = 0;  // inclusive
  uint64_t count = 0;
};
std::vector<HistogramBin> Histogram(const Dataset& data, const Query& filter,
                                    size_t attr, size_t num_bins);

/// The q-quantile (0 <= q <= 1, nearest-rank) of an attribute over the
/// filtered tuples; nullopt on empty input.
std::optional<Value> Quantile(const Dataset& data, const Query& filter,
                              size_t attr, double q);

/// The `limit` filtered tuples with the smallest (ascending=true) or
/// largest values on `attr`; ties broken by full-tuple order for
/// determinism.
std::vector<Tuple> TopBy(const Dataset& data, const Query& filter,
                         size_t attr, size_t limit, bool ascending);

/// Distinct values of an attribute among the filtered tuples, sorted.
std::vector<Value> DistinctValues(const Dataset& data, const Query& filter,
                                  size_t attr);

/// Two-attribute contingency table: one cell per observed (row value,
/// column value) pair with its count, sorted by (row, column). Empty cells
/// are omitted.
struct CrossTabCell {
  Value row = 0;
  Value column = 0;
  uint64_t count = 0;
};
std::vector<CrossTabCell> CrossTab(const Dataset& data, const Query& filter,
                                   size_t row_attr, size_t column_attr);

}  // namespace hdc
