// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/local_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "gen/synthetic.h"
#include "util/random.h"

namespace hdc {
namespace {

std::shared_ptr<Dataset> OneDimData() {
  SchemaPtr schema = Schema::NumericBounded({{0, 100}});
  auto d = std::make_shared<Dataset>(schema);
  for (Value v : {10, 20, 30, 35, 45, 55, 55, 55}) d->Add(Tuple({v}));
  return d;
}

TEST(LocalServerTest, ResolvedReturnsEntireBag) {
  LocalServer server(OneDimData(), /*k=*/4);
  Query q = Query::FullSpace(server.schema()).WithNumericRange(0, 0, 30);
  Response r;
  ASSERT_TRUE(server.Issue(q, &r).ok());
  EXPECT_FALSE(r.overflow);
  EXPECT_EQ(r.size(), 3u);
}

TEST(LocalServerTest, OverflowReturnsExactlyK) {
  LocalServer server(OneDimData(), /*k=*/4);
  Query q = Query::FullSpace(server.schema());
  Response r;
  ASSERT_TRUE(server.Issue(q, &r).ok());
  EXPECT_TRUE(r.overflow);
  EXPECT_EQ(r.size(), 4u);
}

TEST(LocalServerTest, BoundaryExactlyKResolves) {
  LocalServer server(OneDimData(), /*k=*/8);
  Query q = Query::FullSpace(server.schema());
  Response r;
  ASSERT_TRUE(server.Issue(q, &r).ok());
  EXPECT_FALSE(r.overflow) << "|q(D)| == k must resolve, not overflow";
  EXPECT_EQ(r.size(), 8u);
}

TEST(LocalServerTest, RepeatedQueryReturnsSameTuples) {
  LocalServer server(OneDimData(), /*k=*/4);
  Query q = Query::FullSpace(server.schema());
  Response r1, r2;
  ASSERT_TRUE(server.Issue(q, &r1).ok());
  ASSERT_TRUE(server.Issue(q, &r2).ok());
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1.tuples[i].hidden_id, r2.tuples[i].hidden_id);
  }
}

TEST(LocalServerTest, OverflowKeepsHighestPriorityTuples) {
  auto data = OneDimData();
  // Priorities by id descending: ids 0..3 have highest priorities.
  LocalServer server(data, /*k=*/3, MakeIdOrderPolicy(/*ascending=*/true));
  Query q = Query::FullSpace(server.schema());
  Response r;
  ASSERT_TRUE(server.Issue(q, &r).ok());
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.tuples[0].hidden_id, 0u);
  EXPECT_EQ(r.tuples[1].hidden_id, 1u);
  EXPECT_EQ(r.tuples[2].hidden_id, 2u);
}

TEST(LocalServerTest, EmptyRegionResolvesEmpty) {
  LocalServer server(OneDimData(), /*k=*/4);
  Query q = Query::FullSpace(server.schema()).WithNumericRange(0, 90, 100);
  Response r;
  ASSERT_TRUE(server.Issue(q, &r).ok());
  EXPECT_FALSE(r.overflow);
  EXPECT_EQ(r.size(), 0u);
}

TEST(LocalServerTest, StatsAccumulate) {
  LocalServer server(OneDimData(), /*k=*/4);
  Response r;
  Query full = Query::FullSpace(server.schema());
  ASSERT_TRUE(server.Issue(full, &r).ok());
  ASSERT_TRUE(
      server.Issue(full.WithNumericRange(0, 0, 30), &r).ok());
  EXPECT_EQ(server.queries_served(), 2u);
  EXPECT_EQ(server.overflow_count(), 1u);
  EXPECT_EQ(server.tuples_returned(), 7u);
  server.ResetStats();
  EXPECT_EQ(server.queries_served(), 0u);
}

TEST(LocalServerTest, CountMatchesIsExact) {
  LocalServer server(OneDimData(), /*k=*/2);
  Query q = Query::FullSpace(server.schema()).WithNumericRange(0, 55, 55);
  EXPECT_EQ(server.CountMatches(q), 3u);
}

TEST(LocalServerTest, IsCrawlableComparesMultiplicityToK) {
  auto data = OneDimData();  // max multiplicity 3 (value 55)
  EXPECT_TRUE(LocalServer(data, 3).IsCrawlable());
  EXPECT_FALSE(LocalServer(data, 2).IsCrawlable());
}

TEST(LocalServerTest, CategoricalPredicates) {
  SchemaPtr schema = Schema::Categorical({3, 2});
  auto d = std::make_shared<Dataset>(schema);
  d->Add(Tuple({1, 1}));
  d->Add(Tuple({1, 2}));
  d->Add(Tuple({2, 1}));
  LocalServer server(d, /*k=*/10);
  Response r;
  Query q = Query::FullSpace(schema).WithCategoricalEquals(0, 1);
  ASSERT_TRUE(server.Issue(q, &r).ok());
  EXPECT_EQ(r.size(), 2u);
  q = q.WithCategoricalEquals(1, 2);
  ASSERT_TRUE(server.Issue(q, &r).ok());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.tuples[0].tuple, Tuple({1, 2}));
}

// Property: the indexed evaluator agrees exactly with the naive scan
// evaluator on random queries over random mixed data.
TEST(LocalServerTest, IndexedMatchesScanOnRandomQueries) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {5, 9};
  gen.num_numeric = 2;
  gen.n = 3000;
  gen.value_range = 50;
  gen.zipf_s = 0.7;
  gen.seed = 77;
  auto data = std::make_shared<Dataset>(GenerateSyntheticMixed(gen));

  LocalServerOptions scan_opts;
  scan_opts.engine = IndexEngine::kScan;
  LocalServer indexed(data, /*k=*/16, MakeRandomPriorityPolicy(5));
  LocalServer scan(data, /*k=*/16, MakeRandomPriorityPolicy(5), scan_opts);

  Rng rng(123);
  SchemaPtr schema = data->schema();
  for (int trial = 0; trial < 300; ++trial) {
    Query q = Query::FullSpace(schema);
    if (rng.Bernoulli(0.5)) {
      q = q.WithCategoricalEquals(0, rng.UniformInt(1, 5));
    }
    if (rng.Bernoulli(0.5)) {
      q = q.WithCategoricalEquals(1, rng.UniformInt(1, 9));
    }
    if (rng.Bernoulli(0.7)) {
      Value lo = rng.UniformInt(0, 49);
      q = q.WithNumericRange(2, lo, rng.UniformInt(lo, 49));
    }
    if (rng.Bernoulli(0.7)) {
      Value lo = rng.UniformInt(0, 49);
      q = q.WithNumericRange(3, lo, rng.UniformInt(lo, 49));
    }
    Response ri, rs;
    ASSERT_TRUE(indexed.Issue(q, &ri).ok());
    ASSERT_TRUE(scan.Issue(q, &rs).ok());
    ASSERT_EQ(ri.overflow, rs.overflow) << q.ToString();
    ASSERT_EQ(ri.size(), rs.size()) << q.ToString();
    for (size_t i = 0; i < ri.size(); ++i) {
      ASSERT_EQ(ri.tuples[i].hidden_id, rs.tuples[i].hidden_id)
          << q.ToString();
    }
  }
}

TEST(LocalServerTest, SchemaAccessor) {
  auto data = OneDimData();
  LocalServer server(data, 4);
  EXPECT_EQ(server.k(), 4u);
  EXPECT_TRUE(*server.schema() == *data->schema());
}

// --- Batched execution -----------------------------------------------------

std::vector<Query> RandomBatch(const SchemaPtr& schema, size_t count,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Query q = Query::FullSpace(schema);
    if (rng.Bernoulli(0.5)) {
      q = q.WithCategoricalEquals(0, rng.UniformInt(1, 5));
    }
    if (rng.Bernoulli(0.7)) {
      Value lo = rng.UniformInt(0, 49);
      q = q.WithNumericRange(2, lo, rng.UniformInt(lo, 49));
    }
    batch.push_back(std::move(q));
  }
  return batch;
}

std::shared_ptr<Dataset> BatchTestData() {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {5, 9};
  gen.num_numeric = 2;
  gen.n = 2000;
  gen.value_range = 50;
  gen.seed = 77;
  return std::make_shared<Dataset>(GenerateSyntheticMixed(gen));
}

TEST(LocalServerTest, ParallelBatchMatchesSequentialResponsesAndStats) {
  auto data = BatchTestData();
  LocalServer sequential(data, 16);
  LocalServerOptions parallel_options;
  parallel_options.max_parallelism = 4;
  LocalServer parallel(data, 16, nullptr, parallel_options);

  const std::vector<Query> batch = RandomBatch(data->schema(), 64, 99);
  std::vector<Response> seq_responses, par_responses;
  ASSERT_TRUE(sequential.IssueBatch(batch, &seq_responses).ok());
  ASSERT_TRUE(parallel.IssueBatch(batch, &par_responses).ok());

  ASSERT_EQ(seq_responses.size(), batch.size());
  ASSERT_EQ(par_responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(par_responses[i].overflow, seq_responses[i].overflow) << i;
    ASSERT_EQ(par_responses[i].size(), seq_responses[i].size()) << i;
    for (size_t j = 0; j < seq_responses[i].size(); ++j) {
      ASSERT_EQ(par_responses[i].tuples[j].hidden_id,
                seq_responses[i].tuples[j].hidden_id)
          << "member " << i << ", tuple " << j;
    }
  }
  // Statistics must be order-independent and loss-free.
  EXPECT_EQ(parallel.queries_served(), sequential.queries_served());
  EXPECT_EQ(parallel.tuples_returned(), sequential.tuples_returned());
  EXPECT_EQ(parallel.overflow_count(), sequential.overflow_count());
}

TEST(LocalServerTest, ParallelBatchesBackToBackStayConsistent) {
  // Repeated concurrent batches against one server: the stress shape the
  // ThreadSanitizer CI job runs.
  auto data = BatchTestData();
  LocalServerOptions options;
  options.max_parallelism = 8;
  LocalServer server(data, 16, nullptr, options);
  uint64_t expected_queries = 0;
  for (int round = 0; round < 10; ++round) {
    const std::vector<Query> batch =
        RandomBatch(data->schema(), 32, 1000 + round);
    std::vector<Response> responses;
    ASSERT_TRUE(server.IssueBatch(batch, &responses).ok());
    ASSERT_EQ(responses.size(), batch.size());
    expected_queries += batch.size();
  }
  EXPECT_EQ(server.queries_served(), expected_queries);
}

TEST(LocalServerTest, ParallelismNeverExceedsBatchSize) {
  // A parallel server answering a one-element batch must not spawn idle
  // workers or change behaviour.
  auto data = OneDimData();
  LocalServerOptions options;
  options.max_parallelism = 16;
  LocalServer server(data, 4, nullptr, options);
  std::vector<Response> responses;
  ASSERT_TRUE(
      server.IssueBatch({Query::FullSpace(server.schema())}, &responses)
          .ok());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].overflow);
  EXPECT_EQ(responses[0].size(), 4u);
  EXPECT_EQ(server.queries_served(), 1u);
}

}  // namespace
}  // namespace hdc
