// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/dependency.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/dfs_crawler.h"
#include "core/slice_cover.h"
#include "server/local_server.h"

namespace hdc {
namespace {

// A "cars" space where Make=2 never occurs with Body=3 (the BMW-truck rule
// of Section 1.3).
std::shared_ptr<Dataset> CarsData() {
  SchemaPtr schema = Schema::Categorical({3, 3});
  auto d = std::make_shared<Dataset>(schema);
  for (Value make = 1; make <= 3; ++make) {
    for (Value body = 1; body <= 3; ++body) {
      if (make == 2 && body == 3) continue;  // forbidden combination
      for (int c = 0; c < 5; ++c) d->Add(Tuple({make, body}));
    }
  }
  return d;
}

ForbiddenPairOracle MakeCarsOracle() {
  return ForbiddenPairOracle({{0, 2, 1, 3}});
}

TEST(DependencyOracleTest, ForbiddenPairDetection) {
  ForbiddenPairOracle oracle = MakeCarsOracle();
  SchemaPtr schema = Schema::Categorical({3, 3});
  Query q = Query::FullSpace(schema);
  EXPECT_TRUE(oracle.MayContainTuples(q));
  EXPECT_TRUE(oracle.MayContainTuples(q.WithCategoricalEquals(0, 2)));
  EXPECT_TRUE(oracle.MayContainTuples(q.WithCategoricalEquals(1, 3)));
  EXPECT_FALSE(oracle.MayContainTuples(
      q.WithCategoricalEquals(0, 2).WithCategoricalEquals(1, 3)));
  EXPECT_TRUE(oracle.MayContainTuples(
      q.WithCategoricalEquals(0, 1).WithCategoricalEquals(1, 3)));
  EXPECT_EQ(oracle.num_pairs(), 1u);
}

TEST(DependencyOracleTest, FunctionOracleWraps) {
  FunctionOracle oracle([](const Query& q) { return q.NumPinned() < 2; });
  SchemaPtr schema = Schema::Categorical({3, 3});
  Query q = Query::FullSpace(schema);
  EXPECT_TRUE(oracle.MayContainTuples(q));
  EXPECT_FALSE(oracle.MayContainTuples(
      q.WithCategoricalEquals(0, 1).WithCategoricalEquals(1, 1)));
}

TEST(DependencyOracleTest, DfsWithSoundOracleSavesQueriesStaysExact) {
  auto data = CarsData();
  const uint64_t k = 5;  // every (make, body) cell has exactly 5 tuples

  LocalServer plain_server(data, k);
  DfsCrawler plain;
  CrawlResult without = plain.Crawl(&plain_server);
  ASSERT_TRUE(without.status.ok());

  LocalServer oracle_server(data, k);
  ForbiddenPairOracle oracle = MakeCarsOracle();
  CrawlOptions options;
  options.oracle = &oracle;
  DfsCrawler with;
  CrawlResult with_result = with.Crawl(&oracle_server, options);
  ASSERT_TRUE(with_result.status.ok());

  EXPECT_TRUE(Dataset::MultisetEquals(with_result.extracted, *data));
  EXPECT_LT(with_result.queries_issued, without.queries_issued)
      << "pruning the forbidden cell must save at least one query";
}

TEST(DependencyOracleTest, LazySliceCoverWithOracleStaysExact) {
  auto data = CarsData();
  const uint64_t k = 5;
  LocalServer server(data, k);
  ForbiddenPairOracle oracle = MakeCarsOracle();
  CrawlOptions options;
  options.oracle = &oracle;
  SliceCoverCrawler crawler(/*lazy=*/true);
  CrawlResult result = crawler.Crawl(&server, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

TEST(DependencyOracleTest, PrunedQueriesCostNothing) {
  auto data = CarsData();
  LocalServer server(data, /*k=*/5);
  // An oracle that prunes everything: the crawl "finishes" instantly with
  // an empty extraction and zero queries. (Sound only for empty databases —
  // this is the documented soundness contract, exercised deliberately.)
  FunctionOracle deny_all([](const Query&) { return false; });
  CrawlOptions options;
  options.oracle = &deny_all;
  DfsCrawler crawler;
  CrawlResult result = crawler.Crawl(&server, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.queries_issued, 0u);
  EXPECT_EQ(result.extracted.size(), 0u);
}

}  // namespace
}  // namespace hdc
