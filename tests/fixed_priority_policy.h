// Copyright (c) hdc authors. Apache-2.0 license.
#pragma once

#include <vector>

#include "server/ranking.h"
#include "util/macros.h"

namespace hdc {
namespace testing_util {

/// Test-only policy with explicitly chosen priorities, used to reproduce the
/// paper's worked examples where specific tuples must be returned first.
class FixedPriorityPolicy : public RankingPolicy {
 public:
  explicit FixedPriorityPolicy(std::vector<uint64_t> priorities)
      : priorities_(std::move(priorities)) {}

  std::vector<uint64_t> AssignPriorities(const Dataset& dataset) override {
    HDC_CHECK(priorities_.size() == dataset.size());
    return priorities_;
  }

  std::string name() const override { return "fixed"; }

 private:
  std::vector<uint64_t> priorities_;
};

}  // namespace testing_util
}  // namespace hdc
