// Copyright (c) hdc authors. Apache-2.0 license.
//
// Engine-equivalence differential suite: the three LocalIndex evaluation
// engines (kScan oracle, kLegacy single-driver, kBitmap block-compressed
// bitmaps) must return bit-identical responses and counts on every query.
// The randomized battery sweeps schema shapes, dataset sizes straddling
// the bitmap block and array/bitset cutover boundaries, k in {1, 2, n},
// narrowed session schema views, and degenerate extents.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gen/synthetic.h"
#include "server/local_server.h"
#include "util/random.h"

namespace hdc {
namespace {

constexpr IndexEngine kEngines[] = {IndexEngine::kScan, IndexEngine::kLegacy,
                                    IndexEngine::kBitmap};

std::string Digest(const Response& r) {
  std::ostringstream out;
  out << (r.overflow ? "OVERFLOW" : "resolved") << ' ' << r.size();
  for (const ReturnedTuple& rt : r.tuples) {
    out << " #" << rt.hidden_id << rt.tuple.ToString();
  }
  return out.str();
}

/// One server per engine over the same dataset, k and ranking seed.
struct EngineTrio {
  std::vector<std::unique_ptr<LocalServer>> servers;

  EngineTrio(std::shared_ptr<const Dataset> dataset, uint64_t k,
             uint64_t policy_seed = 11) {
    for (IndexEngine engine : kEngines) {
      LocalServerOptions options;
      options.engine = engine;
      servers.push_back(std::make_unique<LocalServer>(
          dataset, k, MakeRandomPriorityPolicy(policy_seed), options));
    }
  }

  /// Issues `query` on every engine and fails the test (returning false)
  /// on any response or count divergence from the kScan oracle.
  void ExpectAgreement(const Query& query) {
    Response want;
    ASSERT_TRUE(servers[0]->Issue(query, &want).ok());
    const std::string want_digest = Digest(want);
    const uint64_t want_count = servers[0]->CountMatches(query);
    for (size_t e = 1; e < servers.size(); ++e) {
      Response got;
      ASSERT_TRUE(servers[e]->Issue(query, &got).ok());
      EXPECT_EQ(Digest(got), want_digest)
          << IndexEngineName(kEngines[e]) << " diverged on "
          << query.ToString();
      EXPECT_EQ(servers[e]->CountMatches(query), want_count)
          << IndexEngineName(kEngines[e]) << " CountMatches diverged on "
          << query.ToString();
    }
  }
};

/// Random query over `schema`: each categorical slot is pinned with
/// probability 1/2; each numeric slot gets a range that may be a point
/// (lo == hi), partially or fully out of the data's value span, or the
/// exact span boundary.
Query RandomQuery(const SchemaPtr& schema, Value value_range, Rng* rng) {
  Query q = Query::FullSpace(schema);
  for (size_t a = 0; a < schema->num_attributes(); ++a) {
    if (schema->IsCategorical(a)) {
      if (rng->Bernoulli(0.5)) {
        q = q.WithCategoricalEquals(
            a, rng->UniformInt(1, static_cast<int64_t>(schema->domain_size(a))));
      }
    } else if (rng->Bernoulli(0.7)) {
      // Bias toward narrow ranges; stray below 0 and above the span so
      // empty and clamped extents are exercised too.
      Value lo = rng->UniformInt(-5, value_range + 5);
      Value hi = rng->Bernoulli(0.15) ? lo
                                      : rng->UniformInt(lo, value_range + 5);
      q = q.WithNumericRange(a, lo, hi);
    }
  }
  return q;
}

TEST(IndexEngineTest, RandomizedDifferentialAcrossSchemas) {
  struct Config {
    std::vector<uint64_t> domains;
    size_t num_numeric;
    size_t n;
    Value value_range;
    double zipf;
    uint64_t k;
  };
  const Config configs[] = {
      {{5, 9}, 2, 3000, 50, 0.7, 16},   // the classic mixed shape
      {{3}, 0, 800, 0, 1.2, 1},         // categorical-only, k = 1
      {{}, 3, 1200, 40, 0.0, 2},        // numeric-only, k = 2, heavy ties
      {{7, 2, 4}, 1, 2500, 30, 0.9, 2500},  // k = n: nothing overflows
  };

  uint64_t seed = 1000;
  for (const Config& config : configs) {
    SyntheticMixedOptions gen;
    gen.domain_sizes = config.domains;
    gen.num_numeric = config.num_numeric;
    gen.n = config.n;
    gen.value_range = std::max<Value>(config.value_range, 1);
    gen.zipf_s = config.zipf;
    gen.seed = ++seed;
    auto data = std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));

    EngineTrio trio(data, config.k, /*policy_seed=*/seed);
    Rng rng(seed * 7);
    for (int trial = 0; trial < 200; ++trial) {
      trio.ExpectAgreement(
          RandomQuery(data->schema(), config.value_range, &rng));
      if (HasFatalFailure()) return;
    }
  }
}

TEST(IndexEngineTest, ContainerCutoverStraddlingFrequencies) {
  // 70k rows span two 65536-id blocks; domain sizes are picked so the same
  // categorical value is bitset-coded in block 0 (dense) and array-coded
  // in block 1 (the 4464-row tail), exercising the mixed-container
  // intersection paths. The zipf skew additionally spreads per-value
  // frequencies across the 4096-id cutover within one block.
  SyntheticMixedOptions gen;
  gen.domain_sizes = {2, 12};
  gen.num_numeric = 1;
  gen.n = 70000;
  gen.value_range = 500;
  gen.zipf_s = 0.8;
  gen.seed = 42;
  auto data = std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));

  EngineTrio trio(data, /*k=*/32);
  SchemaPtr schema = data->schema();
  Rng rng(99);
  // Every (cat0, cat1) pair, with and without a numeric band.
  for (Value c0 = 1; c0 <= 2; ++c0) {
    for (Value c1 = 1; c1 <= 12; ++c1) {
      Query q = Query::FullSpace(schema)
                    .WithCategoricalEquals(0, c0)
                    .WithCategoricalEquals(1, c1);
      trio.ExpectAgreement(q);
      Value lo = rng.UniformInt(0, 499);
      trio.ExpectAgreement(q.WithNumericRange(2, lo, rng.UniformInt(lo, 499)));
      if (HasFatalFailure()) return;
    }
  }
  for (int trial = 0; trial < 100; ++trial) {
    trio.ExpectAgreement(RandomQuery(schema, 500, &rng));
    if (HasFatalFailure()) return;
  }
}

TEST(IndexEngineTest, BoundaryExtents) {
  SchemaPtr schema = Schema::Make({AttributeSpec::Categorical("C", 4),
                                   AttributeSpec::NumericBounded("X", 0, 100),
                                   AttributeSpec::NumericBounded("Y", 0, 100)});
  auto data = std::make_shared<Dataset>(schema);
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    data->Add(Tuple({rng.UniformInt(1, 4), rng.UniformInt(0, 100),
                     rng.UniformInt(0, 100)}));
  }
  auto shared = std::shared_ptr<const Dataset>(std::move(data));

  for (uint64_t k : {uint64_t{1}, uint64_t{2}, uint64_t{400}}) {
    EngineTrio trio(shared, k);
    const Query full = Query::FullSpace(schema);
    trio.ExpectAgreement(full);                            // all-wildcard
    trio.ExpectAgreement(full.WithNumericRange(1, 0, 100));   // full domain
    trio.ExpectAgreement(full.WithNumericRange(1, 37, 37));   // lo == hi
    trio.ExpectAgreement(full.WithNumericRange(1, 0, 0));     // left edge
    trio.ExpectAgreement(full.WithNumericRange(1, 100, 100)); // right edge
    trio.ExpectAgreement(
        full.WithNumericRange(1, 37, 37).WithNumericRange(2, 37, 37));
    trio.ExpectAgreement(full.WithCategoricalEquals(0, 1)
                             .WithNumericRange(1, 0, 100)
                             .WithNumericRange(2, 100, 100));
    if (HasFatalFailure()) return;
  }
}

TEST(IndexEngineTest, NarrowedSessionSchemaView) {
  // A session schema override may tighten numeric bounds below the
  // dataset's. A query that is all-wildcard *relative to the narrowed
  // schema* still constrains rows of the wider dataset — every engine must
  // apply it against the server-side domain, not the query's.
  SyntheticMixedOptions gen;
  gen.domain_sizes = {4};
  gen.num_numeric = 2;
  gen.n = 5000;
  gen.value_range = 1000;
  gen.seed = 17;
  auto data = std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));

  const Schema& wide = *data->schema();
  std::vector<AttributeSpec> narrowed_specs;
  for (size_t a = 0; a < wide.num_attributes(); ++a) {
    narrowed_specs.push_back(wide.attribute(a));
  }
  narrowed_specs[1].lo = 200;  // numeric attr 1 tightened to [200, 600]
  narrowed_specs[1].hi = 600;
  SchemaPtr narrowed = Schema::Make(std::move(narrowed_specs));
  ASSERT_TRUE(narrowed->CompatibleWith(wide));

  EngineTrio trio(data, /*k=*/24);
  const Query narrowed_full = Query::FullSpace(narrowed);
  trio.ExpectAgreement(narrowed_full);
  trio.ExpectAgreement(narrowed_full.WithCategoricalEquals(0, 2));
  trio.ExpectAgreement(narrowed_full.WithNumericRange(2, 100, 300));
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    Query q = Query::FullSpace(narrowed);
    if (rng.Bernoulli(0.5)) {
      q = q.WithCategoricalEquals(0, rng.UniformInt(1, 4));
    }
    if (rng.Bernoulli(0.6)) {
      Value lo = rng.UniformInt(200, 600);
      q = q.WithNumericRange(1, lo, rng.UniformInt(lo, 600));
    }
    if (rng.Bernoulli(0.6)) {
      Value lo = rng.UniformInt(0, 999);
      q = q.WithNumericRange(2, lo, rng.UniformInt(lo, 999));
    }
    trio.ExpectAgreement(q);
    if (HasFatalFailure()) return;
  }
}

TEST(IndexEngineTest, BlockLocalIdZeroSurvivesArrayIntersection) {
  // Regression guard for the vectorized sorted-array intersection: the
  // SSE4.2 kernel is an implicit-length string compare for which element
  // value 0 is a terminator, yet block-local id 0 (any row sitting exactly
  // on a 65536-id block boundary) is a legal array element. Every block
  // here places its boundary row in BOTH predicate arrays; dropping it
  // would diverge from the scan oracle. Moduli are chosen so both values
  // stay under the array/bitset cutover (65536/17 and 65536/19 ids per
  // block) and within the SIMD dispatch band (size ratio << 16).
  SchemaPtr schema = Schema::Make({AttributeSpec::Categorical("A", 20),
                                   AttributeSpec::Categorical("B", 20)});
  auto data = std::make_shared<Dataset>(schema);
  const size_t n = 70000;  // two blocks; block 1 is a short tail
  for (size_t i = 0; i < n; ++i) {
    const uint32_t local = static_cast<uint32_t>(i) & 65535u;
    const Value a =
        (local % 17 == 0) ? 1 : 2 + static_cast<Value>(local % 18);
    const Value b =
        (local % 19 == 0) ? 1 : 2 + static_cast<Value>((local * 7) % 18);
    data->AddUnchecked(Tuple{a, b});
  }
  auto shared = std::shared_ptr<const Dataset>(std::move(data));

  // k = n resolves the whole bag in id order: the digest then compares
  // every matched id, so a single dropped boundary row fails loudly.
  EngineTrio resolved(shared, /*k=*/n);
  const Query full = Query::FullSpace(schema);
  const Query conj =
      full.WithCategoricalEquals(0, 1).WithCategoricalEquals(1, 1);
  resolved.ExpectAgreement(conj);
  resolved.ExpectAgreement(full.WithCategoricalEquals(0, 1));

  // Small k exercises the overflowing heap path over the same arrays.
  EngineTrio heap(shared, /*k=*/8);
  heap.ExpectAgreement(conj);
  heap.ExpectAgreement(full.WithCategoricalEquals(1, 1));
}

TEST(IndexEngineTest, EmptyDataset) {
  SchemaPtr schema = Schema::Make({AttributeSpec::Categorical("C", 3),
                                   AttributeSpec::NumericBounded("X", 0, 9)});
  auto data = std::make_shared<const Dataset>(Dataset(schema));
  EngineTrio trio(data, /*k=*/1);
  trio.ExpectAgreement(Query::FullSpace(schema));
  trio.ExpectAgreement(Query::FullSpace(schema)
                           .WithCategoricalEquals(0, 1)
                           .WithNumericRange(1, 4, 4));
}

TEST(IndexEngineTest, BuildStatsReportWhatWasBuilt) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {2};
  gen.num_numeric = 1;
  gen.n = 70000;  // two id blocks
  gen.value_range = 100;
  gen.seed = 3;
  auto data = std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));

  LocalServer bitmap(data, 8);
  EXPECT_EQ(bitmap.index()->engine(), IndexEngine::kBitmap);
  const IndexBuildStats& stats = bitmap.index()->build_stats();
  // ~35k rows per categorical value: dense in block 0 (bitset), sparse in
  // the 4464-row tail block (array).
  EXPECT_GT(stats.bitset_containers, 0u);
  EXPECT_GT(stats.array_containers, 0u);
  EXPECT_EQ(stats.zone_map_blocks, 2u);  // 1 numeric attr x 2 blocks

  LocalServerOptions scan_options;
  scan_options.engine = IndexEngine::kScan;
  LocalServer scan(data, 8, nullptr, scan_options);
  EXPECT_EQ(scan.index()->build_stats().array_containers, 0u);
  EXPECT_EQ(scan.index()->build_stats().zone_map_blocks, 0u);
  EXPECT_STREQ(IndexEngineName(scan.index()->engine()), "scan");
}

TEST(IndexEngineTest, ScratchTrimsBackToRetentionCap) {
  EvalScratch scratch;
  scratch.ids.assign(EvalScratch::kRetainIds * 4, 0);
  ASSERT_GT(scratch.ids.capacity(), EvalScratch::kRetainIds);
  scratch.TrimAfterBatch();
  EXPECT_TRUE(scratch.ids.empty());
  EXPECT_LE(scratch.ids.capacity(), EvalScratch::kRetainIds * 2);
  // Within the cap nothing is touched: contents survive.
  scratch.ids.assign(100, 7);
  scratch.TrimAfterBatch();
  EXPECT_EQ(scratch.ids.size(), 100u);
}

}  // namespace
}  // namespace hdc
