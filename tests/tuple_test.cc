// Copyright (c) hdc authors. Apache-2.0 license.
#include "data/tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace hdc {
namespace {

TEST(TupleTest, ConstructionAndAccess) {
  Tuple t{3, 1, 55};
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], 3);
  EXPECT_EQ(t[1], 1);
  EXPECT_EQ(t[2], 55);
}

TEST(TupleTest, MutableAccess) {
  Tuple t{1, 2};
  t[0] = 9;
  EXPECT_EQ(t[0], 9);
}

TEST(TupleTest, Equality) {
  EXPECT_EQ(Tuple({1, 2}), Tuple({1, 2}));
  EXPECT_NE(Tuple({1, 2}), Tuple({2, 1}));
  EXPECT_NE(Tuple({1}), Tuple({1, 0}));
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT(Tuple({1, 2}), Tuple({1, 3}));
  EXPECT_LT(Tuple({1, 9}), Tuple({2, 0}));
  EXPECT_FALSE(Tuple({2, 0}) < Tuple({1, 9}));
}

TEST(TupleTest, HashEqualTuplesAgree) {
  EXPECT_EQ(Tuple({5, 5, 5}).Hash(), Tuple({5, 5, 5}).Hash());
}

TEST(TupleTest, HashNearbyValuesDiffer) {
  // Regression guard against weak mixing: consecutive integers must spread.
  std::unordered_set<size_t> hashes;
  for (Value v = 0; v < 1000; ++v) hashes.insert(Tuple({v}).Hash());
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(TupleTest, HashPositionSensitive) {
  EXPECT_NE(Tuple({1, 2}).Hash(), Tuple({2, 1}).Hash());
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(Tuple({3, 1, 55}).ToString(), "(3, 1, 55)");
  EXPECT_EQ(Tuple({-7}).ToString(), "(-7)");
  EXPECT_EQ(Tuple().ToString(), "()");
}

TEST(TupleTest, WorksInUnorderedSet) {
  std::unordered_set<Tuple, TupleHasher> set;
  set.insert(Tuple({1, 2}));
  set.insert(Tuple({1, 2}));
  set.insert(Tuple({2, 1}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Tuple({1, 2})));
}

}  // namespace
}  // namespace hdc
