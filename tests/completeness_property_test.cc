// Copyright (c) hdc authors. Apache-2.0 license.
//
// The central correctness property of the paper's Problem 1: for every data
// space type, every result-limit k, and every server ranking policy, each
// applicable crawler must extract *exactly* the multiset D. Parameterized
// sweeps (TEST_P) cover the cross-product.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/local_server.h"
#include "test_util.h"

namespace hdc {
namespace {

enum class PolicyKind { kRandomA, kRandomB, kOldest, kNewest, kByAttr };

std::unique_ptr<RankingPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandomA:
      return MakeRandomPriorityPolicy(101);
    case PolicyKind::kRandomB:
      return MakeRandomPriorityPolicy(202);
    case PolicyKind::kOldest:
      return MakeIdOrderPolicy(true);
    case PolicyKind::kNewest:
      return MakeIdOrderPolicy(false);
    case PolicyKind::kByAttr:
      return MakeByAttributePolicy(0, true);
  }
  return nullptr;
}

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandomA:
      return "RandomA";
    case PolicyKind::kRandomB:
      return "RandomB";
    case PolicyKind::kOldest:
      return "Oldest";
    case PolicyKind::kNewest:
      return "Newest";
    case PolicyKind::kByAttr:
      return "ByAttr";
  }
  return "?";
}

/// Crawls `data` with `crawler` at result limit >= max multiplicity and
/// expects the exact multiset back.
void CheckExact(Crawler* crawler, const Dataset& data, uint64_t k,
                PolicyKind policy) {
  const uint64_t k_eff = std::max(k, data.MaxPointMultiplicity());
  testing_util::ExpectExactExtraction(crawler, data, k_eff,
                                      MakePolicy(policy));
}

// ---------------------------------------------------------------------
// Numeric spaces: binary-shrink and rank-shrink.
// ---------------------------------------------------------------------

using NumericParams = std::tuple<size_t /*d*/, double /*skew*/,
                                 uint64_t /*k*/, PolicyKind>;

class NumericCompleteness
    : public ::testing::TestWithParam<NumericParams> {};

TEST_P(NumericCompleteness, BothNumericCrawlersExact) {
  auto [d, skew, k, policy] = GetParam();
  SyntheticNumericOptions gen;
  gen.d = d;
  gen.n = 700;
  gen.value_range = 256;
  gen.value_skew = skew;
  gen.duplicate_prob = skew > 0 ? 0.05 : 0.0;
  gen.seed = 1000 + d * 17 + static_cast<uint64_t>(skew * 10) + k;
  Dataset data = GenerateSyntheticNumeric(gen);

  RankShrink rank_shrink;
  CheckExact(&rank_shrink, data, k, policy);
  BinaryShrink binary_shrink;
  CheckExact(&binary_shrink, data, k, policy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NumericCompleteness,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.0, 1.0),
                       ::testing::Values(4, 16, 64),
                       ::testing::Values(PolicyKind::kRandomA,
                                         PolicyKind::kRandomB,
                                         PolicyKind::kOldest,
                                         PolicyKind::kNewest,
                                         PolicyKind::kByAttr)),
    [](const ::testing::TestParamInfo<NumericParams>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) > 0 ? "_skew" : "_uniform") + "_k" +
             std::to_string(std::get<2>(info.param)) + "_" +
             PolicyName(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------
// Categorical spaces: DFS, slice-cover, lazy-slice-cover.
// ---------------------------------------------------------------------

using CategoricalParams =
    std::tuple<int /*shape*/, uint64_t /*k*/, PolicyKind>;

class CategoricalCompleteness
    : public ::testing::TestWithParam<CategoricalParams> {};

TEST_P(CategoricalCompleteness, AllCategoricalCrawlersExact) {
  auto [shape, k, policy] = GetParam();
  SyntheticCategoricalOptions gen;
  switch (shape) {
    case 0:
      gen.domain_sizes = {2, 2, 2, 2};  // deep, tiny domains
      break;
    case 1:
      gen.domain_sizes = {30};  // single wide attribute
      break;
    case 2:
      gen.domain_sizes = {6, 10, 14};  // mixed widths
      break;
  }
  gen.n = 600;
  gen.zipf_s = 0.9;
  gen.seed = 2000 + shape * 31 + k;
  Dataset data = GenerateSyntheticCategorical(gen);

  DfsCrawler dfs;
  CheckExact(&dfs, data, k, policy);
  SliceCoverCrawler eager(false);
  CheckExact(&eager, data, k, policy);
  SliceCoverCrawler lazy(true);
  CheckExact(&lazy, data, k, policy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CategoricalCompleteness,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(4, 16, 64),
                       ::testing::Values(PolicyKind::kRandomA,
                                         PolicyKind::kOldest,
                                         PolicyKind::kNewest,
                                         PolicyKind::kByAttr)),
    [](const ::testing::TestParamInfo<CategoricalParams>& info) {
      return "shape" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_" +
             PolicyName(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Mixed spaces: hybrid.
// ---------------------------------------------------------------------

using MixedParams = std::tuple<int /*shape*/, uint64_t /*k*/, PolicyKind>;

class MixedCompleteness : public ::testing::TestWithParam<MixedParams> {};

TEST_P(MixedCompleteness, HybridExact) {
  auto [shape, k, policy] = GetParam();
  SyntheticMixedOptions gen;
  switch (shape) {
    case 0:
      gen.domain_sizes = {4};
      gen.num_numeric = 3;
      break;
    case 1:
      gen.domain_sizes = {3, 5, 7};
      gen.num_numeric = 1;
      break;
    case 2:
      gen.domain_sizes = {10, 10};
      gen.num_numeric = 2;
      break;
  }
  gen.n = 700;
  gen.value_range = 128;
  gen.zipf_s = 1.0;
  gen.value_skew = shape == 2 ? 0.8 : 0.0;
  gen.seed = 3000 + shape * 13 + k;
  Dataset data = GenerateSyntheticMixed(gen);

  HybridCrawler hybrid;
  CheckExact(&hybrid, data, k, policy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MixedCompleteness,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(4, 16, 64),
                       ::testing::Values(PolicyKind::kRandomA,
                                         PolicyKind::kOldest,
                                         PolicyKind::kNewest,
                                         PolicyKind::kByAttr)),
    [](const ::testing::TestParamInfo<MixedParams>& info) {
      return "shape" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_" +
             PolicyName(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Factory selection.
// ---------------------------------------------------------------------

TEST(MakeOptimalCrawlerTest, PicksByTheorem1CaseAnalysis) {
  EXPECT_EQ(MakeOptimalCrawler(*Schema::Numeric(3))->name(), "rank-shrink");
  EXPECT_EQ(MakeOptimalCrawler(*Schema::Categorical({4}))->name(),
            "lazy-slice-cover");
  SchemaPtr mixed = Schema::Make({AttributeSpec::Categorical("C", 2),
                                  AttributeSpec::Numeric("N")});
  EXPECT_EQ(MakeOptimalCrawler(*mixed)->name(), "hybrid");
}

}  // namespace
}  // namespace hdc
