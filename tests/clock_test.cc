// Copyright (c) hdc authors. Apache-2.0 license.
//
// The injectable time source (util/clock.h): FakeClock advances only on
// demand and records every sleep, RealClock is monotonic.
#include <gtest/gtest.h>

#include <chrono>

#include "util/clock.h"

namespace hdc {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(FakeClockTest, AdvancesOnlyOnDemand) {
  FakeClock clock(nanoseconds(100));
  EXPECT_EQ(clock.Now(), nanoseconds(100));
  EXPECT_EQ(clock.Now(), nanoseconds(100)) << "time must not flow on its own";
  clock.Advance(milliseconds(5));
  EXPECT_EQ(clock.Now(), nanoseconds(100) + nanoseconds(milliseconds(5)));
}

TEST(FakeClockTest, SleepAdvancesAndRecords) {
  FakeClock clock;
  clock.SleepFor(milliseconds(10));
  clock.SleepFor(nanoseconds(0));
  clock.SleepFor(milliseconds(3));
  EXPECT_EQ(clock.Now(), nanoseconds(milliseconds(13)));
  const auto sleeps = clock.sleeps();
  ASSERT_EQ(sleeps.size(), 3u);
  EXPECT_EQ(sleeps[0], nanoseconds(milliseconds(10)));
  EXPECT_EQ(sleeps[1], nanoseconds(0));
  EXPECT_EQ(sleeps[2], nanoseconds(milliseconds(3)));
}

TEST(FakeClockTest, NegativeSleepIsClampedToZero) {
  FakeClock clock;
  clock.SleepFor(nanoseconds(-5));
  EXPECT_EQ(clock.Now(), nanoseconds(0));
  ASSERT_EQ(clock.sleep_count(), 1u);
  EXPECT_EQ(clock.sleeps()[0], nanoseconds(0));
}

TEST(FakeClockTest, NowSecondsConverts) {
  FakeClock clock;
  clock.Advance(milliseconds(1500));
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 1.5);
}

TEST(RealClockTest, MonotonicAndShared) {
  Clock* clock = RealClock::Get();
  EXPECT_EQ(clock, RealClock::Get()) << "singleton";
  const nanoseconds a = clock->Now();
  const nanoseconds b = clock->Now();
  EXPECT_LE(a.count(), b.count());
}

}  // namespace
}  // namespace hdc
