// Copyright (c) hdc authors. Apache-2.0 license.
//
// Failure injection: flaky connections, retry policies, and the crawl
// framework's interruption semantics (transient failures never lose work
// and never poison the resumable state). Covers both transient flavours:
// kInternal (server hiccup) and kUnavailable (transport outage, the typed
// error net/remote_server.h surfaces).
#include <gtest/gtest.h>

#include <memory>

#include "core/rank_shrink.h"
#include "core/slice_cover.h"
#include "gen/synthetic.h"
#include "server/decorators.h"
#include "server/local_server.h"

namespace hdc {
namespace {

/// FlakyServer's transport-layer sibling: every `period`-th attempt fails
/// with kUnavailable *before* reaching the wrapped server, like a dropped
/// loopback connection. Sequential-only (Issue path) — batch semantics are
/// covered by the real transport in remote_transport_test.cc.
class OutageServer : public ServerDecorator {
 public:
  OutageServer(HiddenDbServer* base, uint64_t period)
      : ServerDecorator(base), period_(period) {}

  Status Issue(const Query& query, Response* response) override {
    ++attempts_;
    if (period_ > 0 && attempts_ % period_ == 0) {
      return Status::Unavailable("simulated transport outage");
    }
    return base_->Issue(query, response);
  }

  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override {
    // Sequential fallback keeps the per-attempt counting exact.
    return HiddenDbServer::IssueBatch(queries, responses);
  }

  uint64_t attempts() const { return attempts_; }

 private:
  uint64_t period_;
  uint64_t attempts_ = 0;
};

std::shared_ptr<Dataset> NumericData() {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 600;
  gen.value_range = 300;
  gen.seed = 51;
  return std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
}

TEST(FlakyServerTest, FailsEveryNthAttempt) {
  auto data = NumericData();
  LocalServer base(data, 8);
  FlakyServer flaky(&base, /*period=*/3);
  Response r;
  Query full = Query::FullSpace(base.schema());
  EXPECT_TRUE(flaky.Issue(full, &r).ok());
  EXPECT_TRUE(flaky.Issue(full, &r).ok());
  EXPECT_EQ(flaky.Issue(full, &r).code(), Status::Code::kInternal);
  EXPECT_TRUE(flaky.Issue(full, &r).ok());
  EXPECT_EQ(flaky.attempts(), 4u);
  EXPECT_EQ(flaky.failures(), 1u);
  // Failures happen before the wrapped server: no quota consumed.
  EXPECT_EQ(base.queries_served(), 3u);
}

TEST(FlakyServerTest, PeriodZeroNeverFails) {
  auto data = NumericData();
  LocalServer base(data, 8);
  FlakyServer flaky(&base, 0);
  Response r;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(flaky.Issue(Query::FullSpace(base.schema()), &r).ok());
  }
  EXPECT_EQ(flaky.failures(), 0u);
}

TEST(RetryingServerTest, AbsorbsTransientFailures) {
  auto data = NumericData();
  LocalServer base(data, 8);
  FlakyServer flaky(&base, /*period=*/2);  // every 2nd attempt fails
  RetryingServer retrying(&flaky, /*max_retries=*/3);
  Response r;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(retrying.Issue(Query::FullSpace(base.schema()), &r).ok());
  }
  EXPECT_GT(retrying.retries_performed(), 0u);
}

TEST(RetryingServerTest, GivesUpAfterMaxRetries) {
  auto data = NumericData();
  LocalServer base(data, 8);
  FlakyServer always_down(&base, /*period=*/1);  // every attempt fails
  RetryingServer retrying(&always_down, /*max_retries=*/4);
  Response r;
  Status s = retrying.Issue(Query::FullSpace(base.schema()), &r);
  EXPECT_EQ(s.code(), Status::Code::kInternal);
  EXPECT_EQ(retrying.retries_performed(), 4u);
  EXPECT_EQ(always_down.attempts(), 5u);  // 1 try + 4 retries
}

TEST(RetryingServerTest, RetriesTransportOutages) {
  auto data = NumericData();
  LocalServer base(data, 8);
  OutageServer outage(&base, /*period=*/2);  // every 2nd attempt drops
  RetryingServer retrying(&outage, /*max_retries=*/3);
  Response r;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(retrying.Issue(Query::FullSpace(base.schema()), &r).ok())
        << "kUnavailable is transient and must be retried like kInternal";
  }
  EXPECT_GT(retrying.retries_performed(), 0u);
}

TEST(RetryingServerTest, TransientPredicateCoversBothFlavours) {
  EXPECT_TRUE(Status::Internal("x").IsTransient());
  EXPECT_TRUE(Status::Unavailable("x").IsTransient());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsTransient());
  EXPECT_FALSE(Status::FailedPrecondition("x").IsTransient());
  EXPECT_FALSE(Status::OK().IsTransient());
}

TEST(FailureInjectionTest, TransportOutageInterruptsButStaysResumable) {
  auto data = NumericData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  LocalServer base(data, k);
  OutageServer outage(&base, /*period=*/9);  // no retry layer

  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&outage);
  int interruptions = 0;
  while (!result.status.ok() && interruptions < 10000) {
    ASSERT_TRUE(result.status.IsUnavailable()) << result.status.ToString();
    ASSERT_NE(result.resume_state, nullptr)
        << "a transport outage must leave the crawl resumable";
    ++interruptions;
    result = crawler.Resume(&outage, result.resume_state);
  }
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(interruptions, 0);
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(result.queries_issued, base.queries_served());
}

TEST(RetryingServerTest, DoesNotRetryBudgetExhaustion) {
  auto data = NumericData();
  LocalServer base(data, 8);
  BudgetServer budget(&base, 0);
  RetryingServer retrying(&budget, 5);
  Response r;
  Status s = retrying.Issue(Query::FullSpace(base.schema()), &r);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(retrying.retries_performed(), 0u)
      << "a quota does not come back by asking again";
}

TEST(FailureInjectionTest, CrawlThroughRetryingServerIsExact) {
  auto data = NumericData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  LocalServer base(data, k);
  FlakyServer flaky(&base, /*period=*/5);
  RetryingServer retrying(&flaky, /*max_retries=*/2);

  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&retrying);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_GT(flaky.failures(), 0u);
}

TEST(FailureInjectionTest, UnhandledFailureInterruptsButStaysResumable) {
  auto data = NumericData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  LocalServer base(data, k);
  FlakyServer flaky(&base, /*period=*/7);  // no retry layer

  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&flaky);
  int interruptions = 0;
  while (!result.status.ok() && interruptions < 10000) {
    ASSERT_EQ(result.status.code(), Status::Code::kInternal)
        << result.status.ToString();
    ASSERT_NE(result.resume_state, nullptr)
        << "a transient failure must leave the crawl resumable";
    ++interruptions;
    result = crawler.Resume(&flaky, result.resume_state);
  }
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(interruptions, 0);
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  // Every 7th *attempt* failed, but no issued query was wasted: the work
  // item was simply retried on resume.
  EXPECT_EQ(result.queries_issued, base.queries_served());
}

TEST(FailureInjectionTest, CategoricalCrawlSurvivesFlakiness) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 8, 5};
  gen.n = 700;
  gen.seed = 52;
  auto data = std::make_shared<Dataset>(GenerateSyntheticCategorical(gen));
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  LocalServer base(data, k);
  FlakyServer flaky(&base, /*period=*/4);
  RetryingServer retrying(&flaky, /*max_retries=*/3);

  SliceCoverCrawler crawler(/*lazy=*/true);
  CrawlResult result = crawler.Crawl(&retrying);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

}  // namespace
}  // namespace hdc
