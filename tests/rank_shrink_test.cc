// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/rank_shrink.h"

#include <gtest/gtest.h>

#include <memory>

#include "fixed_priority_policy.h"
#include "gen/synthetic.h"
#include "server/local_server.h"
#include "test_util.h"

namespace hdc {
namespace {

using testing_util::ExpectExactExtraction;
using testing_util::FixedPriorityPolicy;

TEST(RankShrinkTest, RejectsCategoricalSchema) {
  RankShrink crawler;
  EXPECT_FALSE(crawler.ValidateSchema(*Schema::Categorical({3})).ok());
  EXPECT_TRUE(crawler.ValidateSchema(*Schema::Numeric(2)).ok());
}

TEST(RankShrinkTest, WorksOnUnboundedDomains) {
  SchemaPtr schema = Schema::Numeric(1);
  auto data = std::make_shared<Dataset>(schema);
  for (Value v : {-1000000, -5, 0, 3, 3, 999999999}) data->Add(Tuple({v}));
  LocalServer server(data, /*k=*/2);
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

// The paper's running example (Figure 3): k = 4,
// D = {10, 20, 30, 35, 45, 55, 55, 55}. Priorities are arranged so the
// server answers q1 with {t4, t6, t7, t8} and q2 with {t1, t2, t4, t5},
// exactly as in Section 2.2. The algorithm must finish with 6 queries:
// q1 (overflow), 3-way split at 55; q2 (overflow), 2-way split at 20;
// then q3, q4, q5, q6 all resolved.
TEST(RankShrinkTest, PaperFigure3Example) {
  SchemaPtr schema = Schema::Numeric(1);
  auto data = std::make_shared<Dataset>(schema);
  //            t1  t2  t3  t4  t5  t6  t7  t8
  for (Value v : {10, 20, 30, 35, 45, 55, 55, 55}) data->Add(Tuple({v}));
  // Top-4 priorities: t4, t6, t7, t8. Among {t1..t5}, t3 is lowest so q2
  // returns {t1, t2, t4, t5}.
  auto policy = std::make_unique<FixedPriorityPolicy>(
      std::vector<uint64_t>{50, 51, 10, 100, 52, 101, 102, 103});

  LocalServer server(data, /*k=*/4, std::move(policy));
  RankShrink crawler;
  CrawlOptions options;
  options.record_trace = true;
  CrawlResult result = crawler.Crawl(&server, options);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(result.queries_issued, 6u);

  int overflows = 0, resolved = 0;
  for (const TraceEntry& e : result.trace) {
    e.resolved ? ++resolved : ++overflows;
  }
  EXPECT_EQ(overflows, 2);
  EXPECT_EQ(resolved, 4);
}

// A 2-d instance in the spirit of Figure 4: duplicates concentrated on the
// vertical line A1 = 80 force a 3-way split whose middle slab is settled as
// a 1-d problem on A2.
TEST(RankShrinkTest, TwoDimensionalWithDuplicateColumn) {
  SchemaPtr schema = Schema::Numeric(2);
  auto data = std::make_shared<Dataset>(schema);
  // Six tuples on the line A1=80 with distinct A2, four off-line tuples.
  for (Value a2 : {5, 15, 25, 35, 45, 55}) data->Add(Tuple({80, a2}));
  data->Add(Tuple({10, 50}));
  data->Add(Tuple({30, 20}));
  data->Add(Tuple({60, 40}));
  data->Add(Tuple({95, 60}));
  LocalServer server(data, /*k=*/4);
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

TEST(RankShrinkTest, HandlesAllIdenticalTuples) {
  SchemaPtr schema = Schema::Numeric(1);
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 7; ++i) data->Add(Tuple({42}));
  LocalServer server(data, /*k=*/8);
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.extracted.size(), 7u);
  EXPECT_EQ(result.queries_issued, 1u);  // the first query resolves
}

TEST(RankShrinkTest, DuplicateSlabJustBelowK) {
  SchemaPtr schema = Schema::Numeric(1);
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 4; ++i) data->Add(Tuple({7}));  // multiplicity == k
  for (Value v = 100; v < 120; ++v) data->Add(Tuple({v}));
  LocalServer server(data, /*k=*/4);
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

TEST(RankShrinkTest, DetectsUnsolvableInstance) {
  SchemaPtr schema = Schema::Numeric(1);
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 5; ++i) data->Add(Tuple({7}));  // multiplicity k+1
  LocalServer server(data, /*k=*/4);
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  EXPECT_TRUE(result.status.IsUnsolvable()) << result.status.ToString();
}

TEST(RankShrinkTest, SmallKValues) {
  // k < 4 makes Case 1 unreachable (every split is 3-way); the algorithm
  // must still terminate and be exact.
  for (uint64_t k : {1u, 2u, 3u}) {
    SyntheticNumericOptions gen;
    gen.d = 2;
    gen.n = 60;
    gen.value_range = 40;
    gen.seed = 90 + k;
    Dataset data = GenerateSyntheticNumeric(gen);
    if (data.MaxPointMultiplicity() > k) continue;
    RankShrink crawler;
    ExpectExactExtraction(&crawler, data, k);
  }
}

TEST(RankShrinkTest, CostWithinTheorem1Bound) {
  // Lemma 2: cost <= alpha * d * n / k with alpha = 20 (the proof's
  // constant); allow headroom for the +1-ish terms on small inputs.
  for (size_t d : {1u, 2u, 3u}) {
    SyntheticNumericOptions gen;
    gen.d = d;
    gen.n = 4000;
    gen.value_range = 2000;
    gen.value_skew = 0.4;  // some ties to exercise 3-way splits
    gen.seed = 7 * d + 1;
    Dataset data = GenerateSyntheticNumeric(gen);
    const uint64_t k = 64;
    ASSERT_LE(data.MaxPointMultiplicity(), k);

    RankShrink crawler;
    CrawlResult result = ExpectExactExtraction(&crawler, data, k);
    const double bound =
        20.0 * static_cast<double>(d) * static_cast<double>(gen.n) /
            static_cast<double>(k) +
        8.0 * static_cast<double>(d) + 8.0;
    EXPECT_LE(static_cast<double>(result.queries_issued), bound)
        << "d=" << d;
  }
}

TEST(RankShrinkTest, AblatedFractionsStillExact) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 800;
  gen.value_range = 300;
  gen.value_skew = 0.8;
  gen.seed = 55;
  Dataset data = GenerateSyntheticNumeric(gen);
  const uint64_t k = 16;
  ASSERT_LE(data.MaxPointMultiplicity(), k);

  for (double rank_fraction : {0.25, 0.5, 0.75}) {
    for (double three_way_fraction : {0.0, 0.125, 0.25}) {
      RankShrinkOptions options;
      options.rank_fraction = rank_fraction;
      options.three_way_fraction = three_way_fraction;
      RankShrink crawler(options);
      ExpectExactExtraction(&crawler, data, k);
    }
  }
}

TEST(RankShrinkTest, StateAlgorithmTag) {
  RankShrinkState state(Schema::Numeric(1));
  EXPECT_EQ(state.algorithm(), "rank-shrink");
  EXPECT_TRUE(state.Finished());
}

}  // namespace
}  // namespace hdc
