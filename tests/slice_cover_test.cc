// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/slice_cover.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "gen/synthetic.h"
#include "paper_categorical_example.h"
#include "server/local_server.h"
#include "test_util.h"

namespace hdc {
namespace {

using testing_util::ExpectExactExtraction;
using testing_util::PaperFigure5Dataset;

TEST(SliceCoverTest, RejectsNonCategoricalSchemas) {
  SliceCoverCrawler eager(false), lazy(true);
  EXPECT_FALSE(eager.ValidateSchema(*Schema::Numeric(1)).ok());
  EXPECT_FALSE(lazy.ValidateSchema(*Schema::Numeric(1)).ok());
  EXPECT_TRUE(eager.ValidateSchema(*Schema::Categorical({4, 4})).ok());
}

TEST(SliceCoverTest, Names) {
  EXPECT_EQ(SliceCoverCrawler(false).name(), "slice-cover");
  EXPECT_EQ(SliceCoverCrawler(true).name(), "lazy-slice-cover");
}

// Section 3.2's walk of Figures 5-6: the preprocessing phase issues all 8
// slice queries; extended-DFS then answers everything from the lookup table
// ("No query is ever issued to the server in the entire process").
TEST(SliceCoverTest, PaperFigure6EightQueriesTotal) {
  auto data = PaperFigure5Dataset();
  LocalServer server(data, testing_util::kPaperFigure5K);
  SliceCoverCrawler crawler(/*lazy=*/false);
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(result.queries_issued, 8u);  // Sigma U_i = 4 + 4
}

TEST(SliceCoverTest, PaperFigure6LazyAlsoEightQueries) {
  // On this example every slice of both attributes is eventually needed, so
  // lazy costs the same 8 queries.
  auto data = PaperFigure5Dataset();
  LocalServer server(data, testing_util::kPaperFigure5K);
  SliceCoverCrawler crawler(/*lazy=*/true);
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(result.queries_issued, 8u);
}

TEST(SliceCoverTest, LazySkipsUnneededSlices) {
  // No A1-slice overflows, so lazy never touches A2's slices: U1 = 3
  // queries versus the eager U1 + U2 = 53.
  SchemaPtr schema = Schema::Categorical({3, 50});
  auto data = std::make_shared<Dataset>(schema);
  for (Value v = 1; v <= 6; ++v) data->Add(Tuple({1 + v % 3, v}));
  const uint64_t k = 5;

  LocalServer eager_server(data, k);
  SliceCoverCrawler eager(/*lazy=*/false);
  CrawlResult eager_result = eager.Crawl(&eager_server);
  ASSERT_TRUE(eager_result.status.ok());
  EXPECT_EQ(eager_result.queries_issued, 53u);

  LocalServer lazy_server(data, k);
  SliceCoverCrawler lazy(/*lazy=*/true);
  CrawlResult lazy_result = lazy.Crawl(&lazy_server);
  ASSERT_TRUE(lazy_result.status.ok());
  EXPECT_EQ(lazy_result.queries_issued, 3u);

  EXPECT_TRUE(Dataset::MultisetEquals(eager_result.extracted, *data));
  EXPECT_TRUE(Dataset::MultisetEquals(lazy_result.extracted, *data));
}

TEST(SliceCoverTest, SingleAttributeCostsExactlyU1) {
  // Lemma 4 (d = 1): slice-cover terminates right after preprocessing with
  // U1 queries.
  SchemaPtr schema = Schema::Categorical({12});
  auto data = std::make_shared<Dataset>(schema);
  for (Value v = 1; v <= 12; ++v) {
    for (Value c = 0; c < (v % 4); ++c) data->Add(Tuple({v}));
  }
  LocalServer server(data, /*k=*/3);
  SliceCoverCrawler crawler(/*lazy=*/false);
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(result.queries_issued, 12u);
}

TEST(SliceCoverTest, CostWithinLemma4Bound) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {8, 12, 20};
  gen.n = 2500;
  gen.zipf_s = 0.9;
  gen.seed = 31;
  Dataset data = GenerateSyntheticCategorical(gen);
  const uint64_t k = 64;
  ASSERT_LE(data.MaxPointMultiplicity(), k);

  SliceCoverCrawler crawler(/*lazy=*/false);
  CrawlResult result = ExpectExactExtraction(&crawler, data, k);

  const double n_over_k =
      std::ceil(static_cast<double>(gen.n) / static_cast<double>(k));
  double sigma_u = 0, sigma_min = 0;
  for (uint64_t u : gen.domain_sizes) {
    sigma_u += static_cast<double>(u);
    sigma_min += std::min(static_cast<double>(u), n_over_k);
  }
  EXPECT_LE(static_cast<double>(result.queries_issued),
            sigma_u + n_over_k * sigma_min);
}

TEST(SliceCoverTest, LazyNeverCostsMoreThanEager) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    SyntheticCategoricalOptions gen;
    gen.domain_sizes = {5, 7, 9};
    gen.n = 800;
    gen.zipf_s = 1.1;
    gen.seed = seed;
    Dataset data = GenerateSyntheticCategorical(gen);
    const uint64_t k = 8;
    if (data.MaxPointMultiplicity() > k) continue;

    SliceCoverCrawler eager(false), lazy(true);
    CrawlResult eager_result = ExpectExactExtraction(&eager, data, k);
    CrawlResult lazy_result = ExpectExactExtraction(&lazy, data, k);
    EXPECT_LE(lazy_result.queries_issued, eager_result.queries_issued)
        << "seed " << seed;
  }
}

TEST(SliceCoverTest, DetectsUnsolvableInstance) {
  SchemaPtr schema = Schema::Categorical({2, 2});
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 4; ++i) data->Add(Tuple({2, 2}));
  LocalServer server(data, /*k=*/3);
  for (bool lazy : {false, true}) {
    SliceCoverCrawler crawler(lazy);
    CrawlResult result = crawler.Crawl(&server);
    EXPECT_TRUE(result.status.IsUnsolvable()) << "lazy=" << lazy;
  }
}

TEST(SliceCoverTest, EmptyDataset) {
  SchemaPtr schema = Schema::Categorical({4, 4});
  auto data = std::make_shared<Dataset>(schema);
  LocalServer server(data, /*k=*/3);
  SliceCoverCrawler lazy(/*lazy=*/true);
  CrawlResult result = lazy.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.extracted.size(), 0u);
  EXPECT_EQ(result.queries_issued, 4u);  // the A1 slices; none overflow
}

TEST(SliceCoverTest, DeepSchemaExactExtraction) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {3, 3, 3, 3, 3};
  gen.n = 700;
  gen.zipf_s = 0.6;
  gen.seed = 77;
  Dataset data = GenerateSyntheticCategorical(gen);
  const uint64_t k = 16;
  ASSERT_LE(data.MaxPointMultiplicity(), k);
  for (bool lazy : {false, true}) {
    SliceCoverCrawler crawler(lazy);
    ExpectExactExtraction(&crawler, data, k);
  }
}

}  // namespace
}  // namespace hdc
