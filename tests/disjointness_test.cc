// Copyright (c) hdc authors. Apache-2.0 license.
//
// Structural invariant behind the collectors' correctness: for the
// algorithms that collect every resolved response (binary-shrink,
// rank-shrink, DFS), the resolved queries' regions are pairwise disjoint —
// each tuple is confirmed by exactly one query. (Slice-cover collects
// *filtered* sub-bags of slice responses, so its resolved regions may
// overlap by design; its exactness is covered by the multiset tests.)
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/binary_shrink.h"
#include "core/dfs_crawler.h"
#include "core/rank_shrink.h"
#include "gen/synthetic.h"
#include "server/decorators.h"
#include "server/local_server.h"

namespace hdc {
namespace {

void CheckResolvedDisjoint(Crawler* crawler,
                           std::shared_ptr<const Dataset> data, uint64_t k) {
  LocalServer base(data, k);
  std::vector<Query> resolved;
  ObservedServer observed(&base,
                          [&resolved](const Query& q, const Response& r) {
                            if (r.resolved()) resolved.push_back(q);
                          });
  CrawlResult result = crawler->Crawl(&observed);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_TRUE(Dataset::MultisetEquals(result.extracted, *data));

  for (size_t i = 0; i < resolved.size(); ++i) {
    for (size_t j = i + 1; j < resolved.size(); ++j) {
      ASSERT_FALSE(resolved[i].Intersects(resolved[j]))
          << crawler->name() << ": overlapping resolved queries\n  "
          << resolved[i].ToString() << "\n  " << resolved[j].ToString();
    }
  }
}

TEST(DisjointnessTest, RankShrinkResolvedRegionsPartition) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 500;
  gen.value_range = 120;
  gen.value_skew = 0.7;
  gen.seed = 81;
  auto data = std::make_shared<const Dataset>(GenerateSyntheticNumeric(gen));
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  RankShrink crawler;
  CheckResolvedDisjoint(&crawler, data, k);
}

TEST(DisjointnessTest, BinaryShrinkResolvedRegionsPartition) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 300;
  gen.value_range = 64;
  gen.seed = 82;
  auto data = std::make_shared<const Dataset>(GenerateSyntheticNumeric(gen));
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  BinaryShrink crawler;
  CheckResolvedDisjoint(&crawler, data, k);
}

TEST(DisjointnessTest, DfsResolvedRegionsPartition) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {5, 6, 4};
  gen.n = 400;
  gen.seed = 83;
  auto data =
      std::make_shared<const Dataset>(GenerateSyntheticCategorical(gen));
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  DfsCrawler crawler;
  CheckResolvedDisjoint(&crawler, data, k);
}

TEST(DisjointnessTest, RankShrinkUnderAdversarialPolicy) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 400;
  gen.value_range = 90;
  gen.seed = 84;
  auto data_mutable = GenerateSyntheticNumeric(gen);
  auto data = std::make_shared<const Dataset>(std::move(data_mutable));
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

  LocalServer base(data, k, MakeIdOrderPolicy(false));
  std::vector<Query> resolved;
  ObservedServer observed(&base,
                          [&resolved](const Query& q, const Response& r) {
                            if (r.resolved()) resolved.push_back(q);
                          });
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&observed);
  ASSERT_TRUE(result.status.ok());
  for (size_t i = 0; i < resolved.size(); ++i) {
    for (size_t j = i + 1; j < resolved.size(); ++j) {
      ASSERT_FALSE(resolved[i].Intersects(resolved[j]));
    }
  }
}

}  // namespace
}  // namespace hdc
