// Copyright (c) hdc authors. Apache-2.0 license.
//
// Token escaping: the whitespace round-trip bug. Attribute names carrying
// spaces, tabs, newlines, or the spec's own delimiters used to shatter the
// schema line of checkpoints and crawl records. The codec must round-trip
// *any* string through a single whitespace-free token, and ambiguous legacy
// (unescaped) input must fail with a typed error, never a silent guess.
#include "util/string_escape.h"

#include <gtest/gtest.h>

#include <string>

#include "data/csv_reader.h"
#include "util/random.h"

namespace hdc {
namespace {

TEST(StringEscapeTest, PlainNamesPassThroughUnchanged) {
  // Backward compatibility: every token the old code produced is its own
  // escaped form, so existing files keep parsing byte-identically.
  for (const std::string s : {"Price", "Make", "a_b-c.d", "x9"}) {
    EXPECT_EQ(EscapeToken(s), s);
    std::string back;
    ASSERT_TRUE(UnescapeToken(s, &back).ok());
    EXPECT_EQ(back, s);
  }
}

TEST(StringEscapeTest, RoundTripsAdversarialStrings) {
  const std::string cases[] = {
      "", " ", "  ", "\t", "\n", "\r\n", "a b", " leading", "trailing ",
      "tab\there", "colon:inside", "comma,inside", "back\\slash",
      "\\s literal", "mix \t:,\\ \n all", ":num:1:2", "\\", "\\\\",
      "name with several words", "\r", "a:b,c d\te\nf\\g",
  };
  for (const std::string& original : cases) {
    const std::string escaped = EscapeToken(original);
    EXPECT_EQ(escaped.find(' '), std::string::npos) << escaped;
    EXPECT_EQ(escaped.find('\t'), std::string::npos) << escaped;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << escaped;
    EXPECT_EQ(escaped.find('\r'), std::string::npos) << escaped;
    EXPECT_EQ(escaped.find(':'), std::string::npos) << escaped;
    EXPECT_EQ(escaped.find(','), std::string::npos) << escaped;
    EXPECT_FALSE(escaped.empty());
    std::string back;
    ASSERT_TRUE(UnescapeToken(escaped, &back).ok()) << escaped;
    EXPECT_EQ(back, original);
  }
}

TEST(StringEscapeTest, RoundTripProperty) {
  const std::string alphabet = "ab:,\\ \t\n\rZ09._-";
  Rng rng(101);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string original;
    const size_t len = rng.UniformU64(12);
    for (size_t i = 0; i < len; ++i) {
      original += alphabet[rng.UniformU64(alphabet.size())];
    }
    const std::string escaped = EscapeToken(original);
    std::string back;
    ASSERT_TRUE(UnescapeToken(escaped, &back).ok())
        << "escaped='" << escaped << "'";
    ASSERT_EQ(back, original) << "escaped='" << escaped << "'";
    // The token survives whitespace-delimited parsing: no separators.
    ASSERT_EQ(escaped.find_first_of(" \t\n\r:,"), std::string::npos);
  }
}

TEST(StringEscapeTest, AmbiguousLegacyTokensAreTypedErrors) {
  // A raw backslash not followed by a known escape is exactly what a
  // legacy (pre-escaping) file would contain; refusing beats guessing.
  std::string out;
  for (const std::string bad : {"\\", "a\\", "\\x", "C\\Users", "\\ "}) {
    Status s = UnescapeToken(bad, &out);
    EXPECT_TRUE(s.IsInvalidArgument()) << bad;
    EXPECT_NE(s.message().find("ambiguous"), std::string::npos)
        << s.ToString();
  }
}

TEST(StringEscapeTest, SchemaSpecRoundTripsHostileNames) {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("body style", 7),
      AttributeSpec::NumericBounded("price, total", 0, 100),
      AttributeSpec::Categorical("tab\tname", 3),
      AttributeSpec::Numeric("colon:name"),
  });
  const std::string spec = FormatSchemaSpec(*schema);
  // The spec stays one line however hostile the names are.
  EXPECT_EQ(spec.find('\n'), std::string::npos);
  SchemaPtr parsed;
  ASSERT_TRUE(ParseSchemaSpec(spec, &parsed).ok()) << spec;
  ASSERT_TRUE(*parsed == *schema) << spec;
  EXPECT_EQ(parsed->attribute(0).name, "body style");
  EXPECT_EQ(parsed->attribute(1).name, "price, total");
  EXPECT_EQ(parsed->attribute(2).name, "tab\tname");
  EXPECT_EQ(parsed->attribute(3).name, "colon:name");
}

TEST(StringEscapeTest, LegacyPlainSchemaSpecStillParses) {
  SchemaPtr parsed;
  ASSERT_TRUE(ParseSchemaSpec("Make:cat:85, Price:num:0:90000", &parsed).ok());
  EXPECT_EQ(parsed->attribute(0).name, "Make");
  EXPECT_EQ(parsed->attribute(1).name, "Price");
}

}  // namespace
}  // namespace hdc
