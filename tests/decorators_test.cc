// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/decorators.h"

#include <gtest/gtest.h>

#include <memory>

#include "server/local_server.h"
#include "server/politeness.h"

namespace hdc {
namespace {

std::shared_ptr<Dataset> TinyData() {
  SchemaPtr schema = Schema::NumericBounded({{0, 100}});
  auto d = std::make_shared<Dataset>(schema);
  for (Value v = 0; v < 20; ++v) d->Add(Tuple({v * 5}));
  return d;
}

TEST(CountingServerTest, CountsForwardedQueries) {
  LocalServer base(TinyData(), 4);
  CountingServer counting(&base);
  Response r;
  Query full = Query::FullSpace(base.schema());
  ASSERT_TRUE(counting.Issue(full, &r).ok());
  ASSERT_TRUE(counting.Issue(full.WithNumericRange(0, 0, 10), &r).ok());
  EXPECT_EQ(counting.queries(), 2u);
  counting.Reset();
  EXPECT_EQ(counting.queries(), 0u);
}

TEST(CountingServerTest, TraceRecordsOutcomes) {
  LocalServer base(TinyData(), 4);
  CountingServer counting(&base, /*keep_trace=*/true);
  Response r;
  Query full = Query::FullSpace(base.schema());
  ASSERT_TRUE(counting.Issue(full, &r).ok());                            // overflow
  ASSERT_TRUE(counting.Issue(full.WithNumericRange(0, 0, 10), &r).ok()); // 3 tuples
  ASSERT_EQ(counting.trace().size(), 2u);
  EXPECT_FALSE(counting.trace()[0].resolved);
  EXPECT_EQ(counting.trace()[0].returned, 4u);
  EXPECT_TRUE(counting.trace()[1].resolved);
  EXPECT_EQ(counting.trace()[1].returned, 3u);
}

TEST(BudgetServerTest, ExhaustsAndRefills) {
  LocalServer base(TinyData(), 4);
  BudgetServer budget(&base, /*max_queries=*/2);
  Response r;
  Query full = Query::FullSpace(base.schema());
  EXPECT_TRUE(budget.Issue(full, &r).ok());
  EXPECT_TRUE(budget.Issue(full, &r).ok());
  EXPECT_EQ(budget.remaining(), 0u);
  Status s = budget.Issue(full, &r);
  EXPECT_TRUE(s.IsResourceExhausted());
  // The refused query must not have reached the base server.
  EXPECT_EQ(base.queries_served(), 2u);

  budget.Refill(1);
  EXPECT_TRUE(budget.Issue(full, &r).ok());
  EXPECT_EQ(base.queries_served(), 3u);
}

TEST(ObservedServerTest, CallbackSeesEveryResponse) {
  LocalServer base(TinyData(), 4);
  int calls = 0;
  uint64_t tuples = 0;
  ObservedServer observed(&base, [&](const Query&, const Response& resp) {
    ++calls;
    tuples += resp.size();
  });
  Response r;
  Query full = Query::FullSpace(base.schema());
  ASSERT_TRUE(observed.Issue(full, &r).ok());
  ASSERT_TRUE(observed.Issue(full.WithNumericRange(0, 0, 10), &r).ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(tuples, 7u);
}

TEST(DecoratorTest, ForwardsMetadata) {
  LocalServer base(TinyData(), 4);
  CountingServer counting(&base);
  BudgetServer budget(&counting, 100);
  EXPECT_EQ(budget.k(), 4u);
  EXPECT_TRUE(*budget.schema() == *base.schema());
}

TEST(PolitenessModelTest, QuotaBoundDominatesWhenTight) {
  PolitenessModel model;
  model.queries_per_day = 1000;
  model.per_query_latency_ms = 1000;  // 1s per query
  auto est = model.EstimateDuration(10000);
  EXPECT_DOUBLE_EQ(est.days_quota_bound, 10.0);
  EXPECT_NEAR(est.hours_latency_bound, 10000.0 / 3600.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.days_total, 10.0);
}

TEST(PolitenessModelTest, LatencyBoundDominatesWithoutQuota) {
  PolitenessModel model;
  model.queries_per_day = 0;  // unlimited
  model.per_query_latency_ms = 2000;
  auto est = model.EstimateDuration(43200);  // 86400s = 1 day of latency
  EXPECT_DOUBLE_EQ(est.days_quota_bound, 0.0);
  EXPECT_NEAR(est.days_total, 1.0, 1e-9);
}

}  // namespace
}  // namespace hdc
