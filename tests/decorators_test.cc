// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/decorators.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "server/local_server.h"
#include "server/politeness.h"

namespace hdc {
namespace {

std::shared_ptr<Dataset> TinyData() {
  SchemaPtr schema = Schema::NumericBounded({{0, 100}});
  auto d = std::make_shared<Dataset>(schema);
  for (Value v = 0; v < 20; ++v) d->Add(Tuple({v * 5}));
  return d;
}

TEST(CountingServerTest, CountsForwardedQueries) {
  LocalServer base(TinyData(), 4);
  CountingServer counting(&base);
  Response r;
  Query full = Query::FullSpace(base.schema());
  ASSERT_TRUE(counting.Issue(full, &r).ok());
  ASSERT_TRUE(counting.Issue(full.WithNumericRange(0, 0, 10), &r).ok());
  EXPECT_EQ(counting.queries(), 2u);
  counting.Reset();
  EXPECT_EQ(counting.queries(), 0u);
}

TEST(CountingServerTest, TraceRecordsOutcomes) {
  LocalServer base(TinyData(), 4);
  CountingServer counting(&base, /*keep_trace=*/true);
  Response r;
  Query full = Query::FullSpace(base.schema());
  ASSERT_TRUE(counting.Issue(full, &r).ok());                            // overflow
  ASSERT_TRUE(counting.Issue(full.WithNumericRange(0, 0, 10), &r).ok()); // 3 tuples
  ASSERT_EQ(counting.trace().size(), 2u);
  EXPECT_FALSE(counting.trace()[0].resolved);
  EXPECT_EQ(counting.trace()[0].returned, 4u);
  EXPECT_TRUE(counting.trace()[1].resolved);
  EXPECT_EQ(counting.trace()[1].returned, 3u);
}

TEST(BudgetServerTest, ExhaustsAndRefills) {
  LocalServer base(TinyData(), 4);
  BudgetServer budget(&base, /*max_queries=*/2);
  Response r;
  Query full = Query::FullSpace(base.schema());
  EXPECT_TRUE(budget.Issue(full, &r).ok());
  EXPECT_TRUE(budget.Issue(full, &r).ok());
  EXPECT_EQ(budget.remaining(), 0u);
  Status s = budget.Issue(full, &r);
  EXPECT_TRUE(s.IsResourceExhausted());
  // The refused query must not have reached the base server.
  EXPECT_EQ(base.queries_served(), 2u);

  budget.Refill(1);
  EXPECT_TRUE(budget.Issue(full, &r).ok());
  EXPECT_EQ(base.queries_served(), 3u);
}

TEST(ObservedServerTest, CallbackSeesEveryResponse) {
  LocalServer base(TinyData(), 4);
  int calls = 0;
  uint64_t tuples = 0;
  ObservedServer observed(&base, [&](const Query&, const Response& resp) {
    ++calls;
    tuples += resp.size();
  });
  Response r;
  Query full = Query::FullSpace(base.schema());
  ASSERT_TRUE(observed.Issue(full, &r).ok());
  ASSERT_TRUE(observed.Issue(full.WithNumericRange(0, 0, 10), &r).ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(tuples, 7u);
}

TEST(DecoratorTest, ForwardsMetadata) {
  LocalServer base(TinyData(), 4);
  CountingServer counting(&base);
  BudgetServer budget(&counting, 100);
  EXPECT_EQ(budget.k(), 4u);
  EXPECT_TRUE(*budget.schema() == *base.schema());
}

// --- Batch semantics -------------------------------------------------------

std::vector<Query> ThreeDisjointRanges(const SchemaPtr& schema) {
  Query full = Query::FullSpace(schema);
  return {full.WithNumericRange(0, 0, 30), full.WithNumericRange(0, 31, 60),
          full.WithNumericRange(0, 61, 100)};
}

TEST(BatchContractTest, SingleElementBatchEqualsIssue) {
  LocalServer base(TinyData(), 4);
  Query q = Query::FullSpace(base.schema()).WithNumericRange(0, 0, 10);
  Response single;
  ASSERT_TRUE(base.Issue(q, &single).ok());

  LocalServer fresh(TinyData(), 4);
  std::vector<Response> batched;
  ASSERT_TRUE(fresh.IssueBatch({q}, &batched).ok());
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0].overflow, single.overflow);
  ASSERT_EQ(batched[0].size(), single.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(batched[0].tuples[i].hidden_id, single.tuples[i].hidden_id);
  }
}

TEST(CountingServerTest, BatchCountsPerMember) {
  LocalServer base(TinyData(), 4);
  CountingServer counting(&base, /*keep_trace=*/true);
  std::vector<Response> responses;
  ASSERT_TRUE(
      counting.IssueBatch(ThreeDisjointRanges(base.schema()), &responses)
          .ok());
  EXPECT_EQ(counting.queries(), 3u);
  ASSERT_EQ(counting.trace().size(), 3u);
  // Trace records appear in issue order: member i describes responses[i].
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(counting.trace()[i].resolved, responses[i].resolved());
    EXPECT_EQ(counting.trace()[i].returned, responses[i].size());
  }
}

TEST(BudgetServerTest, BatchTruncatesAtTheBudgetBoundary) {
  LocalServer base(TinyData(), 4);
  BudgetServer budget(&base, /*max_queries=*/2);
  std::vector<Response> responses;
  Status s = budget.IssueBatch(ThreeDisjointRanges(base.schema()),
                               &responses);
  EXPECT_TRUE(s.IsResourceExhausted());
  // The affordable prefix was answered and paid for; the third member
  // never reached the base server.
  EXPECT_EQ(responses.size(), 2u);
  EXPECT_EQ(budget.remaining(), 0u);
  EXPECT_EQ(base.queries_served(), 2u);

  // A refill lets the caller resubmit exactly the unanswered suffix.
  budget.Refill(5);
  std::vector<Query> suffix = {ThreeDisjointRanges(base.schema())[2]};
  ASSERT_TRUE(budget.IssueBatch(suffix, &responses).ok());
  EXPECT_EQ(responses.size(), 1u);
  EXPECT_EQ(base.queries_served(), 3u);
  EXPECT_EQ(budget.remaining(), 4u);
}

TEST(BudgetServerTest, ExhaustedBudgetRefusesWholeBatch) {
  LocalServer base(TinyData(), 4);
  BudgetServer budget(&base, 0);
  std::vector<Response> responses;
  Status s = budget.IssueBatch(ThreeDisjointRanges(base.schema()),
                               &responses);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_TRUE(responses.empty());
  EXPECT_EQ(base.queries_served(), 0u);
}

TEST(FlakyServerTest, BatchFailsAtThePeriodicMember) {
  LocalServer base(TinyData(), 4);
  FlakyServer flaky(&base, /*period=*/3);
  std::vector<Response> responses;
  // Members 1 and 2 are clean attempts; member 3 trips the period.
  Status s = flaky.IssueBatch(ThreeDisjointRanges(base.schema()),
                              &responses);
  EXPECT_EQ(s.code(), Status::Code::kInternal);
  EXPECT_EQ(responses.size(), 2u);
  EXPECT_EQ(flaky.attempts(), 3u);
  EXPECT_EQ(flaky.failures(), 1u);
  // The dropped connection consumed no quota.
  EXPECT_EQ(base.queries_served(), 2u);

  // Next batch starts a fresh attempt count; period 3 trips again on its
  // third member.
  ASSERT_EQ(flaky.IssueBatch(ThreeDisjointRanges(base.schema()), &responses)
                .code(),
            Status::Code::kInternal);
  EXPECT_EQ(responses.size(), 2u);
  EXPECT_EQ(flaky.failures(), 2u);
}

TEST(FlakyServerTest, BatchAttemptAccountingMatchesIssueWhenBaseRefuses) {
  // A one-element batch over a refusing base must leave the same attempt
  // counter as Issue: the refused member reached the flaky layer, so its
  // attempt counts, and the next periodic failure must fire at the same
  // point in both conversations.
  LocalServer base_a(TinyData(), 4);
  BudgetServer empty_a(&base_a, 0);
  FlakyServer sequential(&empty_a, /*period=*/2);
  Response r;
  Query full = Query::FullSpace(base_a.schema());
  EXPECT_TRUE(sequential.Issue(full, &r).IsResourceExhausted());
  EXPECT_EQ(sequential.attempts(), 1u);

  LocalServer base_b(TinyData(), 4);
  BudgetServer empty_b(&base_b, 0);
  FlakyServer batched(&empty_b, /*period=*/2);
  std::vector<Response> responses;
  EXPECT_TRUE(batched.IssueBatch({full}, &responses).IsResourceExhausted());
  EXPECT_TRUE(responses.empty());
  EXPECT_EQ(batched.attempts(), sequential.attempts());

  // After a refill both conversations hit the period-2 drop on the very
  // next attempt.
  empty_a.Refill(10);
  empty_b.Refill(10);
  EXPECT_EQ(sequential.Issue(full, &r).code(), Status::Code::kInternal);
  EXPECT_EQ(batched.IssueBatch({full}, &responses).code(),
            Status::Code::kInternal);
  EXPECT_EQ(sequential.failures(), 1u);
  EXPECT_EQ(batched.failures(), 1u);
}

TEST(RetryingServerTest, BatchRetriesTheFailingMemberInPlace) {
  LocalServer base(TinyData(), 4);
  FlakyServer flaky(&base, /*period=*/3);
  RetryingServer retrying(&flaky, /*max_retries=*/2,
                          /*keep_attempts_trace=*/true);
  std::vector<Response> responses;
  ASSERT_TRUE(
      retrying.IssueBatch(ThreeDisjointRanges(base.schema()), &responses)
          .ok());
  EXPECT_EQ(responses.size(), 3u);
  EXPECT_EQ(retrying.retries_performed(), 1u);
  // attempts_trace distinguishes the retried member from clean ones.
  ASSERT_EQ(retrying.attempts_trace().size(), 3u);
  EXPECT_EQ(retrying.attempts_trace()[0], 1u);
  EXPECT_EQ(retrying.attempts_trace()[1], 1u);
  EXPECT_EQ(retrying.attempts_trace()[2], 2u);  // dropped once, then clean
  EXPECT_EQ(retrying.last_attempts(), 2u);
}

TEST(RetryingServerTest, AttemptsSurfacePerQueryOnIssueToo) {
  LocalServer base(TinyData(), 4);
  FlakyServer flaky(&base, /*period=*/2);
  RetryingServer retrying(&flaky, /*max_retries=*/3,
                          /*keep_attempts_trace=*/true);
  Response r;
  Query full = Query::FullSpace(base.schema());
  ASSERT_TRUE(retrying.Issue(full, &r).ok());  // clean (attempt 1)
  EXPECT_EQ(retrying.last_attempts(), 1u);
  ASSERT_TRUE(retrying.Issue(full, &r).ok());  // attempt 2 fails, 3 clean
  EXPECT_EQ(retrying.last_attempts(), 2u);
  ASSERT_EQ(retrying.attempts_trace(),
            (std::vector<uint32_t>{1u, 2u}));
}

// Which wrapper order meters retries: counting *below* the retry layer
// sees every attempt; counting *above* it sees only ultimate successes.
TEST(RetryingServerTest, WrapperOrderDecidesWhetherRetriesAreMetered) {
  // RetryingServer(CountingServer(FlakyServer(base))): every forwarded
  // attempt that reaches the flaky transport cleanly is counted.
  {
    LocalServer base(TinyData(), 4);
    FlakyServer flaky(&base, /*period=*/2);
    CountingServer counting(&flaky);
    RetryingServer retrying(&counting, /*max_retries=*/3);
    Response r;
    Query full = Query::FullSpace(base.schema());
    ASSERT_TRUE(retrying.Issue(full, &r).ok());
    ASSERT_TRUE(retrying.Issue(full, &r).ok());
    // 3 attempts total (1 clean, 1 dropped, 1 clean); the drop failed
    // before the counting layer's base answered, so 2 count.
    EXPECT_EQ(counting.queries(), 2u);
    EXPECT_EQ(flaky.attempts(), 3u);
  }
  // CountingServer(RetryingServer(FlakyServer(base))): retries are
  // absorbed below; each query counts once however many attempts it took.
  {
    LocalServer base(TinyData(), 4);
    FlakyServer flaky(&base, /*period=*/2);
    RetryingServer retrying(&flaky, /*max_retries=*/3);
    CountingServer counting(&retrying);
    Response r;
    Query full = Query::FullSpace(base.schema());
    ASSERT_TRUE(counting.Issue(full, &r).ok());
    ASSERT_TRUE(counting.Issue(full, &r).ok());
    EXPECT_EQ(counting.queries(), 2u);
    EXPECT_EQ(flaky.attempts(), 3u);
  }
}

TEST(QueryLogServerTest, BatchMembersAreLoggedInIssueOrder) {
  LocalServer base(TinyData(), 4);
  std::ostringstream batched_log;
  QueryLogServer batched(&base, &batched_log);
  std::vector<Response> responses;
  ASSERT_TRUE(
      batched.IssueBatch(ThreeDisjointRanges(base.schema()), &responses)
          .ok());
  EXPECT_EQ(batched.logged(), 3u);

  LocalServer fresh(TinyData(), 4);
  std::ostringstream sequential_log;
  QueryLogServer sequential(&fresh, &sequential_log);
  Response r;
  for (const Query& q : ThreeDisjointRanges(fresh.schema())) {
    ASSERT_TRUE(sequential.Issue(q, &r).ok());
  }
  EXPECT_EQ(batched_log.str(), sequential_log.str())
      << "a batch must leave the same audit trail as the sequential "
      << "conversation";
}

TEST(ObservedServerTest, BatchCallbackFiresPerMemberInOrder) {
  LocalServer base(TinyData(), 4);
  std::vector<size_t> sizes;
  ObservedServer observed(&base, [&](const Query&, const Response& resp) {
    sizes.push_back(resp.size());
  });
  std::vector<Response> responses;
  ASSERT_TRUE(
      observed.IssueBatch(ThreeDisjointRanges(base.schema()), &responses)
          .ok());
  ASSERT_EQ(sizes.size(), 3u);
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(sizes[i], responses[i].size());
  }
}

TEST(BatchContractTest, StackedDecoratorsComposeOverBatches) {
  // The canonical metered stack, batched: budget truncation above,
  // counting below, audit log at the base.
  LocalServer base(TinyData(), 4);
  std::ostringstream log;
  QueryLogServer logged(&base, &log);
  CountingServer counting(&logged, /*keep_trace=*/true);
  BudgetServer budget(&counting, /*max_queries=*/2);

  std::vector<Response> responses;
  Status s = budget.IssueBatch(ThreeDisjointRanges(base.schema()),
                               &responses);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(responses.size(), 2u);
  EXPECT_EQ(counting.queries(), 2u);
  EXPECT_EQ(logged.logged(), 2u);
  EXPECT_EQ(base.queries_served(), 2u);
}

TEST(PolitenessModelTest, QuotaBoundDominatesWhenTight) {
  PolitenessModel model;
  model.queries_per_day = 1000;
  model.per_query_latency_ms = 1000;  // 1s per query
  auto est = model.EstimateDuration(10000);
  EXPECT_DOUBLE_EQ(est.days_quota_bound, 10.0);
  EXPECT_NEAR(est.hours_latency_bound, 10000.0 / 3600.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.days_total, 10.0);
}

TEST(PolitenessModelTest, LatencyBoundDominatesWithoutQuota) {
  PolitenessModel model;
  model.queries_per_day = 0;  // unlimited
  model.per_query_latency_ms = 2000;
  auto est = model.EstimateDuration(43200);  // 86400s = 1 day of latency
  EXPECT_DOUBLE_EQ(est.days_quota_bound, 0.0);
  EXPECT_NEAR(est.days_total, 1.0, 1e-9);
}

}  // namespace
}  // namespace hdc
