// Copyright (c) hdc authors. Apache-2.0 license.
//
// The dataset simulacra must reproduce the structural facts of Figure 9 and
// Section 6 that the experiments depend on.
#include <gtest/gtest.h>

#include "gen/adult_gen.h"
#include "gen/nsf_gen.h"
#include "gen/synthetic.h"
#include "gen/yahoo_gen.h"

namespace hdc {
namespace {

TEST(AdultGeneratorTest, SchemaMatchesFigure9) {
  AdultGeneratorOptions options;
  options.num_tuples = 3000;  // smaller instance for unit tests
  Dataset d = GenerateAdult(options);
  const Schema& schema = *d.schema();
  ASSERT_EQ(schema.num_attributes(), 14u);
  const std::vector<std::pair<std::string, uint64_t>> expected_cat = {
      {"Sex", 2},     {"Race", 5},      {"Rel", 6},  {"Edu", 6},
      {"Marital", 7}, {"Wrk-class", 8}, {"Occ", 14}, {"Country", 41}};
  for (size_t i = 0; i < expected_cat.size(); ++i) {
    EXPECT_EQ(schema.attribute(i).name, expected_cat[i].first);
    ASSERT_TRUE(schema.IsCategorical(i));
    EXPECT_EQ(schema.domain_size(i), expected_cat[i].second);
  }
  const std::vector<std::string> expected_num = {
      "Edu-num", "Age", "Wrk-hr", "Cap-loss", "Cap-gain", "Fnalwgt"};
  for (size_t i = 0; i < expected_num.size(); ++i) {
    EXPECT_EQ(schema.attribute(8 + i).name, expected_num[i]);
    EXPECT_TRUE(schema.IsNumeric(8 + i));
  }
  EXPECT_EQ(d.size(), 3000u);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(AdultGeneratorTest, DefaultCardinalityMatchesPaper) {
  Dataset d = GenerateAdult();
  EXPECT_EQ(d.size(), 45222u);
}

TEST(AdultGeneratorTest, CategoricalDomainsFullyCovered) {
  Dataset d = GenerateAdult();
  auto stats = d.ComputeAttributeStats();
  for (size_t a = 0; a < 8; ++a) {
    EXPECT_EQ(stats[a].distinct_values, d.schema()->domain_size(a))
        << stats[a].name;
  }
}

TEST(AdultGeneratorTest, NumericDistinctOrderingMatchesFigure10b) {
  // Section 6 selects attributes by distinct count: FNALWGT > CAP-GAIN >
  // CAP-LOSS > WRK-HR > AGE > EDU-NUM.
  Dataset d = GenerateAdultNumeric();
  ASSERT_EQ(d.schema()->num_attributes(), 6u);
  auto stats = d.ComputeAttributeStats();
  // Attribute order: Edu-num, Age, Wrk-hr, Cap-loss, Cap-gain, Fnalwgt.
  EXPECT_GT(stats[5].distinct_values, stats[4].distinct_values);  // fnl > cg
  EXPECT_GT(stats[4].distinct_values, stats[3].distinct_values);  // cg > cl
  EXPECT_GT(stats[3].distinct_values, stats[2].distinct_values);  // cl > hr
  EXPECT_GT(stats[2].distinct_values, stats[1].distinct_values);  // hr > age
  EXPECT_GT(stats[1].distinct_values, stats[0].distinct_values);  // age > edu
}

TEST(AdultGeneratorTest, CapitalColumnsAreMostlyZero) {
  Dataset d = GenerateAdult();
  size_t zero_loss = 0, zero_gain = 0;
  for (const Tuple& t : d.tuples()) {
    zero_loss += t[11] == 0;
    zero_gain += t[12] == 0;
  }
  EXPECT_GT(static_cast<double>(zero_loss) / d.size(), 0.9);
  EXPECT_GT(static_cast<double>(zero_gain) / d.size(), 0.85);
}

TEST(AdultGeneratorTest, CrawlableAtFigure12Ks) {
  Dataset d = GenerateAdult();
  EXPECT_LE(d.MaxPointMultiplicity(), 64u)
      << "Figure 12 runs Adult from k = 64";
}

TEST(AdultGeneratorTest, DeterministicPerSeed) {
  AdultGeneratorOptions options;
  options.num_tuples = 500;
  Dataset a = GenerateAdult(options);
  Dataset b = GenerateAdult(options);
  EXPECT_TRUE(Dataset::MultisetEquals(a, b));
  options.seed = 999;
  Dataset c = GenerateAdult(options);
  EXPECT_FALSE(Dataset::MultisetEquals(a, c));
}

TEST(NsfGeneratorTest, SchemaMatchesFigure9) {
  Dataset d = GenerateNsf();
  const Schema& schema = *d.schema();
  ASSERT_EQ(schema.num_attributes(), 9u);
  EXPECT_TRUE(schema.all_categorical());
  const std::vector<std::pair<std::string, uint64_t>> expected = {
      {"Amnt", 5},      {"Instru", 8},   {"Field", 49},
      {"PI-state", 58}, {"NSF-org", 58}, {"Prog-mgr", 654},
      {"City", 1093},   {"PI-org", 3110}, {"PI-name", 29042}};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(schema.attribute(i).name, expected[i].first);
    EXPECT_EQ(schema.domain_size(i), expected[i].second);
  }
  EXPECT_EQ(d.size(), 47816u);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(NsfGeneratorTest, EveryDomainValueObserved) {
  // "The number of distinct values on each attribute equals the attribute's
  // domain size" (Section 6).
  Dataset d = GenerateNsf();
  auto stats = d.ComputeAttributeStats();
  for (size_t a = 0; a < 9; ++a) {
    EXPECT_EQ(stats[a].distinct_values, d.schema()->domain_size(a))
        << stats[a].name;
  }
}

TEST(NsfGeneratorTest, SkewedHeadValues) {
  Dataset d = GenerateNsf();
  // Value 1 of a Zipf-covered column should be far more frequent than a
  // mid-domain value; check Prog-mgr (654 values).
  size_t head = 0, mid = 0;
  for (const Tuple& t : d.tuples()) {
    head += t[5] == 1;
    mid += t[5] == 327;
  }
  EXPECT_GT(head, 10 * mid);
}

TEST(YahooGeneratorTest, SchemaMatchesFigure9) {
  Dataset d = GenerateYahoo();
  const Schema& schema = *d.schema();
  ASSERT_EQ(schema.num_attributes(), 6u);
  EXPECT_TRUE(schema.IsCategorical(0));
  EXPECT_EQ(schema.domain_size(0), 2u);     // Owner
  EXPECT_EQ(schema.domain_size(1), 7u);     // Body-style
  EXPECT_EQ(schema.domain_size(2), 85u);    // Make
  EXPECT_TRUE(schema.IsNumeric(3));         // Mileage
  EXPECT_TRUE(schema.IsNumeric(4));         // Year
  EXPECT_TRUE(schema.IsNumeric(5));         // Price
  EXPECT_EQ(d.size(), 69768u);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(YahooGeneratorTest, HeavyListingBlocksK64ButNotK128) {
  // Section 6: Yahoo has more than 64 identical tuples, so no algorithm can
  // extract it at k = 64; k = 128 is fine.
  Dataset d = GenerateYahoo();
  uint64_t max_mult = d.MaxPointMultiplicity();
  EXPECT_GT(max_mult, 64u);
  EXPECT_LE(max_mult, 128u);

  // The duplicated point is the documented fleet listing.
  const Tuple heavy = YahooHeavyListing();
  size_t copies = 0;
  for (const Tuple& t : d.tuples()) copies += t == heavy;
  EXPECT_EQ(copies, 70u);
}

TEST(YahooGeneratorTest, CategoricalDomainsFullyCovered) {
  Dataset d = GenerateYahoo();
  auto stats = d.ComputeAttributeStats();
  EXPECT_EQ(stats[0].distinct_values, 2u);
  EXPECT_EQ(stats[1].distinct_values, 7u);
  EXPECT_EQ(stats[2].distinct_values, 85u);
}

TEST(YahooGeneratorTest, PriceCorrelatesWithMakeTier) {
  Dataset d = GenerateYahoo();
  // Tier 5 makes (base $60k) must be pricier on average than tier 1 ($3k).
  double sum_low = 0, sum_high = 0;
  size_t n_low = 0, n_high = 0;
  for (const Tuple& t : d.tuples()) {
    const int tier = static_cast<int>((t[2] - 1) % 5);
    if (tier == 0) {
      sum_low += static_cast<double>(t[5]);
      ++n_low;
    } else if (tier == 4) {
      sum_high += static_cast<double>(t[5]);
      ++n_high;
    }
  }
  ASSERT_GT(n_low, 0u);
  ASSERT_GT(n_high, 0u);
  EXPECT_GT(sum_high / static_cast<double>(n_high),
            2.0 * sum_low / static_cast<double>(n_low));
}

TEST(SyntheticGeneratorsTest, RespectOptions) {
  SyntheticNumericOptions num;
  num.d = 3;
  num.n = 100;
  num.value_range = 10;
  Dataset dn = GenerateSyntheticNumeric(num);
  EXPECT_EQ(dn.size(), 100u);
  EXPECT_EQ(dn.schema()->num_attributes(), 3u);
  EXPECT_TRUE(dn.Validate().ok());

  SyntheticCategoricalOptions cat;
  cat.domain_sizes = {3, 4};
  cat.n = 50;
  Dataset dc = GenerateSyntheticCategorical(cat);
  EXPECT_EQ(dc.size(), 50u);
  EXPECT_TRUE(dc.Validate().ok());

  SyntheticMixedOptions mix;
  mix.domain_sizes = {2};
  mix.num_numeric = 2;
  mix.n = 80;
  Dataset dm = GenerateSyntheticMixed(mix);
  EXPECT_EQ(dm.schema()->num_categorical(), 1u);
  EXPECT_EQ(dm.schema()->num_numeric(), 2u);
  EXPECT_TRUE(dm.Validate().ok());
}

TEST(SyntheticGeneratorsTest, DuplicationKnobRaisesMultiplicity) {
  SyntheticNumericOptions base;
  base.d = 2;
  base.n = 2000;
  base.value_range = 100000;
  base.seed = 3;
  Dataset without = GenerateSyntheticNumeric(base);

  SyntheticNumericOptions with = base;
  with.duplicate_prob = 0.5;
  with.duplicate_pool = 2;
  Dataset with_dupes = GenerateSyntheticNumeric(with);

  EXPECT_LE(without.MaxPointMultiplicity(), 2u);
  EXPECT_GT(with_dupes.MaxPointMultiplicity(), 100u);
}

}  // namespace
}  // namespace hdc
