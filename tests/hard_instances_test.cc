// Copyright (c) hdc authors. Apache-2.0 license.
//
// Theorem 3 / Theorem 4 constructions: structural checks, and the
// lower-bound sandwich — any correct algorithm must spend at least the
// proven bound on them, while Theorem 1 caps the optimal algorithms from
// above.
#include "gen/hard_instances.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "core/rank_shrink.h"
#include "core/slice_cover.h"
#include "server/local_server.h"

namespace hdc {
namespace {

TEST(HardNumericTest, StructureMatchesFigure7) {
  const uint64_t k = 4, m = 3;
  const size_t d = 2;
  HardInstance inst = MakeHardNumericInstance(k, d, m);
  EXPECT_EQ(inst.dataset.size(), m * (k + d));
  EXPECT_EQ(inst.lower_bound, d * m);
  EXPECT_TRUE(inst.dataset.Validate().ok());

  // Group i: k diagonal tuples at (i, i) plus one bump per attribute.
  size_t diag = 0, bumps = 0;
  for (const Tuple& t : inst.dataset.tuples()) {
    if (t[0] == t[1]) {
      ++diag;
    } else {
      EXPECT_EQ(std::abs(t[0] - t[1]), 1);
      ++bumps;
    }
  }
  EXPECT_EQ(diag, k * m);
  EXPECT_EQ(bumps, d * m);
}

TEST(HardNumericTest, SolvableExactlyAtK) {
  HardInstance inst = MakeHardNumericInstance(5, 3, 2);
  EXPECT_EQ(inst.dataset.MaxPointMultiplicity(), 5u);
}

TEST(HardNumericTest, RankShrinkCostSandwichedByTheory) {
  // Lower bound (Theorem 3): >= d*m queries. Upper bound (Lemma 2):
  // <= alpha * d * n / k with n/k = m(k+d)/k <= 2m when d <= k, i.e.
  // O(d*m) — the sandwich shows constant-factor optimality.
  const uint64_t k = 8, m = 40;
  const size_t d = 3;
  HardInstance inst = MakeHardNumericInstance(k, d, m);
  auto data = std::make_shared<Dataset>(inst.dataset);
  LocalServer server(data, k);
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, inst.dataset));

  EXPECT_GE(result.queries_issued, inst.lower_bound)
      << "no correct algorithm can beat Theorem 3's bound";
  const double upper = 20.0 * static_cast<double>(d) *
                           static_cast<double>(inst.dataset.size()) /
                           static_cast<double>(k) +
                       8.0 * d + 8.0;
  EXPECT_LE(static_cast<double>(result.queries_issued), upper);
}

TEST(HardCategoricalTest, StructureMatchesFigure8) {
  const uint64_t k = 3, U = 4;
  HardInstance inst = MakeHardCategoricalInstance(k, U);
  const size_t d = 2 * k;
  EXPECT_EQ(inst.dataset.schema()->num_attributes(), d);
  EXPECT_EQ(inst.dataset.size(), d * U);
  EXPECT_TRUE(inst.dataset.Validate().ok());

  // Every tuple has exactly one attribute differing from the group value.
  for (const Tuple& t : inst.dataset.tuples()) {
    // The group value is the majority coordinate.
    std::vector<int> counts(U + 2, 0);
    for (size_t a = 0; a < d; ++a) ++counts[t[a]];
    int majority = 0, outliers = 0;
    for (Value v = 1; v <= static_cast<Value>(U); ++v) {
      if (counts[v] == static_cast<int>(d) - 1) ++majority;
      if (counts[v] == 1) ++outliers;
    }
    EXPECT_EQ(majority, 1) << t.ToString();
    EXPECT_EQ(outliers, 1) << t.ToString();
  }
}

TEST(HardCategoricalTest, BoundRegimeCheck) {
  // k=20 => d=40, 2^(d/4)=1024: U=5 fits (40*25=1000), U=6 does not
  // (40*36=1440).
  EXPECT_TRUE(HardCategoricalBoundApplies(20, 5));
  EXPECT_FALSE(HardCategoricalBoundApplies(20, 6));
  // Huge d: always applies.
  EXPECT_TRUE(HardCategoricalBoundApplies(200, 100));
}

TEST(HardCategoricalTest, SliceCoverCostWithinLemma4OnHardInstance) {
  // In the Theorem 4 regime, n/k = dU/k = 2U, so Lemma 4 caps slice-cover
  // at dU + 2U * d * min(U, 2U) = dU + 2dU^2.
  const uint64_t k = 20, U = 4;  // d=40, dU^2=640 <= 1024
  ASSERT_TRUE(HardCategoricalBoundApplies(k, U));
  HardInstance inst = MakeHardCategoricalInstance(k, U);
  auto data = std::make_shared<Dataset>(inst.dataset);
  LocalServer server(data, k);
  SliceCoverCrawler crawler(/*lazy=*/false);
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, inst.dataset));

  const uint64_t d = 2 * k;
  EXPECT_LE(result.queries_issued, d * U + 2 * d * U * U);
  // Every slice overflows on this construction (each slice holds d = 2k
  // tuples), so the cost is at least the preprocessing Sigma U_i = d*U.
  EXPECT_GE(result.queries_issued, d * U);
}

TEST(HardCategoricalTest, EverySliceOverflows) {
  const uint64_t k = 3, U = 5;
  HardInstance inst = MakeHardCategoricalInstance(k, U);
  auto data = std::make_shared<Dataset>(inst.dataset);
  LocalServer server(data, k);
  const SchemaPtr& schema = data->schema();
  for (size_t a = 0; a < schema->num_attributes(); ++a) {
    for (Value c = 1; c <= static_cast<Value>(U); ++c) {
      Query slice = Query::FullSpace(schema).WithCategoricalEquals(a, c);
      // Each value appears in d-1 tuples of its own group plus 1 from the
      // previous group = d = 2k > k.
      EXPECT_EQ(server.CountMatches(slice), 2 * k) << slice.ToString();
    }
  }
}

}  // namespace
}  // namespace hdc
