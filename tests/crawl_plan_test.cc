// Copyright (c) hdc authors. Apache-2.0 license.
//
// The crawl planner: compiling a conjunctive predicate into a pushdown
// rectangle + pruning oracle must (i) never lose a satisfying tuple, in any
// crawler family, (ii) never cost more queries than the unplanned crawl,
// and (iii) reject malformed predicates with typed errors.
#include "core/crawl_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>

#include "analytics/crawl_pushdown.h"
#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/local_server.h"
#include "util/random.h"

namespace hdc {
namespace {

SchemaPtr MixedSchema() {
  return Schema::Make({
      AttributeSpec::Categorical("C1", 6),
      AttributeSpec::NumericBounded("N1", 0, 100),
      AttributeSpec::Categorical("C2", 4),
  });
}

TEST(CrawlPlanTest, CompileErrorsAreTyped) {
  SchemaPtr schema = MixedSchema();
  CrawlPlan plan;
  {
    CrawlPredicate p;
    p.AddRange(0, 1, 3);  // range on a categorical attribute
    Status s = CompileCrawlPlan(schema, p, &plan);
    EXPECT_TRUE(s.IsInvalidArgument());
    EXPECT_NE(s.message().find("categorical"), std::string::npos);
  }
  {
    CrawlPredicate p;
    p.AddIn(1, {5});  // IN-set on a numeric attribute
    Status s = CompileCrawlPlan(schema, p, &plan);
    EXPECT_TRUE(s.IsInvalidArgument());
    EXPECT_NE(s.message().find("numeric"), std::string::npos);
  }
  {
    CrawlPredicate p;
    p.AddRange(9, 0, 1);  // attribute outside the schema
    EXPECT_TRUE(CompileCrawlPlan(schema, p, &plan).IsInvalidArgument());
  }
  {
    CrawlPredicate p;
    p.AddIn(0, {});  // empty IN-set list
    EXPECT_TRUE(CompileCrawlPlan(schema, p, &plan).IsInvalidArgument());
  }
}

TEST(CrawlPlanTest, UnsatisfiableCompilesToEmptyPlan) {
  SchemaPtr schema = MixedSchema();
  CrawlPlan plan;
  CrawlPredicate p;
  p.AddIn(0, {99});  // out of the domain — nothing can match
  ASSERT_TRUE(CompileCrawlPlan(schema, p, &plan).ok());
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.MayContainTuples(Query::FullSpace(schema)));

  CrawlPredicate disjoint;
  disjoint.AddRange(1, 0, 10);
  disjoint.AddRange(1, 20, 30);  // intersection is empty
  ASSERT_TRUE(CompileCrawlPlan(schema, disjoint, &plan).ok());
  EXPECT_TRUE(plan.empty());
}

TEST(CrawlPlanTest, SingletonInSetPinsTheRoot) {
  SchemaPtr schema = MixedSchema();
  CrawlPlan plan;
  CrawlPredicate p;
  p.AddIn(0, {3});
  p.AddRange(1, 10, 40);
  ASSERT_TRUE(CompileCrawlPlan(schema, p, &plan).ok());
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(plan.has_residual());
  EXPECT_TRUE(plan.root().IsPinned(0));
  EXPECT_EQ(plan.root().lo(0), 3);
  EXPECT_EQ(plan.root().lo(1), 10);
  EXPECT_EQ(plan.root().hi(1), 40);
  EXPECT_FALSE(plan.root().IsPinned(2));
}

// Soundness property: whenever the plan prunes a query, no tuple inside
// that query satisfies the predicate.
TEST(CrawlPlanTest, PruningNeverLosesASatisfyingTuple) {
  SchemaPtr schema = MixedSchema();
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    CrawlPredicate pred;
    if (rng.Bernoulli(0.7)) {
      std::vector<Value> in;
      const size_t count = 1 + rng.UniformU64(3);
      for (size_t i = 0; i < count; ++i) in.push_back(rng.UniformInt(1, 6));
      pred.AddIn(0, in);
    }
    if (rng.Bernoulli(0.7)) {
      Value lo = rng.UniformInt(0, 100);
      pred.AddRange(1, lo, rng.UniformInt(lo, 100));
    }
    CrawlPlan plan;
    ASSERT_TRUE(CompileCrawlPlan(schema, pred, &plan).ok());

    for (int probe = 0; probe < 50; ++probe) {
      // A random sub-rectangle and a random tuple inside it.
      Query q = Query::FullSpace(schema);
      if (rng.Bernoulli(0.5)) {
        q = q.WithCategoricalEquals(0, rng.UniformInt(1, 6));
      }
      Value lo = rng.UniformInt(0, 100);
      q = q.WithNumericRange(1, lo, rng.UniformInt(lo, 100));
      if (rng.Bernoulli(0.5)) {
        q = q.WithCategoricalEquals(2, rng.UniformInt(1, 4));
      }
      Tuple t({q.IsPinned(0) ? q.lo(0) : rng.UniformInt(1, 6),
               rng.UniformInt(q.lo(1), q.hi(1)),
               q.IsPinned(2) ? q.lo(2) : rng.UniformInt(1, 4)});
      ASSERT_TRUE(q.Matches(t));
      if (!plan.MayContainTuples(q)) {
        ASSERT_FALSE(plan.Matches(t))
            << "pruned a rectangle holding a satisfying tuple";
      }
    }
  }
}

struct PlanCase {
  std::string label;
  std::function<std::unique_ptr<Crawler>()> make_crawler;
  std::function<Dataset()> make_data;
  std::function<CrawlPredicate(const SchemaPtr&)> make_predicate;
};

std::vector<PlanCase> MakePlanCases() {
  std::vector<PlanCase> cases;
  auto numeric_data = [] {
    SyntheticNumericOptions gen;
    gen.d = 2;
    gen.n = 700;
    gen.value_range = 300;
    gen.seed = 81;
    return GenerateSyntheticNumeric(gen);
  };
  auto numeric_pred = [](const SchemaPtr& schema) {
    CrawlPredicate p;
    p.AddRange(0, schema->attribute(0).lo,
               (schema->attribute(0).lo + schema->attribute(0).hi) / 4);
    return p;
  };
  cases.push_back({"rank_shrink", [] { return std::make_unique<RankShrink>(); },
                   numeric_data, numeric_pred});
  cases.push_back({"binary_shrink",
                   [] { return std::make_unique<BinaryShrink>(); },
                   numeric_data, numeric_pred});

  auto cat_data = [] {
    SyntheticCategoricalOptions gen;
    gen.domain_sizes = {5, 7, 6};
    gen.n = 600;
    gen.seed = 82;
    return GenerateSyntheticCategorical(gen);
  };
  auto cat_pred = [](const SchemaPtr&) {
    CrawlPredicate p;
    p.AddIn(0, {2});
    p.AddIn(1, {1, 4, 6});  // multi-value: exercises the residual filter
    return p;
  };
  cases.push_back({"dfs", [] { return std::make_unique<DfsCrawler>(); },
                   cat_data, cat_pred});
  cases.push_back({"slice_cover",
                   [] { return std::make_unique<SliceCoverCrawler>(false); },
                   cat_data, cat_pred});
  cases.push_back({"lazy_slice_cover",
                   [] { return std::make_unique<SliceCoverCrawler>(true); },
                   cat_data, cat_pred});

  cases.push_back({"hybrid", [] { return std::make_unique<HybridCrawler>(); },
                   [] {
                     SyntheticMixedOptions gen;
                     gen.domain_sizes = {4, 5};
                     gen.num_numeric = 1;
                     gen.n = 600;
                     gen.value_range = 120;
                     gen.seed = 83;
                     return GenerateSyntheticMixed(gen);
                   },
                   [](const SchemaPtr& schema) {
                     CrawlPredicate p;
                     p.AddIn(0, {3});
                     const size_t num = 2;  // the numeric attribute
                     p.AddRange(num, schema->attribute(num).lo,
                                (schema->attribute(num).lo +
                                 schema->attribute(num).hi) /
                                    3);
                     return p;
                   }});
  return cases;
}

class PlanPushdownTest : public ::testing::TestWithParam<size_t> {};

// Every family: the planned crawl extracts exactly D ∩ predicate and never
// bills more queries than crawl-then-filter.
TEST_P(PlanPushdownTest, MatchesCrawlThenFilterForLess) {
  PlanCase c = MakePlanCases()[GetParam()];
  Dataset data = c.make_data();
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());
  auto shared = std::make_shared<Dataset>(data);

  CrawlPlan plan;
  ASSERT_TRUE(
      CompileCrawlPlan(data.schema(), c.make_predicate(data.schema()), &plan)
          .ok());

  // Ground truth: full crawl, filter in memory.
  LocalServer full_server(shared, k);
  auto full_crawler = c.make_crawler();
  CrawlResult full = full_crawler->Crawl(&full_server);
  ASSERT_TRUE(full.status.ok()) << c.label;
  Dataset expected(data.schema());
  for (const Tuple& t : full.extracted.tuples()) {
    if (plan.Matches(t)) expected.Add(t);
  }
  ASSERT_GT(expected.size(), 0u) << c.label << ": vacuous predicate";
  ASSERT_LT(expected.size(), data.size()) << c.label << ": selects all";

  // Pushdown crawl.
  LocalServer planned_server(shared, k);
  auto planned_crawler = c.make_crawler();
  CrawlOptions options;
  options.plan = &plan;
  CrawlResult planned = planned_crawler->Crawl(&planned_server, options);
  ASSERT_TRUE(planned.status.ok()) << c.label << ": "
                                   << planned.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(planned.extracted, expected))
      << c.label;
  EXPECT_LE(planned.queries_issued, full.queries_issued) << c.label;
  EXPECT_LT(planned.queries_issued, full.queries_issued)
      << c.label << ": pushdown should prune something on this predicate";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, PlanPushdownTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return MakePlanCases()[info.param].label;
                         });

TEST(CrawlPlanTest, EmptyPlanCrawlsForFree) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {5, 4};
  gen.n = 300;
  gen.seed = 84;
  auto data = std::make_shared<Dataset>(GenerateSyntheticCategorical(gen));
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  LocalServer server(data, k);

  CrawlPlan plan;
  CrawlPredicate p;
  p.AddIn(0, {999});
  ASSERT_TRUE(CompileCrawlPlan(data->schema(), p, &plan).ok());
  ASSERT_TRUE(plan.empty());

  DfsCrawler crawler;
  CrawlOptions options;
  options.plan = &plan;
  CrawlResult result = crawler.Crawl(&server, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.extracted.size(), 0u);
  EXPECT_EQ(result.queries_issued, 0u);
  EXPECT_EQ(server.queries_served(), 0u);
}

TEST(CrawlPlanTest, RejectsPlanFromDifferentSchema) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 100;
  gen.value_range = 50;
  gen.seed = 85;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  LocalServer server(data, 8);

  CrawlPlan plan;
  ASSERT_TRUE(CompileCrawlPlan(MixedSchema(), CrawlPredicate{}, &plan).ok());
  RankShrink crawler;
  CrawlOptions options;
  options.plan = &plan;
  CrawlResult result = crawler.Crawl(&server, options);
  EXPECT_TRUE(result.status.IsInvalidArgument());
  EXPECT_NE(result.status.message().find("different schema"),
            std::string::npos);
}

// The analytics pushdown: CrawlAggregate answers exactly what the batch
// Aggregate over a full extraction answers, for fewer queries and without
// materializing.
TEST(CrawlPushdownTest, AggregateMatchesFullCrawl) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {4, 5};
  gen.num_numeric = 1;
  gen.n = 700;
  gen.value_range = 150;
  gen.seed = 86;
  Dataset data = GenerateSyntheticMixed(gen);
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());
  auto shared = std::make_shared<Dataset>(data);

  Query filter = Query::FullSpace(data.schema()).WithCategoricalEquals(0, 2);
  const size_t num_attr = 2;

  LocalServer full_server(shared, k);
  HybridCrawler full_crawler;
  CrawlResult full = full_crawler.Crawl(&full_server);
  ASSERT_TRUE(full.status.ok());

  for (const AggregateSpec& spec :
       {AggregateSpec::Count(), AggregateSpec::Sum(num_attr),
        AggregateSpec::Avg(num_attr), AggregateSpec::Min(num_attr),
        AggregateSpec::Max(num_attr)}) {
    const AggregateResult expected =
        Aggregate(full.extracted, filter, spec);

    LocalServer server(shared, k);
    HybridCrawler crawler;
    AggregateResult got;
    PushdownStats stats;
    ASSERT_TRUE(
        CrawlAggregate(&crawler, &server, filter, spec, &got, &stats).ok());
    EXPECT_EQ(got.rows, expected.rows) << AggregateOpName(spec.op);
    EXPECT_DOUBLE_EQ(got.value, expected.value) << AggregateOpName(spec.op);
    EXPECT_LT(stats.queries_issued, full.queries_issued)
        << AggregateOpName(spec.op);
    EXPECT_EQ(stats.tuples_folded, expected.rows);
  }
}

}  // namespace
}  // namespace hdc
