// Copyright (c) hdc authors. Apache-2.0 license.
//
// Property tests of the checkpoint token codecs: random queries and tuples
// must round-trip exactly, and malformed inputs must be rejected, never
// crash.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/random.h"

namespace hdc {
namespace {

SchemaPtr MixedSchema() {
  return Schema::Make({
      AttributeSpec::Categorical("C1", 7),
      AttributeSpec::NumericBounded("N1", -100, 100),
      AttributeSpec::Categorical("C2", 3),
      AttributeSpec::Numeric("N2"),
  });
}

Query RandomQuery(const SchemaPtr& schema, Rng* rng) {
  Query q = Query::FullSpace(schema);
  if (rng->Bernoulli(0.5)) {
    q = q.WithCategoricalEquals(0, rng->UniformInt(1, 7));
  }
  if (rng->Bernoulli(0.5)) {
    Value lo = rng->UniformInt(-100, 100);
    q = q.WithNumericRange(1, lo, rng->UniformInt(lo, 100));
  }
  if (rng->Bernoulli(0.5)) {
    q = q.WithCategoricalEquals(2, rng->UniformInt(1, 3));
  }
  if (rng->Bernoulli(0.5)) {
    Value lo = rng->UniformInt(-1000000, 1000000);
    q = q.WithNumericRange(3, lo, rng->UniformInt(lo, 1000000));
  }
  return q;
}

TEST(CheckpointCodecTest, QueryRoundTripProperty) {
  SchemaPtr schema = MixedSchema();
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    Query original = RandomQuery(schema, &rng);
    std::ostringstream out;
    EncodeQueryTokens(original, &out);
    std::istringstream in(out.str());
    Query decoded = Query::FullSpace(schema);
    ASSERT_TRUE(DecodeQueryTokens(&in, schema, &decoded).ok())
        << original.ToString();
    ASSERT_EQ(decoded, original) << original.ToString();
  }
}

TEST(CheckpointCodecTest, TupleRoundTripProperty) {
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Value> values(1 + rng.UniformU64(6));
    for (auto& v : values) v = rng.UniformInt(-1000000000, 1000000000);
    Tuple original(values);
    std::ostringstream out;
    EncodeTupleTokens(original, &out);
    std::istringstream in(out.str());
    Tuple decoded;
    ASSERT_TRUE(DecodeTupleTokens(&in, values.size(), &decoded).ok());
    ASSERT_EQ(decoded, original);
  }
}

TEST(CheckpointCodecTest, DecodeQueryRejectsBadInput) {
  SchemaPtr schema = MixedSchema();
  Query q = Query::FullSpace(schema);

  {  // too few tokens
    std::istringstream in("1 1 0");
    EXPECT_FALSE(DecodeQueryTokens(&in, schema, &q).ok());
  }
  {  // categorical value out of domain
    std::istringstream in("9 9 0 0 1 3 0 0");
    EXPECT_FALSE(DecodeQueryTokens(&in, schema, &q).ok());
  }
  {  // categorical range that is neither pinned nor full
    std::istringstream in("2 5 0 0 1 3 0 0");
    EXPECT_FALSE(DecodeQueryTokens(&in, schema, &q).ok());
  }
  {  // numeric extent out of order
    std::istringstream in("1 1 50 -50 1 3 0 0");
    EXPECT_FALSE(DecodeQueryTokens(&in, schema, &q).ok());
  }
  {  // non-numeric garbage
    std::istringstream in("a b c d e f g h");
    EXPECT_FALSE(DecodeQueryTokens(&in, schema, &q).ok());
  }
}

TEST(CheckpointCodecTest, DecodeTupleRejectsShortInput) {
  std::istringstream in("1 2");
  Tuple t;
  EXPECT_FALSE(DecodeTupleTokens(&in, 3, &t).ok());
}

TEST(CheckpointCodecTest, QueryStackFrontierRejectsMissingTerminator) {
  SchemaPtr schema = Schema::Numeric(1);
  std::istringstream in("q 0 5\nq 6 9\n");  // no frontier-end
  CheckpointReader reader(&in);
  std::vector<Query> frontier;
  EXPECT_FALSE(DecodeQueryStackFrontier(&reader, schema, &frontier).ok());
}

TEST(CheckpointCodecTest, QueryStackFrontierParsesInOrder) {
  SchemaPtr schema = Schema::Numeric(1);
  std::istringstream in("q 0 5\nq 6 9\nfrontier-end\n");
  CheckpointReader reader(&in);
  std::vector<Query> frontier;
  ASSERT_TRUE(DecodeQueryStackFrontier(&reader, schema, &frontier).ok());
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].lo(0), 0);
  EXPECT_EQ(frontier[0].hi(0), 5);
  EXPECT_EQ(frontier[1].lo(0), 6);
}

}  // namespace
}  // namespace hdc
