// Copyright (c) hdc authors. Apache-2.0 license.
//
// CachingServer / AnswerCache behavior: canonical keys, the three
// revalidation policies (deterministic TTL on a FakeClock, version-check
// against a mutating server, always-fresh transparency), batch prefix
// semantics through the cache, and cache reuse across a RemoteServer
// reconnect. Byte-identity of the always-fresh mode is proven separately by
// the conformance suite (server_conformance_test, backends `cached` and
// `cached_remote`).
#include "server/caching_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/remote_server.h"
#include "net/service_endpoint.h"
#include "server/crawl_service.h"
#include "server/local_server.h"
#include "server/mutating_server.h"
#include "util/clock.h"

namespace hdc {
namespace {

std::shared_ptr<const Dataset> TinyData() {
  SchemaPtr schema = Schema::NumericBounded({{0, 100}});
  auto d = std::make_shared<Dataset>(schema);
  for (Value v = 0; v < 20; ++v) d->Add(Tuple({v * 5}));
  return d;
}

AnswerCacheOptions VersionCheck() {
  AnswerCacheOptions options;
  options.policy = RevalidationPolicy::kVersionCheck;
  return options;
}

TEST(CanonicalQueryKeyTest, NormalizesEquivalentQueries) {
  SchemaPtr schema = Schema::NumericBounded({{0, 100}, {0, 50}});
  const Query wildcard = Query::FullSpace(schema);
  // An explicit full-range predicate is the same rectangle as the wildcard.
  const Query explicit_full =
      wildcard.WithNumericRange(0, 0, 100).WithNumericRange(1, 0, 50);
  EXPECT_EQ(CanonicalQueryKey(wildcard), CanonicalQueryKey(explicit_full));

  // Predicate application order cannot matter: slots are schema-ordered.
  const Query ab =
      wildcard.WithNumericRange(0, 5, 10).WithNumericRange(1, 1, 2);
  const Query ba =
      wildcard.WithNumericRange(1, 1, 2).WithNumericRange(0, 5, 10);
  EXPECT_EQ(CanonicalQueryKey(ab), CanonicalQueryKey(ba));

  // Different rectangles get different keys.
  EXPECT_NE(CanonicalQueryKey(ab), CanonicalQueryKey(wildcard));
  EXPECT_NE(CanonicalQueryKey(ab),
            CanonicalQueryKey(ab.WithNumericRange(0, 5, 11)));
}

TEST(CachingServerTest, HitsSkipTheBaseServer) {
  LocalServer base(TinyData(), 4);
  CachingServer caching(&base, VersionCheck());
  const Query q = Query::FullSpace(base.schema()).WithNumericRange(0, 0, 10);
  Response first, second;
  ASSERT_TRUE(caching.Issue(q, &first).ok());
  ASSERT_TRUE(caching.Issue(q, &second).ok());
  // One forwarded miss, one hit that never reached the base.
  EXPECT_EQ(base.queries_served(), 1u);
  EXPECT_EQ(caching.forwarded_queries(), 1u);
  EXPECT_EQ(caching.stats().hits, 1u);
  EXPECT_EQ(caching.stats().misses, 1u);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first.tuples[i].hidden_id, second.tuples[i].hidden_id);
    EXPECT_EQ(first.tuples[i].tuple, second.tuples[i].tuple);
  }
}

TEST(CachingServerTest, TtlExpiryIsDeterministicOnFakeClock) {
  FakeClock clock;
  LocalServer base(TinyData(), 4);
  AnswerCacheOptions options;
  options.policy = RevalidationPolicy::kTtl;
  options.ttl = std::chrono::seconds(100);
  options.clock = &clock;
  CachingServer caching(&base, options);
  const Query q = Query::FullSpace(base.schema()).WithNumericRange(0, 0, 10);
  Response r;

  ASSERT_TRUE(caching.Issue(q, &r).ok());  // miss, fills at t=0
  clock.Advance(std::chrono::seconds(50));
  ASSERT_TRUE(caching.Issue(q, &r).ok());  // t=50 < 100: still fresh
  EXPECT_EQ(caching.stats().hits, 1u);
  EXPECT_EQ(base.queries_served(), 1u);

  clock.Advance(std::chrono::seconds(60));  // t=110: entry expired
  ASSERT_TRUE(caching.Issue(q, &r).ok());
  // The re-ask moved no data — a cheap revalidation, and it refreshed the
  // entry's timestamp, so the next probe inside the TTL hits again.
  EXPECT_EQ(caching.stats().revalidations_matched, 1u);
  EXPECT_EQ(base.queries_served(), 2u);
  clock.Advance(std::chrono::seconds(99));
  ASSERT_TRUE(caching.Issue(q, &r).ok());
  EXPECT_EQ(caching.stats().hits, 2u);
  EXPECT_EQ(base.queries_served(), 2u);
}

TEST(CachingServerTest, VersionCheckSplitsCheapAndChangedRevalidations) {
  MutatingLocalServer server(TinyData(), 4);
  CachingServer caching(&server, VersionCheck());
  const Query low = Query::FullSpace(server.schema())
                        .WithNumericRange(0, 0, 10);  // rows 0, 5, 10
  Response r;
  ASSERT_TRUE(caching.Issue(low, &r).ok());  // miss at version 1
  ASSERT_TRUE(caching.Issue(low, &r).ok());  // version unchanged: hit
  EXPECT_EQ(caching.stats().hits, 1u);

  // A mutation far from the cached rectangle bumps the version; the
  // conditional re-ask finds identical content — billed cheap.
  ASSERT_TRUE(server.Apply({Mutation::Insert(Tuple({90}))}).ok());
  ASSERT_TRUE(caching.Issue(low, &r).ok());
  EXPECT_EQ(caching.stats().revalidations_matched, 1u);
  EXPECT_EQ(caching.stats().revalidations_changed, 0u);
  // The revalidation stamped the current version: next probe hits.
  ASSERT_TRUE(caching.Issue(low, &r).ok());
  EXPECT_EQ(caching.stats().hits, 2u);

  // A mutation inside the rectangle: the re-ask returns new content.
  ASSERT_TRUE(server.Apply({Mutation::Insert(Tuple({7}))}).ok());
  ASSERT_TRUE(caching.Issue(low, &r).ok());
  EXPECT_EQ(caching.stats().revalidations_changed, 1u);
  bool found = false;
  for (const ReturnedTuple& rt : r.tuples) found |= rt.tuple[0] == 7;
  EXPECT_TRUE(found) << "refreshed entry must hold the new row";
}

TEST(CachingServerTest, AlwaysFreshForwardsEverything) {
  LocalServer base(TinyData(), 4);
  AnswerCacheOptions options;
  options.policy = RevalidationPolicy::kAlwaysFresh;
  CachingServer caching(&base, options);
  const Query q = Query::FullSpace(base.schema());
  Response r;
  ASSERT_TRUE(caching.Issue(q, &r).ok());
  ASSERT_TRUE(caching.Issue(q, &r).ok());
  EXPECT_EQ(base.queries_served(), 2u);
  EXPECT_EQ(caching.stats().hits, 0u);
  EXPECT_EQ(caching.stats().misses, 2u);
}

TEST(CachingServerTest, BatchKeepsAnsweredPrefixAcrossCachedMembers) {
  LocalServer base(TinyData(), 4);
  BudgetServer budget(&base, /*max_queries=*/1);
  CachingServer caching(&budget, VersionCheck());
  const Query full = Query::FullSpace(base.schema());
  const Query a = full.WithNumericRange(0, 0, 10);
  const Query b = full.WithNumericRange(0, 20, 30);
  const Query c = full.WithNumericRange(0, 40, 50);

  Response r;
  ASSERT_TRUE(caching.Issue(a, &r).ok());  // warm A (spends the budget)
  budget.Refill(1);

  // A comes from cache (no budget), B spends the last query, C is refused:
  // the answered prefix is [A, B].
  std::vector<Response> responses;
  const Status status = caching.IssueBatch({a, b, c}, &responses);
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(base.queries_served(), 2u);
  EXPECT_EQ(caching.stats().hits, 1u);
}

TEST(CachingServerTest, FifoEvictionCapsEntries) {
  LocalServer base(TinyData(), 4);
  AnswerCacheOptions options = VersionCheck();
  options.max_entries = 2;
  CachingServer caching(&base, options);
  const Query full = Query::FullSpace(base.schema());
  Response r;
  ASSERT_TRUE(caching.Issue(full.WithNumericRange(0, 0, 10), &r).ok());
  ASSERT_TRUE(caching.Issue(full.WithNumericRange(0, 20, 30), &r).ok());
  ASSERT_TRUE(caching.Issue(full.WithNumericRange(0, 40, 50), &r).ok());
  EXPECT_EQ(caching.cache().size(), 2u);
  // The oldest entry was evicted: re-asking it is a miss again.
  ASSERT_TRUE(caching.Issue(full.WithNumericRange(0, 0, 10), &r).ok());
  EXPECT_EQ(caching.stats().misses, 4u);
  EXPECT_EQ(caching.stats().hits, 0u);
}

TEST(CachingServerTest, SharedCacheServesAcrossRemoteReconnect) {
  CrawlService service(TinyData(), 4);
  net::ServiceEndpoint endpoint(&service);
  ASSERT_TRUE(endpoint.Start().ok());
  auto cache = std::make_shared<AnswerCache>(VersionCheck());
  const uint64_t port = endpoint.port();

  Response first;
  {
    std::unique_ptr<net::RemoteServer> client;
    ASSERT_TRUE(
        net::RemoteServer::Connect("127.0.0.1", port, {}, &client).ok());
    // The welcome piggybacks the service's db_version (frozen index: 0).
    EXPECT_EQ(client->db_version(), 0u);
    CachingServer caching(client.get(), cache);
    const Query q =
        Query::FullSpace(caching.schema()).WithNumericRange(0, 0, 10);
    ASSERT_TRUE(caching.Issue(q, &first).ok());
    EXPECT_EQ(caching.forwarded_queries(), 1u);
  }  // connection dropped

  {
    std::unique_ptr<net::RemoteServer> client;
    ASSERT_TRUE(
        net::RemoteServer::Connect("127.0.0.1", port, {}, &client).ok());
    CachingServer caching(client.get(), cache);
    const Query q =
        Query::FullSpace(caching.schema()).WithNumericRange(0, 0, 10);
    Response second;
    ASSERT_TRUE(caching.Issue(q, &second).ok());
    // Version-check proves the entry fresh across the reconnect: nothing
    // was forwarded over the new connection.
    EXPECT_EQ(caching.forwarded_queries(), 0u);
    EXPECT_EQ(cache->stats().hits, 1u);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first.tuples[i].hidden_id, second.tuples[i].hidden_id);
    }
  }
  endpoint.Stop();
}

TEST(HashResponseTest, SensitiveToContentAndOrder) {
  Response a;
  a.tuples.push_back({Tuple({1, 2}), 7});
  a.tuples.push_back({Tuple({3, 4}), 9});
  Response b = a;
  EXPECT_EQ(HashResponse(a), HashResponse(b));
  std::swap(b.tuples[0], b.tuples[1]);
  EXPECT_NE(HashResponse(a), HashResponse(b));
  Response c = a;
  c.overflow = true;
  EXPECT_NE(HashResponse(a), HashResponse(c));
  Response d = a;
  d.tuples[1].hidden_id = 10;
  EXPECT_NE(HashResponse(a), HashResponse(d));
}

}  // namespace
}  // namespace hdc
