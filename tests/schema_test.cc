// Copyright (c) hdc authors. Apache-2.0 license.
#include "data/schema.h"

#include <gtest/gtest.h>

namespace hdc {
namespace {

TEST(AttributeSpecTest, NumericDomainMembership) {
  AttributeSpec spec = AttributeSpec::NumericBounded("Age", 17, 90);
  EXPECT_TRUE(spec.is_numeric());
  EXPECT_FALSE(spec.is_categorical());
  EXPECT_TRUE(spec.ValueInDomain(17));
  EXPECT_TRUE(spec.ValueInDomain(90));
  EXPECT_FALSE(spec.ValueInDomain(16));
  EXPECT_FALSE(spec.ValueInDomain(91));
}

TEST(AttributeSpecTest, UnboundedNumericAcceptsSentinelRange) {
  AttributeSpec spec = AttributeSpec::Numeric("X");
  EXPECT_TRUE(spec.ValueInDomain(0));
  EXPECT_TRUE(spec.ValueInDomain(kNumericMin));
  EXPECT_TRUE(spec.ValueInDomain(kNumericMax));
}

TEST(AttributeSpecTest, CategoricalDomainMembership) {
  AttributeSpec spec = AttributeSpec::Categorical("Make", 85);
  EXPECT_TRUE(spec.is_categorical());
  EXPECT_TRUE(spec.ValueInDomain(1));
  EXPECT_TRUE(spec.ValueInDomain(85));
  EXPECT_FALSE(spec.ValueInDomain(0));
  EXPECT_FALSE(spec.ValueInDomain(86));
}

TEST(SchemaTest, NumericFactory) {
  SchemaPtr schema = Schema::Numeric(3);
  EXPECT_EQ(schema->num_attributes(), 3u);
  EXPECT_TRUE(schema->all_numeric());
  EXPECT_FALSE(schema->all_categorical());
  EXPECT_EQ(schema->num_numeric(), 3u);
  EXPECT_EQ(schema->num_categorical(), 0u);
}

TEST(SchemaTest, CategoricalFactory) {
  SchemaPtr schema = Schema::Categorical({4, 7, 2});
  EXPECT_TRUE(schema->all_categorical());
  EXPECT_EQ(schema->domain_size(0), 4u);
  EXPECT_EQ(schema->domain_size(1), 7u);
  EXPECT_EQ(schema->domain_size(2), 2u);
  EXPECT_EQ(schema->TotalCategoricalDomain(), 13u);
}

TEST(SchemaTest, MixedIndices) {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("C1", 3),
      AttributeSpec::NumericBounded("N1", 0, 9),
      AttributeSpec::Categorical("C2", 5),
      AttributeSpec::Numeric("N2"),
  });
  EXPECT_EQ(schema->categorical_indices(), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(schema->numeric_indices(), (std::vector<size_t>{1, 3}));
  EXPECT_FALSE(schema->all_numeric());
  EXPECT_FALSE(schema->all_categorical());
  EXPECT_EQ(schema->TotalCategoricalDomain(), 8u);
}

TEST(SchemaTest, NumericBoundedFactoryKeepsBounds) {
  SchemaPtr schema = Schema::NumericBounded({{0, 10}, {-5, 5}});
  EXPECT_EQ(schema->attribute(0).lo, 0);
  EXPECT_EQ(schema->attribute(0).hi, 10);
  EXPECT_EQ(schema->attribute(1).lo, -5);
  EXPECT_EQ(schema->attribute(1).hi, 5);
}

TEST(SchemaTest, ToStringMentionsKindsAndDomains) {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("Make", 85),
      AttributeSpec::NumericBounded("Price", 200, 200000),
  });
  std::string s = schema->ToString();
  EXPECT_NE(s.find("Make:cat(85)"), std::string::npos);
  EXPECT_NE(s.find("Price:num"), std::string::npos);
}

TEST(SchemaTest, EqualityIsStructural) {
  SchemaPtr a = Schema::Categorical({2, 3});
  SchemaPtr b = Schema::Categorical({2, 3});
  SchemaPtr c = Schema::Categorical({3, 2});
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
  EXPECT_FALSE(*a == *Schema::Numeric(2));
}

}  // namespace
}  // namespace hdc
