// Copyright (c) hdc authors. Apache-2.0 license.
//
// Multi-crawl stress: many concurrent sessions (mixed algorithms, budgets,
// batch shapes) over one CrawlService must each produce exactly the crawl
// they would have produced alone. Built to run under ThreadSanitizer (the
// CI concurrency leg): the sessions share only the const LocalIndex and
// the service worker pool.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/crawlers.h"
#include "core/multi_crawl.h"
#include "gen/synthetic.h"
#include "server/crawl_service.h"

namespace hdc {
namespace {

std::shared_ptr<const Dataset> StressData() {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 5, 4};
  gen.n = 1500;
  gen.seed = 77;
  return std::make_shared<const Dataset>(GenerateSyntheticCategorical(gen));
}

/// The mixed-algorithm job set: 6 sessions over one categorical space —
/// every categorical-capable algorithm, plus duplicates with different
/// batch shapes so several batch pipelines hit the shared pool at once.
std::vector<MultiCrawlJob> StressJobs() {
  std::vector<MultiCrawlJob> jobs(6);
  jobs[0].label = "dfs/seq";
  jobs[0].crawler = std::make_shared<DfsCrawler>();
  jobs[1].label = "dfs/batch8";
  jobs[1].crawler = std::make_shared<DfsCrawler>();
  jobs[1].crawl.batch_size = 8;
  jobs[2].label = "slice/eager";
  jobs[2].crawler = std::make_shared<SliceCoverCrawler>(/*lazy=*/false);
  jobs[2].crawl.batch_size = 4;
  jobs[3].label = "slice/lazy";
  jobs[3].crawler = std::make_shared<SliceCoverCrawler>(/*lazy=*/true);
  jobs[3].crawl.batch_size = 0;  // auto
  jobs[4].label = "hybrid";
  jobs[4].crawler = std::make_shared<HybridCrawler>();
  jobs[4].crawl.batch_size = 0;  // auto
  jobs[5].label = "slice/lazy-narrow";
  jobs[5].crawler = std::make_shared<SliceCoverCrawler>(/*lazy=*/true);
  jobs[5].crawl.batch_size = 16;
  return jobs;
}

// Sequential ground truth, then the same jobs concurrently: per-session
// query counts and extractions must be identical.
TEST(MultiCrawlTest, ConcurrentSessionsMatchSequentialRuns) {
  auto data = StressData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

  // Ground truth: each job alone, one lane, over its own service.
  std::vector<uint64_t> expected_queries;
  for (const MultiCrawlJob& job : StressJobs()) {
    CrawlService solo(data, k);
    auto outcomes = RunMultiCrawl(&solo, {job}, /*max_concurrent=*/1);
    ASSERT_TRUE(outcomes[0].result.status.ok())
        << outcomes[0].label << ": "
        << outcomes[0].result.status.ToString();
    EXPECT_TRUE(Dataset::MultisetEquals(outcomes[0].result.extracted, *data))
        << outcomes[0].label;
    expected_queries.push_back(outcomes[0].session_queries);
  }

  // All six at once over one service with a shared 4-lane pool.
  CrawlServiceOptions options;
  options.max_parallelism = 4;
  CrawlService service(data, k, nullptr, options);
  std::vector<MultiCrawlJob> jobs = StressJobs();
  auto outcomes = RunMultiCrawl(&service, jobs);

  ASSERT_EQ(outcomes.size(), jobs.size());
  EXPECT_EQ(service.sessions_created(), jobs.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].result.status.ok())
        << outcomes[i].label << ": "
        << outcomes[i].result.status.ToString();
    EXPECT_EQ(outcomes[i].session_queries, expected_queries[i])
        << outcomes[i].label
        << ": a concurrent session must be billed exactly its own "
        << "sequential cost";
    EXPECT_EQ(outcomes[i].result.queries_issued, expected_queries[i])
        << outcomes[i].label;
    EXPECT_TRUE(Dataset::MultisetEquals(outcomes[i].result.extracted, *data))
        << outcomes[i].label;
  }
}

// Budgets bite per session: concurrent budgeted sessions stop at their own
// quota while unmetered neighbours complete.
TEST(MultiCrawlTest, ConcurrentBudgetsArePerSession) {
  auto data = StressData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlServiceOptions options;
  options.max_parallelism = 3;
  CrawlService service(data, k, nullptr, options);

  std::vector<MultiCrawlJob> jobs(4);
  jobs[0].label = "metered-20";
  jobs[0].crawler = std::make_shared<DfsCrawler>();
  jobs[0].session.max_queries = 20;
  jobs[1].label = "metered-35";
  jobs[1].crawler = std::make_shared<SliceCoverCrawler>(true);
  jobs[1].session.max_queries = 35;
  jobs[1].crawl.batch_size = 8;
  jobs[2].label = "free-dfs";
  jobs[2].crawler = std::make_shared<DfsCrawler>();
  jobs[2].crawl.batch_size = 4;
  jobs[3].label = "free-hybrid";
  jobs[3].crawler = std::make_shared<HybridCrawler>();

  auto outcomes = RunMultiCrawl(&service, jobs);
  EXPECT_TRUE(outcomes[0].result.status.IsResourceExhausted());
  EXPECT_EQ(outcomes[0].session_queries, 20u);
  EXPECT_TRUE(outcomes[1].result.status.IsResourceExhausted());
  EXPECT_EQ(outcomes[1].session_queries, 35u);
  for (size_t i : {size_t{2}, size_t{3}}) {
    ASSERT_TRUE(outcomes[i].result.status.ok()) << outcomes[i].label;
    EXPECT_TRUE(Dataset::MultisetEquals(outcomes[i].result.extracted, *data))
        << outcomes[i].label;
  }
}

// Concurrent audit logs stay per-session and faithful: each transcript has
// exactly the session's answered queries, uncontaminated by neighbours.
TEST(MultiCrawlTest, ConcurrentAuditLogsAreFaithful) {
  auto data = StressData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlServiceOptions options;
  options.max_parallelism = 4;
  CrawlService service(data, k, nullptr, options);

  std::vector<std::ostringstream> logs(4);
  std::vector<MultiCrawlJob> jobs(4);
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].label = "logged-" + std::to_string(i);
    jobs[i].crawler = std::make_shared<DfsCrawler>();
    jobs[i].crawl.batch_size = static_cast<uint32_t>(i * 4);  // 0,4,8,12
    jobs[i].session.query_log = &logs[i];
  }
  auto outcomes = RunMultiCrawl(&service, jobs);

  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].result.status.ok()) << outcomes[i].label;
    std::istringstream in(logs[i].str());
    std::string line;
    uint64_t lines = 0;
    while (std::getline(in, line)) {
      ++lines;
      // Every line begins with its 1-based per-session sequence index.
      EXPECT_EQ(line.substr(0, line.find('\t')), std::to_string(lines));
    }
    EXPECT_EQ(lines, outcomes[i].session_queries) << outcomes[i].label;
  }
}

}  // namespace
}  // namespace hdc
